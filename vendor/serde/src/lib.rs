//! In-tree stand-in for `serde` so the workspace builds with no network.
//!
//! The workspace derives `Serialize`/`Deserialize` as forward-compatibility
//! markers only — nothing is actually serialized through serde yet (the
//! repo's on-disk formats go through `galaxy_flow::json`). This shim keeps
//! the derive surface compiling: the traits are empty markers with blanket
//! implementations, and the derive macros (re-exported from the in-tree
//! `serde_derive`) expand to nothing. Swapping the real serde back in later
//! is a one-line change in the workspace manifest.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Mirrors `serde::de` far enough for `DeserializeOwned` imports.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Mirrors `serde::ser` for symmetric imports.
pub mod ser {
    pub use crate::Serialize;
}
