//! In-tree stand-in for `proptest` so the workspace tests run offline.
//!
//! Implements the subset of the proptest surface this workspace uses:
//! the `proptest!` / `prop_assert*` macros, `Strategy` with `prop_map`,
//! integer/float range strategies, a mini-regex string strategy,
//! tuple strategies, `any::<T>()`, and `prop::collection::{vec, btree_set}`.
//! Generation is deterministic: each test case derives its RNG from the
//! test's module path and the case index, so failures reproduce exactly.
//! There is no shrinking — failing cases report their inputs instead.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use arbitrary::{any, Any, ArbitraryValue};

/// Prelude mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// expands to a plain test that runs the body over `config.cases`
/// deterministically generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($cfg) $($rest)*);
    };
    (@expand ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {case}: {e}",
                            stringify!($name),
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) so the harness can report the case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left != *right, $($fmt)*);
    }};
}
