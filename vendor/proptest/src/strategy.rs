//! The `Strategy` trait and the core combinators this workspace uses.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value from the RNG stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $ty
                }
            }

            impl Strategy for std::ops::RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $ty;
                    }
                    (start as i128 + rng.below(span + 1) as i128) as $ty
                }
            }
        )*
    };
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let unit = rng.unit_f64() as $ty;
                    self.start + unit * (self.end - self.start)
                }
            }
        )*
    };
}

float_range_strategy!(f32, f64);

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),* $(,)?) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*
    };
}

tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..500 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (-2.0f64..5.0).generate(&mut rng);
            assert!((-2.0..5.0).contains(&f));
            let i = (-5i64..=5).generate(&mut rng);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = TestRng::for_case("map", 0);
        let doubled = (1u32..10).prop_map(|x| x * 2).generate(&mut rng);
        assert!(doubled % 2 == 0 && (2..20).contains(&doubled));
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = TestRng::for_case("tuple", 0);
        let (a, b) = (1u32..8, 60u64..20_000).generate(&mut rng);
        assert!((1..8).contains(&a));
        assert!((60..20_000).contains(&b));
    }
}
