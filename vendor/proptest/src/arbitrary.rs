//! `any::<T>()` support for the primitive types the workspace uses.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-range generation rule.
pub trait ArbitraryValue {
    /// Generates one arbitrary value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Default)]
pub struct Any<T>(PhantomData<T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// The canonical strategy for `T`: full range for integers, fair coin for
/// bool.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(PhantomData)
}

impl ArbitraryValue for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($ty:ty),*) => {
        $(
            impl ArbitraryValue for $ty {
                fn arbitrary_value(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )*
    };
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> f64 {
        // Bounded uniform: plenty for tests without NaN/Inf surprises.
        (rng.unit_f64() - 0.5) * 2e9
    }
}

impl ArbitraryValue for char {
    fn arbitrary_value(rng: &mut TestRng) -> char {
        let printable = 0x20u32..0x7F;
        char::from_u32(printable.start + rng.below(u64::from(printable.end - printable.start)) as u32)
            .expect("printable ASCII is valid char")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_hits_both_sides() {
        let mut rng = TestRng::for_case("any_bool", 0);
        let draws: Vec<bool> = (0..64).map(|_| any::<bool>().generate(&mut rng)).collect();
        assert!(draws.iter().any(|&b| b) && draws.iter().any(|&b| !b));
    }

    #[test]
    fn u64_varies() {
        let mut rng = TestRng::for_case("any_u64", 0);
        let a = any::<u64>().generate(&mut rng);
        let b = any::<u64>().generate(&mut rng);
        assert_ne!(a, b);
    }
}
