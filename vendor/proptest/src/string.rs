//! Mini-regex string generation for `&'static str` strategies.
//!
//! Supports the pattern subset the workspace's property tests use:
//! character classes `[a-z0-9/]` (ranges and literals), the any-char dot
//! `.`, and the quantifiers `{m}`, `{m,n}`, `*`, `+`, and `?` applied to
//! the preceding atom. Everything else is treated as a literal character.

use crate::test_runner::TestRng;

/// The pool `.` draws from: printable ASCII plus a few multibyte
/// characters so UTF-8 handling gets exercised (newline excluded, as in
/// real regex `.`).
const DOT_POOL: &[char] = &[
    ' ', '!', '"', '#', '$', '%', '&', '\'', '(', ')', '*', '+', ',', '-', '.', '/', '0', '1',
    '2', '3', '4', '5', '6', '7', '8', '9', ':', ';', '<', '=', '>', '?', '@', 'A', 'B', 'C',
    'D', 'E', 'F', 'G', 'H', 'I', 'J', 'K', 'L', 'M', 'N', 'O', 'P', 'Q', 'R', 'S', 'T', 'U',
    'V', 'W', 'X', 'Y', 'Z', '[', '\\', ']', '^', '_', '`', 'a', 'b', 'c', 'd', 'e', 'f', 'g',
    'h', 'i', 'j', 'k', 'l', 'm', 'n', 'o', 'p', 'q', 'r', 's', 't', 'u', 'v', 'w', 'x', 'y',
    'z', '{', '|', '}', '~', 'é', 'ß', 'λ', '中',
];

/// Upper repetition bound used for the open-ended `*` and `+` quantifiers.
const UNBOUNDED_MAX: u32 = 16;

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    Dot,
    Class(Vec<char>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: u32,
    max: u32,
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::Dot
            }
            '[' => {
                i += 1;
                let mut class = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        assert!(lo <= hi, "invalid class range {lo}-{hi} in {pattern:?}");
                        for c in lo..=hi {
                            class.push(c);
                        }
                        i += 3;
                    } else {
                        class.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in pattern {pattern:?}");
                i += 1; // consume ']'
                assert!(!class.is_empty(), "empty class in pattern {pattern:?}");
                Atom::Class(class)
            }
            '\\' if i + 1 < chars.len() => {
                i += 2;
                Atom::Literal(chars[i - 1])
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max) = match chars.get(i) {
            Some('*') => {
                i += 1;
                (0, UNBOUNDED_MAX)
            }
            Some('+') => {
                i += 1;
                (1, UNBOUNDED_MAX)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unterminated quantifier in {pattern:?}"));
                let body: String = chars[i + 1..i + close].iter().collect();
                i += close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("quantifier min"),
                        hi.trim().parse().expect("quantifier max"),
                    ),
                    None => {
                        let n: u32 = body.trim().parse().expect("quantifier count");
                        (n, n)
                    }
                }
            }
            _ => (1, 1),
        };
        assert!(min <= max, "inverted quantifier in pattern {pattern:?}");
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn generate_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::Dot => DOT_POOL[rng.usize_below(DOT_POOL.len())],
        Atom::Class(chars) => chars[rng.usize_below(chars.len())],
    }
}

/// Generates one string matching `pattern`.
pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for piece in parse(pattern) {
        let count = piece.min + rng.below(u64::from(piece.max - piece.min) + 1) as u32;
        for _ in 0..count {
            out.push(generate_atom(&piece.atom, rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("string", 0)
    }

    #[test]
    fn class_with_quantifier_stays_in_alphabet() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = generate_from_pattern("[a-z0-9/]{1,16}", &mut rng);
            assert!((1..=16).contains(&s.chars().count()), "{s:?}");
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '/'));
        }
    }

    #[test]
    fn dot_excludes_newline_and_roundtrips_utf8() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = generate_from_pattern(".{0,200}", &mut rng);
            assert!(s.chars().count() <= 200);
            assert!(!s.contains('\n'));
        }
    }

    #[test]
    fn star_and_exact_counts() {
        let mut rng = rng();
        let s = generate_from_pattern("[a-c]{4}", &mut rng);
        assert_eq!(s.chars().count(), 4);
        for _ in 0..50 {
            let s = generate_from_pattern("x*", &mut rng);
            assert!(s.chars().all(|c| c == 'x'));
            assert!(s.len() <= UNBOUNDED_MAX as usize);
        }
    }

    #[test]
    fn literals_pass_through() {
        let mut rng = rng();
        assert_eq!(generate_from_pattern("abc", &mut rng), "abc");
    }
}
