//! Collection strategies: `vec` and `btree_set`.

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A size range for generated collections (half-open internally).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.min + rng.usize_below(self.max_exclusive - self.min)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            min: *r.start(),
            max_exclusive: *r.end() + 1,
        }
    }
}

/// Strategy for `Vec<S::Value>` with a size drawn from `size`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates vectors of `element` values with length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy for `BTreeSet<S::Value>` with a target size drawn from `size`.
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.pick(rng);
        let mut out = BTreeSet::new();
        // Duplicates don't grow the set; bound the attempts so small
        // alphabets can't loop forever.
        let mut attempts = 0usize;
        while out.len() < target && attempts < target * 50 + 50 {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}

/// Generates ordered sets of `element` values with size in `size` (best
/// effort when the value space is smaller than the requested size).
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_range() {
        let mut rng = TestRng::for_case("vec", 0);
        for _ in 0..100 {
            let v = vec(0u64..10, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn btree_set_is_distinct_and_bounded() {
        let mut rng = TestRng::for_case("set", 0);
        for _ in 0..50 {
            let s = btree_set("[a-c]{1,6}", 1..30).generate(&mut rng);
            assert!(!s.is_empty() && s.len() < 30);
        }
    }

    #[test]
    fn vec_of_strings_uses_pattern() {
        let mut rng = TestRng::for_case("vecstr", 0);
        let v = vec("[a-b]{1,3}", 1..10).generate(&mut rng);
        assert!(v
            .iter()
            .all(|s| (1..=3).contains(&s.len()) && s.chars().all(|c| c == 'a' || c == 'b')));
    }
}
