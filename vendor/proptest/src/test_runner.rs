//! Deterministic test runner support: per-case RNG, config, and errors.

/// How many cases a `proptest!` block runs when no config is given.
const DEFAULT_CASES: u32 = 64;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: DEFAULT_CASES,
        }
    }
}

/// Why a single generated case failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// An assertion failed.
    Fail(String),
    /// The case asked to be discarded (unused here, kept for API parity).
    Reject(String),
}

impl TestCaseError {
    /// A failed assertion with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// A rejected (discarded) case.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Result type of a single generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic RNG driving value generation (xorshift128+ seeded from
/// the test name and case index via FNV-1a and SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    s0: u64,
    s1: u64,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fnv1a(text: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for b in text.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

impl TestRng {
    /// The RNG for one (test, case) pair — a pure function of both.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut seed = fnv1a(test_name) ^ u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let s0 = splitmix64(&mut seed);
        let s1 = splitmix64(&mut seed);
        TestRng { s0, s1 }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.s0;
        let y = self.s1;
        self.s0 = y;
        x ^= x << 23;
        self.s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
        self.s1.wrapping_add(y)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below(0) is meaningless");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform draw in `[0, bound)` as usize.
    pub fn usize_below(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_case_same_stream() {
        let mut a = TestRng::for_case("x::y", 3);
        let mut b = TestRng::for_case("x::y", 3);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_cases_differ() {
        let mut a = TestRng::for_case("x::y", 0);
        let mut b = TestRng::for_case("x::y", 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut rng = TestRng::for_case("bounds", 0);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
            let u = rng.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
