//! In-tree stand-in for the `bytes` crate (offline build).
//!
//! Provides the small slice of the `Bytes` API this workspace uses: cheap
//! clones of an immutable byte buffer constructed from owned or static
//! data, dereferencing to `&[u8]`.

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.into() }
    }

    /// Wraps a static slice (copied here; the real crate borrows it).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes { data: data.into() }
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes {
            data: s.into_bytes().into(),
        }
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes {
            data: s.as_bytes().into(),
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes { data: s.into() }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.data.cmp(&other.data)
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_text() {
        let b = Bytes::from(String::from("hello"));
        assert_eq!(&b[..], b"hello");
        assert_eq!(b.len(), 5);
        assert!(!b.is_empty());
        assert_eq!(std::str::from_utf8(&b).unwrap(), "hello");
    }

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.as_ref(), &[1, 2, 3]);
    }

    #[test]
    fn debug_escapes_bytes() {
        let b = Bytes::from(vec![0u8, b'a']);
        assert_eq!(format!("{b:?}"), "b\"\\x00a\"");
    }
}
