//! In-tree stand-in for `serde_derive` so the workspace builds offline.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` purely as a
//! forward-compatibility marker: no code path serializes anything yet, no
//! type carries `#[serde(...)]` attributes, and no API is bounded on the
//! serde traits. The derives therefore expand to nothing; the marker traits
//! they would implement live in the companion in-tree `serde` crate and are
//! blanket-implemented there.

use proc_macro::TokenStream;

/// Expands to nothing; `serde::Serialize` is blanket-implemented.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; `serde::Deserialize` is blanket-implemented.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
