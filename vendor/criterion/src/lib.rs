//! In-tree stand-in for `criterion` so benches build and run offline.
//!
//! Implements the subset the workspace's micro-benchmarks use: groups,
//! `bench_function`, `iter`, `iter_batched`, and the `criterion_group!` /
//! `criterion_main!` macros. Timing is a simple calibrated loop around
//! `std::time::Instant` — good enough for relative regression spotting,
//! with none of the statistical machinery of the real crate.

use std::time::{Duration, Instant};

/// Default number of timed samples per benchmark.
const DEFAULT_SAMPLES: usize = 20;
/// Target wall-clock spent per sample while calibrating iteration counts.
const TARGET_SAMPLE: Duration = Duration::from_millis(25);

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// How `iter_batched` amortizes setup between routine calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: setup runs once per routine invocation.
    SmallInput,
    /// Large inputs: identical behavior in this stand-in.
    LargeInput,
    /// One setup per iteration: identical behavior in this stand-in.
    PerIteration,
}

/// Measures one benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` over calibrated batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the batch until one batch takes a measurable slice.
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let took = start.elapsed();
            if took >= TARGET_SAMPLE || batch >= 1 << 20 {
                self.samples.push(took / batch as u32);
                break;
            }
            batch = batch.saturating_mul(4);
        }
        for _ in 1..DEFAULT_SAMPLES {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / batch as u32);
        }
    }

    /// Times `routine` with fresh `setup` output per call, excluding the
    /// setup from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..DEFAULT_SAMPLES {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<48} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let best = sorted[0];
        println!(
            "{name:<48} median {median:>12?}   best {best:>12?}   ({} samples)",
            sorted.len()
        );
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for API parity; the stand-in keeps
    /// its fixed schedule).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        bencher.report(&format!("{}/{id}", self.name));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepts CLI args for parity; filtering is not implemented.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        bencher.report(id);
        self
    }

    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    /// Final summary hook (no-op).
    pub fn final_summary(&mut self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_collects_samples() {
        let mut b = Bencher::default();
        b.iter(|| black_box(1u64 + 1));
        assert_eq!(b.samples.len(), DEFAULT_SAMPLES);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut b = Bencher::default();
        let mut setups = 0;
        b.iter_batched(
            || {
                setups += 1;
                7u64
            },
            |x| x * 2,
            BatchSize::SmallInput,
        );
        assert_eq!(setups, DEFAULT_SAMPLES);
    }
}
