//! End-to-end integration: strategies against the full simulated cloud
//! stack, checking cross-crate invariants that no single crate can see.

use std::sync::Arc;

use bio_workloads::{paper_fleet, WorkloadKind};
use cloud_market::{InstanceType, Region, SpotMarket, Usd};
use sim_kernel::{SimDuration, SimRng, SimTime};
use spotverse::{
    run_experiment, run_experiment_on, ExperimentConfig, NaiveMultiRegionStrategy,
    OnDemandStrategy, SingleRegionStrategy, SkyPilotStrategy, SpotVerseConfig, SpotVerseStrategy,
    Strategy,
};

fn config(kind: WorkloadKind, n: usize, seed: u64) -> ExperimentConfig {
    let rng = SimRng::seed_from_u64(seed);
    ExperimentConfig::new(seed, InstanceType::M5Xlarge, paper_fleet(kind, n, &rng))
}

#[test]
fn every_strategy_completes_the_fleet() {
    let base = config(WorkloadKind::GenomeReconstruction, 6, 101);
    let market = Arc::new(SpotMarket::new(base.market));
    let strategies: Vec<Box<dyn Strategy>> = vec![
        Box::new(SingleRegionStrategy::new(Region::CaCentral1)),
        Box::new(OnDemandStrategy::new()),
        Box::new(NaiveMultiRegionStrategy::paper_motivational()),
        Box::new(SkyPilotStrategy::new()),
        Box::new(SpotVerseStrategy::new(SpotVerseConfig::paper_default(
            InstanceType::M5Xlarge,
        ))),
    ];
    for strategy in strategies {
        let name = strategy.name().to_owned();
        let report = run_experiment_on(Arc::clone(&market), base.clone(), strategy);
        assert_eq!(report.completed, 6, "{name} left workloads unfinished");
        assert_eq!(report.completion_rate(), 1.0);
        assert!(report.cost.total > Usd::ZERO, "{name} spent nothing");
        assert!(
            report.makespan >= SimDuration::from_hours(10),
            "{name} finished faster than the workload duration"
        );
    }
}

#[test]
fn cost_breakdown_components_sum_to_total() {
    let report = run_experiment(
        config(WorkloadKind::NgsPreprocessing, 5, 102),
        Box::new(SpotVerseStrategy::new(SpotVerseConfig::paper_default(
            InstanceType::M5Xlarge,
        ))),
    );
    let sum = report.cost.spot_instances
        + report.cost.on_demand_instances
        + report.cost.data_transfer
        + report.cost.shared_services;
    assert!(
        (sum.amount() - report.cost.total.amount()).abs() < 1e-9,
        "breakdown {sum:?} != total {:?}",
        report.cost.total
    );
}

#[test]
fn monitor_pipeline_and_direct_market_agree_qualitatively() {
    // The Monitor's persisted snapshot is at most one period stale; both
    // configurations must produce complete runs with similar spend.
    let mut with_pipeline = config(WorkloadKind::GenomeReconstruction, 5, 103);
    with_pipeline.monitor_pipeline = true;
    let mut direct = with_pipeline.clone();
    direct.monitor_pipeline = false;
    let market = Arc::new(SpotMarket::new(with_pipeline.market));
    let a = run_experiment_on(
        Arc::clone(&market),
        with_pipeline,
        Box::new(SpotVerseStrategy::new(SpotVerseConfig::paper_default(
            InstanceType::M5Xlarge,
        ))),
    );
    let b = run_experiment_on(
        market,
        direct,
        Box::new(SpotVerseStrategy::new(SpotVerseConfig::paper_default(
            InstanceType::M5Xlarge,
        ))),
    );
    assert_eq!(a.completed, 5);
    assert_eq!(b.completed, 5);
    let ratio = a.cost.total.amount() / b.cost.total.amount();
    assert!((0.5..2.0).contains(&ratio), "costs diverged: {ratio}");
}

#[test]
fn on_demand_is_deterministic_and_interruption_free() {
    let base = config(WorkloadKind::StandardGeneral, 8, 104);
    let a = run_experiment(base.clone(), Box::new(OnDemandStrategy::new()));
    let b = run_experiment(base, Box::new(OnDemandStrategy::new()));
    assert_eq!(a.interruptions, 0);
    assert_eq!(a.cost.total, b.cost.total);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.cost.spot_instances, Usd::ZERO);
    // Exactly one launch per workload.
    let launches: u64 = a.launches_by_region.values().sum();
    assert_eq!(launches, 8);
}

#[test]
fn spot_attempts_dominate_fulfillments() {
    let report = run_experiment(
        config(WorkloadKind::GenomeReconstruction, 6, 105),
        Box::new(SingleRegionStrategy::new(Region::UsEast1)),
    );
    assert!(report.spot_attempts >= report.spot_fulfillments);
    // Every interruption implies a relaunch, so fulfillments strictly
    // exceed the fleet size whenever interruptions occurred.
    if report.interruptions > 0 {
        assert!(report.spot_fulfillments > 6);
    }
}

#[test]
fn deadline_guard_reports_incomplete_fleets() {
    let mut base = config(WorkloadKind::GenomeReconstruction, 4, 106);
    base.max_runtime = SimDuration::from_hours(2); // impossible: workloads need 10 h
    let report = run_experiment(
        base,
        Box::new(SingleRegionStrategy::new(Region::CaCentral1)),
    );
    assert_eq!(report.completed, 0, "nothing can finish inside 2 h");
    assert!(report.completion_rate() < 1.0);
}

#[test]
fn experiments_starting_later_in_horizon_work() {
    let mut base = config(WorkloadKind::GenomeReconstruction, 4, 107);
    base.start = SimTime::from_days(150);
    let report = run_experiment(
        base,
        Box::new(SpotVerseStrategy::new(SpotVerseConfig::paper_default(
            InstanceType::M5Xlarge,
        ))),
    );
    assert_eq!(report.completed, 4);
}

#[test]
fn p3_fleet_respects_regional_availability() {
    let rng = SimRng::seed_from_u64(108);
    let config = ExperimentConfig::new(
        108,
        InstanceType::P32xlarge,
        paper_fleet(WorkloadKind::StandardGeneral, 4, &rng),
    );
    let report = run_experiment(
        config,
        Box::new(SpotVerseStrategy::new(SpotVerseConfig::paper_default(
            InstanceType::P32xlarge,
        ))),
    );
    assert_eq!(report.completed, 4);
    for region in report.launches_by_region.keys() {
        assert!(
            !matches!(
                region,
                Region::ApNortheast3 | Region::EuWest3 | Region::EuNorth1
            ),
            "p3 launched in a region that does not offer it: {region}"
        );
    }
}
