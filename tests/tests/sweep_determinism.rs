//! Sweep-engine determinism: the concurrency machinery under the sweep
//! engine (lazy market materialization, the bounded worker pool, the
//! shared market cache) must be invisible in the output — bit-identical
//! reports for any worker count, faulted or fault-free.

use bio_workloads::WorkloadKind;
use chaos::ChaosScenario;
use cloud_market::{MarketConfig, MarketRegime, SpotMarket};
use spotverse::{run_matrix, CellOutcome, MarketCache, SweepCell};
use spotverse_integration::spotverse_strategy;

fn fleet_config(seed: u64, n: usize) -> spotverse::ExperimentConfig {
    spotverse_integration::fleet_config(WorkloadKind::NgsPreprocessing, n, seed)
}

#[test]
fn lazy_market_construction_matches_eager() {
    for seed in [1, 2024, 0xDEAD] {
        let config = MarketConfig {
            seed,
            horizon_days: 45,
            regime: MarketRegime::Baseline,
        };
        assert_eq!(
            SpotMarket::new(config),
            SpotMarket::new_eager(config),
            "seed {seed}: lazy build must be field-for-field identical"
        );
    }
}

#[test]
fn run_matrix_is_jobs_invariant() {
    // strategy × scenario matrix (incl. fault-free cells), all one seed.
    let base = fleet_config(404, 4);
    let scenarios: Vec<Option<ChaosScenario>> = std::iter::once(None)
        .chain(chaos::library().into_iter().map(Some))
        .collect();
    let cells: Vec<SweepCell> = scenarios
        .iter()
        .enumerate()
        .map(|(i, scenario)| {
            let mut config = base.clone();
            config.chaos = scenario.clone();
            SweepCell::new(format!("cell-{i}"), "spotverse", config)
        })
        .collect();
    let run = |jobs: usize| -> Vec<CellOutcome> {
        let cache = MarketCache::new();
        let outcomes = run_matrix(&cells, jobs, &cache, |_| spotverse_strategy());
        // Chaos overlays live on the read path: every cell shares the one
        // clean base market, so the whole matrix builds exactly one.
        assert_eq!(cache.misses(), 1, "jobs={jobs}");
        assert_eq!(cache.hits(), cells.len() as u64 - 1, "jobs={jobs}");
        assert!(outcomes.iter().all(CellOutcome::is_ok), "jobs={jobs}");
        outcomes
    };
    let serial = run(1);
    for jobs in [2, 4, 8] {
        assert_eq!(run(jobs), serial, "jobs={jobs} must match jobs=1 exactly");
    }
}

#[test]
fn distinct_seeds_build_distinct_markets() {
    let cells: Vec<SweepCell> = (0..3)
        .map(|i| SweepCell::new(format!("seed-{i}"), "spotverse", fleet_config(100 + i, 2)))
        .collect();
    let cache = MarketCache::new();
    let outcomes = run_matrix(&cells, 3, &cache, |_| spotverse_strategy());
    assert_eq!(outcomes.len(), 3);
    assert_eq!(cache.misses(), 3, "three seeds, three constructions");
    assert_eq!(cache.hits(), 0);
    let reports: Vec<_> = outcomes.iter().map(|o| o.report().unwrap()).collect();
    assert!(
        reports[0] != reports[1] || reports[1] != reports[2],
        "different seeds should not all coincide"
    );
}
