//! Fault-injection integration: the chaos subsystem driving full
//! experiments, checking that the hardened SpotVerse controller rides
//! through every shipped scenario while naive baselines measurably
//! degrade, and that checkpoint recovery only ever resumes from durable
//! generations.

use std::sync::Arc;

use bio_workloads::WorkloadKind;
use chaos::{
    library, notice_loss, region_blackout, region_flap, telemetry_blackout, ChaosScenario,
    FaultDirective, RegionScope,
};
use cloud_market::{Region, SpotMarket};
use sim_kernel::SimDuration;
use spotverse::{
    resolve_jobs, run_matrix, MarketCache, NaiveMultiRegionStrategy, OnDemandStrategy,
    ResilienceTelemetry, SingleRegionStrategy, SkyPilotStrategy, Strategy, SweepCell,
};
use spotverse_integration::{fleet_config as config, run_with, spotverse_strategy};

/// Satellite (c): an NGS shard fleet under lost notices *and* a flaky
/// checkpoint store. Zero-second notices tear in-flight checkpoint
/// uploads and corruption invalidates durable ones, yet every resume
/// comes from the newest surviving durable generation: the fleet still
/// completes, and lost progress only ever makes runs *slower* than the
/// fault-free run on the same market.
#[test]
fn ngs_fleet_survives_lost_notices_and_flaky_checkpoints() {
    let base = config(WorkloadKind::NgsPreprocessing, 8, 7);
    let market = Arc::new(SpotMarket::new(base.market));

    let storm = ChaosScenario::new("notice_loss+flaky_checkpoints")
        .with(FaultDirective::NoticeDisruption {
            scope: RegionScope::All,
            from: SimDuration::ZERO,
            until: SimDuration::from_days(60),
            probability: 0.9,
            max_notice: SimDuration::ZERO,
        })
        .with(FaultDirective::CheckpointCorruption {
            from: SimDuration::ZERO,
            until: SimDuration::from_days(60),
            probability: 0.6,
        });

    // Pin to the paper's single-region baseline region so interruptions —
    // and therefore checkpoint write/read traffic — are plentiful.
    let strategy = || Box::new(SingleRegionStrategy::new(Region::CaCentral1));
    let fault_free = run_with(&market, &base, None, strategy());
    let faulted = run_with(&market, &base, Some(storm), strategy());

    assert_eq!(fault_free.completed, 8);
    assert_eq!(faulted.completed, 8, "hardened controller must finish the fleet");

    let t = faulted.checkpoints;
    assert!(t.writes > 0, "interruptions should have triggered checkpoints");
    assert!(t.torn_writes > 0, "0 s notices must tear some uploads: {t:?}");
    assert!(t.corrupt_reads > 0, "corruption must invalidate some reads: {t:?}");
    assert!(t.torn_writes <= t.writes, "telemetry inconsistent: {t:?}");

    // Torn and corrupt checkpoints can only *lose* progress; resuming from
    // a stale-but-durable generation must never let a run finish earlier
    // than the fault-free execution of the identical market.
    assert!(
        faulted.mean_completion >= fault_free.mean_completion,
        "faulted runs finished earlier than fault-free: {:?} < {:?}",
        faulted.mean_completion,
        fault_free.mean_completion
    );
}

/// Acceptance: the hardened SpotVerse strategy completes every workload
/// under every shipped scenario.
#[test]
fn spotverse_completes_all_workloads_under_every_library_scenario() {
    let base = config(WorkloadKind::NgsPreprocessing, 8, 7);
    let market = Arc::new(SpotMarket::new(base.market));
    for scenario in library() {
        let name = scenario.name().to_owned();
        let report = run_with(&market, &base, Some(scenario), spotverse_strategy());
        assert_eq!(
            report.completed, 8,
            "spotverse left workloads unfinished under {name}"
        );
        assert_eq!(report.completion_rate(), 1.0, "{name}");
    }
}

/// Acceptance: at least one baseline measurably degrades where SpotVerse
/// does not. A region blackout in the single-region baseline's home
/// region stretches its makespan by tens of hours; lost notices tear far
/// more of its checkpoints than SpotVerse's.
#[test]
fn baselines_measurably_degrade_where_spotverse_does_not() {
    let base = config(WorkloadKind::NgsPreprocessing, 8, 7);
    let market = Arc::new(SpotMarket::new(base.market));
    let single = || Box::new(SingleRegionStrategy::new(Region::CaCentral1)) as Box<dyn Strategy>;

    // Region blackout: the pinned baseline stalls for the outage window.
    let sr_free = run_with(&market, &base, None, single());
    let sr_blackout = run_with(&market, &base, Some(region_blackout()), single());
    let added = sr_blackout.makespan.as_hours_f64() - sr_free.makespan.as_hours_f64();
    assert!(
        added > 5.0,
        "single-region should stall through the blackout, added only {added:.1} h"
    );

    let sv_free = run_with(&market, &base, None, spotverse_strategy());
    let sv_blackout = run_with(&market, &base, Some(region_blackout()), spotverse_strategy());
    let sv_added = sv_blackout.makespan.as_hours_f64() - sv_free.makespan.as_hours_f64();
    assert!(
        sv_added < added,
        "spotverse ({sv_added:.1} h added) should beat single-region ({added:.1} h added)"
    );

    // Lost notices: the baseline suffers many more torn checkpoints than
    // the multi-region controller, which is interrupted far less often.
    let sr_notice = run_with(&market, &base, Some(notice_loss()), single());
    let sv_notice = run_with(&market, &base, Some(notice_loss()), spotverse_strategy());
    assert_eq!(sr_notice.completed, 8);
    assert_eq!(sv_notice.completed, 8);
    assert!(
        sr_notice.checkpoints.torn_writes > sv_notice.checkpoints.torn_writes,
        "baseline torn={} should exceed spotverse torn={}",
        sr_notice.checkpoints.torn_writes,
        sv_notice.checkpoints.torn_writes
    );
}

/// Determinism contract: identical scenario + identical seed must yield a
/// bit-identical report — same makespan, cost, interruption trace, and
/// checkpoint telemetry.
#[test]
fn identical_scenario_and_seed_reproduce_identical_reports() {
    let base = config(WorkloadKind::NgsPreprocessing, 6, 7);
    let market = Arc::new(SpotMarket::new(base.market));
    for scenario in library() {
        let name = scenario.name().to_owned();
        let a = run_with(&market, &base, Some(scenario.clone()), spotverse_strategy());
        let b = run_with(&market, &base, Some(scenario), spotverse_strategy());
        assert_eq!(a.makespan, b.makespan, "{name}");
        assert_eq!(a.cost.total, b.cost.total, "{name}");
        assert_eq!(a.interruptions, b.interruptions, "{name}");
        assert_eq!(a.interruptions_by_region, b.interruptions_by_region, "{name}");
        assert_eq!(a.checkpoints, b.checkpoints, "{name}");
        assert_eq!(a.resilience, b.resilience, "{name}");
    }
}

/// A scenario attached to the config must not change fault-free substrate
/// behavior outside its windows: an empty scenario is a strict no-op.
#[test]
fn empty_scenario_is_a_no_op() {
    let base = config(WorkloadKind::GenomeReconstruction, 5, 11);
    let market = Arc::new(SpotMarket::new(base.market));
    let plain = run_with(&market, &base, None, spotverse_strategy());
    let empty = run_with(
        &market,
        &base,
        Some(ChaosScenario::new("empty")),
        spotverse_strategy(),
    );
    assert_eq!(plain.makespan, empty.makespan);
    assert_eq!(plain.cost.total, empty.cost.total);
    assert_eq!(plain.interruptions, empty.interruptions);
    assert_eq!(plain.checkpoints, empty.checkpoints);
    assert_eq!(plain.resilience, empty.resilience);
    assert_eq!(
        plain.resilience,
        ResilienceTelemetry::default(),
        "the control plane must stay silent without faults"
    );
}

/// Acceptance: every library scenario × every strategy completes with an
/// Ok report on the panic-isolated sweep engine — no cell may fail, panic,
/// or leave workloads behind.
#[test]
fn every_scenario_yields_ok_reports_for_every_strategy() {
    let base = config(WorkloadKind::NgsPreprocessing, 4, 7);
    let strategies = ["single-region", "naive-multi", "skypilot", "spotverse", "on-demand"];
    let mut cells = Vec::new();
    for name in strategies {
        for scenario in library() {
            let mut cfg = base.clone();
            cfg.chaos = Some(scenario.clone());
            cells.push(SweepCell::new(
                format!("{name}/{}", scenario.name()),
                name,
                cfg,
            ));
        }
    }
    let cache = MarketCache::new();
    let jobs = resolve_jobs(None, cells.len());
    let outcomes = run_matrix(&cells, jobs, &cache, |cell| match cell.strategy.as_str() {
        "single-region" => Box::new(SingleRegionStrategy::new(Region::CaCentral1)),
        "naive-multi" => Box::new(NaiveMultiRegionStrategy::paper_motivational()),
        "skypilot" => Box::new(SkyPilotStrategy::new()),
        "spotverse" => spotverse_strategy(),
        "on-demand" => Box::new(OnDemandStrategy::new()),
        other => unreachable!("unknown strategy {other}"),
    });
    assert_eq!(outcomes.len(), strategies.len() * library().len());
    for outcome in &outcomes {
        let report = outcome
            .report()
            .unwrap_or_else(|| panic!("cell {} failed: {:?}", outcome.label, outcome.result));
        assert_eq!(
            report.completed,
            base.workloads.len(),
            "cell {} left workloads unfinished",
            outcome.label
        );
    }
}

/// The `region_flap` scenario must actually engage the circuit breaker:
/// repeated blackout bursts in a top-tier region strike it into
/// quarantine, and the fleet still completes.
#[test]
fn region_flap_trips_the_circuit_breaker() {
    let base = config(WorkloadKind::GenomeReconstruction, 10, 7);
    let market = Arc::new(SpotMarket::new(base.market));
    let report = run_with(&market, &base, Some(region_flap()), spotverse_strategy());
    assert_eq!(report.completed, 10, "fleet must ride through the flaps");
    assert!(
        report.resilience.breaker_trips > 0,
        "flapping ap-northeast-3 should trip its breaker: {:?}",
        report.resilience
    );
}

/// The `telemetry_blackout` scenario must exercise the staleness path:
/// collections fail throughout the outage and decisions are served from
/// the last good snapshot (or degrade to on-demand past the TTL).
#[test]
fn telemetry_blackout_serves_stale_assessments() {
    let base = config(WorkloadKind::NgsPreprocessing, 8, 7);
    let market = Arc::new(SpotMarket::new(base.market));
    let strategy = Box::new(SingleRegionStrategy::new(Region::CaCentral1));
    let report = run_with(&market, &base, Some(telemetry_blackout()), strategy);
    assert_eq!(report.completed, 8, "fleet must finish despite the outage");
    let f = report.resilience.freshness;
    assert!(f.collection_failures > 0, "the outage must fail collections: {f:?}");
    assert!(
        f.stale_serves > 0 || f.degraded_decisions > 0,
        "decisions during the outage must ride the stale snapshot: {f:?}"
    );
}
