//! Galaxy + workloads integration: the bioinformatics workflows install,
//! validate, and execute end-to-end on a Galaxy instance via Planemo.

use bio_workloads::{paper_fleet, WorkloadKind};
use galaxy_flow::{
    ExecutionPlan, GalaxyConfig, GalaxyInstance, PlanemoError, PlanemoRunner, WorkflowInvocation,
};
use sim_kernel::{SimDuration, SimRng, SimTime};

fn provisioned_galaxy(kind: WorkloadKind) -> GalaxyInstance {
    let mut galaxy = GalaxyInstance::new(GalaxyConfig::automated("admin@lab", "key"));
    let spec = &paper_fleet(kind, 1, &SimRng::seed_from_u64(1))[0];
    for tool in spec.required_tools() {
        galaxy.install_tool("admin@lab", tool).expect("fresh install");
    }
    galaxy
}

#[test]
fn all_three_paper_workloads_run_end_to_end() {
    for kind in WorkloadKind::ALL {
        let mut galaxy = provisioned_galaxy(kind);
        let spec = &paper_fleet(kind, 1, &SimRng::seed_from_u64(2))[0];
        let workflow = spec.build_workflow();
        let report = PlanemoRunner::new("key")
            .run(&mut galaxy, &workflow, SimTime::ZERO)
            .unwrap_or_else(|e| panic!("{kind}: {e}"));
        assert_eq!(report.steps.len(), workflow.len(), "{kind}");
        assert_eq!(report.duration(), workflow.total_duration(), "{kind}");
        let history = galaxy.history(report.history).unwrap();
        assert_eq!(history.len(), workflow.len(), "{kind}: one dataset per step");
    }
}

#[test]
fn missing_tool_blocks_the_run() {
    let mut galaxy = GalaxyInstance::new(GalaxyConfig::automated("admin@lab", "key"));
    // Install everything except multiqc.
    let spec = &paper_fleet(WorkloadKind::NgsPreprocessing, 1, &SimRng::seed_from_u64(3))[0];
    for tool in spec.required_tools() {
        if tool.id().as_str() != "multiqc" {
            galaxy.install_tool("admin@lab", tool).unwrap();
        }
    }
    let err = PlanemoRunner::new("key")
        .run(&mut galaxy, &spec.build_workflow(), SimTime::ZERO)
        .unwrap_err();
    assert!(matches!(err, PlanemoError::MissingTool { .. }));
}

#[test]
fn invocation_progress_consistent_with_planemo_timeline() {
    // The event-driven invocation model and the Planemo timeline must agree
    // on total work.
    let spec = &paper_fleet(WorkloadKind::GenomeReconstruction, 1, &SimRng::seed_from_u64(4))[0];
    let workflow = spec.build_workflow();
    let plan = ExecutionPlan::new(&workflow);
    assert_eq!(plan.total_duration(), workflow.total_duration());

    let mut galaxy = provisioned_galaxy(WorkloadKind::GenomeReconstruction);
    let report = PlanemoRunner::new("key")
        .run(&mut galaxy, &workflow, SimTime::ZERO)
        .unwrap();
    assert_eq!(
        report.finished_at,
        SimTime::ZERO + plan.total_duration(),
        "planemo and the execution plan agree"
    );
}

#[test]
fn standard_vs_checkpoint_interruption_semantics() {
    let standard = paper_fleet(WorkloadKind::GenomeReconstruction, 1, &SimRng::seed_from_u64(5))[0]
        .build_workflow();
    let checkpoint =
        paper_fleet(WorkloadKind::NgsPreprocessing, 1, &SimRng::seed_from_u64(5))[0].build_workflow();

    let mut std_inv = WorkflowInvocation::new(&standard);
    let mut ckpt_inv = WorkflowInvocation::new(&checkpoint);
    let four_hours = SimDuration::from_hours(4);
    std_inv.record_execution(four_hours).unwrap();
    ckpt_inv.record_execution(four_hours).unwrap();
    let std_before = std_inv.units_done();
    let ckpt_before = ckpt_inv.units_done();
    assert!(std_before > 0, "23-step workflow completes early steps in 4 h");
    assert!(ckpt_before > 0);

    std_inv.handle_interruption();
    ckpt_inv.handle_interruption();
    assert_eq!(std_inv.units_done(), 0, "standard restarts from scratch");
    assert_eq!(ckpt_inv.units_done(), ckpt_before, "checkpoint resumes");
    // Checkpoint workload now needs strictly less time than a full run.
    assert!(ckpt_inv.remaining_duration() < checkpoint.total_duration());
    assert_eq!(std_inv.remaining_duration(), standard.total_duration());
}

#[test]
fn fleet_tools_are_consistent_per_kind() {
    // Every spec of a kind requires the same tool set, so one AMI serves
    // the whole fleet (the paper bakes one AMI).
    let rng = SimRng::seed_from_u64(6);
    for kind in WorkloadKind::ALL {
        let fleet = paper_fleet(kind, 5, &rng);
        let reference: Vec<String> = fleet[0]
            .required_tools()
            .iter()
            .map(|t| t.id().as_str().to_owned())
            .collect();
        for spec in &fleet {
            let tools: Vec<String> = spec
                .required_tools()
                .iter()
                .map(|t| t.id().as_str().to_owned())
                .collect();
            assert_eq!(tools, reference, "{kind}");
        }
    }
}
