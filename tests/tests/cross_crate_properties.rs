//! Cross-crate property-based tests: invariants that span the market, the
//! compute plane, the optimizer, and the experiment engine.

use std::sync::Arc;

use proptest::prelude::*;

use bio_workloads::{workload_fleet, WorkloadKind};
use cloud_compute::{Ec2, Ec2Config, PurchaseModel, SpotRequestOutcome, TerminationReason};
use cloud_market::{InstanceType, MarketConfig, Region, SpotMarket};
use sim_kernel::{SimDuration, SimRng, SimTime};
use spotverse::{
    run_experiment, ExperimentConfig, MigrationPolicy, Monitor, Optimizer, SingleRegionStrategy,
    SpotVerseConfig,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Algorithm 1 invariants hold against real market assessments at any
    /// instant: ≤ R regions, all above threshold, price-sorted, and the
    /// migration target never equals the interrupted region when spot is
    /// chosen.
    #[test]
    fn optimizer_invariants_on_live_market(
        seed in 0u64..500,
        day in 0u64..200,
        threshold in 2u8..9,
        interrupted_idx in 0usize..12,
    ) {
        let market = SpotMarket::new(MarketConfig::with_seed(seed));
        let monitor = Monitor::new(InstanceType::M5Xlarge, Region::UsEast1);
        let assessments = monitor
            .fresh_assessments(&market, SimTime::from_days(day))
            .expect("within horizon");
        let optimizer = Optimizer::new(
            SpotVerseConfig::builder(InstanceType::M5Xlarge)
                .threshold(threshold)
                .build(),
        );
        let selected = optimizer.select_regions(&assessments, &[]);
        prop_assert!(selected.len() <= 4);
        prop_assert!(selected.iter().all(|a| a.combined().meets(threshold)));
        prop_assert!(selected
            .windows(2)
            .all(|w| w[0].spot_price.rate() <= w[1].spot_price.rate()));

        let interrupted = Region::ALL[interrupted_idx];
        let mut rng = SimRng::seed_from_u64(seed ^ 0xDEAD);
        let target = optimizer.migration_target(
            &assessments,
            interrupted,
            MigrationPolicy::RandomTopR,
            &[],
            &mut rng,
        );
        if target.is_spot() {
            prop_assert_ne!(target.region(), interrupted);
        }
    }

    /// Billing is additive and non-negative: terminating an instance at any
    /// point yields a cost equal to the integral of the price curve, and
    /// splitting the interval never changes the total.
    #[test]
    fn billing_is_additive_over_splits(
        seed in 0u64..200,
        start_hours in 24u64..2000,
        len_minutes in 10u64..3000,
        split_pct in 1u64..99,
    ) {
        let market = Arc::new(SpotMarket::new(MarketConfig::with_seed(seed)));
        let ec2 = Ec2::new(market, Ec2Config::default(), SimRng::seed_from_u64(seed));
        let start = SimTime::from_hours(start_hours);
        let len = SimDuration::from_mins(len_minutes);
        let end = start + len;
        let mid = start + SimDuration::from_secs(len.as_secs() * split_pct / 100);
        let whole = ec2
            .usage_cost(Region::EuWest2, InstanceType::M5Xlarge, PurchaseModel::Spot, start, end)
            .expect("within horizon");
        let a = ec2
            .usage_cost(Region::EuWest2, InstanceType::M5Xlarge, PurchaseModel::Spot, start, mid)
            .expect("within horizon");
        let b = ec2
            .usage_cost(Region::EuWest2, InstanceType::M5Xlarge, PurchaseModel::Spot, mid, end)
            .expect("within horizon");
        prop_assert!(((a + b).amount() - whole.amount()).abs() < 1e-9);
        // Spot never exceeds the on-demand bill for the same interval.
        let od = ec2
            .usage_cost(Region::EuWest2, InstanceType::M5Xlarge, PurchaseModel::OnDemand, start, end)
            .expect("within horizon");
        prop_assert!(whole.amount() <= od.amount() + 1e-9);
    }

    /// Interruption times sampled by the compute plane respect the notice
    /// floor and the market horizon.
    #[test]
    fn sampled_interruptions_respect_bounds(seed in 0u64..100, day in 0u64..150) {
        let market = Arc::new(SpotMarket::new(MarketConfig::with_seed(seed)));
        let horizon = market.horizon();
        let mut ec2 = Ec2::new(market, Ec2Config::default(), SimRng::seed_from_u64(seed));
        let at = SimTime::from_days(day);
        for _ in 0..5 {
            if let SpotRequestOutcome::Fulfilled(launch) =
                ec2.request_spot(Region::CaCentral1, InstanceType::M5Xlarge, at).expect("within horizon")
            {
                if let Some(t) = launch.interruption_at {
                    prop_assert!(t >= at + SimDuration::from_secs(120));
                    prop_assert!(t <= horizon);
                }
                ec2.terminate(launch.instance, at + SimDuration::from_secs(120), TerminationReason::Manual)
                    .expect("instance is running");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Whole-experiment conservation laws, for arbitrary small fleets:
    /// completions + incompletions = fleet, regional interruptions sum to
    /// the total, series are monotone, and the ledger total matches the
    /// report.
    #[test]
    fn experiment_conservation_laws(
        seed in 0u64..50,
        n in 2usize..6,
        duration_hours in 2u64..8,
    ) {
        let fleet = workload_fleet(
            WorkloadKind::GenomeReconstruction,
            n,
            SimDuration::from_hours(duration_hours),
            SimDuration::from_mins(30),
            &SimRng::seed_from_u64(seed),
        );
        let config = ExperimentConfig::new(seed, InstanceType::M5Xlarge, fleet);
        let report = run_experiment(
            config,
            Box::new(SingleRegionStrategy::new(Region::CaCentral1)),
        );
        prop_assert_eq!(report.completed, n, "short workloads always finish in 30 days");
        let regional: u64 = report.interruptions_by_region.values().sum();
        prop_assert_eq!(regional, report.interruptions);
        let launches: u64 = report.launches_by_region.values().sum();
        prop_assert!(launches as usize >= n);
        prop_assert_eq!(report.interruptions + n as u64, launches);
        let values: Vec<f64> = report
            .cumulative_interruptions
            .iter()
            .map(|&(_, v)| v)
            .collect();
        prop_assert!(values.windows(2).all(|w| w[0] <= w[1]));
        prop_assert!(report.instance_hours >= 0.0);
        prop_assert!(
            report.instance_hours * 3600.0
                >= n as f64 * duration_hours as f64 * 3600.0 * 0.99,
            "billed at least the useful work"
        );
    }
}
