//! The paper's headline result shapes, asserted at test scale so
//! `cargo test --workspace` continuously validates the reproduction (the
//! full-scale numbers live in the bench harness / EXPERIMENTS.md).

use std::sync::Arc;

use bio_workloads::{paper_fleet, WorkloadKind};
use cloud_market::{cheapest_spot_region_at_start, InstanceType, Region, SpotMarket};
use sim_kernel::{SimRng, SimTime};
use spotverse::{
    compare, run_experiment_on, run_repetitions, RepetitionMarket, ExperimentConfig, InitialPlacement,
    OnDemandStrategy, SingleRegionStrategy, SkyPilotStrategy, SpotVerseConfig, SpotVerseStrategy,
};

fn config(kind: WorkloadKind, n: usize, seed: u64, start_day: u64) -> ExperimentConfig {
    let rng = SimRng::seed_from_u64(seed);
    let mut c = ExperimentConfig::new(seed, InstanceType::M5Xlarge, paper_fleet(kind, n, &rng));
    c.start = SimTime::from_days(start_day);
    c
}

/// Figure 7's headline: SpotVerse beats the single-cheapest-region
/// deployment on interruptions, completion time and cost (mean of 3 reps).
#[test]
fn spotverse_beats_single_region_standard() {
    let base = config(WorkloadKind::GenomeReconstruction, 20, 201, 1);
    let single = run_repetitions(
        &base,
        || Box::new(SingleRegionStrategy::new(Region::CaCentral1)),
        3,
     RepetitionMarket::Reseeded,);
    let sv = run_repetitions(
        &base,
        || {
            Box::new(SpotVerseStrategy::new(
                SpotVerseConfig::builder(InstanceType::M5Xlarge)
                    .initial_placement(InitialPlacement::SingleRegion(Region::CaCentral1))
                    .build(),
            ))
        },
        3,
     RepetitionMarket::Reseeded,);
    assert!(
        sv.interruptions.mean() < single.interruptions.mean(),
        "interruptions: sv {} vs single {}",
        sv.interruptions.mean(),
        single.interruptions.mean()
    );
    assert!(
        sv.makespan_hours.mean() < single.makespan_hours.mean(),
        "makespan: sv {} vs single {}",
        sv.makespan_hours.mean(),
        single.makespan_hours.mean()
    );
    assert!(
        sv.cost.mean() < single.cost.mean(),
        "cost: sv {} vs single {}",
        sv.cost.mean(),
        single.cost.mean()
    );
}

/// SpotVerse's spot fleets cost well below on-demand (paper: -46.7%).
#[test]
fn spotverse_undercuts_on_demand_substantially() {
    let base = config(WorkloadKind::GenomeReconstruction, 15, 202, 1);
    let market = Arc::new(SpotMarket::new(base.market));
    let od = run_experiment_on(
        Arc::clone(&market),
        base.clone(),
        Box::new(OnDemandStrategy::new()),
    );
    let sv = run_experiment_on(
        market,
        base,
        Box::new(SpotVerseStrategy::new(SpotVerseConfig::paper_default(
            InstanceType::M5Xlarge,
        ))),
    );
    let saving = compare(&od, &sv).cost_reduction_pct;
    assert!(saving > 25.0, "saving only {saving:.1}%");
}

/// Table 4's shape: score-aware SpotVerse beats price-chasing SkyPilot.
#[test]
fn spotverse_beats_skypilot() {
    let base = config(WorkloadKind::StandardGeneral, 20, 203, 1);
    let sky = run_repetitions(&base, || Box::new(SkyPilotStrategy::new()), 3, RepetitionMarket::Reseeded);
    let sv = run_repetitions(
        &base,
        || {
            Box::new(SpotVerseStrategy::new(SpotVerseConfig::paper_default(
                InstanceType::M5Xlarge,
            )))
        },
        3,
     RepetitionMarket::Reseeded,);
    assert!(sv.interruptions.mean() < sky.interruptions.mean());
    assert!(sv.makespan_hours.mean() < sky.makespan_hours.mean());
    assert!(sv.cost.mean() < sky.cost.mean());
}

/// Table 1: the calibrated market pins the paper's baseline regions.
#[test]
fn table1_baseline_regions() {
    assert_eq!(
        cheapest_spot_region_at_start(InstanceType::M5Xlarge),
        Region::CaCentral1
    );
    assert_eq!(
        cheapest_spot_region_at_start(InstanceType::M5Large),
        Region::UsWest2
    );
    assert_eq!(
        cheapest_spot_region_at_start(InstanceType::C52xlarge),
        Region::EuNorth1
    );
}

/// §5.2.4: an unreachable threshold falls back to on-demand everywhere —
/// zero interruptions, cost ≈ the pure on-demand deployment.
#[test]
fn unreachable_threshold_falls_back_to_on_demand() {
    let base = config(WorkloadKind::StandardGeneral, 6, 204, 60);
    let market = Arc::new(SpotMarket::new(base.market));
    let od = run_experiment_on(
        Arc::clone(&market),
        base.clone(),
        Box::new(OnDemandStrategy::new()),
    );
    let fallback = run_experiment_on(
        market,
        base,
        Box::new(SpotVerseStrategy::new(
            SpotVerseConfig::builder(InstanceType::M5Xlarge)
                .threshold(13)
                .build(),
        )),
    );
    assert_eq!(fallback.interruptions, 0);
    assert_eq!(fallback.cost.spot_instances, cloud_market::Usd::ZERO);
    let ratio = fallback.cost.total.amount() / od.cost.total.amount();
    assert!((0.95..1.05).contains(&ratio), "fallback should price like on-demand: {ratio}");
}

/// Figure 9's mechanism: concentrating the whole fleet in one market
/// raises the reclaim hazard relative to distributing it (crowding).
#[test]
fn initial_distribution_reduces_interruptions_in_wobble_window() {
    let base = config(WorkloadKind::GenomeReconstruction, 20, 205, 10);
    let concentrated = run_repetitions(
        &base,
        || {
            Box::new(SpotVerseStrategy::new(
                SpotVerseConfig::builder(InstanceType::M5Xlarge)
                    .initial_placement(InitialPlacement::SingleRegion(Region::ApNortheast3))
                    .build(),
            ))
        },
        3,
     RepetitionMarket::Reseeded,);
    let distributed = run_repetitions(
        &base,
        || {
            Box::new(SpotVerseStrategy::new(SpotVerseConfig::paper_default(
                InstanceType::M5Xlarge,
            )))
        },
        3,
     RepetitionMarket::Reseeded,);
    assert!(
        distributed.interruptions.mean() < concentrated.interruptions.mean(),
        "distributed {} vs concentrated {}",
        distributed.interruptions.mean(),
        concentrated.interruptions.mean()
    );
}

/// The checkpoint workload's mean completion beats the standard workload's
/// under identical interruption pressure (resume vs restart).
#[test]
fn checkpointing_pays_off_under_interruptions() {
    let standard = config(WorkloadKind::GenomeReconstruction, 10, 206, 40);
    let checkpoint = config(WorkloadKind::NgsPreprocessing, 10, 206, 40);
    let s = run_repetitions(
        &standard,
        || Box::new(SingleRegionStrategy::new(Region::CaCentral1)),
        3,
     RepetitionMarket::Reseeded,);
    let c = run_repetitions(
        &checkpoint,
        || Box::new(SingleRegionStrategy::new(Region::CaCentral1)),
        3,
     RepetitionMarket::Reseeded,);
    assert!(
        c.mean_completion_hours.mean() < s.mean_completion_hours.mean(),
        "checkpoint {} vs standard {}",
        c.mean_completion_hours.mean(),
        s.mean_completion_hours.mean()
    );
}
