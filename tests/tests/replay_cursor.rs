//! Incremental-cursor equivalence: replaying a trace in one pass, in
//! arbitrary chunk splits, or across a serialize/resume boundary must
//! yield identical final views — the fold purity contract that makes
//! `analyse` deterministic regardless of how the bytes arrive.

use std::fs;
use std::path::PathBuf;

use proptest::prelude::*;
use sim_kernel::SimTime;
use spotverse::{
    parse_trace_jsonl, replay_lines, replay_str, ReplayCursor, TimeWindow, TraceLine,
};

fn golden(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("golden").join(name);
    fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {} ({e}); run scripts/regen-golden.sh", path.display()))
}

/// Feeds `doc` through a cursor in the chunks delimited by `splits`
/// (byte offsets, ascending, deduped by the caller).
fn replay_chunked(doc: &str, splits: &[usize], window: TimeWindow) -> spotverse::ReplayState {
    let mut cursor = ReplayCursor::new(window);
    let mut prev = 0usize;
    for &split in splits {
        cursor.feed(&doc[prev..split]).expect("chunk feeds cleanly");
        prev = split;
    }
    cursor.feed(&doc[prev..]).expect("tail feeds cleanly");
    cursor.finish().expect("trailing line parses")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// One-pass == arbitrary chunk splits, including splits that land
    /// mid-line and mid-string-escape. The region-flap golden covers the
    /// widest event vocabulary (breakers, chaos faults, migrations).
    #[test]
    fn chunked_replay_equals_single_pass(
        raw_splits in proptest::collection::vec(0usize..100_000, 0..8),
    ) {
        let doc = golden("spotverse_genome10_seed2024_region_flap.jsonl");
        let whole = replay_str(&doc, TimeWindow::ALL).expect("golden parses");
        // Clamp each draw into range so any u64 vector is a valid split set.
        let mut splits: Vec<usize> = raw_splits
            .iter()
            .map(|s| {
                // Round down to the nearest char boundary (ASCII here, but
                // stay robust).
                let mut i = s % (doc.len() + 1);
                while !doc.is_char_boundary(i) {
                    i -= 1;
                }
                i
            })
            .collect();
        splits.sort_unstable();
        splits.dedup();
        let chunked = replay_chunked(&doc, &splits, TimeWindow::ALL);
        prop_assert_eq!(chunked, whole, "splits {:?}", splits);
    }

    /// Serializing the cursor at any byte offset and resuming from the
    /// snapshot yields the same final views as never stopping.
    #[test]
    fn snapshot_resume_equals_uninterrupted(split_raw in 0usize..100_000) {
        let doc = golden("fleet_ngs3_seed2024_cap1.jsonl");
        let whole = replay_str(&doc, TimeWindow::ALL).expect("golden parses");
        let mut split = split_raw % (doc.len() + 1);
        while !doc.is_char_boundary(split) {
            split -= 1;
        }
        let mut cursor = ReplayCursor::default();
        cursor.feed(&doc[..split]).expect("head feeds cleanly");
        let snapshot = cursor.snapshot();
        drop(cursor);
        let mut resumed = ReplayCursor::resume(&snapshot).expect("snapshot parses back");
        resumed.feed(&doc[split..]).expect("tail feeds cleanly");
        prop_assert_eq!(resumed.finish().expect("finishes"), whole, "split at {}", split);
    }
}

/// A snapshot round-trips bit-for-bit: resume → snapshot again is the
/// identical string, so snapshots can themselves be archived and diffed.
#[test]
fn snapshot_is_stable_under_round_trip() {
    let doc = golden("spotverse_ngs3_seed2024_t6.jsonl");
    let mut cursor = ReplayCursor::new(TimeWindow {
        from: Some(SimTime::from_secs(86_400)),
        until: None,
    });
    cursor.set_default_cell(Some("t6".to_owned()));
    cursor.feed(&doc[..doc.len() / 2]).expect("head feeds");
    let snap = cursor.snapshot();
    let resumed = ReplayCursor::resume(&snap).expect("snapshot parses");
    assert_eq!(resumed, cursor);
    assert_eq!(resumed.snapshot(), snap);
}

/// The time-windowed replay equals pre-filtering the parsed records by
/// hand: `--from/--until` are pure record filters, nothing stateful.
#[test]
fn windowed_replay_equals_prefiltered_records() {
    let doc = golden("spotverse_genome10_seed2024_region_flap.jsonl");
    let lines = parse_trace_jsonl(&doc).expect("golden parses");
    let times: Vec<u64> = lines
        .iter()
        .filter_map(|l| match l {
            TraceLine::Record { record, .. } => Some(record.at.as_secs()),
            TraceLine::Truncated { .. } => None,
        })
        .collect();
    let mid = times[times.len() / 2];
    let window = TimeWindow {
        from: Some(SimTime::from_secs(times[1])),
        until: Some(SimTime::from_secs(mid)),
    };
    let windowed = replay_str(&doc, window).expect("windowed replay parses");
    let filtered: Vec<TraceLine> = lines
        .into_iter()
        .filter(|l| match l {
            TraceLine::Record { record, .. } => window.contains(record.at),
            TraceLine::Truncated { .. } => true,
        })
        .collect();
    assert_eq!(windowed, replay_lines(&filtered, TimeWindow::ALL));
}

/// Cursor equivalence holds for merged multi-cell documents too: cell
/// routing is part of the fold, not of the chunking.
#[test]
fn chunked_replay_routes_cells_identically() {
    // Build a merged two-cell document from two goldens.
    let a = golden("spotverse_ngs3_seed2024_t4.jsonl");
    let b = golden("spotverse_ngs3_seed2024_t5.jsonl");
    let mut merged = String::new();
    for (cell, doc) in [("t4", &a), ("t5", &b)] {
        for line in doc.lines() {
            merged.push_str(&format!("{{\"cell\":\"{cell}\",{}", &line[1..]));
            merged.push('\n');
        }
    }
    let whole = replay_str(&merged, TimeWindow::ALL).expect("merged parses");
    assert_eq!(whole.cells.len(), 2);
    for splits in [vec![1usize], vec![merged.len() / 3, merged.len() / 2]] {
        assert_eq!(replay_chunked(&merged, &splits, TimeWindow::ALL), whole);
    }
}
