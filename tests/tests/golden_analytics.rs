//! Golden analytics snapshots: `spotverse analyse` output for the
//! committed golden traces (and a deterministic `sweep_shard_chaos`
//! orchestrated run) is itself committed under `tests/golden/analytics/`
//! and must not drift. The snapshots share `render_analysis` with the
//! CLI, so `scripts/verify.sh` can diff live CLI output against these
//! files byte-for-byte.
//!
//! Bless intentional changes with `scripts/regen-golden.sh` (or
//! `UPDATE_GOLDEN=1 cargo test -p spotverse-integration --test
//! golden_analytics`).

use std::fs;
use std::path::PathBuf;

use bio_workloads::WorkloadKind;
use spotverse::{
    append_trace_jsonl, merged_trace_jsonl, render_analysis, replay_str, run_matrix_orchestrated,
    MarketCache, OrchestratorConfig, SweepCell, TimeWindow, TraceConfig,
};
use spotverse_integration::{spotverse_strategy, traced_config};

fn golden_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("golden")
}

fn check_snapshot(name: &str, actual: &str) {
    let path = golden_root().join("analytics").join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::create_dir_all(path.parent().unwrap()).expect("create tests/golden/analytics");
        fs::write(&path, actual).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing analytics snapshot {} ({e}); generate it with scripts/regen-golden.sh",
            path.display()
        )
    });
    if actual != expected {
        let line = actual
            .lines()
            .zip(expected.lines())
            .position(|(a, b)| a != b)
            .map_or_else(
                || actual.lines().count().min(expected.lines().count()) + 1,
                |i| i + 1,
            );
        panic!(
            "analytics snapshot drift in {name} at line {line};\n  actual: {}\n  golden: {}\n\
             if the change is intentional, re-bless with scripts/regen-golden.sh",
            actual.lines().nth(line - 1).unwrap_or("<end>"),
            expected.lines().nth(line - 1).unwrap_or("<end>"),
        );
    }
}

fn analyse_golden_trace(trace_name: &str) -> String {
    let path = golden_root().join(trace_name);
    let doc = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden trace {} ({e}); run scripts/regen-golden.sh", path.display())
    });
    let state = replay_str(&doc, TimeWindow::ALL).expect("golden trace parses");
    render_analysis(&state)
}

#[test]
fn experiment_golden_analytics_match() {
    for trace in [
        "spotverse_ngs3_seed2024_t4.jsonl",
        "spotverse_ngs3_seed2024_t5.jsonl",
        "spotverse_ngs3_seed2024_t6.jsonl",
        "spotverse_genome10_seed2024_region_flap.jsonl",
    ] {
        let snapshot = trace.replace(".jsonl", ".txt");
        check_snapshot(&snapshot, &analyse_golden_trace(trace));
    }
}

#[test]
fn fleet_golden_analytics_match() {
    check_snapshot("fleet_ngs3_seed2024_cap1.txt", &analyse_golden_trace("fleet_ngs3_seed2024_cap1.jsonl"));
}

/// The `sweep_shard_chaos` orchestrated run: per-cell traces merged with
/// the orchestrator's own shard trace (under the `orchestrator` cell
/// key), replayed into one analysis covering the shard view alongside
/// the run views. Deterministic, so snapshot-stable.
#[test]
fn sweep_shard_chaos_analytics_match() {
    let cells: Vec<SweepCell> = (0..4)
        .map(|i| {
            let config = traced_config(WorkloadKind::NgsPreprocessing, 2, 90 + i as u64);
            SweepCell::new(format!("cell-{i}"), "spotverse", config)
        })
        .collect();
    let cache = MarketCache::new();
    let config = OrchestratorConfig {
        seed: 3,
        shard_size: 2,
        max_attempts: 2,
        chaos: Some(chaos::sweep_shard_chaos()),
        trace: TraceConfig::enabled(),
        ..OrchestratorConfig::default()
    };
    let report = run_matrix_orchestrated(&cells, &config, &cache, |_| spotverse_strategy());
    let mut doc = merged_trace_jsonl(&report.outcomes);
    append_trace_jsonl(
        &mut doc,
        Some("orchestrator"),
        report.trace.as_ref().expect("tracing enabled"),
    );
    let state = replay_str(&doc, TimeWindow::ALL).expect("orchestrated trace parses");
    check_snapshot("sweep_shard_chaos.txt", &render_analysis(&state));
}
