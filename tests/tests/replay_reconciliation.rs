//! Replay-vs-live reconciliation: every `analyse` view rebuilt from the
//! trace alone must equal the corresponding figures the live run
//! reported — billed cost, makespan, launches, interruptions, breaker
//! trips, staleness, checkpoint overhead, fleet occupancy counts, and
//! orchestration shard accounting. The trace is the system of record;
//! any divergence here means a figure exists that replay cannot
//! reproduce.

use bio_workloads::{paper_fleet, WorkloadKind};
use cloud_market::InstanceType;
use proptest::prelude::*;
use sim_kernel::{SimDuration, SimRng};
use spotverse::replay::strategy_distributions;
use spotverse::{
    merged_trace_jsonl, replay_str, run_fleet, run_matrix, run_matrix_orchestrated,
    trace_to_jsonl, CellState, ExperimentReport, FleetConfig, MarketCache, OrchestratorConfig,
    SweepCell, TimeWindow, TraceConfig,
};
use spotverse_integration::{spotverse_strategy, spotverse_with_threshold, traced_config};

fn replay_single(doc: &str) -> CellState {
    let state = replay_str(doc, TimeWindow::ALL).expect("trace parses");
    assert_eq!(state.cells.len(), 1, "single-run trace folds into one cell");
    state.cells[0].1.clone()
}

fn assert_reconciles(cell: &CellState, report: &ExperimentReport, label: &str) {
    let s = &cell.summary;
    assert_eq!(s.strategy.as_deref(), Some(report.strategy.as_str()), "{label}: strategy");
    assert_eq!(s.workloads, Some(report.workloads), "{label}: fleet size");
    assert_eq!(s.completed, report.completed, "{label}: completions");
    if report.completed > 0 {
        assert_eq!(
            s.makespan_secs(),
            Some(report.makespan.as_secs()),
            "{label}: makespan from trace equals the report's"
        );
    }

    // Cost ledger == billed instance cost, per region and in total.
    let ledger_launches: u64 = cell
        .ledger
        .active()
        .map(|(_, l)| l.spot_launches + l.on_demand_launches)
        .sum();
    assert_eq!(
        ledger_launches,
        report.launches_by_region.values().sum::<u64>(),
        "{label}: total launches"
    );
    for (region, l) in cell.ledger.active() {
        assert_eq!(
            l.spot_launches + l.on_demand_launches,
            report.launches_by_region.get(&region).copied().unwrap_or(0),
            "{label}: launches in {region}"
        );
        assert_eq!(
            l.interruptions,
            report.interruptions_by_region.get(&region).copied().unwrap_or(0),
            "{label}: interruptions in {region}"
        );
    }
    let intr: u64 = cell.ledger.active().map(|(_, l)| l.interruptions).sum();
    assert_eq!(intr, report.interruptions, "{label}: interruptions");
    if report.completed == report.workloads {
        let billed = (report.cost.spot_instances + report.cost.on_demand_instances).amount();
        assert!(
            (cell.ledger.billed_total() - billed).abs() < 1e-6,
            "{label}: cost ledger ({}) equals billed instance cost ({billed})",
            cell.ledger.billed_total(),
        );
    }

    // Breaker timeline == trip counts.
    assert_eq!(
        cell.breakers.total_trips(),
        report.resilience.breaker_trips,
        "{label}: breaker trips"
    );

    // Freshness and degradation counters.
    let rs = &cell.resilience;
    assert_eq!(rs.stale_serves, report.resilience.freshness.stale_serves, "{label}: stale serves");
    assert_eq!(
        rs.degraded_seconds,
        report.resilience.freshness.degraded_time.as_secs(),
        "{label}: degraded seconds"
    );

    // Checkpoint overhead accounting.
    assert_eq!(cell.checkpoints.saves, report.checkpoints.writes, "{label}: checkpoint writes");
    assert_eq!(cell.checkpoints.torn, report.checkpoints.torn_writes, "{label}: torn writes");
    assert_eq!(
        cell.checkpoints.scratch_restores,
        report.checkpoints.scratch_restarts,
        "{label}: scratch restarts"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For arbitrary seeds × fleet sizes × chaos scenarios, the replayed
    /// views equal the live `ExperimentReport` figures.
    #[test]
    fn replay_views_equal_live_experiment_report(
        seed in 0u64..500,
        n in 2usize..5,
        scenario_idx in 0usize..9,
    ) {
        let lib = chaos::library();
        let scenario = if scenario_idx == 0 {
            None
        } else {
            Some(lib[(scenario_idx - 1) % lib.len()].clone())
        };
        let label = scenario.as_ref().map_or("fault-free", |s| s.name()).to_owned();
        let mut config = traced_config(WorkloadKind::NgsPreprocessing, n, seed);
        config.chaos = scenario;
        let report = spotverse::run_experiment(config, spotverse_strategy());
        let doc = trace_to_jsonl(report.trace.as_ref().expect("tracing enabled"));
        let cell = replay_single(&doc);
        assert_reconciles(&cell, &report, &format!("seed {seed} n {n} {label}"));
    }
}

/// Fleet traces reconcile too: occupancy counts equal the fleet report's
/// workload accounting (arrivals, expirations, capacity deferrals), on
/// top of the experiment-level figures of the aggregate report.
#[test]
fn replay_views_equal_live_fleet_report() {
    for (seed, capacity, runtime_h) in [(11u64, Some(1u32), 720u64), (12, None, 2)] {
        let rng = SimRng::seed_from_u64(seed);
        let specs = paper_fleet(WorkloadKind::NgsPreprocessing, 4, &rng);
        let mut config = FleetConfig::staggered(
            seed,
            InstanceType::M5Xlarge,
            specs,
            SimDuration::from_hours(2),
        );
        config.region_capacity = capacity;
        config.max_runtime = SimDuration::from_hours(runtime_h);
        config.trace = TraceConfig::enabled();
        let report = run_fleet(config, spotverse_strategy());
        let doc = trace_to_jsonl(report.aggregate.trace.as_ref().expect("tracing enabled"));
        let cell = replay_single(&doc);
        let label = format!("fleet seed {seed}");

        assert_eq!(
            cell.occupancy.arrived as usize, report.aggregate.workloads,
            "{label}: occupancy arrivals equal the fleet size"
        );
        assert_eq!(
            cell.occupancy.late_arrivals, 3,
            "{label}: every workload after the first arrives in a staggered batch"
        );
        assert_eq!(
            cell.occupancy.expired as usize, report.expired,
            "{label}: occupancy expirations equal the report's"
        );
        assert_eq!(
            cell.occupancy.deferred, report.capacity_deferrals,
            "{label}: capacity deferrals"
        );
        assert_eq!(cell.summary.completed, report.aggregate.completed, "{label}: completions");
        assert!(cell.occupancy.peak >= 1, "{label}: something ran");
        if let Some(cap) = capacity {
            // Peak concurrency is bounded by cap × regions-in-use.
            let regions_used = cell.ledger.active().count() as i64;
            assert!(
                cell.occupancy.peak <= i64::from(cap) * regions_used,
                "{label}: peak {} exceeds cap {cap} × {regions_used} regions",
                cell.occupancy.peak,
            );
        }
        assert_reconciles(&cell, &report.aggregate, &label);
    }
}

/// Merged sweep traces reconcile cell by cell, and the distribution layer
/// groups them faithfully: one sample per cell, costs equal to each
/// cell's own report.
#[test]
fn replay_reconciles_merged_sweep_and_distributions() {
    let thresholds = [4u8, 6];
    let seeds = [200u64, 201];
    let cells: Vec<SweepCell> = thresholds
        .iter()
        .flat_map(|&t| {
            seeds.iter().map(move |&seed| {
                let config = traced_config(WorkloadKind::NgsPreprocessing, 3, seed);
                SweepCell::new(format!("t{t}/s{seed}"), format!("spotverse-t{t}"), config)
            })
        })
        .collect();
    let cache = MarketCache::new();
    let outcomes = run_matrix(&cells, 2, &cache, |cell| {
        let t = if cell.label.starts_with("t4") { 4 } else { 6 };
        spotverse_with_threshold(t)
    });
    let merged = merged_trace_jsonl(&outcomes);
    let state = replay_str(&merged, TimeWindow::ALL).expect("merged trace parses");
    assert_eq!(state.cells.len(), cells.len(), "one folded cell per sweep cell");
    for ((key, cell), outcome) in state.cells.iter().zip(&outcomes) {
        assert_eq!(key, &outcome.label);
        let report = outcome.report().expect("cell succeeded");
        assert_reconciles(cell, report, key);
    }
    let dists = strategy_distributions(&state);
    assert_eq!(dists.len(), 1, "every cell ran the same strategy display name");
    assert_eq!(dists[0].cells, cells.len());
    let cost = dists[0].cost.as_ref().expect("cost distribution present");
    assert_eq!(cost.count, cells.len());
    assert!(cost.min <= cost.p50 && cost.p50 <= cost.p90);
    assert!(cost.p90 <= cost.p99 && cost.p99 <= cost.max);
}

/// The orchestrator's shard trace reconciles with `OrchestrationStats`:
/// dispatches, re-drives, lease expiries, dead letters, and duplicate
/// completions all match, fault-free and under `sweep_shard_chaos`.
#[test]
fn replay_shard_view_equals_orchestration_stats() {
    let cells: Vec<SweepCell> = (0..4)
        .map(|i| {
            let config = traced_config(WorkloadKind::NgsPreprocessing, 2, 400 + i as u64);
            SweepCell::new(format!("cell-{i}"), "spotverse", config)
        })
        .collect();
    let cache = MarketCache::new();
    for (seed, scenario) in [(1u64, None), (3, Some(chaos::sweep_shard_chaos()))] {
        let config = OrchestratorConfig {
            seed,
            shard_size: 2,
            max_attempts: 2,
            chaos: scenario.clone(),
            trace: TraceConfig::enabled(),
            ..OrchestratorConfig::default()
        };
        let report = run_matrix_orchestrated(&cells, &config, &cache, |_| spotverse_strategy());
        let doc = trace_to_jsonl(report.trace.as_ref().expect("tracing enabled"));
        let cell = replay_single(&doc);
        let label = scenario.as_ref().map_or("fault-free", |s| s.name());
        let sh = &cell.shards;
        assert_eq!(sh.dispatches, report.stats.dispatches, "{label}: dispatches");
        assert_eq!(sh.redrives, report.stats.redrives, "{label}: redrives");
        assert_eq!(sh.lease_expiries, report.stats.lease_expiries, "{label}: lease expiries");
        assert_eq!(
            sh.dead_lettered as usize, report.stats.dead_lettered_shards,
            "{label}: dead letters"
        );
        assert_eq!(sh.duplicates, report.stats.duplicate_executions, "{label}: duplicates");
        assert_eq!(
            sh.completions as usize,
            report.stats.completed_shards + sh.duplicates as usize,
            "{label}: completions = completed shards + idempotent re-confirmations"
        );
    }
}
