//! Trace-layer invariants and reconciliation: the decision trace must be
//! internally consistent (contiguous sequence numbers, monotone sim-time,
//! interruptions always answered by a migration decision), purely
//! observational (tracing on/off changes no report field), and its
//! derived totals must agree exactly with the counters the report keeps
//! independently.

use bio_workloads::WorkloadKind;
use proptest::prelude::*;
use spotverse::{
    merged_trace_jsonl, run_experiment, run_matrix, BreakerState, DecisionKind, MarketCache,
    RunTrace, SweepCell, TraceEvent,
};
use spotverse_integration::{fleet_config, run_with, spotverse_strategy, traced_config};

use std::sync::Arc;

fn traced_run(
    kind: WorkloadKind,
    n: usize,
    seed: u64,
    scenario: Option<chaos::ChaosScenario>,
) -> (RunTrace, spotverse::ExperimentReport) {
    let mut config = traced_config(kind, n, seed);
    config.chaos = scenario;
    let mut report = run_experiment(config, spotverse_strategy());
    let trace = report.trace.take().expect("tracing was enabled");
    (trace, report)
}

/// Sequence numbers are contiguous from zero and sim-time never runs
/// backwards, under every shipped chaos scenario.
#[test]
fn trace_is_contiguous_and_time_monotone() {
    let scenarios = std::iter::once(None).chain(chaos::library().into_iter().map(Some));
    for scenario in scenarios {
        let label = scenario.as_ref().map_or("fault-free", |s| s.name()).to_owned();
        let (trace, _) = traced_run(WorkloadKind::NgsPreprocessing, 4, 7, scenario);
        assert_eq!(trace.dropped, 0, "{label}: nothing truncated at this size");
        for (i, record) in trace.events.iter().enumerate() {
            assert_eq!(record.seq, i as u64, "{label}: seq contiguous from 0");
        }
        for pair in trace.events.windows(2) {
            assert!(pair[0].at <= pair[1].at, "{label}: sim-time must be monotone");
        }
        assert!(matches!(trace.events.first().unwrap().event, TraceEvent::RunStarted { .. }));
        assert!(matches!(trace.events.last().unwrap().event, TraceEvent::RunEnded { .. }));
    }
}

/// Every interruption is answered: the next trace event that concerns the
/// interrupted workload's placement is a migration decision, never a
/// bare relaunch or completion.
#[test]
fn every_interruption_is_followed_by_a_migration_decision() {
    let scenarios = std::iter::once(None).chain(chaos::library().into_iter().map(Some));
    for scenario in scenarios {
        let label = scenario.as_ref().map_or("fault-free", |s| s.name()).to_owned();
        let (trace, _) = traced_run(WorkloadKind::GenomeReconstruction, 6, 11, scenario);
        for (i, record) in trace.events.iter().enumerate() {
            let TraceEvent::Interrupted { workload, .. } = record.event else {
                continue;
            };
            let next = trace.events[i + 1..].iter().find(|r| match &r.event {
                TraceEvent::Decision { workload: w, .. } => *w == Some(workload),
                TraceEvent::Launched { workload: w, .. }
                | TraceEvent::Completed { workload: w, .. } => *w == workload,
                _ => false,
            });
            match next {
                Some(r) => assert!(
                    matches!(
                        r.event,
                        TraceEvent::Decision { kind: DecisionKind::Migration, .. }
                    ),
                    "{label}: interruption of workload {workload} at seq {} answered by {:?}",
                    record.seq,
                    r.event,
                ),
                None => panic!(
                    "{label}: interruption of workload {workload} at seq {} never answered",
                    record.seq
                ),
            }
        }
    }
}

/// Tracing is purely observational under faults too: a traced run and an
/// untraced run of the same faulted configuration produce identical
/// reports once the trace itself is set aside.
#[test]
fn tracing_toggle_changes_no_report_field_under_chaos() {
    for scenario in chaos::library() {
        let name = scenario.name().to_owned();
        let base = fleet_config(WorkloadKind::NgsPreprocessing, 5, 7);
        let market = Arc::new(cloud_market::SpotMarket::new(base.market));
        let plain = run_with(&market, &base, Some(scenario.clone()), spotverse_strategy());
        let mut traced_cfg = base;
        traced_cfg.trace = spotverse::TraceConfig::enabled();
        traced_cfg.chaos = Some(scenario);
        let mut traced =
            spotverse::run_experiment_on(market, traced_cfg, spotverse_strategy());
        assert!(traced.trace.take().is_some(), "{name}: trace recorded");
        assert_eq!(plain, traced, "{name}: tracing must not perturb the run");
    }
}

/// The jobs-invariance contract extends to the merged sweep trace: the
/// canonical JSONL document is byte-identical for any worker count.
#[test]
fn merged_sweep_trace_is_jobs_invariant() {
    let scenarios: Vec<Option<chaos::ChaosScenario>> = std::iter::once(None)
        .chain(chaos::library().into_iter().map(Some))
        .collect();
    let cells: Vec<SweepCell> = scenarios
        .iter()
        .enumerate()
        .map(|(i, scenario)| {
            let mut config = traced_config(WorkloadKind::NgsPreprocessing, 3, 404);
            config.chaos = scenario.clone();
            SweepCell::new(format!("cell-{i}"), "spotverse", config)
        })
        .collect();
    let run = |jobs: usize| {
        let cache = MarketCache::new();
        let outcomes = run_matrix(&cells, jobs, &cache, |_| spotverse_strategy());
        merged_trace_jsonl(&outcomes)
    };
    let serial = run(1);
    assert!(!serial.is_empty());
    assert!(serial.starts_with("{\"cell\":\"cell-0\""));
    for jobs in [2, 4] {
        assert_eq!(run(jobs), serial, "jobs={jobs} must merge byte-identically");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Trace-derived totals reconcile exactly with the report's own
    /// counters — launches, interruptions, checkpoint writes/tears,
    /// breaker trips, staleness telemetry, degraded hours, and (for fully
    /// completed runs) the billed instance cost.
    #[test]
    fn trace_totals_reconcile_with_report(
        seed in 0u64..500,
        n in 2usize..5,
        scenario_idx in 0usize..8,
    ) {
        let lib = chaos::library();
        let scenario = if scenario_idx == 0 {
            None
        } else {
            Some(lib[(scenario_idx - 1) % lib.len()].clone())
        };
        let (trace, report) = traced_run(WorkloadKind::NgsPreprocessing, n, seed, scenario);
        prop_assert_eq!(trace.dropped, 0, "counts below assume an untruncated trace");

        let count = |pred: fn(&TraceEvent) -> bool| trace.count_matching(pred);
        prop_assert_eq!(
            count(|e| matches!(e, TraceEvent::Interrupted { .. })),
            report.interruptions
        );
        prop_assert_eq!(
            count(|e| matches!(e, TraceEvent::Launched { .. })),
            report.launches_by_region.values().sum::<u64>()
        );
        prop_assert_eq!(
            count(|e| matches!(e, TraceEvent::Completed { .. })) as usize,
            report.completed
        );
        prop_assert_eq!(
            count(|e| matches!(e, TraceEvent::Breaker { to: BreakerState::Open, .. })),
            report.resilience.breaker_trips
        );
        prop_assert_eq!(
            count(|e| matches!(e, TraceEvent::StaleServe { .. })),
            report.resilience.freshness.stale_serves
        );
        prop_assert_eq!(
            count(|e| matches!(e, TraceEvent::CheckpointSave { .. })),
            report.checkpoints.writes
        );
        prop_assert_eq!(
            count(|e| matches!(e, TraceEvent::CheckpointTorn { .. })),
            report.checkpoints.torn_writes
        );
        let degraded_secs: u64 = trace
            .events
            .iter()
            .filter_map(|r| match r.event {
                TraceEvent::DegradedInterval { duration } => Some(duration.as_secs()),
                _ => None,
            })
            .sum();
        prop_assert_eq!(
            degraded_secs,
            report.resilience.freshness.degraded_time.as_secs()
        );

        // The aggregated stats attached to the trace agree with a recount.
        prop_assert_eq!(trace.stats.interruptions, report.interruptions);
        prop_assert_eq!(trace.stats.checkpoint_saves, report.checkpoints.writes);
        prop_assert_eq!(trace.stats.breaker_transitions,
            count(|e| matches!(e, TraceEvent::Breaker { .. })));

        // For a fully completed run every launched instance was billed at
        // an Interrupted or Completed event, so the trace's billed total
        // is the report's instance cost.
        if report.completed == report.workloads {
            let billed: f64 = trace
                .events
                .iter()
                .filter_map(|r| match r.event {
                    TraceEvent::Interrupted { billed, .. }
                    | TraceEvent::Completed { billed, .. } => Some(billed),
                    _ => None,
                })
                .sum();
            let instances = report.cost.spot_instances.amount()
                + report.cost.on_demand_instances.amount();
            prop_assert!(
                (billed - instances).abs() <= 1e-6 * instances.max(1.0),
                "billed {} != instance cost {}", billed, instances
            );
        }
    }
}
