//! Golden-trace regression suite: paper-shaped SpotVerse runs at a fixed
//! seed must replay to byte-identical canonical JSONL, committed under
//! `tests/golden/`. Any drift — a reordered event, a changed field, a
//! float formatted differently — fails the suite.
//!
//! To bless an intentional change, regenerate with
//! `scripts/regen-golden.sh` (or `UPDATE_GOLDEN=1 cargo test -p
//! spotverse-integration --test golden_traces`) and review the diff.

use std::fs;
use std::path::PathBuf;

use bio_workloads::{paper_fleet, WorkloadKind};
use cloud_market::InstanceType;
use sim_kernel::{SimDuration, SimRng};
use spotverse::{run_experiment, run_fleet, trace_to_jsonl, FleetConfig, TraceConfig};
use spotverse_integration::{spotverse_with_threshold, traced_config};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("golden")
        .join(name)
}

/// The canonical trace of the paper-shaped scenario: an NGS shard fleet
/// of 3 at seed 2024 under SpotVerse at one of the Table 3 threshold
/// tiers.
fn trace_at_threshold(threshold: u8) -> String {
    let config = traced_config(WorkloadKind::NgsPreprocessing, 3, 2024);
    let report = run_experiment(config, spotverse_with_threshold(threshold));
    trace_to_jsonl(report.trace.as_ref().expect("tracing was enabled"))
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::create_dir_all(path.parent().unwrap()).expect("create tests/golden");
        fs::write(&path, actual).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden trace {} ({e}); generate it with scripts/regen-golden.sh",
            path.display()
        )
    });
    if actual != expected {
        let line = actual
            .lines()
            .zip(expected.lines())
            .position(|(a, b)| a != b)
            .map_or_else(
                || actual.lines().count().min(expected.lines().count()) + 1,
                |i| i + 1,
            );
        panic!(
            "golden trace drift in {name} at line {line} \
             (actual {} lines, golden {} lines);\n  actual: {}\n  golden: {}\n\
             if the change is intentional, re-bless with scripts/regen-golden.sh",
            actual.lines().count(),
            expected.lines().count(),
            actual.lines().nth(line - 1).unwrap_or("<end of trace>"),
            expected.lines().nth(line - 1).unwrap_or("<end of golden>"),
        );
    }
}

#[test]
fn spotverse_threshold_6_matches_golden() {
    check_golden("spotverse_ngs3_seed2024_t6.jsonl", &trace_at_threshold(6));
}

#[test]
fn spotverse_threshold_5_matches_golden() {
    check_golden("spotverse_ngs3_seed2024_t5.jsonl", &trace_at_threshold(5));
}

#[test]
fn spotverse_threshold_4_matches_golden() {
    check_golden("spotverse_ngs3_seed2024_t4.jsonl", &trace_at_threshold(4));
}

/// A faulted golden: the `region_flap` scenario on a fleet big enough to
/// strike the breaker exercises the breaker and chaos-fault event
/// families the fault-free tiers never emit.
#[test]
fn spotverse_region_flap_matches_golden() {
    let mut config = traced_config(WorkloadKind::GenomeReconstruction, 10, 2024);
    config.chaos = Some(chaos::region_flap());
    let report = run_experiment(config, spotverse_with_threshold(6));
    let jsonl = trace_to_jsonl(report.trace.as_ref().expect("tracing was enabled"));
    assert!(jsonl.contains("\"event\":\"breaker\""), "flap golden must cover breaker events");
    assert!(jsonl.contains("\"event\":\"chaos_fault\""), "flap golden must cover chaos faults");
    check_golden("spotverse_genome10_seed2024_region_flap.jsonl", &jsonl);
}

/// The fleet golden: three NGS workloads arriving two hours apart at seed
/// 2024 under a per-region concurrency cap of one. Covers the fleet-only
/// event families (`workloads_arrived`, and `capacity_deferred` whenever
/// the cap bites) plus workload-id-tagged decisions the classic goldens
/// never emit.
#[test]
fn fleet_staggered_capped_matches_golden() {
    let rng = SimRng::seed_from_u64(2024);
    let specs = paper_fleet(WorkloadKind::NgsPreprocessing, 3, &rng);
    let mut config = FleetConfig::staggered(
        2024,
        InstanceType::M5Xlarge,
        specs,
        SimDuration::from_hours(2),
    );
    config.region_capacity = Some(1);
    config.trace = TraceConfig::enabled();
    let report = run_fleet(config, spotverse_with_threshold(6));
    let jsonl = trace_to_jsonl(report.aggregate.trace.as_ref().expect("tracing was enabled"));
    assert!(
        jsonl.contains("\"event\":\"workloads_arrived\""),
        "fleet golden must cover staggered arrivals"
    );
    check_golden("fleet_ngs3_seed2024_cap1.jsonl", &jsonl);
}

/// The replay property the goldens rest on: two independent runs of the
/// same configuration serialize to byte-identical JSONL.
#[test]
fn same_seed_replays_byte_identical() {
    assert_eq!(
        trace_at_threshold(6),
        trace_at_threshold(6),
        "same seed must replay to byte-identical canonical JSONL"
    );
}
