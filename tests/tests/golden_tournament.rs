//! Golden tournament leaderboard: the committed snapshot under
//! `tests/golden/tournament/` pins `spotverse tournament` output
//! byte-for-byte. The snapshot is produced through the CLI's own entry
//! point, so `scripts/verify.sh` can diff live CLI output against the
//! same file — the leaderboard, per-regime win matrices, and chaos
//! labels are all golden-gated together.
//!
//! Bless intentional changes with `scripts/regen-golden.sh` (or
//! `UPDATE_GOLDEN=1 cargo test -p spotverse-integration --test
//! golden_tournament`).

use std::fs;
use std::path::PathBuf;

/// The exact argv `scripts/verify.sh` replays against the snapshot.
const GOLDEN_ARGS: [&str; 9] = [
    "tournament",
    "--instances",
    "2",
    "--workload",
    "ngs",
    "--seeds",
    "1",
    "--chaos",
    "regime",
];

fn snapshot_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("golden")
        .join("tournament")
        .join("leaderboard.txt")
}

#[test]
fn tournament_leaderboard_matches_snapshot() {
    let actual = spotverse_cli::run(GOLDEN_ARGS).expect("golden tournament runs");
    let path = snapshot_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::create_dir_all(path.parent().unwrap()).expect("create tests/golden/tournament");
        fs::write(&path, &actual).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing tournament snapshot {} ({e}); generate it with scripts/regen-golden.sh",
            path.display()
        )
    });
    if actual != expected {
        let line = actual
            .lines()
            .zip(expected.lines())
            .position(|(a, b)| a != b)
            .map_or_else(
                || actual.lines().count().min(expected.lines().count()) + 1,
                |i| i + 1,
            );
        panic!(
            "tournament leaderboard drift at line {line};\n  actual: {}\n  golden: {}\n\
             if the change is intentional, re-bless with scripts/regen-golden.sh",
            actual.lines().nth(line - 1).unwrap_or("<end>"),
            expected.lines().nth(line - 1).unwrap_or("<end>"),
        );
    }
}

/// The snapshot itself must describe a tournament that did real work:
/// every regime present, at least one completion per regime block, and
/// no failed cells.
#[test]
fn golden_tournament_completes_work_in_every_regime() {
    let out = spotverse_cli::run(GOLDEN_ARGS).expect("golden tournament runs");
    assert!(!out.contains("failed cells"), "golden tournament has failed cells:\n{out}");
    for regime in cloud_market::MarketRegime::ALL {
        let block_start = out
            .find(&format!("regime {}", regime.name()))
            .unwrap_or_else(|| panic!("regime {regime} missing from leaderboard:\n{out}"));
        let block = &out[block_start..];
        let block = &block[..block[7..].find("regime ").map_or(block.len(), |i| i + 7)];
        assert!(
            block.lines().any(|l| l.contains("completed") && !l.contains("completed 0/")),
            "regime {regime} completed nothing:\n{block}"
        );
    }
}
