//! Read-side parser round-trip: the committed golden traces must parse
//! into typed records and re-serialize byte-identically, corrupt input
//! must fail with a structured error naming the line (never a panic),
//! and `TraceStats` rebuilt from parsed merged multi-cell JSONL must
//! agree with the write-side aggregates — including the billed dollars
//! of deadline-expired workloads, which the write side used to drop.

use std::fs;
use std::path::PathBuf;

use bio_workloads::{paper_fleet, WorkloadKind};
use cloud_market::InstanceType;
use sim_kernel::{SimDuration, SimRng, SimTime};
use spotverse::{
    parse_trace_jsonl, run_fleet, run_matrix, trace_lines_to_jsonl, trace_to_jsonl, FleetConfig,
    MarketCache, SweepCell, TraceConfig, TraceEvent, TraceLine, TraceRecord, TraceStats,
};
use spotverse_integration::{spotverse_strategy, traced_config};

const GOLDENS: [&str; 5] = [
    "spotverse_ngs3_seed2024_t4.jsonl",
    "spotverse_ngs3_seed2024_t5.jsonl",
    "spotverse_ngs3_seed2024_t6.jsonl",
    "spotverse_genome10_seed2024_region_flap.jsonl",
    "fleet_ngs3_seed2024_cap1.jsonl",
];

fn golden(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("golden").join(name);
    fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {} ({e}); run scripts/regen-golden.sh", path.display()))
}

/// Every committed golden parses and re-serializes byte-identically.
#[test]
fn goldens_round_trip_byte_identical() {
    for name in GOLDENS {
        let doc = golden(name);
        let lines = parse_trace_jsonl(&doc)
            .unwrap_or_else(|e| panic!("{name}: golden must parse, got {e}"));
        assert!(!lines.is_empty(), "{name}: golden is non-empty");
        assert_eq!(trace_lines_to_jsonl(&lines), doc, "{name}: round trip must be byte-identical");
    }
}

/// A freshly generated trace (not just the committed bytes) round-trips,
/// and the parsed records equal the in-memory ones the writer saw.
#[test]
fn fresh_trace_round_trips_to_typed_records()  {
    let config = traced_config(WorkloadKind::NgsPreprocessing, 3, 99);
    let report = spotverse::run_experiment(config, spotverse_strategy());
    let trace = report.trace.expect("tracing enabled");
    let doc = trace_to_jsonl(&trace);
    let lines = parse_trace_jsonl(&doc).expect("fresh trace parses");
    let records: Vec<TraceRecord> = lines
        .iter()
        .map(|l| match l {
            TraceLine::Record { cell, record } => {
                assert!(cell.is_none(), "single-run trace has no cell prefix");
                record.clone()
            }
            TraceLine::Truncated { .. } => panic!("untruncated at this size"),
        })
        .collect();
    assert_eq!(records, trace.events, "parse must invert the writer exactly");
    assert_eq!(trace_lines_to_jsonl(&lines), doc);
}

/// Corrupted input fails with the 1-based line number, never a panic.
#[test]
fn corruption_is_rejected_with_line_numbers() {
    let doc = golden("spotverse_ngs3_seed2024_t6.jsonl");
    let n_lines = doc.lines().count();

    // Truncate the final line mid-token.
    let truncated: String = doc[..doc.len() - 20].to_owned();
    let err = parse_trace_jsonl(&truncated).unwrap_err();
    assert_eq!(err.line, n_lines, "truncation detected on the last line");

    // Corrupt one line in the middle: flip a field name.
    let corrupted: String = doc
        .lines()
        .enumerate()
        .map(|(i, l)| if i == 2 { l.replace("\"event\"", "\"evnt\"") } else { l.to_owned() })
        .collect::<Vec<_>>()
        .join("\n");
    let err = parse_trace_jsonl(&corrupted).unwrap_err();
    assert_eq!(err.line, 3);
    assert!(err.to_string().starts_with("trace line 3:"), "{err}");

    // Assorted garbage: none of these may panic.
    for bad in [
        "null",
        "[1,2]",
        "{\"seq\":0}",
        "{\"seq\":0,\"t\":0,\"event\":\"run_ended\",\"completed\":1,\"aborted\":false,\"aborted\":false}",
        "{\"seq\":-1,\"t\":0,\"event\":\"run_ended\",\"completed\":1,\"aborted\":false}",
        "{\"seq\":0,\"t\":0,\"event\":\"launched\",\"workload\":0,\"region\":\"us-east-1\",\"spot\":true,\"instance\":\"j-zz\"}",
        "{\"truncated\":false,\"dropped\":1}",
    ] {
        assert!(
            parse_trace_jsonl(bad).is_err(),
            "`{bad}` must be rejected with an error"
        );
    }
}

fn split_by_cell(lines: &[TraceLine]) -> Vec<(String, Vec<TraceRecord>)> {
    let mut cells: Vec<(String, Vec<TraceRecord>)> = Vec::new();
    for line in lines {
        let TraceLine::Record { cell, record } = line else { continue };
        let key = cell.clone().unwrap_or_default();
        match cells.iter_mut().find(|(k, _)| *k == key) {
            Some((_, records)) => records.push(record.clone()),
            None => cells.push((key, vec![record.clone()])),
        }
    }
    cells
}

/// `TraceStats` rebuilt from parsed merged multi-cell JSONL agrees with
/// the write-side stats of each constituent run — the read side must
/// split by cell and re-anchor at each cell's own `run_started`.
#[test]
fn trace_stats_reconcile_across_merged_cells() {
    let cells: Vec<SweepCell> = (0..3)
        .map(|i| {
            let mut config = traced_config(WorkloadKind::NgsPreprocessing, 3, 300 + i);
            if i == 1 {
                config.chaos = Some(chaos::region_flap());
            }
            SweepCell::new(format!("cell-{i}"), "spotverse", config)
        })
        .collect();
    let cache = MarketCache::new();
    let outcomes = run_matrix(&cells, 2, &cache, |_| spotverse_strategy());
    let merged = spotverse::merged_trace_jsonl(&outcomes);
    let lines = parse_trace_jsonl(&merged).expect("merged trace parses");
    let by_cell = split_by_cell(&lines);
    assert_eq!(by_cell.len(), cells.len(), "every cell present in the merged document");
    for ((key, records), (cell, outcome)) in by_cell.iter().zip(cells.iter().zip(&outcomes)) {
        assert_eq!(key, &cell.label);
        let report = outcome.report().expect("cell succeeded");
        let trace = report.trace.as_ref().expect("tracing enabled");
        assert_eq!(records, &trace.events, "{key}: parsed records equal the originals");
        let rebuilt = TraceStats::rebuild(records);
        let live = TraceStats::from_events(&trace.events, cell.config.start);
        assert_eq!(rebuilt, live, "{key}: read-side stats equal write-side stats");
    }
}

/// The latent write-side gap, now fixed: `billed_total` includes the
/// dollars billed when a deadline-expired workload's instance is forced
/// down, so a fleet that completes nothing still reconciles its spend.
#[test]
fn expired_workload_billing_lands_in_stats() {
    let rng = SimRng::seed_from_u64(77);
    let specs = paper_fleet(WorkloadKind::GenomeReconstruction, 3, &rng);
    let mut config =
        FleetConfig::staggered(77, InstanceType::M5Xlarge, specs, SimDuration::from_hours(1));
    config.max_runtime = SimDuration::from_hours(2); // genome runs need far longer
    config.trace = TraceConfig::enabled();
    let report = run_fleet(config, spotverse_strategy());
    assert!(report.expired > 0, "deadline must bite for this test to mean anything");
    let trace = report.aggregate.trace.as_ref().expect("tracing enabled");

    let mut expired_billed = 0.0f64;
    let mut event_billed = 0.0f64;
    for record in &trace.events {
        match &record.event {
            TraceEvent::Interrupted { billed, .. } | TraceEvent::Completed { billed, .. } => {
                event_billed += billed;
            }
            TraceEvent::WorkloadExpired { billed: Some(billed), .. } => {
                expired_billed += billed;
                event_billed += billed;
            }
            _ => {}
        }
    }
    assert!(expired_billed > 0.0, "an expired workload had a running instance billed");

    let stats = TraceStats::from_events(&trace.events, SimTime::from_days(1));
    assert!(
        (stats.billed_total - event_billed).abs() < 1e-9,
        "billed_total ({}) must include expired-workload billing ({event_billed})",
        stats.billed_total,
    );

    // And the read side agrees after a JSONL round trip.
    let doc = trace_to_jsonl(trace);
    let lines = parse_trace_jsonl(&doc).expect("fleet trace parses");
    let records: Vec<TraceRecord> = lines
        .iter()
        .filter_map(|l| match l {
            TraceLine::Record { record, .. } => Some(record.clone()),
            TraceLine::Truncated { .. } => None,
        })
        .collect();
    assert_eq!(TraceStats::rebuild(&records), stats);
}
