//! Load-generator determinism: a `(seed, profile)` pair is a complete
//! description of a generated fleet. The arrival schedule, the workload
//! mix, and the tenant draw must replay identically; running the fleet
//! through the sweep engine must be `--jobs`-invariant; and the
//! assessment-snapshot cache the generator's scale motivated must be
//! invisible in every report.

use proptest::prelude::*;

use cloud_market::InstanceType;
use spotverse::{
    merged_fleet_trace_jsonl, run_fleet, run_fleet_matrix, FleetConfig, FleetSweepCell,
    LoadProfile, MarketCache, TraceConfig,
};
use spotverse_integration::spotverse_strategy;

/// One profile per arrival process, keyed by index so proptest can draw it.
fn profile(idx: usize, rate: f64) -> LoadProfile {
    match idx % 3 {
        0 => LoadProfile::poisson(rate),
        1 => LoadProfile::diurnal(rate),
        _ => LoadProfile::burst(rate),
    }
}

/// Field-by-field equality for generated configs (`FleetConfig` carries
/// trait objects in `chaos`/`health`, so no derived `PartialEq`).
fn assert_same_fleet(a: &FleetConfig, b: &FleetConfig) {
    assert_eq!(a.seed, b.seed);
    assert_eq!(a.workloads.len(), b.workloads.len());
    for (wa, wb) in a.workloads.iter().zip(&b.workloads) {
        assert_eq!(wa.spec, wb.spec);
        assert_eq!(wa.arrival, wb.arrival);
        assert_eq!(wa.tenant, wb.tenant);
        assert_eq!(wa.priority, wb.priority);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The same `(seed, profile)` always draws the same arrival schedule,
    /// the schedule is sorted ascending, and regeneration reproduces every
    /// workload field — id, kind, duration, arrival, tenant, priority.
    #[test]
    fn seed_and_profile_determine_the_fleet(
        seed in 0u64..10_000,
        profile_idx in 0usize..3,
        rate in 1.0f64..120.0,
        count in 1usize..200,
    ) {
        let p = profile(profile_idx, rate);
        let schedule = p.arrival_schedule(seed, count);
        prop_assert_eq!(&schedule, &p.arrival_schedule(seed, count));
        prop_assert_eq!(schedule.len(), count);
        prop_assert!(
            schedule.windows(2).all(|w| w[0] <= w[1]),
            "arrivals must be sorted ascending"
        );
        let a = p.generate(seed, count, InstanceType::M5Xlarge);
        let b = p.generate(seed, count, InstanceType::M5Xlarge);
        assert_same_fleet(&a, &b);
        for (w, at) in a.workloads.iter().zip(&schedule) {
            prop_assert_eq!(w.arrival, *at, "generate must use the published schedule");
        }
    }
}

proptest! {
    // Each case runs 2 × 3 small fleets; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// A matrix of generated fleets produces a byte-identical merged trace
    /// whether cells run serially or across workers: worker scheduling is
    /// invisible in the output.
    #[test]
    fn generated_fleet_matrix_is_jobs_invariant(
        seed in 0u64..500,
        rate in 4.0f64..60.0,
        count in 4usize..24,
    ) {
        let cells: Vec<FleetSweepCell> = (0..3)
            .map(|i| {
                let mut config =
                    profile(i, rate).generate(seed, count, InstanceType::M5Xlarge);
                config.trace = TraceConfig::enabled();
                FleetSweepCell::new(
                    format!("gen-{i}"),
                    "spotverse",
                    config,
                )
            })
            .collect();
        let cache = MarketCache::new();
        let serial = run_fleet_matrix(&cells, 1, &cache, |_| spotverse_strategy());
        let parallel = run_fleet_matrix(&cells, 3, &cache, |_| spotverse_strategy());
        let serial_trace = merged_fleet_trace_jsonl(&serial);
        prop_assert!(!serial_trace.is_empty(), "traced cells must emit events");
        prop_assert_eq!(
            serial_trace,
            merged_fleet_trace_jsonl(&parallel),
            "merged traces must be byte-identical across --jobs"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The snapshot-epoch assessment cache is purely an optimization: with
    /// it disabled, every field of the report — workload outcomes, cost
    /// ledger, trace — must match the cached run exactly.
    #[test]
    fn snapshot_reuse_is_observationally_identical(
        seed in 0u64..500,
        profile_idx in 0usize..3,
        count in 2usize..40,
    ) {
        let run = |reuse: bool| {
            let mut config =
                profile(profile_idx, 24.0).generate(seed, count, InstanceType::M5Xlarge);
            config.trace = TraceConfig::enabled();
            config.reuse_decision_snapshot = reuse;
            run_fleet(config, spotverse_strategy())
        };
        prop_assert_eq!(run(true), run(false));
    }
}
