//! Whole-stack determinism: the reproducibility guarantees the README
//! promises, checked bit-for-bit across independently constructed stacks.

use bio_workloads::{paper_fleet, WorkloadKind};
use cloud_market::history::{archive_to_csv, collect_archive};
use cloud_market::{InstanceType, MarketConfig, Region, SpotMarket};
use galaxy_flow::{from_ga_json, to_ga_json};
use sim_kernel::{SimDuration, SimRng, SimTime};
use spotverse::{run_experiment, ResilienceTelemetry};
use spotverse_integration::{fleet_config, spotverse_strategy};

#[test]
fn full_experiment_reports_are_bit_identical() {
    let build = || {
        run_experiment(
            fleet_config(WorkloadKind::NgsPreprocessing, 8, 777),
            spotverse_strategy(),
        )
    };
    let a = build();
    let b = build();
    assert_eq!(a.interruptions, b.interruptions);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.mean_completion, b.mean_completion);
    assert_eq!(a.cost.total, b.cost.total);
    assert_eq!(a.cost.data_transfer, b.cost.data_transfer);
    assert_eq!(a.interruptions_by_region, b.interruptions_by_region);
    assert_eq!(a.launches_by_region, b.launches_by_region);
    assert_eq!(a.cumulative_interruptions, b.cumulative_interruptions);
    assert_eq!(a.completions_over_time, b.completions_over_time);
    assert_eq!(a.spot_attempts, b.spot_attempts);
    assert_eq!(a.instance_hours.to_bits(), b.instance_hours.to_bits());
    assert_eq!(a.resilience, b.resilience);
    // Without injected faults the region-health control plane must never
    // engage: no breaker trips, no stale serves, no degraded hours.
    assert_eq!(a.resilience, ResilienceTelemetry::default());
}

#[test]
fn market_archives_are_bit_identical_across_builds() {
    let csv = |seed: u64| {
        let market = SpotMarket::new(MarketConfig::with_seed(seed));
        let rows = collect_archive(
            &market,
            InstanceType::M5Xlarge,
            SimTime::from_days(1),
            SimTime::from_days(8),
            SimDuration::from_hours(3),
        )
        .unwrap();
        archive_to_csv(&rows)
    };
    assert_eq!(csv(5), csv(5));
    assert_ne!(csv(5), csv(6), "different seeds yield different markets");
}

#[test]
fn ga_export_is_stable_and_reimportable_for_paper_workloads() {
    let rng = SimRng::seed_from_u64(9);
    for kind in WorkloadKind::ALL {
        let wf = paper_fleet(kind, 1, &rng)[0].build_workflow();
        let ga1 = to_ga_json(&wf);
        let ga2 = to_ga_json(&wf);
        assert_eq!(ga1, ga2, "{kind}: export is deterministic");
        let imported = from_ga_json(&ga1).unwrap();
        assert_eq!(imported, wf, "{kind}: lossless roundtrip");
        assert_eq!(to_ga_json(&imported), ga1, "{kind}: normal form is stable");
    }
}

#[test]
fn interruption_draws_are_independent_of_market_query_order() {
    // Querying the market (prices, scores) between interruption draws must
    // not perturb the draws — queries are pure, draws consume only the
    // caller's stream.
    let market = SpotMarket::new(MarketConfig::with_seed(42));
    let draw = |interleave_queries: bool| {
        let mut rng = SimRng::seed_from_u64(1);
        let mut delays = Vec::new();
        for day in 1..10 {
            if interleave_queries {
                let _ = market.spot_price(Region::EuWest1, InstanceType::M5Xlarge, SimTime::from_days(day));
                let _ = market.placement_score(Region::UsEast1, InstanceType::M5Xlarge, SimTime::from_days(day));
            }
            delays.push(
                market
                    .sample_interruption_delay(
                        Region::CaCentral1,
                        InstanceType::M5Xlarge,
                        SimTime::from_days(day),
                        &mut rng,
                    )
                    .unwrap(),
            );
        }
        delays
    };
    assert_eq!(draw(false), draw(true));
}
