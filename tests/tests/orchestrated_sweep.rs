//! Distributed sweep orchestration: fault-free equivalence with the
//! in-process sweep engine, and exactly-once-or-dead-lettered accounting
//! under the `sweep_shard_chaos` scenario.

use bio_workloads::WorkloadKind;
use spotverse::{
    merged_trace_jsonl, run_matrix, run_matrix_orchestrated, MarketCache, OrchestratorConfig,
    SweepCell, TraceConfig,
};
use spotverse_integration::{fleet_config, spotverse_strategy, traced_config};

fn cells(n: usize, traced: bool) -> Vec<SweepCell> {
    (0..n)
        .map(|i| {
            let seed = 90 + i as u64;
            let config = if traced {
                traced_config(WorkloadKind::NgsPreprocessing, 2, seed)
            } else {
                fleet_config(WorkloadKind::NgsPreprocessing, 2, seed)
            };
            SweepCell::new(format!("cell-{i}"), "spotverse", config)
        })
        .collect()
}

/// Fault-free, the orchestrated sweep is byte-identical to `run_matrix`:
/// same outcomes, same merged trace, no re-drives or duplicates.
#[test]
fn fault_free_orchestration_is_byte_identical_to_in_process() {
    let cells = cells(4, true);
    let cache = MarketCache::new();
    let inprocess = run_matrix(&cells, 2, &cache, |_| spotverse_strategy());
    let config = OrchestratorConfig { shard_size: 2, ..OrchestratorConfig::default() };
    let report = run_matrix_orchestrated(&cells, &config, &cache, |_| spotverse_strategy());
    assert_eq!(report.outcomes, inprocess, "outcomes must be byte-identical");
    assert_eq!(
        merged_trace_jsonl(&report.outcomes),
        merged_trace_jsonl(&inprocess),
        "merged JSONL traces must be byte-identical"
    );
    assert!(report.dead_letters.is_empty());
    assert_eq!(report.stats.shards, 2);
    assert_eq!(report.stats.completed_shards, 2);
    assert_eq!(report.stats.dispatches, 2);
    assert_eq!(report.stats.redrives, 0);
    assert_eq!(report.stats.lease_expiries, 0);
    assert_eq!(report.stats.duplicate_executions, 0);
    assert_eq!(report.stats.bus_lost, 0);
    assert_eq!(report.stats.bus_duplicated, 0);
}

/// Under `sweep_shard_chaos` (lost and duplicated dispatches, throttled
/// services) every cell is either completed exactly once or dead-lettered
/// with its full attempt history — no hangs, no duplicates, no silently
/// lost cells — and completed cells are byte-identical to the fault-free
/// run. Deterministic: the assertion sweep scans seeds and requires that
/// both fates actually occur.
#[test]
fn sweep_shard_chaos_completes_or_dead_letters_every_cell() {
    let cells = cells(6, false);
    let cache = MarketCache::new();
    let fault_free = run_matrix(&cells, 2, &cache, |_| spotverse_strategy());
    let mut saw_dead_letter = false;
    let mut saw_completion = false;
    for seed in 0..12u64 {
        let config = OrchestratorConfig {
            seed,
            max_attempts: 2,
            chaos: Some(chaos::sweep_shard_chaos()),
            trace: TraceConfig::enabled(),
            ..OrchestratorConfig::default()
        };
        let report = run_matrix_orchestrated(&cells, &config, &cache, |_| spotverse_strategy());

        // Every cell accounted for, in input order, exactly once.
        assert_eq!(report.outcomes.len(), cells.len(), "seed {seed}: no lost cells");
        for (outcome, cell) in report.outcomes.iter().zip(&cells) {
            assert_eq!(outcome.label, cell.label, "seed {seed}: cell order preserved");
        }
        let dead_labels: Vec<&str> = report
            .dead_letters
            .iter()
            .flat_map(|dl| dl.labels.iter().map(String::as_str))
            .collect();
        for (outcome, baseline) in report.outcomes.iter().zip(&fault_free) {
            if dead_labels.contains(&outcome.label.as_str()) {
                let err = outcome.result.as_ref().expect_err("dead-lettered cell fails");
                assert!(err.contains("dead-lettered"), "seed {seed}: {err}");
                saw_dead_letter = true;
            } else {
                assert_eq!(
                    outcome, baseline,
                    "seed {seed}: completed cells are byte-identical to fault-free"
                );
                saw_completion = true;
            }
        }

        // Dead letters carry the full attempt history.
        for dl in &report.dead_letters {
            assert_eq!(
                dl.attempts.len(),
                config.max_attempts as usize,
                "seed {seed}: every attempt recorded"
            );
            for (i, attempt) in dl.attempts.iter().enumerate() {
                assert_eq!(attempt.attempt, i as u32 + 1, "seed {seed}: attempts in order");
                assert!(!attempt.failure.is_empty());
            }
        }

        // Stats reconcile with the report and the orchestration trace.
        let s = &report.stats;
        assert_eq!(s.completed_shards + s.dead_lettered_shards, s.shards, "seed {seed}");
        assert_eq!(s.dead_lettered_shards, report.dead_letters.len(), "seed {seed}");
        assert!(s.dispatches >= s.shards as u64, "seed {seed}: every shard dispatched");
        let trace = report.trace.as_ref().expect("orchestration tracing enabled");
        let count = |label: &str| {
            trace.events.iter().filter(|r| r.event.label() == label).count() as u64
        };
        assert_eq!(count("shard_dispatched"), s.dispatches, "seed {seed}");
        assert_eq!(count("shard_redriven"), s.redrives, "seed {seed}");
        assert_eq!(count("lease_expired"), s.lease_expiries, "seed {seed}");
        assert_eq!(
            count("shard_dead_lettered"),
            s.dead_lettered_shards as u64,
            "seed {seed}"
        );
        assert_eq!(
            count("shard_completed"),
            s.completed_shards as u64 + s.duplicate_executions,
            "seed {seed}: one completion per shard plus idempotent duplicates"
        );
    }
    assert!(saw_dead_letter, "chaos sweep never produced a dead letter");
    assert!(saw_completion, "chaos sweep never completed a cell");
}

/// The orchestrated sweep is deterministic under chaos: same cells, same
/// config, byte-identical report.
#[test]
fn orchestrated_chaos_sweep_is_deterministic() {
    let cells = cells(3, false);
    let cache = MarketCache::new();
    let config = OrchestratorConfig {
        max_attempts: 2,
        chaos: Some(chaos::sweep_shard_chaos()),
        trace: TraceConfig::enabled(),
        ..OrchestratorConfig::default()
    };
    let a = run_matrix_orchestrated(&cells, &config, &cache, |_| spotverse_strategy());
    let b = run_matrix_orchestrated(&cells, &config, &cache, |_| spotverse_strategy());
    assert_eq!(a.outcomes, b.outcomes);
    assert_eq!(a.dead_letters, b.dead_letters);
    assert_eq!(a.stats, b.stats);
    let ta = a.trace.expect("traced");
    let tb = b.trace.expect("traced");
    assert_eq!(ta.events.len(), tb.events.len());
    for (ra, rb) in ta.events.iter().zip(tb.events.iter()) {
        assert_eq!(ra.at, rb.at);
        assert_eq!(ra.event.label(), rb.event.label());
    }
}
