//! Market regimes: the pluggable-calibration invariants.
//!
//! Every regime must be a pure function of its [`MarketConfig`] — lazy
//! and eager builds byte-identical per regime, merged fleet traces
//! invariant under `--jobs`, and the `Baseline` default reproducing the
//! pre-regime market exactly (the golden-trace suite pins the same
//! guarantee end-to-end). On top sits the acceptance property of the
//! tournament: at least one strategy's rank differs between two regimes,
//! i.e. the regime axis is strategically meaningful, not cosmetic.

use bio_workloads::{paper_fleet, WorkloadKind};
use cloud_market::{InstanceType, MarketConfig, MarketRegime, Region, SpotMarket};
use proptest::prelude::*;
use sim_kernel::{SimDuration, SimRng, SimTime};
use spotverse::{
    merged_fleet_trace_jsonl, run_tournament, run_fleet_matrix, BidPriceAwareStrategy,
    CheckpointAdaptiveStrategy, FleetConfig, FleetSweepCell, MarketCache, OnDemandStrategy,
    SingleRegionStrategy, SkyPilotStrategy, Strategy, TournamentConfig, TraceConfig,
};

fn traced_fleet(seed: u64, n: usize, regime: MarketRegime) -> FleetConfig {
    let rng = SimRng::seed_from_u64(seed);
    let mut config = FleetConfig::staggered(
        seed,
        InstanceType::M5Xlarge,
        paper_fleet(WorkloadKind::NgsPreprocessing, n, &rng),
        SimDuration::from_mins(45),
    );
    config.market = config.market.with_regime(regime);
    config.trace = TraceConfig::enabled();
    config
}

fn strategy_for(name: &str) -> Box<dyn Strategy> {
    match name {
        "single-region" => Box::new(SingleRegionStrategy::new(Region::CaCentral1)),
        "skypilot" => Box::new(SkyPilotStrategy::new()),
        "on-demand" => Box::new(OnDemandStrategy::new()),
        "spotverse" => spotverse_integration::spotverse_strategy(),
        "bid-price" => Box::new(BidPriceAwareStrategy::new()),
        "checkpoint-adaptive" => Box::new(CheckpointAdaptiveStrategy::new()),
        other => panic!("unknown strategy {other}"),
    }
}

/// `MarketConfig::with_seed` and an explicit `Baseline` regime are the
/// same market — the compatibility guarantee every pre-regime golden
/// rides on.
#[test]
fn baseline_regime_is_the_default_market() {
    for seed in [1, 2024, 0xFEED] {
        let default = MarketConfig::with_seed(seed);
        assert_eq!(default.regime, MarketRegime::Baseline);
        assert_eq!(
            SpotMarket::new(default),
            SpotMarket::new(default.with_regime(MarketRegime::Baseline)),
        );
    }
}

/// Each non-baseline regime must actually perturb the market: a regime
/// that observes identically to baseline is dead configuration.
#[test]
fn non_baseline_regimes_change_the_market() {
    let base = MarketConfig::with_seed(77);
    let baseline = SpotMarket::new(base);
    for regime in MarketRegime::ALL {
        if regime.is_baseline() {
            continue;
        }
        assert_ne!(
            SpotMarket::new(base.with_regime(regime)),
            baseline,
            "{regime} must not observe like baseline"
        );
    }
}

/// Baseline traces never carry the regime label; non-baseline run
/// headers always do.
#[test]
fn trace_regime_label_tracks_the_config() {
    let cells: Vec<FleetSweepCell> = MarketRegime::ALL
        .iter()
        .map(|&regime| {
            FleetSweepCell::new(regime.name(), "skypilot", traced_fleet(31, 2, regime))
        })
        .collect();
    let outcomes = run_fleet_matrix(&cells, 2, &MarketCache::new(), |_| strategy_for("skypilot"));
    let merged = merged_fleet_trace_jsonl(&outcomes);
    for regime in MarketRegime::ALL {
        let header = merged
            .lines()
            .find(|l| {
                l.starts_with(&format!("{{\"cell\":\"{}\"", regime.name()))
                    && l.contains("\"event\":\"run_started\"")
            })
            .expect("run_started per cell");
        let labelled = header.contains(&format!("\"regime\":\"{}\"", regime.name()));
        assert_eq!(
            labelled,
            !regime.is_baseline(),
            "regime label presence must track non-default regimes: {header}"
        );
    }
}

/// The merged trace of a regime matrix is byte-identical for any worker
/// count — the regime layer introduces no shared mutable state.
#[test]
fn regime_matrix_traces_are_jobs_invariant() {
    let cells: Vec<FleetSweepCell> = MarketRegime::ALL
        .iter()
        .map(|&regime| {
            FleetSweepCell::new(regime.name(), "spotverse", traced_fleet(55, 2, regime))
        })
        .collect();
    let serial = run_fleet_matrix(&cells, 1, &MarketCache::new(), |_| strategy_for("spotverse"));
    let parallel = run_fleet_matrix(&cells, 4, &MarketCache::new(), |_| strategy_for("spotverse"));
    assert!(serial.iter().all(spotverse::FleetCellOutcome::is_ok));
    assert_eq!(
        merged_fleet_trace_jsonl(&serial),
        merged_fleet_trace_jsonl(&parallel),
        "merged regime traces must not depend on --jobs"
    );
}

/// The tournament's reason to exist: the regime axis reorders the
/// leaderboard. At least one strategy must rank differently between two
/// regimes of the same tournament.
#[test]
fn tournament_rank_flips_between_regimes() {
    let strategies = ["single-region", "skypilot", "spotverse", "bid-price", "on-demand"];
    let rng = SimRng::seed_from_u64(2024);
    let fleet = FleetConfig::staggered(
        2024,
        InstanceType::M5Xlarge,
        paper_fleet(WorkloadKind::GenomeReconstruction, 2, &rng),
        SimDuration::from_mins(60),
    );
    let config = TournamentConfig::new(
        strategies.iter().map(|s| (*s).to_owned()).collect(),
        vec![MarketRegime::Baseline, MarketRegime::CapacityCrunch],
        1,
        fleet,
    );
    let report = run_tournament(&config, 2, &MarketCache::new(), strategy_for);
    assert!(report.failed.is_empty(), "failed cells: {:?}", report.failed);
    let flipped: Vec<&str> = strategies
        .iter()
        .filter(|s| {
            report.rank_of(MarketRegime::Baseline, s)
                != report.rank_of(MarketRegime::CapacityCrunch, s)
        })
        .copied()
        .collect();
    assert!(
        !flipped.is_empty(),
        "some strategy must rank differently across regimes; standings: {:?}",
        report
            .standings
            .iter()
            .map(|st| (st.regime, st.rows.iter().map(|r| r.strategy.clone()).collect::<Vec<_>>()))
            .collect::<Vec<_>>()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every regime is byte-replayable from its `MarketConfig` alone:
    /// the lazy segment-on-demand build and the eager reference build
    /// materialize field-for-field identical markets, whatever the
    /// regime's schedule perturbs.
    #[test]
    fn every_regime_lazy_build_matches_eager(
        seed in 0u64..5_000,
        r in 0usize..MarketRegime::ALL.len(),
        horizon_days in 15u32..60,
    ) {
        let config = MarketConfig { seed, horizon_days, regime: MarketRegime::ALL[r] };
        prop_assert_eq!(SpotMarket::new(config), SpotMarket::new_eager(config));
    }

    /// Two builds of the same regime config observe identically at
    /// arbitrary instants — no hidden global state feeds the schedule.
    #[test]
    fn regime_observations_are_reproducible(
        seed in 0u64..5_000,
        r in 0usize..MarketRegime::ALL.len(),
        hour in 0u64..14 * 24,
    ) {
        let config = MarketConfig { seed, horizon_days: 14, regime: MarketRegime::ALL[r] };
        let (a, b) = (SpotMarket::new(config), SpotMarket::new(config));
        let at = SimTime::from_secs(hour * 3600 + 11);
        for region in Region::ALL {
            prop_assert_eq!(
                a.spot_price(region, InstanceType::M5Xlarge, at).ok(),
                b.spot_price(region, InstanceType::M5Xlarge, at).ok()
            );
            prop_assert_eq!(
                a.interruption_band(region, InstanceType::M5Xlarge, at).ok(),
                b.interruption_band(region, InstanceType::M5Xlarge, at).ok()
            );
        }
    }
}
