//! Fleet ⇄ experiment equivalence: the purity contract behind the
//! controller decomposition.
//!
//! The fleet event loop is the engine under `run_experiment`, so a
//! degenerate fleet of one workload — built *field by field*, not through
//! `FleetConfig::from_experiment` — must reproduce the classic
//! single-controller report and decision trace byte-for-byte, for
//! arbitrary seeds and strategies. The remaining tests pin down the
//! fleet-only semantics: staggered-arrival determinism, per-region
//! capacity caps, and per-workload deadline expiry.

use proptest::prelude::*;

use bio_workloads::{paper_fleet, WorkloadKind};
use cloud_market::{InstanceType, Region};
use sim_kernel::{SimDuration, SimRng};
use spotverse::{
    run_experiment, run_fleet, trace_to_jsonl, ExperimentConfig, FleetConfig, FleetWorkload,
    NaiveMultiRegionStrategy, OnDemandStrategy, SingleRegionStrategy, SkyPilotStrategy,
    SpotVerseConfig, SpotVerseStrategy, Strategy, TraceConfig, WorkloadPhase,
};

/// One strategy per paper baseline, keyed by index so proptest can draw it.
fn strategy(idx: usize) -> Box<dyn Strategy> {
    match idx % 5 {
        0 => Box::new(SpotVerseStrategy::new(SpotVerseConfig::paper_default(
            InstanceType::M5Xlarge,
        ))),
        1 => Box::new(SingleRegionStrategy::new(Region::CaCentral1)),
        2 => Box::new(OnDemandStrategy::new()),
        3 => Box::new(SkyPilotStrategy::new()),
        _ => Box::new(NaiveMultiRegionStrategy::paper_motivational()),
    }
}

/// The fleet-of-one equivalent of an experiment, spelled out field by
/// field: if a knob were missing or defaulted differently the proptest
/// below would catch the divergence.
fn fleet_of_one(config: &ExperimentConfig) -> FleetConfig {
    FleetConfig {
        seed: config.seed,
        market: config.market,
        instance_type: config.instance_type,
        workloads: vec![FleetWorkload {
            spec: config.workloads[0].clone(),
            arrival: SimDuration::ZERO,
            tenant: None,
            priority: spotverse::Priority::Standard,
        }],
        start: config.start,
        monitor_period: config.monitor_period,
        retry_interval: config.retry_interval,
        max_runtime: config.max_runtime,
        monitor_pipeline: config.monitor_pipeline,
        checkpoint_backend: config.checkpoint_backend,
        chaos: config.chaos.clone(),
        health: config.health.clone(),
        trace: config.trace,
        region_capacity: None,
        reuse_decision_snapshot: true,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// A fleet of N=1 *is* the experiment: identical report (every field,
    /// including the cost ledger and telemetry) and byte-identical
    /// canonical JSONL trace, for arbitrary seeds, kinds, and strategies.
    #[test]
    fn fleet_of_one_reproduces_the_experiment(
        seed in 0u64..500,
        kind_idx in 0usize..3,
        strat_idx in 0usize..5,
    ) {
        let kind = WorkloadKind::ALL[kind_idx];
        let rng = SimRng::seed_from_u64(seed);
        let mut config =
            ExperimentConfig::new(seed, InstanceType::M5Xlarge, paper_fleet(kind, 1, &rng));
        config.trace = TraceConfig::enabled();
        let expected = run_experiment(config.clone(), strategy(strat_idx));
        let fleet = run_fleet(fleet_of_one(&config), strategy(strat_idx));

        prop_assert_eq!(&fleet.aggregate, &expected, "aggregate report must match");
        let fleet_trace = trace_to_jsonl(fleet.aggregate.trace.as_ref().expect("traced"));
        let experiment_trace = trace_to_jsonl(expected.trace.as_ref().expect("traced"));
        prop_assert_eq!(fleet_trace, experiment_trace, "traces must be byte-identical");

        // Fleet-only machinery must never engage on the degenerate path.
        prop_assert_eq!(fleet.capacity_deferrals, 0);
        prop_assert_eq!(fleet.expired, 0);
        prop_assert_eq!(fleet.workloads.len(), 1);
        let w = &fleet.workloads[0];
        prop_assert_eq!(w.completed, expected.completed == 1);
        prop_assert_eq!(w.interruptions, expected.interruptions);
    }
}

#[test]
fn staggered_capacity_capped_fleet_is_deterministic() {
    let build = || {
        let rng = SimRng::seed_from_u64(404);
        let specs = paper_fleet(WorkloadKind::NgsPreprocessing, 4, &rng);
        let mut config = FleetConfig::staggered(
            404,
            InstanceType::M5Xlarge,
            specs,
            SimDuration::from_hours(2),
        );
        config.region_capacity = Some(1);
        run_fleet(config, strategy(0))
    };
    let a = build();
    let b = build();
    assert_eq!(a, b, "same seed must replay bit-identically");
    assert_eq!(a.aggregate.workloads, 4);
    assert_eq!(a.aggregate.completed + a.expired, 4, "every workload settles");
    // Per-workload billing decomposes the instance spend: the sum of the
    // workload ledgers equals spot + on-demand cost in the aggregate.
    let billed: f64 = a.workloads.iter().map(|w| w.billed.amount()).sum();
    let instances = a.aggregate.cost.spot_instances.amount()
        + a.aggregate.cost.on_demand_instances.amount();
    assert!(
        (billed - instances).abs() < 1e-6,
        "workload ledgers {billed} must sum to instance spend {instances}"
    );
    // Arrivals really are staggered two hours apart.
    for (i, w) in a.workloads.iter().enumerate() {
        assert_eq!(
            w.arrival,
            a.workloads[0].arrival + SimDuration::from_hours(2) * i as u64,
            "workload {i} arrival"
        );
    }
}

#[test]
fn capacity_cap_defers_and_excludes_full_regions() {
    // Four workloads arriving together under a single-region strategy with
    // a cap of one: only one can run at a time, so the cap must defer or
    // re-place the rest rather than oversubscribe the region.
    let rng = SimRng::seed_from_u64(7);
    let specs = paper_fleet(WorkloadKind::NgsPreprocessing, 4, &rng);
    let mut config =
        FleetConfig::staggered(7, InstanceType::M5Xlarge, specs, SimDuration::ZERO);
    config.region_capacity = Some(1);
    let report = run_fleet(config, strategy(1));
    assert_eq!(report.aggregate.completed + report.expired, 4);
    // A cap of one with four simultaneous arrivals cannot place everyone
    // immediately; the overflow shows up as deferrals.
    assert!(
        report.capacity_deferrals > 0,
        "expected capacity deferrals, got {}",
        report.capacity_deferrals
    );
}

#[test]
fn deadlines_expire_unfinished_workloads() {
    // Paper workloads run 10–11 hours; a one-hour budget can never finish.
    // The two earlier arrivals hit per-workload `Expire` events; the last
    // workload's deadline *is* the global horizon, so it ends through the
    // same abort path a classic experiment takes at `max_runtime` instead
    // of an expiry of its own.
    let rng = SimRng::seed_from_u64(11);
    let specs = paper_fleet(WorkloadKind::GenomeReconstruction, 3, &rng);
    let mut config =
        FleetConfig::staggered(11, InstanceType::M5Xlarge, specs, SimDuration::from_hours(1));
    config.max_runtime = SimDuration::from_hours(1);
    let report = run_fleet(config, strategy(0));
    assert_eq!(report.expired, 2, "both pre-horizon deadlines must expire");
    assert_eq!(report.aggregate.completed, 0);
    for w in &report.workloads[..2] {
        assert_eq!(w.phase, WorkloadPhase::Expired);
        assert!(w.expired && !w.completed);
        assert_eq!(w.completion_time, None);
    }
    let last = &report.workloads[2];
    assert!(!last.completed && !last.expired, "the horizon workload aborts instead");
}
