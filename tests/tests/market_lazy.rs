//! Lazy market materialization must be observationally invisible: a
//! market whose trajectories fill segment-by-segment on demand, in
//! whatever order queries arrive, answers every query bit-identically to
//! the eager reference build (`SpotMarket::new_eager`), including the
//! `BeyondHorizon` error edges at and around segment boundaries.

use cloud_market::{
    InstanceType, MarketConfig, MarketError, MarketRegime, Region, SpotMarket,
    MARKET_SEGMENT_DAYS,
};
use proptest::prelude::*;
use sim_kernel::{SimDuration, SimTime};

/// One observation per query kind the market exposes, rendered
/// comparable (prices, placement, band, episode membership, hazard).
type Observation = (
    Result<String, MarketError>,
    Result<String, MarketError>,
    Result<String, MarketError>,
    Result<bool, MarketError>,
    Result<String, MarketError>,
);

/// Every query kind the market exposes over (region, type, time), as one
/// comparable value.
fn observe(m: &SpotMarket, region: Region, itype: InstanceType, at: SimTime) -> Observation {
    (
        m.spot_price(region, itype, at).map(|p| format!("{p:?}")),
        m.placement_score(region, itype, at).map(|s| format!("{s:?}")),
        m.interruption_band(region, itype, at).map(|b| format!("{b:?}")),
        m.in_demand_episode(region, itype, at),
        m.hazard_rate(region, itype, at).map(|h| format!("{h:?}")),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary interleavings of queries across regions, types, and
    /// instants — including instants past the horizon — observe exactly
    /// what the eager build precomputed.
    #[test]
    fn lazy_is_observationally_eager(
        seed in 0u64..10_000,
        horizon_days in 15u32..75,
        queries in prop::collection::vec(
            (0usize..Region::ALL.len(), 0usize..InstanceType::ALL.len(), 0u64..80 * 24 + 2),
            1..60,
        ),
    ) {
        let config = MarketConfig { seed, horizon_days, regime: MarketRegime::Baseline };
        let eager = SpotMarket::new_eager(config);
        let lazy = SpotMarket::new(config);
        for (r, i, hour) in queries {
            let (region, itype) = (Region::ALL[r], InstanceType::ALL[i]);
            let at = SimTime::from_secs(hour * 3600 + 17);
            prop_assert_eq!(
                observe(&lazy, region, itype, at),
                observe(&eager, region, itype, at),
                "seed {} horizon {} {:?}/{:?} at {:?}", seed, horizon_days, region, itype, at
            );
        }
        // After the scattered queries, the whole markets still compare
        // equal (forces the rest of both to materialize).
        prop_assert_eq!(lazy, eager);
    }

    /// The exact edges: the last instant inside the horizon, the horizon
    /// itself, and the seconds straddling every segment boundary.
    #[test]
    fn segment_and_horizon_edges_match(seed in 0u64..10_000, segments in 1u32..5) {
        let horizon_days = segments * MARKET_SEGMENT_DAYS as u32;
        let config = MarketConfig { seed, horizon_days, regime: MarketRegime::Baseline };
        let eager = SpotMarket::new_eager(config);
        let lazy = SpotMarket::new(config);
        let horizon = SimTime::from_days(u64::from(horizon_days));
        let mut edges = vec![
            SimTime::ZERO,
            horizon - SimDuration::from_secs(1),
            horizon,
            horizon + SimDuration::from_secs(1),
        ];
        for boundary in (1..=segments as u64).map(|s| s * MARKET_SEGMENT_DAYS as u64) {
            let t = SimTime::from_days(boundary);
            edges.push(t - SimDuration::from_secs(1));
            edges.push(t);
            edges.push(t + SimDuration::from_secs(1));
        }
        for at in edges {
            for region in [Region::UsEast1, Region::CaCentral1] {
                prop_assert_eq!(
                    observe(&lazy, region, InstanceType::M5Xlarge, at),
                    observe(&eager, region, InstanceType::M5Xlarge, at),
                    "seed {} at {:?}", seed, at
                );
            }
        }
        let at_horizon = lazy.spot_price(Region::UsEast1, InstanceType::M5Xlarge, horizon);
        prop_assert!(matches!(at_horizon, Err(MarketError::BeyondHorizon { .. })));
    }
}
