//! Shared helpers for integration tests.
//!
//! The scaffolding every suite kept re-declaring — paper-shaped fleet
//! configs, the default SpotVerse strategy, and the run-on-shared-market
//! harness — lives here once. Tests import it as `spotverse_integration`.

use std::sync::Arc;

use bio_workloads::{paper_fleet, WorkloadKind};
use chaos::ChaosScenario;
use cloud_market::{InstanceType, SpotMarket};
use sim_kernel::SimRng;
use spotverse::{
    run_experiment_on, ExperimentConfig, ExperimentReport, SpotVerseConfig, SpotVerseStrategy,
    Strategy, TraceConfig,
};

/// A paper-shaped fleet configuration: `n` workloads of `kind` at `seed`,
/// on the default market and instance type (m5.xlarge).
pub fn fleet_config(kind: WorkloadKind, n: usize, seed: u64) -> ExperimentConfig {
    let rng = SimRng::seed_from_u64(seed);
    ExperimentConfig::new(seed, InstanceType::M5Xlarge, paper_fleet(kind, n, &rng))
}

/// [`fleet_config`] with the decision-trace recorder switched on.
pub fn traced_config(kind: WorkloadKind, n: usize, seed: u64) -> ExperimentConfig {
    let mut config = fleet_config(kind, n, seed);
    config.trace = TraceConfig::enabled();
    config
}

/// The paper-default SpotVerse strategy (threshold 6, m5.xlarge).
pub fn spotverse_strategy() -> Box<dyn Strategy> {
    Box::new(SpotVerseStrategy::new(SpotVerseConfig::paper_default(
        InstanceType::M5Xlarge,
    )))
}

/// SpotVerse at an explicit Algorithm-1 threshold (the Table 3 tiers).
pub fn spotverse_with_threshold(threshold: u8) -> Box<dyn Strategy> {
    Box::new(SpotVerseStrategy::new(
        SpotVerseConfig::builder(InstanceType::M5Xlarge)
            .threshold(threshold)
            .build(),
    ))
}

/// Runs `base` on a shared `market` with an optional chaos scenario —
/// the harness for comparing faulted and fault-free runs of the same
/// market construction.
pub fn run_with(
    market: &Arc<SpotMarket>,
    base: &ExperimentConfig,
    scenario: Option<ChaosScenario>,
    strategy: Box<dyn Strategy>,
) -> ExperimentReport {
    let mut cfg = base.clone();
    cfg.chaos = scenario;
    run_experiment_on(Arc::clone(market), cfg, strategy)
}
