//! Shared helpers for the table/figure reproduction benches.
//!
//! Each bench target regenerates one table or figure from the paper's
//! evaluation, printing the paper's reported values next to our measured
//! ones. Absolute numbers come from a simulator rather than the authors'
//! AWS testbed, so the *shape* — who wins, by roughly what factor — is the
//! reproduction target (see EXPERIMENTS.md).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use bio_workloads::{paper_fleet, WorkloadKind, WorkloadSpec};
use cloud_market::InstanceType;
use sim_kernel::{SimRng, SimTime};
use spotverse::ExperimentConfig;

/// Heap allocations observed by [`CountingAlloc`] since process start.
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Allocation-counting wrapper around the system allocator.
///
/// Install it in a bench binary with
/// `#[global_allocator] static A: CountingAlloc = CountingAlloc;` and
/// difference [`CountingAlloc::allocations`] around the measured region.
/// Counting is a relaxed atomic increment per `alloc`/`realloc` — cheap
/// enough that throughput numbers from the same binary stay comparable.
pub struct CountingAlloc;

impl CountingAlloc {
    /// Total allocation count so far (monotonic; difference across a
    /// region of interest).
    pub fn allocations() -> u64 {
        ALLOCATIONS.load(Ordering::Relaxed)
    }
}

// SAFETY: delegates every operation to `System`, which upholds the
// `GlobalAlloc` contract; the counter has no effect on the returned
// memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// The seed all bench experiments derive from (fixed for reproducible
/// tables).
pub const BENCH_SEED: u64 = 20_241_206; // the paper's presentation week

/// Prints a bench header.
pub fn header(title: &str, paper_ref: &str) {
    println!();
    println!("{}", "=".repeat(78));
    println!("{title}");
    println!("reproduces: {paper_ref}");
    println!("{}", "=".repeat(78));
}

/// Prints a `paper vs measured` row.
pub fn paper_vs_measured(metric: &str, paper: &str, measured: &str) {
    println!("  {metric:<44} paper: {paper:>12}   measured: {measured:>12}");
}

/// Prints a section divider.
pub fn section(name: &str) {
    println!("\n-- {name} --");
}

/// The standard paper fleet for a bench: `n` workloads of `kind`,
/// 10–11 hours each.
pub fn bench_fleet(kind: WorkloadKind, n: usize, seed: u64) -> Vec<WorkloadSpec> {
    paper_fleet(kind, n, &SimRng::seed_from_u64(seed))
}

/// A bench experiment config starting at `start_day` into the horizon.
pub fn bench_config(
    seed: u64,
    instance_type: InstanceType,
    workloads: Vec<WorkloadSpec>,
    start_day: u64,
) -> ExperimentConfig {
    let mut config = ExperimentConfig::new(seed, instance_type, workloads);
    config.start = SimTime::from_days(start_day);
    config
}

/// Formats hours with one decimal.
pub fn hours(h: f64) -> String {
    format!("{h:.1} h")
}

/// Formats a percentage delta.
pub fn pct(p: f64) -> String {
    format!("{p:+.1}%")
}
