//! Ablation: which parts of Algorithm 1 earn its gains?
//!
//! DESIGN.md calls out three design choices to ablate:
//!  * migration away from the interrupted region (vs relaunch in place),
//!  * the *random* pick among the top-R (vs always-cheapest, which
//!    dog-piles migrating workloads onto one region),
//!  * the combined-score threshold (vs accepting any region, ≈ price-only).
//!
//! 40 standard workloads on m5.xlarge, paper-default config otherwise,
//! mean of three repetitions.

use bio_workloads::WorkloadKind;
use cloud_market::InstanceType;
use spotverse::{
    run_repetitions, RepetitionMarket, AggregateReport, MigrationPolicy, AblatedSpotVerseStrategy,
    SpotVerseConfig, SpotVerseStrategy,
};
use spotverse_bench::{bench_config, bench_fleet, header, section, BENCH_SEED};

const REPS: u32 = 3;

fn run_variant(label: &str, make: impl Fn() -> Box<dyn spotverse::Strategy> + Sync) -> (String, AggregateReport) {
    let config = bench_config(
        BENCH_SEED,
        InstanceType::M5Xlarge,
        bench_fleet(WorkloadKind::StandardGeneral, 40, BENCH_SEED),
        1,
    );
    (label.to_owned(), run_repetitions(&config, make, REPS, RepetitionMarket::Reseeded))
}

fn main() {
    header(
        "Ablation — Algorithm 1 component knockouts",
        "DESIGN.md §4 (ablation index); supports paper §3.3's design choices",
    );

    let full = run_variant("full Algorithm 1", || {
        Box::new(SpotVerseStrategy::new(SpotVerseConfig::paper_default(
            InstanceType::M5Xlarge,
        )))
    });
    let no_migration = run_variant("no migration (relaunch in place)", || {
        Box::new(AblatedSpotVerseStrategy::new(
            SpotVerseConfig::paper_default(InstanceType::M5Xlarge),
            MigrationPolicy::StayPut,
        ))
    });
    let no_random = run_variant("no random pick (always cheapest of top-R)", || {
        Box::new(AblatedSpotVerseStrategy::new(
            SpotVerseConfig::paper_default(InstanceType::M5Xlarge),
            MigrationPolicy::CheapestQualifying,
        ))
    });
    let no_threshold = run_variant("no threshold (T=2: any region qualifies)", || {
        Box::new(SpotVerseStrategy::new(
            SpotVerseConfig::builder(InstanceType::M5Xlarge)
                .threshold(2)
                .build(),
        ))
    });

    section("results (mean of three repetitions)");
    println!(
        "  {:<44} {:>13} {:>12} {:>10}",
        "variant", "interruptions", "makespan", "cost"
    );
    let rows = [&full, &no_migration, &no_random, &no_threshold];
    for (label, agg) in rows {
        println!(
            "  {:<44} {:>13.0} {:>10.1} h {:>9.2}$",
            label,
            agg.interruptions.mean(),
            agg.makespan_hours.mean(),
            agg.cost.mean()
        );
    }

    section("component attributions");
    let (_, full_agg) = &full;
    for (label, agg) in [&no_migration, &no_random, &no_threshold] {
        let d_int = agg.interruptions.mean() - full_agg.interruptions.mean();
        let d_cost = agg.cost.mean() - full_agg.cost.mean();
        let d_time = agg.makespan_hours.mean() - full_agg.makespan_hours.mean();
        println!(
            "  removing `{label}` costs {d_int:+.0} interruptions, {d_time:+.1} h, {d_cost:+.2}$"
        );
    }

    section("shape checks");
    println!(
        "  full config is within noise of the best variant on interruptions: {}",
        [&no_migration, &no_random, &no_threshold]
            .iter()
            .all(|(_, a)| full_agg.interruptions.mean() <= a.interruptions.mean() * 1.2)
    );
    println!(
        "  dropping the threshold raises interruptions (cheap regions are unstable): {}",
        no_threshold.1.interruptions.mean() > full_agg.interruptions.mean()
    );
    println!(
        "  dropping migration raises interruptions (workloads stay in the bad market): {}",
        no_migration.1.interruptions.mean() > full_agg.interruptions.mean()
    );
}
