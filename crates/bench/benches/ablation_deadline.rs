//! Ablation: deadline-constrained execution (related work §6, "Can't Be
//! Late", NSDI '24).
//!
//! Sweep a completion deadline over a fleet of 10–11 h standard workloads
//! starting in interruption-prone ca-central-1, and compare:
//!  * plain SpotVerse (cost-first, deadline-oblivious),
//!  * deadline-aware SpotVerse (pins workloads to on-demand when slack
//!    runs out),
//!  * pure on-demand (always on time, full price).
//!
//! Metrics: fraction of the fleet finished by the deadline, and cost.

use std::sync::Arc;

use bio_workloads::WorkloadKind;
use cloud_market::{InstanceType, Region, SpotMarket};
use sim_kernel::{SimDuration, SimTime};
use spotverse::{
    run_experiment_on, DeadlineAwareStrategy, DeadlinePolicy, ExperimentReport,
    InitialPlacement, OnDemandStrategy, SpotVerseConfig, SpotVerseStrategy, Strategy,
};
use spotverse_bench::{bench_config, bench_fleet, header, section, BENCH_SEED};

const START_DAY: u64 = 1;

fn on_time_fraction(report: &ExperimentReport, deadline: SimDuration) -> f64 {
    report
        .completions_over_time
        .value_at(SimTime::from_days(START_DAY) + deadline)
        .unwrap_or(0.0)
        / report.workloads as f64
}

fn spotverse_config() -> SpotVerseConfig {
    SpotVerseConfig::builder(InstanceType::M5Xlarge)
        .initial_placement(InitialPlacement::SingleRegion(Region::CaCentral1))
        .build()
}

fn main() {
    header(
        "Ablation — deadline-aware placement",
        "related work §6 (Can't Be Late, NSDI '24) as a SpotVerse extension",
    );
    let config = bench_config(
        BENCH_SEED,
        InstanceType::M5Xlarge,
        bench_fleet(WorkloadKind::GenomeReconstruction, 40, BENCH_SEED),
        START_DAY,
    );
    let market = Arc::new(SpotMarket::new(config.market));

    println!(
        "\n  {:<10} {:<20} {:>9} {:>10} {:>8}",
        "deadline", "strategy", "on-time", "cost", "int."
    );
    let mut rows: Vec<(u64, String, f64, f64)> = Vec::new();
    for deadline_hours in [14u64, 18, 24, 36] {
        let deadline = SimDuration::from_hours(deadline_hours);
        let strategies: Vec<(&str, Box<dyn Strategy>)> = vec![
            (
                "spotverse (plain)",
                Box::new(SpotVerseStrategy::new(spotverse_config())),
            ),
            (
                "spotverse-deadline",
                Box::new(DeadlineAwareStrategy::new(
                    spotverse_config(),
                    DeadlinePolicy {
                        deadline: SimTime::from_days(START_DAY) + deadline,
                        workload_duration: SimDuration::from_hours(11),
                        safety_factor: 1.1,
                    },
                )),
            ),
            ("on-demand", Box::new(OnDemandStrategy::new())),
        ];
        for (label, strategy) in strategies {
            let report = run_experiment_on(Arc::clone(&market), config.clone(), strategy);
            let on_time = on_time_fraction(&report, deadline);
            println!(
                "  {:<10} {:<20} {:>8.0}% {:>10} {:>8}",
                format!("{deadline_hours} h"),
                label,
                on_time * 100.0,
                report.cost.total.to_string(),
                report.interruptions
            );
            rows.push((
                deadline_hours,
                label.to_owned(),
                on_time,
                report.cost.total.amount(),
            ));
        }
    }

    section("shape checks");
    let get = |d: u64, label: &str| {
        rows.iter()
            .find(|(dd, l, _, _)| *dd == d && l == label)
            .expect("row exists")
    };
    // Tight deadline: deadline-aware beats plain SpotVerse on punctuality.
    let tight_plain = get(14, "spotverse (plain)");
    let tight_aware = get(14, "spotverse-deadline");
    println!(
        "  tight 14 h deadline: deadline-aware on-time {:.0}% >= plain {:.0}%: {}",
        tight_aware.2 * 100.0,
        tight_plain.2 * 100.0,
        tight_aware.2 >= tight_plain.2
    );
    // Tight deadline: deadline-aware stays cheaper than pure on-demand.
    let tight_od = get(14, "on-demand");
    println!(
        "  tight deadline: aware cost {:.2}$ < on-demand {:.2}$: {}",
        tight_aware.3,
        tight_od.3,
        tight_aware.3 < tight_od.3
    );
    // Loose deadline: deadline-aware converges to plain SpotVerse's cost.
    let loose_plain = get(36, "spotverse (plain)");
    let loose_aware = get(36, "spotverse-deadline");
    println!(
        "  loose 36 h deadline: aware cost within 20% of plain: {}",
        (loose_aware.3 / loose_plain.3 - 1.0).abs() < 0.2
    );
    // On-demand is always fully on time for deadlines past ~11 h.
    println!(
        "  on-demand always on time: {}",
        rows.iter()
            .filter(|(_, l, _, _)| l == "on-demand")
            .all(|(_, _, f, _)| *f >= 0.999)
    );
}
