//! Table 4: SpotVerse vs the SkyPilot-like cheapest-price baseline — 40
//! standard general workloads, 10–11 hours each.

use std::sync::Arc;

use bio_workloads::WorkloadKind;
use cloud_market::{InstanceType, SpotMarket};
use spotverse::{
    compare, run_experiment_on, SkyPilotStrategy, SpotVerseConfig, SpotVerseStrategy,
};
use spotverse_bench::{bench_config, bench_fleet, header, hours, paper_vs_measured, section, BENCH_SEED};

fn main() {
    header(
        "Table 4 — SpotVerse vs SkyPilot: interruptions, cost, completion time",
        "paper §5.2.5, Table 4",
    );
    let config = bench_config(
        BENCH_SEED,
        InstanceType::M5Xlarge,
        bench_fleet(WorkloadKind::StandardGeneral, 40, BENCH_SEED),
        1,
    );
    let market = Arc::new(SpotMarket::new(config.market));

    let spotverse = run_experiment_on(
        Arc::clone(&market),
        config.clone(),
        Box::new(SpotVerseStrategy::new(SpotVerseConfig::paper_default(
            InstanceType::M5Xlarge,
        ))),
    );
    let skypilot = run_experiment_on(
        Arc::clone(&market),
        config,
        Box::new(SkyPilotStrategy::new()),
    );

    section("table 4");
    paper_vs_measured("SpotVerse interruptions", "42", &spotverse.interruptions.to_string());
    paper_vs_measured("SkyPilot interruptions", "129", &skypilot.interruptions.to_string());
    paper_vs_measured("SpotVerse cost", "$36.73", &spotverse.cost.total.to_string());
    paper_vs_measured("SkyPilot cost", "$74.76", &skypilot.cost.total.to_string());
    paper_vs_measured(
        "SpotVerse completion time",
        "12.3 h",
        &hours(spotverse.makespan.as_hours_f64()),
    );
    paper_vs_measured(
        "SkyPilot completion time",
        "30.9 h",
        &hours(skypilot.makespan.as_hours_f64()),
    );

    let delta = compare(&skypilot, &spotverse);
    section("reductions (SpotVerse vs SkyPilot)");
    paper_vs_measured("cost reduction", "51%", &format!("{:.0}%", delta.cost_reduction_pct));
    paper_vs_measured(
        "completion-time reduction",
        "60%",
        &format!("{:.0}%", delta.time_reduction_pct),
    );
    paper_vs_measured(
        "interruption reduction",
        "67%",
        &format!("{:.0}%", delta.interruption_reduction_pct),
    );

    section("shape checks");
    let wins = spotverse.interruptions < skypilot.interruptions
        && spotverse.cost.total < skypilot.cost.total
        && spotverse.makespan < skypilot.makespan;
    println!("  SpotVerse beats SkyPilot on all three metrics: {wins}");
    println!(
        "  SkyPilot launch regions (price-chasing): {:?}",
        skypilot
            .launches_by_region
            .iter()
            .map(|(r, n)| format!("{}:{n}", r.name()))
            .collect::<Vec<_>>()
    );
    println!(
        "  SpotVerse launch regions (score-aware):  {:?}",
        spotverse
            .launches_by_region
            .iter()
            .map(|(r, n)| format!("{}:{n}", r.name()))
            .collect::<Vec<_>>()
    );
}
