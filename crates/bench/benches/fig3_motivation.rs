//! Figure 3: the motivational experiment — single-region (ca-central-1) vs
//! a naive multi-region deployment over {ap-northeast-3, ca-central-1,
//! eu-north-1}, 42 m5.xlarge workloads, standard and checkpoint variants.

use std::sync::Arc;

use bio_workloads::WorkloadKind;
use cloud_market::{InstanceType, Region, SpotMarket};
use spotverse::{
    compare, run_experiment_on, ExperimentReport, NaiveMultiRegionStrategy,
    SingleRegionStrategy, Strategy,
};
use spotverse_bench::{bench_config, bench_fleet, header, hours, paper_vs_measured, pct, section, BENCH_SEED};

/// The standard-workload runs use a calm mid-horizon window (day 30); the
/// checkpoint runs use the capacity-crunch window (day 40) — the paper's
/// two experiments likewise ran at different times.
fn start_day(kind: WorkloadKind) -> u64 {
    match kind {
        WorkloadKind::NgsPreprocessing => 40,
        _ => 30,
    }
}

fn run(kind: WorkloadKind, strategy: Box<dyn Strategy>, market: &Arc<SpotMarket>) -> ExperimentReport {
    let config = bench_config(
        BENCH_SEED,
        InstanceType::M5Xlarge,
        bench_fleet(kind, 42, BENCH_SEED),
        start_day(kind),
    );
    run_experiment_on(Arc::clone(market), config, strategy)
}

fn main() {
    header(
        "Figure 3 — workload completion time and cost: single vs multi-region",
        "paper §2.2, Figures 3a–3b",
    );
    let config = bench_config(
        BENCH_SEED,
        InstanceType::M5Xlarge,
        bench_fleet(WorkloadKind::GenomeReconstruction, 1, BENCH_SEED),
        30,
    );
    let market = Arc::new(SpotMarket::new(config.market));

    for (kind, label, paper_cost, paper_time, paper_int) in [
        (
            WorkloadKind::GenomeReconstruction,
            "standard (Genome Reconstruction)",
            "-5.67%",
            "-30.49%",
            "190 -> 165 (-13.2%)",
        ),
        (
            WorkloadKind::NgsPreprocessing,
            "checkpoint (NGS Data Preprocessing)",
            "-9.43%",
            "-6.63%",
            "125 -> 73 (-41.6%)",
        ),
    ] {
        section(label);
        let single = run(kind, Box::new(SingleRegionStrategy::new(Region::CaCentral1)), &market);
        let multi = run(kind, Box::new(NaiveMultiRegionStrategy::paper_motivational()), &market);
        let delta = compare(&single, &multi);
        paper_vs_measured("multi-region cost delta", paper_cost, &pct(-delta.cost_reduction_pct));
        paper_vs_measured(
            "multi-region completion-time delta",
            paper_time,
            &pct(-delta.time_reduction_pct),
        );
        paper_vs_measured(
            "interruptions single -> multi",
            paper_int,
            &format!(
                "{} -> {} ({:+.1}%)",
                single.interruptions,
                multi.interruptions,
                -delta.interruption_reduction_pct
            ),
        );
        println!(
            "  single: {} / {} / {}    multi: {} / {} / {}",
            hours(single.makespan.as_hours_f64()),
            single.interruptions,
            single.cost.total,
            hours(multi.makespan.as_hours_f64()),
            multi.interruptions,
            multi.cost.total,
        );
        let wins = multi.cost.total < single.cost.total
            && multi.makespan.as_hours_f64() <= single.makespan.as_hours_f64() * 1.05
            && multi.interruptions < single.interruptions;
        println!("  shape: multi-region cuts cost & interruptions without hurting time: {wins}");
    }

    println!("\nnote: the paper also observes that blindly shifting to high-interruption");
    println!("regions can backfire (§2.2 / §5.2.4) — reproduced in fig10_thresholds.");
}
