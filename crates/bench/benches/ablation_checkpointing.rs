//! Ablation: checkpoint granularity and storage backend (paper §7).
//!
//! Two knobs on the checkpoint workload:
//!  * **shard count** — how much work an interruption can destroy
//!    (1 shard = restart-from-scratch; 80 shards = lose ≤ 8 minutes);
//!  * **storage backend** — the S3-like object store (cheap, transfer-bound
//!    uploads) vs the EFS-like shared filesystem §7 proposes (instant
//!    in-region writes, pricier storage, WAN-penalized cross-region reads).
//!
//! 40 NGS workloads in the day-40 crunch window, single-region baseline
//! (maximum interruption pressure), mean of three repetitions.

use bio_workloads::WorkloadKind;
use cloud_market::{InstanceType, Region};
use spotverse::{
    run_repetitions, RepetitionMarket, AggregateReport, CheckpointBackend, SingleRegionStrategy,
};
use spotverse_bench::{bench_config, bench_fleet, header, section, BENCH_SEED};

const REPS: u32 = 3;

fn run_variant(shards: Option<u32>, backend: CheckpointBackend) -> AggregateReport {
    let mut fleet = bench_fleet(WorkloadKind::NgsPreprocessing, 40, BENCH_SEED);
    for spec in &mut fleet {
        spec.shards = shards;
    }
    let mut config = bench_config(BENCH_SEED, InstanceType::M5Xlarge, fleet, 40);
    config.checkpoint_backend = backend;
    run_repetitions(
        &config,
        || Box::new(SingleRegionStrategy::new(Region::CaCentral1)),
        REPS,
     RepetitionMarket::Reseeded,)
}

fn main() {
    header(
        "Ablation — checkpoint shard granularity and storage backend",
        "paper §7 (EFS future work) + §5.1.1 (segmented dataset)",
    );

    section("shard granularity (object-store backend)");
    println!(
        "  {:<12} {:>13} {:>14} {:>10}",
        "shards", "interruptions", "mean compl.", "cost"
    );
    let mut by_shards = Vec::new();
    for shards in [1u32, 5, 20, 80] {
        let agg = run_variant(Some(shards), CheckpointBackend::ObjectStore);
        println!(
            "  {:<12} {:>13.0} {:>12.2} h {:>9.2}$",
            shards,
            agg.interruptions.mean(),
            agg.mean_completion_hours.mean(),
            agg.cost.mean()
        );
        by_shards.push((shards, agg));
    }

    section("storage backend (default 20 shards)");
    let s3 = run_variant(None, CheckpointBackend::ObjectStore);
    let efs = run_variant(None, CheckpointBackend::SharedFileSystem);
    println!(
        "  {:<12} {:>13} {:>14} {:>10}",
        "backend", "interruptions", "mean compl.", "cost"
    );
    for (label, agg) in [("s3-like", &s3), ("efs-like", &efs)] {
        println!(
            "  {:<12} {:>13.0} {:>12.2} h {:>9.2}$",
            label,
            agg.interruptions.mean(),
            agg.mean_completion_hours.mean(),
            agg.cost.mean()
        );
    }

    section("shape checks");
    let coarse = &by_shards[0].1; // 1 shard ≈ restart-from-scratch
    let fine = &by_shards[3].1; // 80 shards
    println!(
        "  finer shards shorten completion (1 shard {:.1} h -> 80 shards {:.1} h): {}",
        coarse.mean_completion_hours.mean(),
        fine.mean_completion_hours.mean(),
        fine.mean_completion_hours.mean() < coarse.mean_completion_hours.mean()
    );
    println!(
        "  finer shards cut cost (less recomputation): {}",
        fine.cost.mean() < coarse.cost.mean()
    );
    let monotone = by_shards
        .windows(2)
        .all(|w| w[1].1.mean_completion_hours.mean() <= w[0].1.mean_completion_hours.mean() * 1.05);
    println!("  completion time is (weakly) monotone in granularity: {monotone}");
    println!(
        "  efs-like matches s3-like completion within 5% (same progress semantics): {}",
        (efs.mean_completion_hours.mean() / s3.mean_completion_hours.mean() - 1.0).abs() < 0.05
    );
    println!(
        "  backends differ in storage/transfer spend (the §7 trade-off): {}",
        (efs.cost.mean() - s3.cost.mean()).abs() > 0.01
    );
}
