//! Figure 7: SpotVerse vs single-region deployment — standard and
//! checkpoint Galaxy workloads (40 parallel m5.xlarge instances, starting
//! in ca-central-1; mean of three repetitions, as in the paper).

use bio_workloads::WorkloadKind;
use cloud_market::{InstanceType, Region};
use sim_kernel::SimDuration;
use spotverse::{
    run_repetitions, RepetitionMarket, AggregateReport, ExperimentReport, InitialPlacement, OnDemandStrategy,
    SingleRegionStrategy, SpotVerseConfig, SpotVerseStrategy, Strategy,
};
use spotverse_bench::{
    bench_config, bench_fleet, header, hours, paper_vs_measured, section, BENCH_SEED,
};

const REPS: u32 = 3;

fn run<F>(kind: WorkloadKind, start_day: u64, factory: F) -> AggregateReport
where
    F: Fn() -> Box<dyn Strategy> + Sync,
{
    let config = bench_config(
        BENCH_SEED,
        InstanceType::M5Xlarge,
        bench_fleet(kind, 40, BENCH_SEED),
        start_day,
    );
    run_repetitions(&config, factory, REPS, RepetitionMarket::Reseeded)
}

fn spotverse() -> Box<dyn Strategy> {
    Box::new(SpotVerseStrategy::new(
        SpotVerseConfig::builder(InstanceType::M5Xlarge)
            .initial_placement(InitialPlacement::SingleRegion(Region::CaCentral1))
            .build(),
    ))
}

fn print_cumulative(report: &ExperimentReport, label: &str) {
    // Sample rep-0's cumulative-interruption trajectory every 4 hours.
    let series = &report.cumulative_interruptions;
    if series.is_empty() {
        println!("  {label:<14} (no interruptions)");
        return;
    }
    let start = series.iter().next().map(|&(t, _)| t).unwrap();
    let end = series.last().unwrap().0;
    let samples = series.resample(start, end, SimDuration::from_hours(4));
    let line: Vec<String> = samples
        .iter()
        .take(12)
        .map(|&(_, v)| format!("{v:>4.0}"))
        .collect();
    println!(
        "  {label:<14} cumulative interruptions (4 h steps): {}",
        line.join(" ")
    );
}

fn main() {
    header(
        "Figure 7 — SpotVerse vs single-region, standard & checkpoint workloads",
        "paper §5.2.1, Figures 7a–7d (mean of three repetitions)",
    );

    // --- Standard workload (Genome Reconstruction) ----------------------
    section("standard workload (Genome Reconstruction, restart-from-scratch)");
    let single = run(WorkloadKind::GenomeReconstruction, 1, || {
        Box::new(SingleRegionStrategy::new(Region::CaCentral1))
    });
    let sv = run(WorkloadKind::GenomeReconstruction, 1, spotverse);
    let od = run(WorkloadKind::GenomeReconstruction, 1, || {
        Box::new(OnDemandStrategy::new())
    });

    paper_vs_measured(
        "single-region interruptions",
        "114",
        &format!("{:.0}", single.interruptions.mean()),
    );
    paper_vs_measured(
        "SpotVerse interruptions",
        "69",
        &format!("{:.0}", sv.interruptions.mean()),
    );
    paper_vs_measured(
        "single-region completion time",
        "~33 h",
        &hours(single.makespan_hours.mean()),
    );
    paper_vs_measured(
        "SpotVerse completion time",
        "~14 h",
        &hours(sv.makespan_hours.mean()),
    );
    paper_vs_measured(
        "single-region cost",
        "$73.92",
        &format!("${:.2}", single.cost.mean()),
    );
    paper_vs_measured("SpotVerse cost", "$41.46", &format!("${:.2}", sv.cost.mean()));
    paper_vs_measured("on-demand cost", "$77.81", &format!("${:.2}", od.cost.mean()));
    paper_vs_measured(
        "SpotVerse cost vs on-demand",
        "-46.7%",
        &format!("{:+.1}%", (sv.cost.mean() / od.cost.mean() - 1.0) * 100.0),
    );

    section("figure 7a/7b series (standard, repetition 0)");
    print_cumulative(&single.runs[0], "single-region");
    print_cumulative(&sv.runs[0], "spotverse");

    section("figure 7c — regional interruption distribution (standard, repetition 0)");
    println!("  single-region: {:?}", region_counts(&single.runs[0]));
    println!("  spotverse:     {:?}", region_counts(&sv.runs[0]));
    paper_vs_measured(
        "SpotVerse interruption regions",
        "several (stacked bar)",
        &format!("{} regions", sv.runs[0].interruptions_by_region.len()),
    );

    // --- Checkpoint workload (NGS Data Preprocessing) --------------------
    section("checkpoint workload (NGS Data Preprocessing, resume)");
    // The paper's checkpoint experiments ran in a different (worse) market
    // window; our calibrated market has a capacity crunch around day 40.
    let single_c = run(WorkloadKind::NgsPreprocessing, 40, || {
        Box::new(SingleRegionStrategy::new(Region::CaCentral1))
    });
    let sv_c = run(WorkloadKind::NgsPreprocessing, 40, spotverse);
    paper_vs_measured(
        "single-region interruptions",
        "136",
        &format!("{:.0}", single_c.interruptions.mean()),
    );
    paper_vs_measured(
        "SpotVerse interruptions",
        "81",
        &format!("{:.0}", sv_c.interruptions.mean()),
    );
    paper_vs_measured(
        "single-region cost",
        "$29.64",
        &format!("${:.2}", single_c.cost.mean()),
    );
    paper_vs_measured("SpotVerse cost", "$26.26", &format!("${:.2}", sv_c.cost.mean()));
    paper_vs_measured(
        "single-region completion time",
        "15.46 h",
        &hours(single_c.makespan_hours.mean()),
    );
    paper_vs_measured(
        "SpotVerse completion time",
        "11.75 h",
        &hours(sv_c.makespan_hours.mean()),
    );
    print_cumulative(&single_c.runs[0], "single-region");
    print_cumulative(&sv_c.runs[0], "spotverse");

    section("shape checks (repetition means)");
    let ok_std = sv.interruptions.mean() < single.interruptions.mean()
        && sv.makespan_hours.mean() < single.makespan_hours.mean()
        && sv.cost.mean() < single.cost.mean()
        && sv.cost.mean() < od.cost.mean();
    let ok_ckpt = sv_c.interruptions.mean() < single_c.interruptions.mean()
        && sv_c.makespan_hours.mean() < single_c.makespan_hours.mean()
        && sv_c.cost.mean() < single_c.cost.mean();
    println!("  standard:   SpotVerse wins on interruptions, time and cost: {ok_std}");
    println!("  checkpoint: SpotVerse wins on interruptions, time and cost: {ok_ckpt}");
}

fn region_counts(report: &ExperimentReport) -> Vec<(String, u64)> {
    report
        .interruptions_by_region
        .iter()
        .map(|(r, n)| (r.name().to_owned(), *n))
        .collect()
}
