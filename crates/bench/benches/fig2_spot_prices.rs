//! Figure 2: spot-price diversity across a spectrum of instance types and
//! regions (per-AZ daily price traces over 90 days).

use cloud_market::traces::{price_traces, DailySeries};
use cloud_market::{InstanceType, MarketConfig, SpotMarket};
use spotverse_bench::{header, paper_vs_measured, section, BENCH_SEED};

fn spread(traces: &[DailySeries]) -> (f64, f64) {
    let means: Vec<f64> = traces.iter().map(DailySeries::mean).collect();
    let lo = means.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = means.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    (lo, hi)
}

fn volatility(series: &DailySeries) -> f64 {
    let mean = series.mean();
    if mean == 0.0 {
        return 0.0;
    }
    let var = series
        .points
        .iter()
        .map(|&(_, v)| (v - mean).powi(2))
        .sum::<f64>()
        / series.points.len() as f64;
    var.sqrt() / mean
}

fn main() {
    header(
        "Figure 2 — spot price diversity across instance types and regions",
        "paper §2.1.2, Figures 2a–2d",
    );
    let market = SpotMarket::new(MarketConfig::with_seed(BENCH_SEED));
    let days = 90;
    for itype in [
        InstanceType::C52xlarge,
        InstanceType::M52xlarge,
        InstanceType::R52xlarge,
        InstanceType::P32xlarge,
    ] {
        section(&format!("{itype} ({})", itype.family().description()));
        let traces = price_traces(&market, itype, days).expect("within horizon");
        let (lo, hi) = spread(&traces);
        println!(
            "  {} region/AZ series over {days} days; mean prices ${lo:.4}/h - ${hi:.4}/h",
            traces.len()
        );
        paper_vs_measured(
            "cross-market price spread (max/min)",
            "large (visual)",
            &format!("{:.2}x", hi / lo),
        );
        let mean_vol = traces.iter().map(volatility).sum::<f64>() / traces.len() as f64;
        paper_vs_measured(
            "within-market volatility (CV)",
            "visible fluctuation",
            &format!("{:.1}%", mean_vol * 100.0),
        );
        // Show a few representative traces, sampled every 15 days.
        for series in traces.iter().step_by((traces.len() / 4).max(1)) {
            let samples: Vec<String> = series
                .points
                .iter()
                .step_by(15)
                .map(|&(_, v)| format!("{v:.3}"))
                .collect();
            println!("    {:<18} {}", series.label, samples.join("  "));
        }
    }
    println!("\nresult: every instance type shows multi-x regional price spread and");
    println!("day-to-day fluctuation — the diversity motivating multi-region placement.");
}
