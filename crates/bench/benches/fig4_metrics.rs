//! Figure 4: advisor-metric dynamics — the Interruption-Frequency heatmap
//! (m5.2xlarge across regions, 180 days) and six-month trajectories of the
//! average Stability Score and Spot Placement Score for c5/m5/p3.2xlarge.

use cloud_market::traces::{average_placement_series, average_stability_series, band_heatmap, DailySeries};
use cloud_market::{InstanceType, InterruptionBand, MarketConfig, MarketError, SpotMarket};
use spotverse_bench::{header, paper_vs_measured, section, BENCH_SEED};

const DAYS: u32 = 180;

fn main() {
    header(
        "Figure 4 — Interruption Frequency and Spot Placement Score dynamics",
        "paper §3.1, Figures 4a–4c",
    );
    let market = SpotMarket::new(MarketConfig::with_seed(BENCH_SEED));

    // --- 4a: heatmap -----------------------------------------------------
    section("figure 4a — Interruption-Frequency heatmap (m5.2xlarge, 180 days)");
    let hm = band_heatmap(&market, InstanceType::M52xlarge, DAYS).expect("within horizon");
    for (region, row) in hm.regions.iter().zip(hm.cells.iter()) {
        // One character per 6 days: . = <5%, - = 5-20%, # = >20%.
        let glyphs: String = row
            .iter()
            .step_by(6)
            .map(|band| match band {
                InterruptionBand::Under5 => '.',
                InterruptionBand::Over20 => '#',
                _ => '-',
            })
            .collect();
        println!("  {:<16} {}", region.name(), glyphs);
    }
    let shares = hm.band_shares();
    paper_vs_measured(
        "share of <5% cells",
        "light regions exist",
        &format!("{:.0}%", shares[0] * 100.0),
    );
    paper_vs_measured(
        "share of >20% cells",
        "dark regions exist",
        &format!("{:.0}%", shares[4] * 100.0),
    );
    println!("  (legend: . = <5%, - = 5-20%, # = >20%; regional variation is visible)");

    // --- 4b/4c: average score trajectories --------------------------------
    type SeriesFn = fn(&SpotMarket, InstanceType, u32) -> Result<DailySeries, MarketError>;
    for (title, series_fn, lo, hi) in [
        (
            "figure 4b — average Stability Score across regions",
            average_stability_series as SeriesFn,
            1.0,
            3.0,
        ),
        (
            "figure 4c — average Spot Placement Score across regions",
            average_placement_series as SeriesFn,
            1.0,
            10.0,
        ),
    ] {
        section(title);
        for itype in [
            InstanceType::C52xlarge,
            InstanceType::M52xlarge,
            InstanceType::P32xlarge,
        ] {
            let series = series_fn(&market, itype, DAYS).expect("within horizon");
            let monthly: Vec<String> = series
                .points
                .iter()
                .step_by(30)
                .map(|&(_, v)| format!("{v:.2}"))
                .collect();
            println!(
                "  {:<12} monthly samples: {}   (mean {:.2}, scale {lo}-{hi})",
                itype.name(),
                monthly.join("  "),
                series.mean()
            );
        }
    }

    // Structural claim of Figure 4c: p3's placement score is consistent
    // across regions while c5/m5 fluctuate.
    section("figure 4c structural check");
    let per_region_spread = |itype: InstanceType| {
        let regions = market.regions_offering(itype);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &r in regions {
            let mut sum = 0.0;
            for day in 0..DAYS {
                sum += f64::from(
                    market
                        .placement_score(r, itype, sim_kernel::SimTime::from_days(day.into()))
                        .unwrap()
                        .value(),
                );
            }
            let mean = sum / f64::from(DAYS);
            lo = lo.min(mean);
            hi = hi.max(mean);
        }
        hi - lo
    };
    let p3 = per_region_spread(InstanceType::P32xlarge);
    let m5 = per_region_spread(InstanceType::M52xlarge);
    let c5 = per_region_spread(InstanceType::C52xlarge);
    paper_vs_measured(
        "p3 cross-region placement spread",
        "consistent (small)",
        &format!("{p3:.2}"),
    );
    paper_vs_measured("m5 cross-region placement spread", "fluctuating", &format!("{m5:.2}"));
    paper_vs_measured("c5 cross-region placement spread", "fluctuating", &format!("{c5:.2}"));
    println!(
        "\nresult: p3 spread < m5/c5 spread: {}",
        p3 < m5.min(c5)
    );
}
