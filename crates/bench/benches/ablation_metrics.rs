//! Ablation: metric availability across cloud providers (paper §7).
//!
//! "Azure only provides Interruption Frequency data, while Google Cloud
//! Platform currently lacks comprehensive spot instance metrics." Run the
//! identical fleet under full (AWS-like), interruption-only (Azure-like)
//! and price-only (GCP-like) metric availability, plus the forecasting
//! variant (§7's prediction direction), and quantify what each metric is
//! worth.

use bio_workloads::WorkloadKind;
use cloud_market::InstanceType;
use spotverse::{
    run_repetitions, RepetitionMarket, AggregateReport, ForecastingSpotVerseStrategy, MetricAvailability,
    ProviderAdaptedStrategy, SpotVerseConfig, Strategy,
};
use spotverse_bench::{bench_config, bench_fleet, header, section, BENCH_SEED};

const REPS: u32 = 3;

fn run_variant(
    label: &str,
    make: impl Fn() -> Box<dyn Strategy> + Sync,
) -> (String, AggregateReport) {
    let config = bench_config(
        BENCH_SEED,
        InstanceType::M5Xlarge,
        bench_fleet(WorkloadKind::StandardGeneral, 40, BENCH_SEED),
        1,
    );
    (label.to_owned(), run_repetitions(&config, make, REPS, RepetitionMarket::Reseeded))
}

fn main() {
    header(
        "Ablation — advisor-metric availability across providers",
        "paper §7 (multi-provider future work) + §3.1 (metric value)",
    );

    // The degraded variants re-base the threshold so neutral priors keep
    // the same number of observable-signal levels: full keeps 6; Azure-like
    // (placement fixed at 5) needs stability ≥ 2 → threshold 7; GCP-like
    // collapses everything → threshold ≤ 7 admits all regions.
    let mut variants: Vec<(String, AggregateReport)> = Vec::new();
    variants.push(run_variant("full metrics (AWS-like)", || {
        Box::new(ProviderAdaptedStrategy::new(
            SpotVerseConfig::builder(InstanceType::M5Xlarge).threshold(6).build(),
            MetricAvailability::Full,
        ))
    }));
    variants.push(run_variant("interruption-only (Azure-like)", || {
        Box::new(ProviderAdaptedStrategy::new(
            SpotVerseConfig::builder(InstanceType::M5Xlarge).threshold(7).build(),
            MetricAvailability::InterruptionOnly,
        ))
    }));
    variants.push(run_variant("price-only (GCP-like)", || {
        Box::new(ProviderAdaptedStrategy::new(
            SpotVerseConfig::builder(InstanceType::M5Xlarge).threshold(7).build(),
            MetricAvailability::PriceOnly,
        ))
    }));
    variants.push(run_variant("full + Holt forecasting", || {
        Box::new(ForecastingSpotVerseStrategy::new(
            SpotVerseConfig::builder(InstanceType::M5Xlarge).threshold(6).build(),
        ))
    }));

    section("results (mean of three repetitions)");
    println!(
        "  {:<36} {:>13} {:>12} {:>10}",
        "metric availability", "interruptions", "makespan", "cost"
    );
    for (label, agg) in &variants {
        println!(
            "  {:<36} {:>13.0} {:>10.1} h {:>9.2}$",
            label,
            agg.interruptions.mean(),
            agg.makespan_hours.mean(),
            agg.cost.mean()
        );
    }

    section("shape checks");
    let full = &variants[0].1;
    let azure = &variants[1].1;
    let gcp = &variants[2].1;
    println!(
        "  richer metrics -> fewer interruptions (full <= azure <= gcp): {}",
        full.interruptions.mean() <= azure.interruptions.mean() * 1.1
            && azure.interruptions.mean() <= gcp.interruptions.mean() * 1.1
    );
    println!(
        "  price-only degenerates toward SkyPilot-like interruption counts: {}",
        gcp.interruptions.mean() > 2.0 * full.interruptions.mean()
    );
    let forecast = &variants[3].1;
    println!(
        "  forecasting stays within 15% of plain SpotVerse on cost: {}",
        (forecast.cost.mean() / full.cost.mean() - 1.0).abs() < 0.15
    );
}
