//! Sweep-engine performance: measures the wins the sweep engine claims —
//! lazy market materialization, shared-market chaos matrices, and
//! memoized monitor collection — and records them in `BENCH_sweep.json`
//! at the repo root for regression tracking.

use std::sync::Arc;
use std::time::Instant;

use cloud_compute::BillingLedger;
use cloud_market::{InstanceType, MarketConfig, Region, SpotMarket};
use aws_stack::{FunctionRuntime, KvStore, MetricsService};
use sim_kernel::SimTime;
use spotverse::{
    resolve_jobs, run_matrix, run_matrix_orchestrated, MarketCache, Monitor, OrchestratorConfig,
    SnapshotMemo, SpotVerseConfig, SpotVerseStrategy, Strategy, SweepCell,
};
use spotverse_bench::{bench_config, bench_fleet, header, section, BENCH_SEED};

use bio_workloads::WorkloadKind;

fn strategy_for(cell: &SweepCell) -> Box<dyn Strategy> {
    match cell.strategy.as_str() {
        "single-region" => Box::new(spotverse::SingleRegionStrategy::new(Region::CaCentral1)),
        "skypilot" => Box::new(spotverse::SkyPilotStrategy::new()),
        _ => Box::new(SpotVerseStrategy::new(SpotVerseConfig::paper_default(
            InstanceType::M5Xlarge,
        ))),
    }
}

/// Best-of-`reps` wall time for `f`, in seconds.
fn best_of<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    header(
        "sweep engine performance",
        "this repo's parallel sweep engine (no direct paper figure)",
    );

    // -- market construction: eager full build vs lazy segments -----------
    // `new` only walks the daily interruption bands and demand episodes;
    // price and placement trajectories materialize in segments on first
    // query (DESIGN.md §13). `new_eager` is the old up-front build.
    section("market construction (210-day horizon, 12 regions)");
    let config = MarketConfig::with_seed(BENCH_SEED);
    let eager_build = best_of(3, || {
        std::hint::black_box(SpotMarket::new_eager(config));
    });
    let lazy_build = best_of(3, || {
        std::hint::black_box(SpotMarket::new(config));
    });
    println!("  eager {:>10.6} s", eager_build);
    println!(
        "  lazy  {:>10.6} s   ({:.0}x)",
        lazy_build,
        eager_build / lazy_build
    );

    // -- chaos-style matrix: strategies × (fault-free + scenarios) --------
    // Fleet sized so per-cell simulation dominates the one shared market
    // build; speedup then tracks the worker count.
    section("chaos matrix throughput (3 strategies x 9 cells, one seed)");
    let base = bench_config(
        BENCH_SEED,
        InstanceType::M5Xlarge,
        bench_fleet(WorkloadKind::GenomeReconstruction, 240, BENCH_SEED),
        1,
    );
    let mut cells = Vec::new();
    for name in ["single-region", "skypilot", "spotverse"] {
        cells.push(SweepCell::new(format!("{name}/fault-free"), name, base.clone()));
        for scenario in chaos::library() {
            let mut config = base.clone();
            let label = format!("{name}/{}", scenario.name());
            config.chaos = Some(scenario);
            cells.push(SweepCell::new(label, name, config));
        }
    }
    let n_cells = cells.len();
    let jobs = resolve_jobs(None, n_cells);
    // Fresh cache per run so every run pays exactly one market build.
    let serial_matrix = best_of(2, || {
        let cache = MarketCache::new();
        std::hint::black_box(run_matrix(&cells, 1, &cache, strategy_for));
    });
    let mut hits = 0;
    let mut misses = 0;
    let parallel_matrix = best_of(2, || {
        let cache = MarketCache::new();
        std::hint::black_box(run_matrix(&cells, jobs, &cache, strategy_for));
        hits = cache.hits();
        misses = cache.misses();
    });
    let speedup = serial_matrix / parallel_matrix;
    println!(
        "  jobs=1     {:>8.3} s   {:>6.2} cells/s",
        serial_matrix,
        n_cells as f64 / serial_matrix
    );
    println!(
        "  jobs={jobs:<2}    {:>8.3} s   {:>6.2} cells/s   ({speedup:.2}x)",
        parallel_matrix,
        n_cells as f64 / parallel_matrix
    );
    println!("  market cache: {misses} miss, {hits} hits across {n_cells} cells");
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    if cores < 4 {
        println!("  (only {cores} cores here; the >=2x target assumes >=4)");
    }

    // -- monitor tick rate: unmemoized vs epoch-memoized ------------------
    section("monitor collection rate");
    let market = Arc::new(SpotMarket::new(config));
    let monitor = Monitor::new(InstanceType::M5Xlarge, Region::UsEast1);
    let mut functions = FunctionRuntime::new();
    let mut kv = KvStore::new();
    monitor.provision(&mut functions, &mut kv);
    let mut metrics = MetricsService::new(Region::UsEast1);
    let mut ledger = BillingLedger::new();
    let ticks = 2_000u64;
    let at = SimTime::from_hours(24);
    let unmemoized = best_of(2, || {
        for _ in 0..ticks {
            monitor
                .collect(&market, at, &mut functions, &mut kv, &mut metrics, &mut ledger)
                .unwrap();
        }
    });
    let mut memo = SnapshotMemo::new();
    let memoized = best_of(2, || {
        for _ in 0..ticks {
            monitor
                .collect_memoized(
                    &market, None, at, &mut memo, &mut functions, &mut kv, &mut metrics,
                    &mut ledger,
                )
                .unwrap();
        }
    });
    let unmemoized_rate = ticks as f64 / unmemoized;
    let memoized_rate = ticks as f64 / memoized;
    println!("  unmemoized {unmemoized_rate:>12.0} ticks/s");
    println!(
        "  memoized   {memoized_rate:>12.0} ticks/s   ({:.1}x)",
        memoized_rate / unmemoized_rate
    );

    // -- orchestrated sweep: distributed re-host vs in-process ------------
    // Fault-free, the orchestrator runs the identical cell computations
    // plus the lease/dispatch/persist machinery; the delta is pure
    // orchestration overhead (DESIGN.md §14).
    section("orchestrated sweep overhead (6 cells, fault-free)");
    let orch_cells: Vec<SweepCell> = (0..6)
        .map(|i| SweepCell::new(format!("cell-{i}"), "spotverse", base.clone()))
        .collect();
    let orch_inprocess = best_of(2, || {
        let cache = MarketCache::new();
        std::hint::black_box(run_matrix(&orch_cells, 1, &cache, strategy_for));
    });
    let orch_config = OrchestratorConfig::default();
    let orchestrated = best_of(2, || {
        let cache = MarketCache::new();
        std::hint::black_box(run_matrix_orchestrated(
            &orch_cells,
            &orch_config,
            &cache,
            strategy_for,
        ));
    });
    let orch_overhead_pct = (orchestrated / orch_inprocess - 1.0) * 100.0;
    println!("  in-process   {orch_inprocess:>8.3} s");
    println!("  orchestrated {orchestrated:>8.3} s   (+{orch_overhead_pct:.1}%)");

    // -- record ------------------------------------------------------------
    let json = format!(
        "{{\n  \"cpu_cores\": {cores},\n  \
         \"market_build_eager_secs\": {eager_build:.6},\n  \
         \"market_build_lazy_secs\": {lazy_build:.6},\n  \
         \"market_lazy_construct_speedup\": {:.3},\n  \
         \"matrix_cells\": {n_cells},\n  \
         \"matrix_jobs\": {jobs},\n  \
         \"matrix_serial_secs\": {serial_matrix:.6},\n  \
         \"matrix_parallel_secs\": {parallel_matrix:.6},\n  \
         \"matrix_serial_cells_per_sec\": {:.3},\n  \
         \"matrix_parallel_cells_per_sec\": {:.3},\n  \
         \"matrix_speedup\": {speedup:.3},\n  \
         \"market_cache_misses\": {misses},\n  \
         \"market_cache_hits\": {hits},\n  \
         \"monitor_ticks_per_sec_unmemoized\": {unmemoized_rate:.1},\n  \
         \"monitor_ticks_per_sec_memoized\": {memoized_rate:.1},\n  \
         \"monitor_memo_speedup\": {:.3},\n  \
         \"orchestrate_inprocess_secs\": {orch_inprocess:.6},\n  \
         \"orchestrate_matrix_secs\": {orchestrated:.6},\n  \
         \"orchestrate_overhead_pct\": {orch_overhead_pct:.1}\n}}\n",
        eager_build / lazy_build,
        n_cells as f64 / serial_matrix,
        n_cells as f64 / parallel_matrix,
        memoized_rate / unmemoized_rate,
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");
    std::fs::write(out, &json).expect("write BENCH_sweep.json");
    println!("\nwrote {out}");
}
