//! Figure 8: performance impact of instance types and sizes — interruption
//! counts and completion times, single-region (Table 1 baseline region) vs
//! SpotVerse, for three 2xlarge types and three m5 sizes; standard general
//! workload, 40 instances, mean of three repetitions (as in the paper).

use bio_workloads::WorkloadKind;
use cloud_market::{cheapest_spot_region_at_start, InstanceType};
use spotverse::{
    run_repetitions, RepetitionMarket, AggregateReport, InitialPlacement, OnDemandStrategy, SingleRegionStrategy,
    SpotVerseConfig, SpotVerseStrategy,
};
use spotverse_bench::{bench_config, bench_fleet, header, hours, paper_vs_measured, section, BENCH_SEED};

const REPS: u32 = 3;

struct Row {
    single: AggregateReport,
    spotverse: AggregateReport,
    on_demand: AggregateReport,
}

fn run_type(itype: InstanceType) -> Row {
    let fleet = bench_fleet(WorkloadKind::StandardGeneral, 40, BENCH_SEED);
    let config = bench_config(BENCH_SEED, itype, fleet, 1);
    let baseline = cheapest_spot_region_at_start(itype);
    let single = run_repetitions(
        &config,
        || Box::new(SingleRegionStrategy::new(baseline)),
        REPS,
     RepetitionMarket::Reseeded,);
    let spotverse = run_repetitions(
        &config,
        || {
            Box::new(SpotVerseStrategy::new(
                SpotVerseConfig::builder(itype)
                    .initial_placement(InitialPlacement::SingleRegion(baseline))
                    .build(),
            ))
        },
        REPS,
     RepetitionMarket::Reseeded,);
    let on_demand = run_repetitions(&config, || Box::new(OnDemandStrategy::new()), REPS, RepetitionMarket::Reseeded);
    Row {
        single,
        spotverse,
        on_demand,
    }
}

fn print_row(itype: InstanceType, row: &Row) {
    println!(
        "  {:<12} baseline {:<14} single: {:>5.0} int / {:>7} / ${:>7.2}   spotverse: {:>5.0} int / {:>7} / ${:>7.2}   od: ${:>7.2}",
        itype.name(),
        cheapest_spot_region_at_start(itype).name(),
        row.single.interruptions.mean(),
        hours(row.single.makespan_hours.mean()),
        row.single.cost.mean(),
        row.spotverse.interruptions.mean(),
        hours(row.spotverse.makespan_hours.mean()),
        row.spotverse.cost.mean(),
        row.on_demand.cost.mean(),
    );
}

fn saving_pct(base: f64, treatment: f64) -> f64 {
    (1.0 - treatment / base) * 100.0
}

fn main() {
    header(
        "Figure 8 — instance types and sizes: interruptions and completion times",
        "paper §5.2.2, Figures 8a–8d (mean of three repetitions)",
    );

    section("figures 8a/8b — instance types (2xlarge family comparison)");
    let mut rows = Vec::new();
    for itype in [
        InstanceType::M52xlarge,
        InstanceType::C52xlarge,
        InstanceType::R52xlarge,
    ] {
        let row = run_type(itype);
        print_row(itype, &row);
        rows.push((itype, row));
    }

    let r5 = &rows.iter().find(|(t, _)| *t == InstanceType::R52xlarge).unwrap().1;
    paper_vs_measured(
        "r5.2xlarge interruptions single->spotverse",
        "215 -> 92",
        &format!(
            "{:.0} -> {:.0}",
            r5.single.interruptions.mean(),
            r5.spotverse.interruptions.mean()
        ),
    );
    paper_vs_measured(
        "r5.2xlarge cost saving vs single-region",
        "~52%",
        &format!("{:.0}%", saving_pct(r5.single.cost.mean(), r5.spotverse.cost.mean())),
    );
    paper_vs_measured(
        "r5.2xlarge completion-time reduction",
        "~56%",
        &format!(
            "{:.0}%",
            saving_pct(r5.single.makespan_hours.mean(), r5.spotverse.makespan_hours.mean())
        ),
    );
    let c5 = &rows.iter().find(|(t, _)| *t == InstanceType::C52xlarge).unwrap().1;
    paper_vs_measured(
        "c5.2xlarge cost saving vs on-demand",
        "~52%",
        &format!("{:.0}%", saving_pct(c5.on_demand.cost.mean(), c5.spotverse.cost.mean())),
    );

    section("figures 8c/8d — instance sizes (m5 family)");
    let mut size_rows = Vec::new();
    for itype in [
        InstanceType::M5Large,
        InstanceType::M5Xlarge,
        InstanceType::M52xlarge,
    ] {
        let row = run_type(itype);
        print_row(itype, &row);
        size_rows.push((itype, row));
    }
    let m5l = &size_rows.iter().find(|(t, _)| *t == InstanceType::M5Large).unwrap().1;
    paper_vs_measured(
        "m5.large interruptions single->spotverse",
        "137 -> 40",
        &format!(
            "{:.0} -> {:.0}",
            m5l.single.interruptions.mean(),
            m5l.spotverse.interruptions.mean()
        ),
    );
    paper_vs_measured(
        "m5.large cost single->spotverse",
        "$41.7 -> $29.1 (-27%)",
        &format!(
            "${:.2} -> ${:.2} ({:+.0}%)",
            m5l.single.cost.mean(),
            m5l.spotverse.cost.mean(),
            -saving_pct(m5l.single.cost.mean(), m5l.spotverse.cost.mean())
        ),
    );
    let m5x = &size_rows.iter().find(|(t, _)| *t == InstanceType::M5Xlarge).unwrap().1;
    paper_vs_measured(
        "m5.xlarge cost saving vs on-demand",
        "up to 47%",
        &format!("{:.0}%", saving_pct(m5x.on_demand.cost.mean(), m5x.spotverse.cost.mean())),
    );

    section("shape checks");
    let all_types_improve = rows.iter().chain(size_rows.iter()).all(|(_, r)| {
        r.spotverse.interruptions.mean() <= r.single.interruptions.mean() * 1.05
            && r.spotverse.makespan_hours.mean() <= r.single.makespan_hours.mean() * 1.1
    });
    println!(
        "  SpotVerse reduces interruptions and completion time for every type/size: {all_types_improve}"
    );
    let r5_biggest = rows
        .iter()
        .all(|(t, r)| *t == InstanceType::R52xlarge || r.single.interruptions.mean() <= r5.single.interruptions.mean());
    println!("  r5.2xlarge baseline is the most interruption-prone market: {r5_biggest}");
}
