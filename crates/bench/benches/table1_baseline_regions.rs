//! Table 1: baseline (cheapest-spot) regions per instance type.

use cloud_market::{cheapest_spot_region_at_start, InstanceType};
use spotverse_bench::{header, paper_vs_measured};

fn main() {
    header(
        "Table 1 — baseline regions for various spot instance types",
        "paper §5.2.2, Table 1",
    );
    let paper: [(InstanceType, &str); 5] = [
        (InstanceType::M5Large, "us-west-2"),
        (InstanceType::M5Xlarge, "ca-central-1"),
        (InstanceType::M52xlarge, "ap-northeast-3"),
        (InstanceType::R52xlarge, "ca-central-1"),
        (InstanceType::C52xlarge, "eu-north-1"),
    ];
    let mut mismatches = 0;
    for (itype, expected) in paper {
        let measured = cheapest_spot_region_at_start(itype);
        paper_vs_measured(itype.name(), expected, measured.name());
        if measured.name() != expected {
            mismatches += 1;
        }
    }
    println!(
        "\nresult: {}",
        if mismatches == 0 {
            "all baseline regions match the paper".to_owned()
        } else {
            format!("{mismatches} mismatches")
        }
    );
}
