//! Figure 10 (with Tables 2 and 3): threshold-based allocation — normalized
//! cost of m5.xlarge spot fleets under thresholds {4, 5, 6} and workload
//! durations {5, 10, 20} hours, relative to the cheapest on-demand
//! deployment.

use std::sync::Arc;

use bio_workloads::{workload_fleet, WorkloadKind};
use cloud_market::{InstanceType, Region, SpotMarket};
use sim_kernel::{SimDuration, SimRng, SimTime};
use spotverse::{
    normalized_cost, run_experiment_on, Monitor, OnDemandStrategy, Optimizer, SpotVerseConfig,
    SpotVerseStrategy,
};
use spotverse_bench::{bench_config, header, paper_vs_measured, section, BENCH_SEED};

/// Thresholds run mid-horizon (day 90), outside the early surge window —
/// where Table 3's price ordering holds.
const START_DAY: u64 = 90;
const FLEET: usize = 40;

fn fleet(duration_hours: u64) -> Vec<bio_workloads::WorkloadSpec> {
    workload_fleet(
        WorkloadKind::StandardGeneral,
        FLEET,
        SimDuration::from_hours(duration_hours),
        SimDuration::from_mins(30),
        &SimRng::seed_from_u64(BENCH_SEED),
    )
}

fn main() {
    header(
        "Figure 10 + Tables 2-3 — threshold-based allocation, normalized cost",
        "paper §5.2.4",
    );
    let base = bench_config(BENCH_SEED, InstanceType::M5Xlarge, fleet(10), START_DAY);
    let market = Arc::new(SpotMarket::new(base.market));

    // --- Table 3: the regions each threshold selects ----------------------
    section("table 3 — regions selected per threshold");
    let monitor = Monitor::new(InstanceType::M5Xlarge, Region::UsEast1);
    // Use the day's median spot price per region (24 hourly samples) so a
    // transient demand-episode spike at one instant does not reorder the
    // day's selection — Table 3 reflects the day, not one hour.
    let assessments = {
        let mut noon = monitor
            .fresh_assessments(&market, SimTime::from_days(START_DAY) + SimDuration::from_hours(12))
            .expect("within horizon");
        for a in &mut noon {
            let mut prices: Vec<f64> = (0..24)
                .map(|h| {
                    market
                        .spot_price(
                            a.region,
                            InstanceType::M5Xlarge,
                            SimTime::from_days(START_DAY) + SimDuration::from_hours(h),
                        )
                        .expect("within horizon")
                        .rate()
                })
                .collect();
            prices.sort_by(f64::total_cmp);
            a.spot_price = cloud_market::UsdPerHour::new(prices[12]);
        }
        noon
    };
    let paper_sets: [(u8, &str); 3] = [
        (6, "us-west-1, ap-northeast-3, eu-west-1, eu-north-1"),
        (5, "ap-southeast-1, eu-west-3, ca-central-1, eu-west-2"),
        (4, "us-east-1, us-east-2, ap-southeast-2, us-west-2"),
    ];
    for (threshold, paper_set) in paper_sets {
        let optimizer = Optimizer::new(
            SpotVerseConfig::builder(InstanceType::M5Xlarge)
                .threshold(threshold)
                .build(),
        );
        let selected: Vec<&str> = optimizer
            .select_regions(&assessments, &[])
            .iter()
            .map(|a| a.region.name())
            .collect();
        paper_vs_measured(
            &format!("threshold {threshold} regions"),
            paper_set,
            &selected.join(", "),
        );
    }

    // --- Figure 10: normalized cost sweep ---------------------------------
    section("figure 10 — normalized cost (value < 1 means cheaper than on-demand)");
    println!(
        "  paper: thresholds 5-6 save consistently (up to 65%); threshold 4 costs up to +36%"
    );
    println!("\n  {:<10} {:>10} {:>10} {:>10}", "duration", "T=4", "T=5", "T=6");
    let mut grid: Vec<(u64, Vec<f64>)> = Vec::new();
    for duration in [5u64, 10, 20] {
        let workloads = fleet(duration);
        let mut config = base.clone();
        config.workloads = workloads;
        // On-demand reference: same fleet on the cheapest on-demand
        // instances.
        let od_report = run_experiment_on(
            Arc::clone(&market),
            config.clone(),
            Box::new(OnDemandStrategy::new()),
        );
        let mut row = Vec::new();
        for threshold in [4u8, 5, 6] {
            let strategy = SpotVerseStrategy::new(
                SpotVerseConfig::builder(InstanceType::M5Xlarge)
                    .threshold(threshold)
                    .build(),
            );
            let report =
                run_experiment_on(Arc::clone(&market), config.clone(), Box::new(strategy));
            row.push(normalized_cost(&report, od_report.cost.total));
        }
        println!(
            "  {:<10} {:>10.2} {:>10.2} {:>10.2}",
            format!("{duration} h"),
            row[0],
            row[1],
            row[2]
        );
        grid.push((duration, row));
    }

    section("shape checks");
    let t4_20h = grid.iter().find(|(d, _)| *d == 20).unwrap().1[0];
    let best_savings = grid
        .iter()
        .flat_map(|(_, row)| row[1..].iter().copied())
        .fold(f64::INFINITY, f64::min);
    paper_vs_measured(
        "threshold 4 at 20 h (normalized)",
        "~1.36 (more expensive)",
        &format!("{t4_20h:.2}"),
    );
    paper_vs_measured(
        "best savings at thresholds 5-6",
        "up to 65% (0.35)",
        &format!("{:.0}% ({best_savings:.2})", (1.0 - best_savings) * 100.0),
    );
    let t4_worsens = {
        let t4: Vec<f64> = grid.iter().map(|(_, row)| row[0]).collect();
        t4.windows(2).all(|w| w[0] <= w[1] + 0.05)
    };
    println!("  threshold-4 normalized cost grows with duration: {t4_worsens}");
    let savings_shrink = {
        let t6: Vec<f64> = grid.iter().map(|(_, row)| row[2]).collect();
        t6.first().unwrap() <= t6.last().unwrap()
    };
    println!("  savings diminish as duration grows (paper's closing observation): {savings_shrink}");
    let t56_always_save = grid.iter().all(|(_, row)| row[1] < 1.0 && row[2] < 1.0);
    println!("  thresholds 5-6 always save vs on-demand: {t56_always_save}");
}
