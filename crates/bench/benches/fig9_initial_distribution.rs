//! Figure 9: impact of the initial regional distribution strategy —
//! starting everything in the single top-scoring region (ap-northeast-3)
//! vs distributing round-robin over the four top-scoring regions.

use bio_workloads::WorkloadKind;
use cloud_market::{InstanceType, Region};
use spotverse::{
    run_repetitions, RepetitionMarket, AggregateReport, InitialPlacement, SpotVerseConfig, SpotVerseStrategy,
};
use spotverse_bench::{bench_config, bench_fleet, header, hours, paper_vs_measured, pct, section, BENCH_SEED};

const REPS: u32 = 3;

/// The initial-distribution experiment runs in the day-10 window where
/// even the top-scoring region (ap-northeast-3) wobbles — the regime the
/// paper's §5.2.3 numbers reflect.
const START_DAY: u64 = 10;

fn run(kind: WorkloadKind, placement: InitialPlacement) -> AggregateReport {
    let config = bench_config(
        BENCH_SEED,
        InstanceType::M5Xlarge,
        bench_fleet(kind, 40, BENCH_SEED),
        START_DAY,
    );
    run_repetitions(
        &config,
        || {
            Box::new(SpotVerseStrategy::new(
                SpotVerseConfig::builder(InstanceType::M5Xlarge)
                    .initial_placement(placement.clone())
                    .build(),
            ))
        },
        REPS,
     RepetitionMarket::Reseeded,)
}

fn main() {
    header(
        "Figure 9 — impact of the initial regional distribution strategy",
        "paper §5.2.3, Figures 9a–9b (mean of three repetitions)",
    );

    for (kind, label, paper_int) in [
        (
            WorkloadKind::GenomeReconstruction,
            "standard workload",
            "69 -> 42 (-32%)",
        ),
        (WorkloadKind::NgsPreprocessing, "checkpoint workload", "reduced"),
    ] {
        section(label);
        // Baseline: all workloads start in the single best-scoring region
        // (ap-northeast-3) and migrate on interruption.
        let single_start = run(kind, InitialPlacement::SingleRegion(Region::ApNortheast3));
        // SpotVerse's full initial-distribution strategy over the top-4.
        let distributed = run(kind, InitialPlacement::Distributed);
        let int_delta = (distributed.interruptions.mean() / single_start.interruptions.mean()
            - 1.0)
            * 100.0;
        let time_delta = (distributed.makespan_hours.mean() / single_start.makespan_hours.mean()
            - 1.0)
            * 100.0;
        let cost_delta = (distributed.cost.mean() / single_start.cost.mean() - 1.0) * 100.0;
        paper_vs_measured(
            "interruptions single-start -> distributed",
            paper_int,
            &format!(
                "{:.0} -> {:.0} ({int_delta:+.1}%)",
                single_start.interruptions.mean(),
                distributed.interruptions.mean(),
            ),
        );
        paper_vs_measured("completion-time delta", "up to -12%", &pct(time_delta));
        paper_vs_measured("cost delta", "up to -11%", &pct(cost_delta));
        println!(
            "  single-start: {} / ${:.2}    distributed: {} / ${:.2}",
            hours(single_start.makespan_hours.mean()),
            single_start.cost.mean(),
            hours(distributed.makespan_hours.mean()),
            distributed.cost.mean(),
        );
        println!(
            "  distributed launch regions: {:?}",
            distributed.runs[0]
                .launches_by_region
                .keys()
                .map(|r| r.name())
                .collect::<Vec<_>>()
        );
        let wins = distributed.interruptions.mean() <= single_start.interruptions.mean();
        println!("  shape: distribution does not increase interruptions: {wins}");
    }
}
