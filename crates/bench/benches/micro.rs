//! Criterion micro-benchmarks for the hot paths: market construction
//! (lazy vs eager), Algorithm 1 region selection, interruption sampling,
//! sweep-engine market caching, memoized monitor collection, and
//! end-to-end experiment throughput.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use bio_workloads::{paper_fleet, WorkloadKind};
use cloud_compute::BillingLedger;
use cloud_market::{InstanceType, MarketConfig, Region, SpotMarket};
use aws_stack::{FunctionRuntime, KvStore, MetricsService};
use sim_kernel::{SimRng, SimTime};
use spotverse::{
    run_experiment_on, ExperimentConfig, MarketCache, MigrationPolicy, Monitor, Optimizer,
    SingleRegionStrategy, SnapshotMemo, SpotVerseConfig,
};

fn bench_market_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("market");
    group.sample_size(10);
    group.bench_function("spot_market_build_210_days", |b| {
        b.iter(|| SpotMarket::new(MarketConfig::with_seed(std::hint::black_box(7))));
    });
    group.bench_function("spot_market_build_210_days_eager", |b| {
        b.iter(|| SpotMarket::new_eager(MarketConfig::with_seed(std::hint::black_box(7))));
    });
    group.finish();
}

fn bench_market_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("market_cache");
    group.sample_size(10);
    // Miss: every iteration builds a fresh market through a cold cache.
    group.bench_function("miss_cold_cache", |b| {
        b.iter_batched(
            MarketCache::new,
            |cache| cache.get_or_build(MarketConfig::with_seed(std::hint::black_box(7))),
            BatchSize::SmallInput,
        );
    });
    // Hit: the steady state of a same-seed sweep — an Arc clone plus a
    // hash lookup.
    let warm = MarketCache::new();
    warm.get_or_build(MarketConfig::with_seed(7));
    group.bench_function("hit_warm_cache", |b| {
        b.iter(|| warm.get_or_build(MarketConfig::with_seed(std::hint::black_box(7))));
    });
    group.finish();
}

fn bench_monitor_memoization(c: &mut Criterion) {
    let market = SpotMarket::new(MarketConfig::with_seed(7));
    let monitor = Monitor::new(InstanceType::M5Xlarge, Region::UsEast1);
    let mut functions = FunctionRuntime::new();
    let mut kv = KvStore::new();
    monitor.provision(&mut functions, &mut kv);
    let mut metrics = MetricsService::new(Region::UsEast1);
    let mut ledger = BillingLedger::new();
    let at = SimTime::from_hours(30);
    c.bench_function("monitor_collect_unmemoized", |b| {
        b.iter(|| {
            monitor
                .collect(
                    &market,
                    std::hint::black_box(at),
                    &mut functions,
                    &mut kv,
                    &mut metrics,
                    &mut ledger,
                )
                .unwrap()
        });
    });
    // Same-epoch path: one collection primes the memo, the rest reuse it.
    let mut memo = SnapshotMemo::new();
    monitor
        .collect_memoized(
            &market, None, at, &mut memo, &mut functions, &mut kv, &mut metrics, &mut ledger,
        )
        .unwrap();
    c.bench_function("monitor_collect_memoized_same_epoch", |b| {
        b.iter(|| {
            monitor
                .collect_memoized(
                    &market,
                    None,
                    std::hint::black_box(at),
                    &mut memo,
                    &mut functions,
                    &mut kv,
                    &mut metrics,
                    &mut ledger,
                )
                .unwrap()
        });
    });
}

fn bench_optimizer(c: &mut Criterion) {
    let market = SpotMarket::new(MarketConfig::with_seed(7));
    let monitor = Monitor::new(InstanceType::M5Xlarge, Region::UsEast1);
    let assessments = monitor
        .fresh_assessments(&market, SimTime::from_days(10))
        .unwrap();
    let optimizer = Optimizer::new(SpotVerseConfig::paper_default(InstanceType::M5Xlarge));
    c.bench_function("algorithm1_select_regions", |b| {
        b.iter(|| optimizer.select_regions(std::hint::black_box(&assessments), &[]));
    });
    let mut rng = SimRng::seed_from_u64(3);
    c.bench_function("algorithm1_migration_target", |b| {
        b.iter(|| {
            optimizer.migration_target(
                std::hint::black_box(&assessments),
                Region::CaCentral1,
                MigrationPolicy::RandomTopR,
                &[],
                &mut rng,
            )
        });
    });
}

fn bench_interruption_sampling(c: &mut Criterion) {
    let market = SpotMarket::new(MarketConfig::with_seed(7));
    let mut rng = SimRng::seed_from_u64(5);
    c.bench_function("sample_interruption_delay", |b| {
        b.iter(|| {
            market
                .sample_interruption_delay(
                    Region::CaCentral1,
                    InstanceType::M5Xlarge,
                    SimTime::from_days(2),
                    &mut rng,
                )
                .unwrap()
        });
    });
}

fn bench_experiment(c: &mut Criterion) {
    let rng = SimRng::seed_from_u64(11);
    let fleet = paper_fleet(WorkloadKind::GenomeReconstruction, 8, &rng);
    let config = ExperimentConfig::new(11, InstanceType::M5Xlarge, fleet);
    let market = Arc::new(SpotMarket::new(config.market));
    let mut group = c.benchmark_group("experiment");
    group.sample_size(10);
    group.bench_function("single_region_8_workloads", |b| {
        b.iter_batched(
            || (Arc::clone(&market), config.clone()),
            |(market, config)| {
                run_experiment_on(
                    market,
                    config,
                    Box::new(SingleRegionStrategy::new(Region::CaCentral1)),
                )
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_market_build,
    bench_market_cache,
    bench_monitor_memoization,
    bench_optimizer,
    bench_interruption_sampling,
    bench_experiment
);
criterion_main!(benches);
