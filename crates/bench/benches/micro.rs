//! Criterion micro-benchmarks for the hot paths: market construction,
//! Algorithm 1 region selection, interruption sampling, and end-to-end
//! experiment throughput.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use bio_workloads::{paper_fleet, WorkloadKind};
use cloud_market::{InstanceType, MarketConfig, Region, SpotMarket};
use sim_kernel::{SimRng, SimTime};
use spotverse::{
    run_experiment_on, ExperimentConfig, Monitor, Optimizer, SingleRegionStrategy,
    SpotVerseConfig,
};

fn bench_market_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("market");
    group.sample_size(10);
    group.bench_function("spot_market_build_210_days", |b| {
        b.iter(|| SpotMarket::new(MarketConfig::with_seed(std::hint::black_box(7))));
    });
    group.finish();
}

fn bench_optimizer(c: &mut Criterion) {
    let market = SpotMarket::new(MarketConfig::with_seed(7));
    let monitor = Monitor::new(InstanceType::M5Xlarge, Region::UsEast1);
    let assessments = monitor
        .fresh_assessments(&market, SimTime::from_days(10))
        .unwrap();
    let optimizer = Optimizer::new(SpotVerseConfig::paper_default(InstanceType::M5Xlarge));
    c.bench_function("algorithm1_select_regions", |b| {
        b.iter(|| optimizer.select_regions(std::hint::black_box(&assessments)));
    });
    let mut rng = SimRng::seed_from_u64(3);
    c.bench_function("algorithm1_migration_target", |b| {
        b.iter(|| {
            optimizer.migration_target(
                std::hint::black_box(&assessments),
                Region::CaCentral1,
                &mut rng,
            )
        });
    });
}

fn bench_interruption_sampling(c: &mut Criterion) {
    let market = SpotMarket::new(MarketConfig::with_seed(7));
    let mut rng = SimRng::seed_from_u64(5);
    c.bench_function("sample_interruption_delay", |b| {
        b.iter(|| {
            market
                .sample_interruption_delay(
                    Region::CaCentral1,
                    InstanceType::M5Xlarge,
                    SimTime::from_days(2),
                    &mut rng,
                )
                .unwrap()
        });
    });
}

fn bench_experiment(c: &mut Criterion) {
    let rng = SimRng::seed_from_u64(11);
    let fleet = paper_fleet(WorkloadKind::GenomeReconstruction, 8, &rng);
    let config = ExperimentConfig::new(11, InstanceType::M5Xlarge, fleet);
    let market = Arc::new(SpotMarket::new(config.market));
    let mut group = c.benchmark_group("experiment");
    group.sample_size(10);
    group.bench_function("single_region_8_workloads", |b| {
        b.iter_batched(
            || (Arc::clone(&market), config.clone()),
            |(market, config)| {
                run_experiment_on(
                    market,
                    config,
                    Box::new(SingleRegionStrategy::new(Region::CaCentral1)),
                )
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_market_build,
    bench_optimizer,
    bench_interruption_sampling,
    bench_experiment
);
criterion_main!(benches);
