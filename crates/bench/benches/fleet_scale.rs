//! Fleet-scale throughput: drives `run_fleet` over generated Poisson
//! fleets at 1k/5k/10k/25k workloads on one shared market, recording
//! workloads/sec, events/sec, and heap allocations per delivered event —
//! plus the measured win from the snapshot-epoch assessment cache — into
//! `BENCH_fleet.json` at the repo root for regression tracking.
//!
//! The per-event allocation count comes from a counting wrapper around
//! the system allocator installed for this whole binary; it is the
//! regression tripwire for the allocation-free dispatch work described
//! in docs/performance.md.

use std::sync::Arc;
use std::time::Instant;

use cloud_market::{InstanceType, MarketConfig, SpotMarket};
use spotverse::{
    replay_str, run_fleet_on, trace_to_jsonl, FleetReport, LoadProfile, SpotVerseConfig,
    SpotVerseStrategy, TimeWindow, TraceConfig,
};
use spotverse_bench::{header, section, CountingAlloc, BENCH_SEED};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn strategy() -> Box<SpotVerseStrategy> {
    Box::new(SpotVerseStrategy::new(SpotVerseConfig::paper_default(
        InstanceType::M5Xlarge,
    )))
}

/// Runs one generated fleet and returns (best wall secs, allocations
/// during the best-timed rep's run, report).
fn run_scale(
    market: &Arc<SpotMarket>,
    n: usize,
    reps: usize,
    reuse_snapshot: bool,
    monitor_pipeline: bool,
) -> (f64, u64, FleetReport) {
    // Arrival rate scales with fleet size so the arrival window stays a
    // ~12-hour working day at every scale; throughput then measures the
    // engine, not an ever-longer simulated horizon.
    let profile = LoadProfile::poisson(n as f64 / 12.0);
    let mut best = f64::INFINITY;
    let mut best_allocs = u64::MAX;
    let mut out = None;
    for _ in 0..reps {
        let mut config = profile.generate(BENCH_SEED, n, InstanceType::M5Xlarge);
        config.reuse_decision_snapshot = reuse_snapshot;
        config.monitor_pipeline = monitor_pipeline;
        let allocs_before = CountingAlloc::allocations();
        let t = Instant::now();
        let report = run_fleet_on(Arc::clone(market), config, strategy());
        let secs = t.elapsed().as_secs_f64();
        let allocs = CountingAlloc::allocations() - allocs_before;
        if secs < best {
            best = secs;
            best_allocs = allocs;
        }
        out = Some(report);
    }
    (best, best_allocs, out.expect("reps >= 1"))
}

fn main() {
    header(
        "fleet-scale throughput",
        "this repo's fleet runtime at load-generator scale (no direct paper figure)",
    );
    let market = Arc::new(SpotMarket::new(MarketConfig::with_seed(BENCH_SEED)));
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    section("generated Poisson fleets (12-hour arrival window, shared market)");
    let mut rows = Vec::new();
    let mut allocs_per_event_10k = 0.0;
    for &(n, reps) in &[(1_000usize, 5usize), (5_000, 3), (10_000, 2), (25_000, 1)] {
        let (secs, allocs, report) = run_scale(&market, n, reps, true, true);
        let wps = n as f64 / secs;
        let eps = report.events as f64 / secs;
        let ape = allocs as f64 / report.events as f64;
        println!(
            "  {n:>6} workloads   {secs:>8.3} s   {wps:>9.0} workloads/s   {eps:>11.0} events/s   {ape:>6.2} allocs/event   ({}/{} completed)",
            report.aggregate.completed, n
        );
        assert!(
            report.aggregate.completed > 0,
            "a {n}-workload fleet must complete work"
        );
        if n == 10_000 {
            allocs_per_event_10k = ape;
        }
        rows.push((n, secs, wps, eps));
    }

    // -- snapshot-epoch assessment cache: ablation at 1k ------------------
    // Same fleet, same market; the only difference is whether optimizer
    // assessments are re-parsed from the KV store per decision or served
    // from the per-collection-epoch cache. Reports must be identical —
    // the cache is an optimization, not a semantic knob.
    section("assessment snapshot reuse (5k fleet, cache off vs on)");
    let (fresh_secs, _, fresh_report) = run_scale(&market, 5_000, 3, false, true);
    let (cached_secs, _, cached_report) = run_scale(&market, 5_000, 3, true, true);
    assert_eq!(
        fresh_report, cached_report,
        "snapshot cache must be observationally identical"
    );
    let reuse_speedup = fresh_secs / cached_secs;
    println!("  cache off {fresh_secs:>8.3} s");
    println!("  cache on  {cached_secs:>8.3} s   ({reuse_speedup:.2}x)");

    // -- per-phase breakdown -----------------------------------------------
    // Four separately-timed phases so a regression names its layer:
    // eager market construction, the event loop with the Monitor→KV
    // pipeline bypassed (dispatch core), the full pipeline run (the
    // ablation's cache-on time, re-labelled), and trace export + replay
    // fold of a traced 1k fleet.
    section("per-phase breakdown (market build / dispatch / monitor / replay-export)");
    let mut market_build_secs = f64::INFINITY;
    for _ in 0..2 {
        let t = Instant::now();
        let eager = SpotMarket::new_eager(MarketConfig::with_seed(BENCH_SEED + 1));
        market_build_secs = market_build_secs.min(t.elapsed().as_secs_f64());
        std::hint::black_box(&eager);
    }
    let (dispatch_secs, _, _) = run_scale(&market, 5_000, 2, true, false);
    let monitor_secs = cached_secs;
    let traced_report = {
        let profile = LoadProfile::poisson(1_000.0 / 12.0);
        let mut config = profile.generate(BENCH_SEED, 1_000, InstanceType::M5Xlarge);
        config.trace = TraceConfig::enabled();
        run_fleet_on(Arc::clone(&market), config, strategy())
    };
    let run_trace = traced_report
        .aggregate
        .trace
        .as_ref()
        .expect("tracing was enabled for the replay-export phase");
    let mut replay_export_secs = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        let jsonl = trace_to_jsonl(run_trace);
        let state = replay_str(&jsonl, TimeWindow::ALL).expect("bench trace replays cleanly");
        replay_export_secs = replay_export_secs.min(t.elapsed().as_secs_f64());
        std::hint::black_box(&state);
    }
    println!("  market build   {market_build_secs:>8.3} s   (eager 12-region construction)");
    println!("  dispatch       {dispatch_secs:>8.3} s   (5k fleet, monitor pipeline off)");
    println!("  monitor        {monitor_secs:>8.3} s   (5k fleet, full Monitor→KV pipeline)");
    println!("  replay-export  {replay_export_secs:>8.3} s   (1k traced fleet → JSONL → replay)");

    // -- record ------------------------------------------------------------
    let mut json = format!("{{\n  \"cpu_cores\": {cores},\n");
    for (n, secs, wps, eps) in &rows {
        json.push_str(&format!(
            "  \"fleet_{n}_secs\": {secs:.6},\n  \
             \"fleet_{n}_workloads_per_sec\": {wps:.3},\n  \
             \"fleet_{n}_events_per_sec\": {eps:.3},\n"
        ));
    }
    json.push_str(&format!(
        "  \"allocs_per_event\": {allocs_per_event_10k:.3},\n  \
         \"assessment_reuse_fresh_secs\": {fresh_secs:.6},\n  \
         \"assessment_reuse_cached_secs\": {cached_secs:.6},\n  \
         \"assessment_reuse_speedup\": {reuse_speedup:.3},\n  \
         \"phase_market_build_secs\": {market_build_secs:.6},\n  \
         \"phase_dispatch_secs\": {dispatch_secs:.6},\n  \
         \"phase_monitor_secs\": {monitor_secs:.6},\n  \
         \"phase_replay_export_secs\": {replay_export_secs:.6}\n}}\n"
    ));
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet.json");
    std::fs::write(out, &json).expect("write BENCH_fleet.json");
    println!("\nwrote {out}");
}
