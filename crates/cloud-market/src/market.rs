//! The simulated spot market: deterministic, seeded trajectories of spot
//! prices, Interruption-Frequency bands, Placement Scores, and demand
//! episodes for every (region, instance type) pair.
//!
//! Mechanics (see DESIGN.md §1 and §5):
//!
//! * **Prices** follow a mean-reverting AR(1) process around a slowly
//!   drifting baseline, clamped to stay below the on-demand price.
//! * **Bands** take a small daily Markov walk around each profile's long-run
//!   band (Figure 4a's regional band migrations).
//! * **Placement scores** follow a daily AR(1) around the profile mean.
//! * **Demand episodes** are Poisson-arriving high-demand windows during
//!   which prices rise *and* interruption hazard multiplies — capturing the
//!   real-world correlation that makes cheap, unstable regions expensive in
//!   practice (the effect SpotVerse exploits).
//!
//! Every trajectory is a pure function of the seed, so any strategy run
//! against the same [`MarketConfig`] observes the identical market. The
//! expensive trajectories (hourly prices, daily placement scores) are
//! materialized lazily in [`MARKET_SEGMENT_DAYS`]-day segments on first
//! query (DESIGN.md §13): construction only walks the cheap daily band and
//! episode processes, and a fleet that finishes inside the first month
//! never pays for the remaining months of the horizon.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use serde::{Deserialize, Serialize};
use sim_kernel::{SimDuration, SimRng, SimTime};

use crate::advisor::{InterruptionBand, PlacementScore, StabilityScore};
use crate::instance::InstanceType;
use crate::money::UsdPerHour;
use crate::profiles::{self, MarketProfile};
use crate::regime::{MarketRegime, RegimeSchedule, RegimeSpec};
use crate::region::{AvailabilityZone, Region};

/// Demand-episode parameters for an Interruption-Frequency band.
#[derive(Debug, Clone, Copy, PartialEq)]
struct EpisodeParams {
    per_day: f64,
    mean_hours: f64,
    price_mult: f64,
    hazard_mult: f64,
}

fn episode_params(band: InterruptionBand) -> EpisodeParams {
    match band {
        InterruptionBand::Under5 => EpisodeParams {
            per_day: 0.10,
            mean_hours: 2.0,
            price_mult: 1.20,
            hazard_mult: 4.0,
        },
        InterruptionBand::FiveToTen => EpisodeParams {
            per_day: 0.25,
            mean_hours: 3.0,
            price_mult: 1.30,
            hazard_mult: 4.0,
        },
        InterruptionBand::TenToFifteen => EpisodeParams {
            per_day: 0.40,
            mean_hours: 3.0,
            price_mult: 1.35,
            hazard_mult: 3.5,
        },
        InterruptionBand::FifteenToTwenty => EpisodeParams {
            per_day: 0.50,
            mean_hours: 3.5,
            price_mult: 1.40,
            hazard_mult: 3.0,
        },
        // The worst band's churn is sustained background reclaim pressure,
        // not rare bursts — otherwise migrating price-chasers could dodge
        // it, which the paper's threshold-4 experiment shows they cannot.
        InterruptionBand::Over20 => EpisodeParams {
            per_day: 0.20,
            mean_hours: 2.0,
            price_mult: 1.30,
            hazard_mult: 1.5,
        },
    }
}

/// A day of the simulated week (the simulation epoch falls on a Monday).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Weekday {
    Monday,
    Tuesday,
    Wednesday,
    Thursday,
    Friday,
    Saturday,
    Sunday,
}

impl Weekday {
    /// The weekday containing `at`.
    pub fn of(at: SimTime) -> Weekday {
        match at.as_days() % 7 {
            0 => Weekday::Monday,
            1 => Weekday::Tuesday,
            2 => Weekday::Wednesday,
            3 => Weekday::Thursday,
            4 => Weekday::Friday,
            5 => Weekday::Saturday,
            _ => Weekday::Sunday,
        }
    }

    /// Whether this is a weekend day.
    pub fn is_weekend(self) -> bool {
        matches!(self, Weekday::Saturday | Weekday::Sunday)
    }

    /// The day-of-week interruption-hazard factor (paper §7 observes
    /// weekly usage patterns): mid-week capacity pressure raises reclaim
    /// rates slightly; weekends relax them.
    ///
    /// The constants now live on [`RegimeSpec`]; this is the baseline
    /// regime's view, kept for callers that predate pluggable regimes.
    pub fn hazard_factor(self) -> f64 {
        RegimeSpec::BASELINE.weekday_factor(self)
    }
}

/// Quiet-period hazard such that the *time-averaged* hazard equals the
/// band's calibrated effective hazard (episodes multiply it).
fn quiet_hazard(band: InterruptionBand) -> f64 {
    let p = episode_params(band);
    let f = (p.per_day * p.mean_hours / 24.0).min(0.9);
    band.base_hourly_hazard() / (1.0 - f + p.hazard_mult * f)
}

/// Configuration of a market build.
///
/// `Eq + Hash` so configs can key shared-market caches (every field is
/// integral).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MarketConfig {
    /// The master seed all market streams are forked from.
    pub seed: u64,
    /// Trace horizon in days (experiments must finish inside it).
    pub horizon_days: u32,
    /// The market regime. Defaults to [`MarketRegime::Baseline`], under
    /// which the built market is bit-identical to the pre-regime build.
    pub regime: MarketRegime,
}

impl Default for MarketConfig {
    fn default() -> Self {
        MarketConfig {
            seed: 0,
            horizon_days: 210,
            regime: MarketRegime::Baseline,
        }
    }
}

impl MarketConfig {
    /// A config with the given seed and the default 210-day horizon.
    pub fn with_seed(seed: u64) -> Self {
        MarketConfig {
            seed,
            ..MarketConfig::default()
        }
    }

    /// This config under a different regime.
    #[must_use]
    pub fn with_regime(self, regime: MarketRegime) -> Self {
        MarketConfig { regime, ..self }
    }
}

/// Error returned when querying a market that does not exist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MarketError {
    /// The instance type is not offered in the region.
    Unavailable {
        /// The region queried.
        region: Region,
        /// The instance type queried.
        instance_type: InstanceType,
    },
    /// The queried instant lies beyond the precomputed horizon.
    BeyondHorizon {
        /// The instant queried.
        at: SimTime,
        /// The horizon end.
        horizon: SimTime,
    },
}

impl std::fmt::Display for MarketError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MarketError::Unavailable {
                region,
                instance_type,
            } => write!(f, "{instance_type} is not offered in {region}"),
            MarketError::BeyondHorizon { at, horizon } => {
                write!(f, "query at {at} beyond market horizon {horizon}")
            }
        }
    }
}

impl std::error::Error for MarketError {}

/// Length in days of one lazily-materialized trajectory segment.
///
/// Placement scores materialize in segments of this many days, prices in
/// segments of this many days of hours. Chosen so a paper-scale experiment
/// (a few weeks of sim time) touches two or three segments out of the
/// default horizon's fifteen.
pub const MARKET_SEGMENT_DAYS: usize = 14;

const SEGMENT_HOURS: usize = MARKET_SEGMENT_DAYS * 24;

/// A sequential trajectory generator: each call appends the next `n`
/// values, advancing internal state (RNG stream position, process carry)
/// so successive calls chain into one continuous sequence — the key to
/// lazy segments staying bit-identical to a single eager front-to-back
/// pass.
trait SegmentGen: std::fmt::Debug + Send {
    /// The element type of the generated sequence.
    type Item: Copy + Send + Sync + PartialEq + std::fmt::Debug;
    /// Appends the next `n` values of the sequence to `out`.
    fn next_n(&mut self, n: usize, out: &mut Vec<Self::Item>);
}

/// One lazily-materialized trajectory: values are produced in fixed-size
/// segments on first touch. Segments always fill front-to-back with the
/// generator state chained across boundaries, so any query order yields
/// exactly the values an eager build would have precomputed. Reads of
/// filled segments are lock-free; the generator lock is held only while
/// filling.
#[derive(Debug)]
struct LazyTrack<G: SegmentGen> {
    len: usize,
    seg_len: usize,
    segments: Box<[Segment<G::Item>]>,
    /// Next segment index to fill, plus the chained generator state.
    gen: Mutex<(usize, G)>,
}

/// One once-filled slice of a [`LazyTrack`].
type Segment<T> = OnceLock<Box<[T]>>;

impl<G: SegmentGen> LazyTrack<G> {
    fn new(len: usize, seg_len: usize, gen: G) -> Self {
        let n_segs = len.div_ceil(seg_len).max(1);
        LazyTrack {
            len,
            seg_len,
            segments: (0..n_segs).map(|_| OnceLock::new()).collect(),
            gen: Mutex::new((0, gen)),
        }
    }

    /// The value at `idx`, clamped to the final element (callers have
    /// already horizon-checked; the clamp mirrors the defensive indexing
    /// of the old precomputed vectors).
    fn get(&self, idx: usize) -> G::Item {
        let idx = idx.min(self.len - 1);
        let seg = idx / self.seg_len;
        if let Some(s) = self.segments[seg].get() {
            return s[idx % self.seg_len];
        }
        self.fill_through(seg);
        self.segments[seg].get().expect("filled above")[idx % self.seg_len]
    }

    /// Fills every unfilled segment up to and including `seg`, in order.
    #[cold]
    fn fill_through(&self, seg: usize) {
        let mut guard = self.gen.lock().expect("lazy-track generator poisoned");
        let (next, gen) = &mut *guard;
        while *next <= seg {
            let n = self.seg_len.min(self.len - *next * self.seg_len);
            let mut buf = Vec::with_capacity(n);
            gen.next_n(n, &mut buf);
            self.segments[*next]
                .set(buf.into_boxed_slice())
                .expect("segment filled twice");
            *next += 1;
        }
    }

    /// Materializes the whole trajectory (one front-to-back generator
    /// pass when nothing is filled yet — the old eager build).
    fn force_all(&self) {
        self.fill_through(self.segments.len() - 1);
    }

    /// `(filled, total)` segment counts.
    fn segments_filled(&self) -> (usize, usize) {
        let filled = self.segments.iter().filter(|s| s.get().is_some()).count();
        (filled, self.segments.len())
    }
}

/// Logical equality: same sequence values, forcing materialization of
/// both sides. Used by determinism tests comparing lazy and eager builds.
impl<G: SegmentGen> PartialEq for LazyTrack<G> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && (0..self.len).all(|i| self.get(i) == other.get(i))
    }
}

/// Daily placement-score AR(1) walk around the profile mean.
#[derive(Debug)]
struct PlacementGen {
    rng: SimRng,
    mean: f64,
    sigma: f64,
    phi: f64,
    deviation: f64,
    day: usize,
    schedule: Arc<RegimeSchedule>,
}

impl SegmentGen for PlacementGen {
    type Item = PlacementScore;

    fn next_n(&mut self, n: usize, out: &mut Vec<PlacementScore>) {
        for _ in 0..n {
            self.deviation = self.phi * self.deviation + self.rng.normal(0.0, self.sigma);
            let delta = self.schedule.day(self.day).placement_delta;
            out.push(PlacementScore::from_f64_clamped(self.mean + self.deviation + delta));
            self.day += 1;
        }
    }
}

/// Hourly mean-reverting price process (episode multiplier baked in,
/// clamped below on-demand).
#[derive(Debug)]
struct PriceGen {
    rng: SimRng,
    profile: MarketProfile,
    episodes: Arc<[(SimTime, SimTime)]>,
    od: f64,
    price_mult: f64,
    phi: f64,
    sigma: f64,
    schedule: Arc<RegimeSchedule>,
    hours_total: usize,
    h: usize,
    x: f64,
    episode_idx: usize,
}

impl SegmentGen for PriceGen {
    type Item = f64;

    fn next_n(&mut self, n: usize, out: &mut Vec<f64>) {
        for _ in 0..n {
            self.x = self.phi * self.x + self.rng.normal(0.0, self.sigma);
            let frac = self.h as f64 / self.hours_total.max(1) as f64;
            let day = self.h as f64 / 24.0;
            let surge_mult = self.profile.surge_price_factor(day);
            let base = self.profile.spot_base_at(frac).rate() * surge_mult;
            let mid = SimTime::from_secs(self.h as u64 * 3600 + 1800);
            while self.episode_idx < self.episodes.len() && self.episodes[self.episode_idx].1 < mid
            {
                self.episode_idx += 1;
            }
            let in_episode = self
                .episodes
                .get(self.episode_idx)
                .is_some_and(|&(s, e)| s <= mid && mid < e);
            let mult = if in_episode { self.price_mult } else { 1.0 };
            // Regime price jumps multiply before the on-demand clamp, so
            // shocked prices still respect the ceiling. Baseline is the
            // neutral schedule: multiplying by exactly 1.0 is bit-exact.
            let regime_mult = self.schedule.day(self.h / 24).price_mult;
            out.push(
                (base * (1.0 + self.x).max(0.3) * mult * regime_mult)
                    .clamp(0.15 * self.od, self.od),
            );
            self.h += 1;
        }
    }
}

/// One (region, instance type) market's trajectory. The cheap processes
/// (daily band walk, demand episodes, the hazard thinning bound derived
/// from them) are built eagerly; the expensive ones (hourly prices, daily
/// placement scores) materialize lazily per segment.
#[derive(Debug)]
struct MarketState {
    profile: MarketProfile,
    /// Band per day.
    daily_band: Vec<InterruptionBand>,
    /// Placement score per day, lazily materialized.
    daily_placement: LazyTrack<PlacementGen>,
    /// Spot price per hour, lazily materialized.
    hourly_price: LazyTrack<PriceGen>,
    /// Sorted, disjoint demand-episode windows.
    episodes: Arc<[(SimTime, SimTime)]>,
    /// Maximum instantaneous hazard over the horizon (thinning bound).
    max_hazard: f64,
    /// The regime's static generator calibration.
    spec: RegimeSpec,
    /// The per-day regime program, shared across every state of a market.
    schedule: Arc<RegimeSchedule>,
}

impl PartialEq for MarketState {
    fn eq(&self, other: &Self) -> bool {
        self.profile == other.profile
            && self.daily_band == other.daily_band
            && self.daily_placement == other.daily_placement
            && self.hourly_price == other.hourly_price
            && self.episodes == other.episodes
            && self.max_hazard == other.max_hazard
            && self.spec == other.spec
            && self.schedule == other.schedule
    }
}

impl MarketState {
    fn build(
        profile: MarketProfile,
        horizon_days: u32,
        rng: &SimRng,
        spec: RegimeSpec,
        schedule: Arc<RegimeSchedule>,
    ) -> Self {
        let days = horizon_days as usize;
        let hours = days * 24;
        let region = profile.region();
        let itype = profile.instance_type();
        let label = format!("{region}/{itype}");

        // --- Band walk -----------------------------------------------------
        // m5.xlarge (the Table-3 instance type) advertises very sticky
        // advisor data; other types' bands migrate more visibly
        // (Figure 4a/4b's fluctuations).
        let (excursion_p, return_p) = if itype == InstanceType::M5Xlarge {
            (0.015, 0.8)
        } else {
            (0.05, 0.5)
        };
        let mut band_rng = rng.fork(&format!("band:{label}"));
        let base_band = profile.base_band();
        let mut daily_band = Vec::with_capacity(days);
        let mut band = base_band;
        for _ in 0..days {
            daily_band.push(band);
            // Pull toward the base band, with small random excursions.
            if band != base_band && band_rng.chance(return_p) {
                band = if band > base_band { band.better() } else { band.worse() };
            } else if band_rng.chance(excursion_p) {
                band = band.worse();
            } else if band_rng.chance(excursion_p) {
                band = band.better();
            }
        }

        // --- Placement-score walk (daily AR(1), lazily materialized) -------
        let placement_sigma = if itype == InstanceType::M5Xlarge { 0.10 } else { 0.30 };
        let daily_placement = LazyTrack::new(
            days,
            MARKET_SEGMENT_DAYS,
            PlacementGen {
                rng: rng.fork(&format!("placement:{label}")),
                mean: profile.placement_mean(),
                sigma: placement_sigma,
                phi: spec.placement_phi,
                deviation: 0.0,
                day: 0,
                schedule: Arc::clone(&schedule),
            },
        );

        // --- Demand episodes -----------------------------------------------
        let mut ep_rng = rng.fork(&format!("episodes:{label}"));
        let mut episodes: Vec<(SimTime, SimTime)> = Vec::new();
        let mut t_hours = 0.0_f64;
        let horizon_hours = hours as f64;
        loop {
            // Episode arrival rate depends on the long-run band; the daily
            // band walk only modulates hazard, not episode arrivals, which
            // keeps the precomputation single-pass.
            let params = episode_params(base_band);
            let rate_per_hour = params.per_day * spec.episode_rate_mult / 24.0;
            t_hours += ep_rng.exponential(rate_per_hour);
            if !t_hours.is_finite() || t_hours >= horizon_hours {
                break;
            }
            let duration = ep_rng.exponential(1.0 / params.mean_hours).clamp(0.5, 12.0);
            let start = SimTime::from_secs((t_hours * 3600.0) as u64);
            let end_hours = (t_hours + duration).min(horizon_hours);
            let end = SimTime::from_secs((end_hours * 3600.0) as u64);
            match episodes.last_mut() {
                Some(last) if last.1 >= start => last.1 = last.1.max(end),
                _ => episodes.push((start, end)),
            }
            t_hours = end_hours;
        }
        let episodes: Arc<[(SimTime, SimTime)]> = episodes.into();

        // --- Hourly price process (lazily materialized) --------------------
        let hourly_price = LazyTrack::new(
            hours,
            SEGMENT_HOURS,
            PriceGen {
                rng: rng.fork(&format!("price:{label}")),
                od: profiles::on_demand_price(region, itype).rate(),
                price_mult: episode_params(base_band).price_mult,
                phi: spec.price_phi,
                sigma: spec.price_sigma,
                schedule: Arc::clone(&schedule),
                episodes: Arc::clone(&episodes),
                profile: profile.clone(),
                hours_total: hours,
                h: 0,
                x: 0.0,
                episode_idx: 0,
            },
        );

        // --- Thinning bound -------------------------------------------------
        let max_band_hazard = daily_band
            .iter()
            .map(|b| quiet_hazard(*b) * episode_params(*b).hazard_mult)
            .fold(0.0_f64, f64::max);
        let max_surge = profile.max_surge_hazard_factor();
        // The spec's largest weekday factor (baseline: 1.12) and the
        // schedule's largest per-day multiplier (baseline: 1.0) bound the
        // weekly and regime terms.
        let max_hazard = max_band_hazard
            * profile.hazard_scale()
            * max_surge
            * spec.max_weekday_factor()
            * schedule.max_hazard_mult();

        MarketState {
            profile,
            daily_band,
            daily_placement,
            hourly_price,
            episodes,
            max_hazard,
            spec,
            schedule,
        }
    }

    fn in_episode(&self, at: SimTime) -> bool {
        let idx = self.episodes.partition_point(|&(s, _)| s <= at);
        idx > 0 && at < self.episodes[idx - 1].1
    }

    fn hazard_at(&self, at: SimTime) -> f64 {
        let day = (at.as_days() as usize).min(self.daily_band.len().saturating_sub(1));
        let band = self.daily_band[day];
        let surge = self
            .profile
            .surge_hazard_factor(at.as_secs() as f64 / 86_400.0);
        let weekly = self.spec.weekday_factor(Weekday::of(at));
        // The regime multiplier is exactly 1.0 on every baseline day, so
        // the baseline hazard stays bit-identical to the pre-regime form.
        let regime = self.schedule.day(day).hazard_mult;
        let quiet = quiet_hazard(band) * self.profile.hazard_scale() * surge * weekly * regime;
        if self.in_episode(at) {
            quiet * episode_params(band).hazard_mult
        } else {
            quiet
        }
    }

    /// The advisor's view of the band on `day`: the market's band walk
    /// degraded by the regime's band penalty (capacity crunches shrink
    /// advertised bands; `worse()` saturates at the worst band).
    fn advisor_band(&self, day: usize) -> InterruptionBand {
        let day = day.min(self.daily_band.len() - 1);
        let mut band = self.daily_band[day];
        for _ in 0..self.schedule.day(day).band_penalty {
            band = band.worse();
        }
        band
    }
}

/// The simulated multi-region spot market.
///
/// # Examples
///
/// ```
/// use cloud_market::{InstanceType, MarketConfig, Region, SpotMarket};
/// use sim_kernel::SimTime;
///
/// let market = SpotMarket::new(MarketConfig::with_seed(42));
/// let price = market
///     .spot_price(Region::CaCentral1, InstanceType::M5Xlarge, SimTime::ZERO)
///     .unwrap();
/// let od = market.on_demand_price(Region::CaCentral1, InstanceType::M5Xlarge);
/// assert!(price < od);
/// ```
#[derive(Debug, PartialEq)]
pub struct SpotMarket {
    config: MarketConfig,
    horizon: SimTime,
    states: HashMap<(Region, InstanceType), MarketState>,
    /// Regions offering each instance type, in catalog order (precomputed
    /// so the hot `regions_offering` query is allocation-free).
    offerings: HashMap<InstanceType, Vec<Region>>,
}

impl SpotMarket {
    /// Builds the market. Construction only walks the cheap daily band
    /// and episode processes per (region, instance type); the hourly
    /// price and daily placement trajectories materialize lazily in
    /// [`MARKET_SEGMENT_DAYS`]-day segments on first query, bit-identical
    /// to the eager reference build ([`SpotMarket::new_eager`]) because
    /// segments fill front-to-back with chained generator state.
    pub fn new(config: MarketConfig) -> Self {
        Self::build(config)
    }

    /// Identical to [`SpotMarket::new`]; retained for callers that predate
    /// the removal of the scoped-thread parallel build (lazy segments made
    /// construction too cheap to be worth parallelising).
    pub fn new_serial(config: MarketConfig) -> Self {
        Self::build(config)
    }

    /// The reference construction: builds the market and materializes
    /// every trajectory up front in one front-to-back pass — exactly the
    /// old eager precompute. Equivalence tests compare lazy markets,
    /// queried in arbitrary orders, against this.
    pub fn new_eager(config: MarketConfig) -> Self {
        let market = Self::build(config);
        for state in market.states.values() {
            state.daily_placement.force_all();
            state.hourly_price.force_all();
        }
        market
    }

    fn build(config: MarketConfig) -> Self {
        let rng = SimRng::seed_from_u64(config.seed).fork("spot-market");
        // One schedule per market, built from the same parent RNG through
        // regime-specific fork labels (fork is a pure function of
        // `(seed, label)`, so baseline streams are untouched) and shared
        // by every (region, instance type) state — shared application is
        // what makes regime shocks cross-region correlated.
        let spec = config.regime.spec();
        let schedule = Arc::new(RegimeSchedule::build(config.regime, config.horizon_days, &rng));
        let states: HashMap<(Region, InstanceType), MarketState> = InstanceType::ALL
            .into_iter()
            .flat_map(|itype| {
                profiles::profiles_for(itype).into_iter().map(move |p| (itype, p))
            })
            .map(|(itype, p)| {
                (
                    (p.region(), itype),
                    MarketState::build(
                        p,
                        config.horizon_days,
                        &rng,
                        spec,
                        Arc::clone(&schedule),
                    ),
                )
            })
            .collect();
        let offerings = InstanceType::ALL
            .into_iter()
            .map(|itype| {
                let regions: Vec<Region> = Region::ALL
                    .into_iter()
                    .filter(|r| states.contains_key(&(*r, itype)))
                    .collect();
                (itype, regions)
            })
            .collect();
        SpotMarket {
            config,
            horizon: SimTime::from_days(u64::from(config.horizon_days)),
            states,
            offerings,
        }
    }

    /// The configuration the market was built from.
    pub fn config(&self) -> MarketConfig {
        self.config
    }

    /// The regime the market was built under.
    pub fn regime(&self) -> MarketRegime {
        self.config.regime
    }

    /// The end of the precomputed horizon.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Regions where `instance_type` is offered, in catalog order.
    ///
    /// Precomputed at construction; this is on the Monitor's collection
    /// hot path, so it must not allocate.
    pub fn regions_offering(&self, instance_type: InstanceType) -> &[Region] {
        self.offerings.get(&instance_type).map_or(&[], Vec::as_slice)
    }

    /// Whether `instance_type` is offered in `region`.
    pub fn is_available(&self, region: Region, instance_type: InstanceType) -> bool {
        self.states.contains_key(&(region, instance_type))
    }

    /// `(filled, total)` lazy-trajectory segment counts summed across
    /// every (region, instance type) market — how much of the horizon has
    /// actually been paid for. Benches and tests use this to assert that
    /// short experiments leave most of the market unmaterialized.
    pub fn materialized_segments(&self) -> (usize, usize) {
        self.states.values().fold((0, 0), |(filled, total), s| {
            let (pf, pt) = s.daily_placement.segments_filled();
            let (hf, ht) = s.hourly_price.segments_filled();
            (filled + pf + hf, total + pt + ht)
        })
    }

    fn state(
        &self,
        region: Region,
        instance_type: InstanceType,
    ) -> Result<&MarketState, MarketError> {
        self.states.get(&(region, instance_type)).ok_or(MarketError::Unavailable {
            region,
            instance_type,
        })
    }

    fn check_horizon(&self, at: SimTime) -> Result<(), MarketError> {
        if at >= self.horizon {
            Err(MarketError::BeyondHorizon {
                at,
                horizon: self.horizon,
            })
        } else {
            Ok(())
        }
    }

    /// The spot price at an instant.
    ///
    /// # Errors
    ///
    /// Returns [`MarketError::Unavailable`] if the type is not offered in the
    /// region and [`MarketError::BeyondHorizon`] past the trace horizon.
    pub fn spot_price(
        &self,
        region: Region,
        instance_type: InstanceType,
        at: SimTime,
    ) -> Result<UsdPerHour, MarketError> {
        self.check_horizon(at)?;
        let state = self.state(region, instance_type)?;
        let hour = (at.as_secs() / 3600) as usize;
        Ok(UsdPerHour::new(state.hourly_price.get(hour)))
    }

    /// The spot price in a specific availability zone: the regional price
    /// with a small deterministic per-AZ offset (Figure 2's AZ diversity).
    ///
    /// # Errors
    ///
    /// Same as [`SpotMarket::spot_price`].
    pub fn spot_price_az(
        &self,
        az: AvailabilityZone,
        instance_type: InstanceType,
        at: SimTime,
    ) -> Result<UsdPerHour, MarketError> {
        let regional = self.spot_price(az.region(), instance_type, at)?;
        // Deterministic AZ spread: fixed offset plus a slow phase-shifted
        // wobble, within ±7% of the regional price.
        let k = f64::from(az.index()) + 1.0;
        let fixed = 0.03 * (k * 2.399).sin();
        let day = at.as_secs() as f64 / 86_400.0;
        let wobble = 0.04 * ((day / 9.0 + k * 1.7).sin());
        let od = profiles::on_demand_price(az.region(), instance_type).rate();
        Ok(UsdPerHour::new(
            (regional.rate() * (1.0 + fixed + wobble)).clamp(0.1 * od, od),
        ))
    }

    /// The on-demand price (fixed over time).
    pub fn on_demand_price(&self, region: Region, instance_type: InstanceType) -> UsdPerHour {
        profiles::on_demand_price(region, instance_type)
    }

    /// The Interruption-Frequency band on the day containing `at`.
    ///
    /// # Errors
    ///
    /// Same as [`SpotMarket::spot_price`].
    pub fn interruption_band(
        &self,
        region: Region,
        instance_type: InstanceType,
        at: SimTime,
    ) -> Result<InterruptionBand, MarketError> {
        self.check_horizon(at)?;
        let state = self.state(region, instance_type)?;
        Ok(state.advisor_band(at.as_days() as usize))
    }

    /// The Stability Score (derived from the band) at `at`.
    ///
    /// # Errors
    ///
    /// Same as [`SpotMarket::spot_price`].
    pub fn stability_score(
        &self,
        region: Region,
        instance_type: InstanceType,
        at: SimTime,
    ) -> Result<StabilityScore, MarketError> {
        Ok(self.interruption_band(region, instance_type, at)?.stability_score())
    }

    /// The Spot Placement Score at `at`.
    ///
    /// # Errors
    ///
    /// Same as [`SpotMarket::spot_price`].
    pub fn placement_score(
        &self,
        region: Region,
        instance_type: InstanceType,
        at: SimTime,
    ) -> Result<PlacementScore, MarketError> {
        self.check_horizon(at)?;
        let state = self.state(region, instance_type)?;
        Ok(state.daily_placement.get(at.as_days() as usize))
    }

    /// The instantaneous interruption hazard (events per instance-hour).
    ///
    /// # Errors
    ///
    /// Same as [`SpotMarket::spot_price`].
    pub fn hazard_rate(
        &self,
        region: Region,
        instance_type: InstanceType,
        at: SimTime,
    ) -> Result<f64, MarketError> {
        self.check_horizon(at)?;
        Ok(self.state(region, instance_type)?.hazard_at(at))
    }

    /// Whether a demand episode is in progress at `at`.
    ///
    /// # Errors
    ///
    /// Same as [`SpotMarket::spot_price`].
    pub fn in_demand_episode(
        &self,
        region: Region,
        instance_type: InstanceType,
        at: SimTime,
    ) -> Result<bool, MarketError> {
        self.check_horizon(at)?;
        Ok(self.state(region, instance_type)?.in_episode(at))
    }

    /// Samples the delay until the next interruption for an instance started
    /// at `start`, or `None` if no interruption occurs before the horizon.
    ///
    /// Uses thinning over the piecewise-constant hazard, so clustered
    /// episode interruptions emerge naturally.
    ///
    /// # Errors
    ///
    /// Same as [`SpotMarket::spot_price`].
    pub fn sample_interruption_delay(
        &self,
        region: Region,
        instance_type: InstanceType,
        start: SimTime,
        rng: &mut SimRng,
    ) -> Result<Option<SimDuration>, MarketError> {
        self.sample_interruption_delay_scaled(region, instance_type, start, 1.0, rng)
    }

    /// Like [`SpotMarket::sample_interruption_delay`], with an extra caller
    /// hazard multiplier — used by the compute layer to model *crowding*
    /// (many of the caller's own instances concentrated in one market raise
    /// the marginal reclaim risk; paper §5.2.3's initial-distribution
    /// effect).
    ///
    /// # Errors
    ///
    /// Same as [`SpotMarket::spot_price`].
    ///
    /// # Panics
    ///
    /// Panics if `hazard_multiplier` is negative or not finite.
    pub fn sample_interruption_delay_scaled(
        &self,
        region: Region,
        instance_type: InstanceType,
        start: SimTime,
        hazard_multiplier: f64,
        rng: &mut SimRng,
    ) -> Result<Option<SimDuration>, MarketError> {
        assert!(
            hazard_multiplier.is_finite() && hazard_multiplier >= 0.0,
            "invalid hazard multiplier {hazard_multiplier}"
        );
        self.check_horizon(start)?;
        let state = self.state(region, instance_type)?;
        let lambda_max = state.max_hazard * hazard_multiplier;
        if lambda_max <= 0.0 {
            return Ok(None);
        }
        let mut t_hours = start.as_secs() as f64 / 3600.0;
        let horizon_hours = self.horizon.as_secs() as f64 / 3600.0;
        loop {
            t_hours += rng.exponential(lambda_max);
            if t_hours >= horizon_hours {
                return Ok(None);
            }
            let at = SimTime::from_secs((t_hours * 3600.0) as u64);
            let accept_p = state.hazard_at(at) * hazard_multiplier / lambda_max;
            if rng.chance(accept_p) {
                return Ok(Some(at.saturating_duration_since(start).max(SimDuration::from_secs(1))));
            }
        }
    }

    /// Whether a spot request placed at `at` is fulfilled on this attempt,
    /// as a Bernoulli draw from the placement score.
    ///
    /// # Errors
    ///
    /// Same as [`SpotMarket::spot_price`].
    pub fn try_fulfill(
        &self,
        region: Region,
        instance_type: InstanceType,
        at: SimTime,
        rng: &mut SimRng,
    ) -> Result<bool, MarketError> {
        let score = self.placement_score(region, instance_type, at)?;
        Ok(rng.chance(score.fulfill_probability()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn market() -> SpotMarket {
        SpotMarket::new(MarketConfig::with_seed(7))
    }

    #[test]
    fn determinism_same_seed_same_market() {
        let a = market();
        let b = market();
        let t = SimTime::from_days(30);
        for region in Region::ALL {
            let pa = a.spot_price(region, InstanceType::M5Xlarge, t).unwrap();
            let pb = b.spot_price(region, InstanceType::M5Xlarge, t).unwrap();
            assert_eq!(pa, pb);
            assert_eq!(
                a.placement_score(region, InstanceType::M5Xlarge, t).unwrap(),
                b.placement_score(region, InstanceType::M5Xlarge, t).unwrap()
            );
        }
    }

    #[test]
    fn lazy_build_matches_eager_reference() {
        // Field-for-field equality over every trajectory: bands, placement
        // scores, hourly prices, episodes, hazard bounds. The lazy market
        // is deliberately queried back-to-front and across segment
        // boundaries first, so segments fill in an adversarial order
        // before the wholesale comparison.
        for seed in [0, 7, 2024] {
            let config = MarketConfig { seed, horizon_days: 60, ..MarketConfig::default() };
            let eager = SpotMarket::new_eager(config);
            let lazy = SpotMarket::new(config);
            for day in [59, 0, 28, MARKET_SEGMENT_DAYS as u64, 13, 41] {
                let t = SimTime::from_days(day);
                assert_eq!(
                    lazy.spot_price(Region::UsEast1, InstanceType::M5Xlarge, t),
                    eager.spot_price(Region::UsEast1, InstanceType::M5Xlarge, t),
                    "seed {seed} day {day}"
                );
                assert_eq!(
                    lazy.placement_score(Region::CaCentral1, InstanceType::M5Xlarge, t),
                    eager.placement_score(Region::CaCentral1, InstanceType::M5Xlarge, t),
                    "seed {seed} day {day}"
                );
            }
            assert_eq!(lazy, eager, "seed {seed}");
            assert_eq!(SpotMarket::new_serial(config), eager, "seed {seed} via new_serial()");
        }
    }

    #[test]
    fn short_experiments_leave_most_segments_unmaterialized() {
        let m = market(); // default 210-day horizon
        let (filled, total) = m.materialized_segments();
        assert_eq!(filled, 0, "construction must not materialize anything");
        // A month of price + placement queries against one market.
        for day in 0..30 {
            let t = SimTime::from_days(day);
            m.spot_price(Region::UsEast1, InstanceType::M5Xlarge, t).unwrap();
            m.placement_score(Region::UsEast1, InstanceType::M5Xlarge, t).unwrap();
        }
        let (filled, _) = m.materialized_segments();
        let per_track = 30usize.div_ceil(MARKET_SEGMENT_DAYS);
        assert_eq!(filled, 2 * per_track, "exactly the touched segments fill");
        assert!(filled * 20 < total, "filled {filled} of {total}");
    }

    #[test]
    fn concurrent_lazy_queries_agree_with_eager() {
        // Hammer one market's tracks from several threads at once; every
        // observed value must match the eager reference (no torn fills,
        // no order dependence).
        let config = MarketConfig { seed: 9, horizon_days: 56, ..MarketConfig::default() };
        let eager = SpotMarket::new_eager(config);
        let lazy = SpotMarket::new(config);
        std::thread::scope(|scope| {
            for offset in 0..4u64 {
                let (lazy, eager) = (&lazy, &eager);
                scope.spawn(move || {
                    for step in 0..56 {
                        let day = (offset * 13 + step * 5) % 56;
                        let t = SimTime::from_days(day) + SimDuration::from_hours(offset);
                        assert_eq!(
                            lazy.spot_price(Region::EuWest1, InstanceType::M5Xlarge, t),
                            eager.spot_price(Region::EuWest1, InstanceType::M5Xlarge, t),
                        );
                        assert_eq!(
                            lazy.placement_score(Region::EuWest1, InstanceType::M5Xlarge, t),
                            eager.placement_score(Region::EuWest1, InstanceType::M5Xlarge, t),
                        );
                    }
                });
            }
        });
    }

    #[test]
    fn different_seeds_differ() {
        let a = SpotMarket::new(MarketConfig::with_seed(1));
        let b = SpotMarket::new(MarketConfig::with_seed(2));
        let t = SimTime::from_days(10);
        let pa = a.spot_price(Region::UsEast1, InstanceType::M5Xlarge, t).unwrap();
        let pb = b.spot_price(Region::UsEast1, InstanceType::M5Xlarge, t).unwrap();
        assert_ne!(pa, pb);
    }

    #[test]
    fn prices_never_exceed_on_demand() {
        let m = market();
        for region in Region::ALL {
            let od = m.on_demand_price(region, InstanceType::M5Xlarge);
            for day in (0..200).step_by(7) {
                let p = m
                    .spot_price(region, InstanceType::M5Xlarge, SimTime::from_days(day))
                    .unwrap();
                assert!(p <= od, "{region} day {day}: {p} > {od}");
                assert!(p.rate() > 0.0);
            }
        }
    }

    #[test]
    fn unavailable_market_errors() {
        let m = market();
        let err = m
            .spot_price(Region::ApNortheast3, InstanceType::P32xlarge, SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, MarketError::Unavailable { .. }));
        assert!(err.to_string().contains("p3.2xlarge"));
    }

    #[test]
    fn beyond_horizon_errors() {
        let m = market();
        let err = m
            .spot_price(Region::UsEast1, InstanceType::M5Xlarge, SimTime::from_days(500))
            .unwrap_err();
        assert!(matches!(err, MarketError::BeyondHorizon { .. }));
    }

    #[test]
    fn stable_regions_have_lower_hazard() {
        let m = market();
        let t = SimTime::from_days(3);
        let stable = m
            .hazard_rate(Region::ApNortheast3, InstanceType::M5Xlarge, t)
            .unwrap();
        let unstable = m
            .hazard_rate(Region::CaCentral1, InstanceType::M5Xlarge, t)
            .unwrap();
        assert!(
            stable < unstable,
            "ap-northeast-3 hazard {stable} should be below ca-central-1 {unstable}"
        );
    }

    #[test]
    fn interruption_sampling_matches_hazard_scale() {
        let m = market();
        let mut rng = SimRng::seed_from_u64(99);
        let n = 600;
        let mut count_before = |region: Region, hours: u64| {
            let mut interrupted = 0;
            for _ in 0..n {
                if let Some(d) = m
                    .sample_interruption_delay(region, InstanceType::M5Xlarge, SimTime::from_days(1), &mut rng)
                    .unwrap()
                {
                    if d <= SimDuration::from_hours(hours) {
                        interrupted += 1;
                    }
                }
            }
            interrupted
        };
        let unstable = count_before(Region::CaCentral1, 10);
        let stable = count_before(Region::ApNortheast3, 10);
        assert!(
            unstable > 2 * stable.max(1),
            "unstable {unstable} vs stable {stable}"
        );
        // Unstable region: P(interrupt within 10 h) should be substantial.
        assert!(unstable as f64 / n as f64 > 0.35, "unstable rate too low: {unstable}/{n}");
    }

    #[test]
    fn fulfillment_tracks_placement_score() {
        let m = market();
        let mut rng = SimRng::seed_from_u64(4);
        let t = SimTime::from_days(2);
        let trials = 500;
        let mut hits = |region: Region| {
            (0..trials)
                .filter(|_| m.try_fulfill(region, InstanceType::M5Xlarge, t, &mut rng).unwrap())
                .count()
        };
        let high = hits(Region::ApNortheast3); // placement mean 7
        let low = hits(Region::UsEast1); // placement mean 3
        assert!(high > low, "high {high} vs low {low}");
    }

    #[test]
    fn az_prices_cluster_near_regional_price() {
        let m = market();
        let t = SimTime::from_days(20);
        let regional = m
            .spot_price(Region::UsEast1, InstanceType::C52xlarge, t)
            .unwrap()
            .rate();
        for az in Region::UsEast1.zones() {
            let p = m.spot_price_az(az, InstanceType::C52xlarge, t).unwrap().rate();
            assert!((p - regional).abs() / regional < 0.08, "AZ {az}: {p} vs {regional}");
        }
        // And the offsets are not all identical.
        let prices: Vec<f64> = Region::UsEast1
            .zones()
            .map(|az| m.spot_price_az(az, InstanceType::C52xlarge, t).unwrap().rate())
            .collect();
        assert!(prices.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn regions_offering_excludes_p3_gaps() {
        let m = market();
        let regions = m.regions_offering(InstanceType::P32xlarge);
        assert!(!regions.contains(&Region::ApNortheast3));
        assert_eq!(m.regions_offering(InstanceType::M5Xlarge).len(), 12);
        assert!(m.is_available(Region::UsEast1, InstanceType::P32xlarge));
        assert!(!m.is_available(Region::EuNorth1, InstanceType::P32xlarge));
    }

    #[test]
    fn bands_hover_near_profile_base() {
        let m = market();
        let mut matches = 0;
        let mut total = 0;
        for day in 0..200 {
            let band = m
                .interruption_band(Region::ApNortheast3, InstanceType::M5Xlarge, SimTime::from_days(day))
                .unwrap();
            total += 1;
            if band == InterruptionBand::Under5 {
                matches += 1;
            }
        }
        assert!(
            matches as f64 / total as f64 > 0.6,
            "base band should dominate: {matches}/{total}"
        );
    }

    #[test]
    fn hazard_spikes_inside_episodes() {
        // Use a TenToFifteen market (ca-central's Over20 band deliberately
        // has near-homogeneous hazard; see episode_params).
        let m = market();
        let state = m
            .state(Region::EuWest3, InstanceType::M5Xlarge)
            .unwrap();
        if let Some(&(start, _)) = state.episodes.first() {
            let inside = state.hazard_at(start + SimDuration::from_secs(60));
            let band = state.daily_band[(start.as_days() as usize).min(state.daily_band.len() - 1)];
            let quiet = quiet_hazard(band);
            assert!(inside > 2.0 * quiet, "episode hazard {inside} vs quiet {quiet}");
        }
    }
}

#[cfg(test)]
mod regime_tests {
    use super::*;
    use crate::regime::MarketRegime;

    fn config(regime: MarketRegime) -> MarketConfig {
        MarketConfig { seed: 2024, horizon_days: 70, regime }
    }

    #[test]
    fn lazy_matches_eager_for_every_regime() {
        for regime in MarketRegime::ALL {
            let c = config(regime);
            let eager = SpotMarket::new_eager(c);
            let lazy = SpotMarket::new(c);
            // Adversarial query order across segment boundaries first.
            for day in [69, 0, 35, MARKET_SEGMENT_DAYS as u64, 13] {
                let t = SimTime::from_days(day);
                assert_eq!(
                    lazy.spot_price(Region::UsEast1, InstanceType::M5Xlarge, t),
                    eager.spot_price(Region::UsEast1, InstanceType::M5Xlarge, t),
                    "{regime} day {day}"
                );
            }
            assert_eq!(lazy, eager, "{regime}");
        }
    }

    #[test]
    fn construction_materializes_nothing_for_every_regime() {
        for regime in MarketRegime::ALL {
            let m = SpotMarket::new(config(regime));
            let (filled, _) = m.materialized_segments();
            assert_eq!(filled, 0, "{regime} construction must stay lazy");
        }
    }

    #[test]
    fn non_baseline_regimes_shift_the_market() {
        let baseline = SpotMarket::new_eager(config(MarketRegime::Baseline));
        for regime in [
            MarketRegime::CapacityCrunch,
            MarketRegime::CorrelatedShock,
            MarketRegime::RegimeSwitching,
        ] {
            let shifted = SpotMarket::new_eager(config(regime));
            let differs = (0..70).any(|day| {
                let t = SimTime::from_days(day);
                baseline.spot_price(Region::UsEast1, InstanceType::M5Xlarge, t)
                    != shifted.spot_price(Region::UsEast1, InstanceType::M5Xlarge, t)
                    || baseline.hazard_rate(Region::UsEast1, InstanceType::M5Xlarge, t)
                        != shifted.hazard_rate(Region::UsEast1, InstanceType::M5Xlarge, t)
            });
            assert!(differs, "{regime} left the market untouched");
        }
    }

    #[test]
    fn correlated_shock_moves_regions_together() {
        // On a shock day, every region's price shifts relative to
        // baseline — the cross-region correlation single-region processes
        // cannot express.
        let c = config(MarketRegime::CorrelatedShock);
        let rng = SimRng::seed_from_u64(c.seed).fork("spot-market");
        let schedule = RegimeSchedule::build(c.regime, c.horizon_days, &rng);
        let shock_day = (0..70).find(|&d| schedule.day(d).price_mult > 1.0);
        let Some(day) = shock_day else {
            return; // this seed drew no shock inside the window
        };
        let baseline = SpotMarket::new(config(MarketRegime::Baseline));
        let shocked = SpotMarket::new(c);
        let t = SimTime::from_days(day as u64);
        for region in [Region::UsEast1, Region::EuWest1, Region::ApNortheast3] {
            let b = baseline.spot_price(region, InstanceType::M5Xlarge, t).unwrap();
            let s = shocked.spot_price(region, InstanceType::M5Xlarge, t).unwrap();
            assert_ne!(b, s, "{region} unshocked on day {day}");
        }
    }

    #[test]
    fn crunch_degrades_the_advisor_view() {
        // On a crunch day the advisor band reads at least as bad as
        // baseline everywhere, strictly worse wherever not saturated.
        let c = config(MarketRegime::CapacityCrunch);
        let rng = SimRng::seed_from_u64(c.seed).fork("spot-market");
        let schedule = RegimeSchedule::build(c.regime, c.horizon_days, &rng);
        let Some(day) = (0..70).find(|&d| schedule.day(d).band_penalty > 0) else {
            return;
        };
        let m = SpotMarket::new(c);
        let t = SimTime::from_days(day as u64);
        let band = m.interruption_band(Region::ApNortheast3, InstanceType::M5Xlarge, t).unwrap();
        let state = m.state(Region::ApNortheast3, InstanceType::M5Xlarge).unwrap();
        let raw = state.daily_band[day.min(state.daily_band.len() - 1)];
        assert_eq!(band, raw.worse(), "advisor band must read one step worse");
    }

    #[test]
    fn distinct_regimes_are_distinct_cache_keys() {
        let a = config(MarketRegime::Baseline);
        let b = config(MarketRegime::CapacityCrunch);
        assert_ne!(a, b);
        assert_eq!(a, a.with_regime(MarketRegime::Baseline));
        assert_eq!(b, a.with_regime(MarketRegime::CapacityCrunch));
        let m = SpotMarket::new(b);
        assert_eq!(m.regime(), MarketRegime::CapacityCrunch);
        assert_eq!(m.config().regime, MarketRegime::CapacityCrunch);
    }
}

#[cfg(test)]
mod weekday_tests {
    use super::*;

    #[test]
    fn epoch_is_monday_and_weeks_wrap() {
        assert_eq!(Weekday::of(SimTime::ZERO), Weekday::Monday);
        assert_eq!(Weekday::of(SimTime::from_days(5)), Weekday::Saturday);
        assert_eq!(Weekday::of(SimTime::from_days(7)), Weekday::Monday);
        assert!(Weekday::of(SimTime::from_days(6)).is_weekend());
        assert!(!Weekday::of(SimTime::from_days(3)).is_weekend());
    }

    #[test]
    fn weekday_hazard_shapes_the_week() {
        assert!(Weekday::Wednesday.hazard_factor() > Weekday::Monday.hazard_factor());
        assert!(Weekday::Sunday.hazard_factor() < Weekday::Monday.hazard_factor());
    }

    #[test]
    fn hazard_rate_reflects_weekly_pattern() {
        let m = SpotMarket::new(MarketConfig::with_seed(3));
        // Compare a mid-week day against the following Sunday, far from
        // surges, same band day (bands can change daily, so average a few
        // weeks to wash that out).
        let mut midweek = 0.0;
        let mut weekend = 0.0;
        let mut weeks = 0;
        for week in 8..20 {
            let wed = SimTime::from_days(week * 7 + 2);
            let sun = SimTime::from_days(week * 7 + 6);
            let b_wed = m.interruption_band(Region::UsEast1, InstanceType::M5Xlarge, wed).unwrap();
            let b_sun = m.interruption_band(Region::UsEast1, InstanceType::M5Xlarge, sun).unwrap();
            if b_wed != b_sun {
                continue; // band moved mid-week; skip for a clean comparison
            }
            if m.in_demand_episode(Region::UsEast1, InstanceType::M5Xlarge, wed).unwrap()
                || m.in_demand_episode(Region::UsEast1, InstanceType::M5Xlarge, sun).unwrap()
            {
                continue;
            }
            midweek += m.hazard_rate(Region::UsEast1, InstanceType::M5Xlarge, wed).unwrap();
            weekend += m.hazard_rate(Region::UsEast1, InstanceType::M5Xlarge, sun).unwrap();
            weeks += 1;
        }
        assert!(weeks > 0, "no clean comparison weeks found");
        assert!(
            midweek > weekend,
            "midweek hazard {midweek} should exceed weekend {weekend} over {weeks} weeks"
        );
    }
}
