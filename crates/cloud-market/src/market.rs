//! The simulated spot market: deterministic, seeded trajectories of spot
//! prices, Interruption-Frequency bands, Placement Scores, and demand
//! episodes for every (region, instance type) pair.
//!
//! Mechanics (see DESIGN.md §1 and §5):
//!
//! * **Prices** follow a mean-reverting AR(1) process around a slowly
//!   drifting baseline, clamped to stay below the on-demand price.
//! * **Bands** take a small daily Markov walk around each profile's long-run
//!   band (Figure 4a's regional band migrations).
//! * **Placement scores** follow a daily AR(1) around the profile mean.
//! * **Demand episodes** are Poisson-arriving high-demand windows during
//!   which prices rise *and* interruption hazard multiplies — capturing the
//!   real-world correlation that makes cheap, unstable regions expensive in
//!   practice (the effect SpotVerse exploits).
//!
//! Everything is precomputed at construction from the seed, so any strategy
//! run against the same [`MarketConfig`] observes the identical market.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use serde::{Deserialize, Serialize};
use sim_kernel::{SimDuration, SimRng, SimTime};

use crate::advisor::{InterruptionBand, PlacementScore, StabilityScore};
use crate::instance::InstanceType;
use crate::money::UsdPerHour;
use crate::profiles::{self, MarketProfile};
use crate::region::{AvailabilityZone, Region};

/// Demand-episode parameters for an Interruption-Frequency band.
#[derive(Debug, Clone, Copy, PartialEq)]
struct EpisodeParams {
    per_day: f64,
    mean_hours: f64,
    price_mult: f64,
    hazard_mult: f64,
}

fn episode_params(band: InterruptionBand) -> EpisodeParams {
    match band {
        InterruptionBand::Under5 => EpisodeParams {
            per_day: 0.10,
            mean_hours: 2.0,
            price_mult: 1.20,
            hazard_mult: 4.0,
        },
        InterruptionBand::FiveToTen => EpisodeParams {
            per_day: 0.25,
            mean_hours: 3.0,
            price_mult: 1.30,
            hazard_mult: 4.0,
        },
        InterruptionBand::TenToFifteen => EpisodeParams {
            per_day: 0.40,
            mean_hours: 3.0,
            price_mult: 1.35,
            hazard_mult: 3.5,
        },
        InterruptionBand::FifteenToTwenty => EpisodeParams {
            per_day: 0.50,
            mean_hours: 3.5,
            price_mult: 1.40,
            hazard_mult: 3.0,
        },
        // The worst band's churn is sustained background reclaim pressure,
        // not rare bursts — otherwise migrating price-chasers could dodge
        // it, which the paper's threshold-4 experiment shows they cannot.
        InterruptionBand::Over20 => EpisodeParams {
            per_day: 0.20,
            mean_hours: 2.0,
            price_mult: 1.30,
            hazard_mult: 1.5,
        },
    }
}

/// A day of the simulated week (the simulation epoch falls on a Monday).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Weekday {
    Monday,
    Tuesday,
    Wednesday,
    Thursday,
    Friday,
    Saturday,
    Sunday,
}

impl Weekday {
    /// The weekday containing `at`.
    pub fn of(at: SimTime) -> Weekday {
        match at.as_days() % 7 {
            0 => Weekday::Monday,
            1 => Weekday::Tuesday,
            2 => Weekday::Wednesday,
            3 => Weekday::Thursday,
            4 => Weekday::Friday,
            5 => Weekday::Saturday,
            _ => Weekday::Sunday,
        }
    }

    /// Whether this is a weekend day.
    pub fn is_weekend(self) -> bool {
        matches!(self, Weekday::Saturday | Weekday::Sunday)
    }

    /// The day-of-week interruption-hazard factor (paper §7 observes
    /// weekly usage patterns): mid-week capacity pressure raises reclaim
    /// rates slightly; weekends relax them.
    pub fn hazard_factor(self) -> f64 {
        match self {
            Weekday::Tuesday | Weekday::Wednesday | Weekday::Thursday => 1.12,
            Weekday::Monday | Weekday::Friday => 1.0,
            Weekday::Saturday | Weekday::Sunday => 0.82,
        }
    }
}

/// Quiet-period hazard such that the *time-averaged* hazard equals the
/// band's calibrated effective hazard (episodes multiply it).
fn quiet_hazard(band: InterruptionBand) -> f64 {
    let p = episode_params(band);
    let f = (p.per_day * p.mean_hours / 24.0).min(0.9);
    band.base_hourly_hazard() / (1.0 - f + p.hazard_mult * f)
}

/// Configuration of a market build.
///
/// `Eq + Hash` so configs can key shared-market caches (every field is
/// integral).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MarketConfig {
    /// The master seed all market streams are forked from.
    pub seed: u64,
    /// Trace horizon in days (experiments must finish inside it).
    pub horizon_days: u32,
}

impl Default for MarketConfig {
    fn default() -> Self {
        MarketConfig {
            seed: 0,
            horizon_days: 210,
        }
    }
}

impl MarketConfig {
    /// A config with the given seed and the default 210-day horizon.
    pub fn with_seed(seed: u64) -> Self {
        MarketConfig {
            seed,
            ..MarketConfig::default()
        }
    }
}

/// Error returned when querying a market that does not exist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MarketError {
    /// The instance type is not offered in the region.
    Unavailable {
        /// The region queried.
        region: Region,
        /// The instance type queried.
        instance_type: InstanceType,
    },
    /// The queried instant lies beyond the precomputed horizon.
    BeyondHorizon {
        /// The instant queried.
        at: SimTime,
        /// The horizon end.
        horizon: SimTime,
    },
}

impl std::fmt::Display for MarketError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MarketError::Unavailable {
                region,
                instance_type,
            } => write!(f, "{instance_type} is not offered in {region}"),
            MarketError::BeyondHorizon { at, horizon } => {
                write!(f, "query at {at} beyond market horizon {horizon}")
            }
        }
    }
}

impl std::error::Error for MarketError {}

/// One (region, instance type) market's precomputed trajectory.
#[derive(Debug, Clone, PartialEq)]
struct MarketState {
    profile: MarketProfile,
    /// Band per day.
    daily_band: Vec<InterruptionBand>,
    /// Placement score per day.
    daily_placement: Vec<PlacementScore>,
    /// Spot price per hour (episode multiplier baked in, clamped below
    /// on-demand).
    hourly_price: Vec<f64>,
    /// Sorted, disjoint demand-episode windows.
    episodes: Vec<(SimTime, SimTime)>,
    /// Maximum instantaneous hazard over the horizon (thinning bound).
    max_hazard: f64,
}

impl MarketState {
    fn build(profile: MarketProfile, horizon_days: u32, rng: &SimRng) -> Self {
        let days = horizon_days as usize;
        let hours = days * 24;
        let region = profile.region();
        let itype = profile.instance_type();
        let label = format!("{region}/{itype}");

        // --- Band walk -----------------------------------------------------
        // m5.xlarge (the Table-3 instance type) advertises very sticky
        // advisor data; other types' bands migrate more visibly
        // (Figure 4a/4b's fluctuations).
        let (excursion_p, return_p) = if itype == InstanceType::M5Xlarge {
            (0.015, 0.8)
        } else {
            (0.05, 0.5)
        };
        let mut band_rng = rng.fork(&format!("band:{label}"));
        let base_band = profile.base_band();
        let mut daily_band = Vec::with_capacity(days);
        let mut band = base_band;
        for _ in 0..days {
            daily_band.push(band);
            // Pull toward the base band, with small random excursions.
            if band != base_band && band_rng.chance(return_p) {
                band = if band > base_band { band.better() } else { band.worse() };
            } else if band_rng.chance(excursion_p) {
                band = band.worse();
            } else if band_rng.chance(excursion_p) {
                band = band.better();
            }
        }

        // --- Placement-score walk (daily AR(1)) ----------------------------
        let placement_sigma = if itype == InstanceType::M5Xlarge { 0.10 } else { 0.30 };
        let mut place_rng = rng.fork(&format!("placement:{label}"));
        let mut daily_placement = Vec::with_capacity(days);
        let mut deviation = 0.0_f64;
        for _ in 0..days {
            deviation = 0.7 * deviation + place_rng.normal(0.0, placement_sigma);
            daily_placement.push(PlacementScore::from_f64_clamped(
                profile.placement_mean() + deviation,
            ));
        }

        // --- Demand episodes -----------------------------------------------
        let mut ep_rng = rng.fork(&format!("episodes:{label}"));
        let mut episodes: Vec<(SimTime, SimTime)> = Vec::new();
        let mut t_hours = 0.0_f64;
        let horizon_hours = hours as f64;
        loop {
            // Episode arrival rate depends on the long-run band; the daily
            // band walk only modulates hazard, not episode arrivals, which
            // keeps the precomputation single-pass.
            let params = episode_params(base_band);
            let rate_per_hour = params.per_day / 24.0;
            t_hours += ep_rng.exponential(rate_per_hour);
            if !t_hours.is_finite() || t_hours >= horizon_hours {
                break;
            }
            let duration = ep_rng.exponential(1.0 / params.mean_hours).clamp(0.5, 12.0);
            let start = SimTime::from_secs((t_hours * 3600.0) as u64);
            let end_hours = (t_hours + duration).min(horizon_hours);
            let end = SimTime::from_secs((end_hours * 3600.0) as u64);
            match episodes.last_mut() {
                Some(last) if last.1 >= start => last.1 = last.1.max(end),
                _ => episodes.push((start, end)),
            }
            t_hours = end_hours;
        }

        // --- Hourly price process ------------------------------------------
        let mut price_rng = rng.fork(&format!("price:{label}"));
        let od = profiles::on_demand_price(region, itype).rate();
        let params = episode_params(base_band);
        let mut hourly_price = Vec::with_capacity(hours);
        let mut x = 0.0_f64; // AR(1) relative deviation
        let mut episode_idx = 0usize;
        for h in 0..hours {
            x = 0.97 * x + price_rng.normal(0.0, 0.022);
            let frac = h as f64 / hours.max(1) as f64;
            let day = h as f64 / 24.0;
            let surge_mult = profile.surge_price_factor(day);
            let base = profile.spot_base_at(frac).rate() * surge_mult;
            let mid = SimTime::from_secs(h as u64 * 3600 + 1800);
            while episode_idx < episodes.len() && episodes[episode_idx].1 < mid {
                episode_idx += 1;
            }
            let in_episode = episodes
                .get(episode_idx)
                .is_some_and(|&(s, e)| s <= mid && mid < e);
            let mult = if in_episode { params.price_mult } else { 1.0 };
            let price = (base * (1.0 + x).max(0.3) * mult).clamp(0.15 * od, od);
            hourly_price.push(price);
        }

        // --- Thinning bound -------------------------------------------------
        let max_band_hazard = daily_band
            .iter()
            .map(|b| quiet_hazard(*b) * episode_params(*b).hazard_mult)
            .fold(0.0_f64, f64::max);
        let max_surge = profile.max_surge_hazard_factor();
        // 1.12 bounds the weekly factor.
        let max_hazard = max_band_hazard * profile.hazard_scale() * max_surge * 1.12;

        MarketState {
            profile,
            daily_band,
            daily_placement,
            hourly_price,
            episodes,
            max_hazard,
        }
    }

    fn in_episode(&self, at: SimTime) -> bool {
        let idx = self.episodes.partition_point(|&(s, _)| s <= at);
        idx > 0 && at < self.episodes[idx - 1].1
    }

    fn hazard_at(&self, at: SimTime) -> f64 {
        let day = (at.as_days() as usize).min(self.daily_band.len().saturating_sub(1));
        let band = self.daily_band[day];
        let surge = self
            .profile
            .surge_hazard_factor(at.as_secs() as f64 / 86_400.0);
        let weekly = Weekday::of(at).hazard_factor();
        let quiet = quiet_hazard(band) * self.profile.hazard_scale() * surge * weekly;
        if self.in_episode(at) {
            quiet * episode_params(band).hazard_mult
        } else {
            quiet
        }
    }
}

/// Fewest CPU cores for which scoped-thread market construction pays
/// for itself. Below this, [`SpotMarket::new`] builds serially: on a
/// 2-core host the parallel path measured 0.84× the serial one, all
/// spawn/join overhead.
pub const MIN_PARALLEL_WORKERS: usize = 4;

/// Shortest horizon worth parallelising. Each (region, instance type)
/// trajectory costs O(horizon_days); short horizons finish before the
/// worker threads amortize their startup.
pub const MIN_PARALLEL_HORIZON_DAYS: u64 = 30;

/// The simulated multi-region spot market.
///
/// # Examples
///
/// ```
/// use cloud_market::{InstanceType, MarketConfig, Region, SpotMarket};
/// use sim_kernel::SimTime;
///
/// let market = SpotMarket::new(MarketConfig::with_seed(42));
/// let price = market
///     .spot_price(Region::CaCentral1, InstanceType::M5Xlarge, SimTime::ZERO)
///     .unwrap();
/// let od = market.on_demand_price(Region::CaCentral1, InstanceType::M5Xlarge);
/// assert!(price < od);
/// ```
#[derive(Debug, PartialEq)]
pub struct SpotMarket {
    config: MarketConfig,
    horizon: SimTime,
    states: HashMap<(Region, InstanceType), MarketState>,
    /// Regions offering each instance type, in catalog order (precomputed
    /// so the hot `regions_offering` query is allocation-free).
    offerings: HashMap<InstanceType, Vec<Region>>,
}

impl SpotMarket {
    /// Builds the market, precomputing all trajectories from the seed.
    ///
    /// Per-(region, instance type) trajectories build on parallel threads:
    /// each forks its own labelled RNG streams from the master seed, so the
    /// result is bit-identical to [`SpotMarket::new_serial`]. With fewer
    /// than [`MIN_PARALLEL_WORKERS`] cores — or a catalog/horizon too
    /// small to amortize thread spawning — the serial path is used
    /// directly, since scoped-thread coordination costs more than it
    /// saves there (measured 0.84× on a 2-core host).
    pub fn new(config: MarketConfig) -> Self {
        let workers = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let workers = if workers < MIN_PARALLEL_WORKERS
            || u64::from(config.horizon_days) < MIN_PARALLEL_HORIZON_DAYS
        {
            1
        } else {
            workers
        };
        Self::build(config, workers)
    }

    /// Builds the market on the calling thread only — the reference
    /// construction the parallel path must match exactly.
    pub fn new_serial(config: MarketConfig) -> Self {
        Self::build(config, 1)
    }

    fn build(config: MarketConfig, workers: usize) -> Self {
        let rng = SimRng::seed_from_u64(config.seed).fork("spot-market");
        let catalog: Vec<(InstanceType, MarketProfile)> = InstanceType::ALL
            .into_iter()
            .flat_map(|itype| {
                profiles::profiles_for(itype).into_iter().map(move |p| (itype, p))
            })
            .collect();
        let workers = workers.clamp(1, catalog.len().max(1));
        let built: Vec<((Region, InstanceType), MarketState)> = if workers <= 1 {
            catalog
                .into_iter()
                .map(|(itype, p)| {
                    ((p.region(), itype), MarketState::build(p, config.horizon_days, &rng))
                })
                .collect()
        } else {
            // Workers claim catalog indices off a shared counter; every
            // trajectory forks its streams purely from (seed, label), so
            // which thread builds which market cannot affect the result.
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut local = Vec::new();
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                let Some((itype, p)) = catalog.get(i) else { break };
                                local.push((
                                    (p.region(), *itype),
                                    MarketState::build(p.clone(), config.horizon_days, &rng),
                                ));
                            }
                            local
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("market build worker panicked"))
                    .collect()
            })
        };
        let states: HashMap<(Region, InstanceType), MarketState> = built.into_iter().collect();
        let offerings = InstanceType::ALL
            .into_iter()
            .map(|itype| {
                let regions: Vec<Region> = Region::ALL
                    .into_iter()
                    .filter(|r| states.contains_key(&(*r, itype)))
                    .collect();
                (itype, regions)
            })
            .collect();
        SpotMarket {
            config,
            horizon: SimTime::from_days(u64::from(config.horizon_days)),
            states,
            offerings,
        }
    }

    /// The configuration the market was built from.
    pub fn config(&self) -> MarketConfig {
        self.config
    }

    /// The end of the precomputed horizon.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Regions where `instance_type` is offered, in catalog order.
    ///
    /// Precomputed at construction; this is on the Monitor's collection
    /// hot path, so it must not allocate.
    pub fn regions_offering(&self, instance_type: InstanceType) -> &[Region] {
        self.offerings.get(&instance_type).map_or(&[], Vec::as_slice)
    }

    /// Whether `instance_type` is offered in `region`.
    pub fn is_available(&self, region: Region, instance_type: InstanceType) -> bool {
        self.states.contains_key(&(region, instance_type))
    }

    fn state(
        &self,
        region: Region,
        instance_type: InstanceType,
    ) -> Result<&MarketState, MarketError> {
        self.states.get(&(region, instance_type)).ok_or(MarketError::Unavailable {
            region,
            instance_type,
        })
    }

    fn check_horizon(&self, at: SimTime) -> Result<(), MarketError> {
        if at >= self.horizon {
            Err(MarketError::BeyondHorizon {
                at,
                horizon: self.horizon,
            })
        } else {
            Ok(())
        }
    }

    /// The spot price at an instant.
    ///
    /// # Errors
    ///
    /// Returns [`MarketError::Unavailable`] if the type is not offered in the
    /// region and [`MarketError::BeyondHorizon`] past the trace horizon.
    pub fn spot_price(
        &self,
        region: Region,
        instance_type: InstanceType,
        at: SimTime,
    ) -> Result<UsdPerHour, MarketError> {
        self.check_horizon(at)?;
        let state = self.state(region, instance_type)?;
        let hour = (at.as_secs() / 3600) as usize;
        Ok(UsdPerHour::new(state.hourly_price[hour.min(state.hourly_price.len() - 1)]))
    }

    /// The spot price in a specific availability zone: the regional price
    /// with a small deterministic per-AZ offset (Figure 2's AZ diversity).
    ///
    /// # Errors
    ///
    /// Same as [`SpotMarket::spot_price`].
    pub fn spot_price_az(
        &self,
        az: AvailabilityZone,
        instance_type: InstanceType,
        at: SimTime,
    ) -> Result<UsdPerHour, MarketError> {
        let regional = self.spot_price(az.region(), instance_type, at)?;
        // Deterministic AZ spread: fixed offset plus a slow phase-shifted
        // wobble, within ±7% of the regional price.
        let k = f64::from(az.index()) + 1.0;
        let fixed = 0.03 * (k * 2.399).sin();
        let day = at.as_secs() as f64 / 86_400.0;
        let wobble = 0.04 * ((day / 9.0 + k * 1.7).sin());
        let od = profiles::on_demand_price(az.region(), instance_type).rate();
        Ok(UsdPerHour::new(
            (regional.rate() * (1.0 + fixed + wobble)).clamp(0.1 * od, od),
        ))
    }

    /// The on-demand price (fixed over time).
    pub fn on_demand_price(&self, region: Region, instance_type: InstanceType) -> UsdPerHour {
        profiles::on_demand_price(region, instance_type)
    }

    /// The Interruption-Frequency band on the day containing `at`.
    ///
    /// # Errors
    ///
    /// Same as [`SpotMarket::spot_price`].
    pub fn interruption_band(
        &self,
        region: Region,
        instance_type: InstanceType,
        at: SimTime,
    ) -> Result<InterruptionBand, MarketError> {
        self.check_horizon(at)?;
        let state = self.state(region, instance_type)?;
        let day = (at.as_days() as usize).min(state.daily_band.len() - 1);
        Ok(state.daily_band[day])
    }

    /// The Stability Score (derived from the band) at `at`.
    ///
    /// # Errors
    ///
    /// Same as [`SpotMarket::spot_price`].
    pub fn stability_score(
        &self,
        region: Region,
        instance_type: InstanceType,
        at: SimTime,
    ) -> Result<StabilityScore, MarketError> {
        Ok(self.interruption_band(region, instance_type, at)?.stability_score())
    }

    /// The Spot Placement Score at `at`.
    ///
    /// # Errors
    ///
    /// Same as [`SpotMarket::spot_price`].
    pub fn placement_score(
        &self,
        region: Region,
        instance_type: InstanceType,
        at: SimTime,
    ) -> Result<PlacementScore, MarketError> {
        self.check_horizon(at)?;
        let state = self.state(region, instance_type)?;
        let day = (at.as_days() as usize).min(state.daily_placement.len() - 1);
        Ok(state.daily_placement[day])
    }

    /// The instantaneous interruption hazard (events per instance-hour).
    ///
    /// # Errors
    ///
    /// Same as [`SpotMarket::spot_price`].
    pub fn hazard_rate(
        &self,
        region: Region,
        instance_type: InstanceType,
        at: SimTime,
    ) -> Result<f64, MarketError> {
        self.check_horizon(at)?;
        Ok(self.state(region, instance_type)?.hazard_at(at))
    }

    /// Whether a demand episode is in progress at `at`.
    ///
    /// # Errors
    ///
    /// Same as [`SpotMarket::spot_price`].
    pub fn in_demand_episode(
        &self,
        region: Region,
        instance_type: InstanceType,
        at: SimTime,
    ) -> Result<bool, MarketError> {
        self.check_horizon(at)?;
        Ok(self.state(region, instance_type)?.in_episode(at))
    }

    /// Samples the delay until the next interruption for an instance started
    /// at `start`, or `None` if no interruption occurs before the horizon.
    ///
    /// Uses thinning over the piecewise-constant hazard, so clustered
    /// episode interruptions emerge naturally.
    ///
    /// # Errors
    ///
    /// Same as [`SpotMarket::spot_price`].
    pub fn sample_interruption_delay(
        &self,
        region: Region,
        instance_type: InstanceType,
        start: SimTime,
        rng: &mut SimRng,
    ) -> Result<Option<SimDuration>, MarketError> {
        self.sample_interruption_delay_scaled(region, instance_type, start, 1.0, rng)
    }

    /// Like [`SpotMarket::sample_interruption_delay`], with an extra caller
    /// hazard multiplier — used by the compute layer to model *crowding*
    /// (many of the caller's own instances concentrated in one market raise
    /// the marginal reclaim risk; paper §5.2.3's initial-distribution
    /// effect).
    ///
    /// # Errors
    ///
    /// Same as [`SpotMarket::spot_price`].
    ///
    /// # Panics
    ///
    /// Panics if `hazard_multiplier` is negative or not finite.
    pub fn sample_interruption_delay_scaled(
        &self,
        region: Region,
        instance_type: InstanceType,
        start: SimTime,
        hazard_multiplier: f64,
        rng: &mut SimRng,
    ) -> Result<Option<SimDuration>, MarketError> {
        assert!(
            hazard_multiplier.is_finite() && hazard_multiplier >= 0.0,
            "invalid hazard multiplier {hazard_multiplier}"
        );
        self.check_horizon(start)?;
        let state = self.state(region, instance_type)?;
        let lambda_max = state.max_hazard * hazard_multiplier;
        if lambda_max <= 0.0 {
            return Ok(None);
        }
        let mut t_hours = start.as_secs() as f64 / 3600.0;
        let horizon_hours = self.horizon.as_secs() as f64 / 3600.0;
        loop {
            t_hours += rng.exponential(lambda_max);
            if t_hours >= horizon_hours {
                return Ok(None);
            }
            let at = SimTime::from_secs((t_hours * 3600.0) as u64);
            let accept_p = state.hazard_at(at) * hazard_multiplier / lambda_max;
            if rng.chance(accept_p) {
                return Ok(Some(at.saturating_duration_since(start).max(SimDuration::from_secs(1))));
            }
        }
    }

    /// Whether a spot request placed at `at` is fulfilled on this attempt,
    /// as a Bernoulli draw from the placement score.
    ///
    /// # Errors
    ///
    /// Same as [`SpotMarket::spot_price`].
    pub fn try_fulfill(
        &self,
        region: Region,
        instance_type: InstanceType,
        at: SimTime,
        rng: &mut SimRng,
    ) -> Result<bool, MarketError> {
        let score = self.placement_score(region, instance_type, at)?;
        Ok(rng.chance(score.fulfill_probability()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn market() -> SpotMarket {
        SpotMarket::new(MarketConfig::with_seed(7))
    }

    #[test]
    fn determinism_same_seed_same_market() {
        let a = market();
        let b = market();
        let t = SimTime::from_days(30);
        for region in Region::ALL {
            let pa = a.spot_price(region, InstanceType::M5Xlarge, t).unwrap();
            let pb = b.spot_price(region, InstanceType::M5Xlarge, t).unwrap();
            assert_eq!(pa, pb);
            assert_eq!(
                a.placement_score(region, InstanceType::M5Xlarge, t).unwrap(),
                b.placement_score(region, InstanceType::M5Xlarge, t).unwrap()
            );
        }
    }

    #[test]
    fn parallel_build_matches_serial_exactly() {
        // Field-for-field equality over every precomputed trajectory:
        // bands, placement scores, hourly prices, episodes, hazard bounds.
        // Forced worker counts, not `new()` — the small-host serial
        // fallback must never excuse the parallel path from matching.
        for seed in [0, 7, 2024] {
            let config = MarketConfig { seed, horizon_days: 60 };
            let serial = SpotMarket::new_serial(config);
            for workers in [2, 8] {
                assert_eq!(
                    SpotMarket::build(config, workers),
                    serial,
                    "seed {seed} workers {workers}"
                );
            }
            assert_eq!(SpotMarket::new(config), serial, "seed {seed} via new()");
        }
    }

    #[test]
    fn small_hosts_and_short_horizons_build_serially() {
        // `new()` on a sub-threshold horizon must pick the serial path;
        // the choice is invisible in the output (previous test), so pin
        // the gate constants instead of the behavior.
        const { assert!(MIN_PARALLEL_WORKERS >= 2) };
        // The default 210-day horizon must stay parallel-eligible.
        const { assert!(MIN_PARALLEL_HORIZON_DAYS <= 210) };
    }

    #[test]
    fn different_seeds_differ() {
        let a = SpotMarket::new(MarketConfig::with_seed(1));
        let b = SpotMarket::new(MarketConfig::with_seed(2));
        let t = SimTime::from_days(10);
        let pa = a.spot_price(Region::UsEast1, InstanceType::M5Xlarge, t).unwrap();
        let pb = b.spot_price(Region::UsEast1, InstanceType::M5Xlarge, t).unwrap();
        assert_ne!(pa, pb);
    }

    #[test]
    fn prices_never_exceed_on_demand() {
        let m = market();
        for region in Region::ALL {
            let od = m.on_demand_price(region, InstanceType::M5Xlarge);
            for day in (0..200).step_by(7) {
                let p = m
                    .spot_price(region, InstanceType::M5Xlarge, SimTime::from_days(day))
                    .unwrap();
                assert!(p <= od, "{region} day {day}: {p} > {od}");
                assert!(p.rate() > 0.0);
            }
        }
    }

    #[test]
    fn unavailable_market_errors() {
        let m = market();
        let err = m
            .spot_price(Region::ApNortheast3, InstanceType::P32xlarge, SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, MarketError::Unavailable { .. }));
        assert!(err.to_string().contains("p3.2xlarge"));
    }

    #[test]
    fn beyond_horizon_errors() {
        let m = market();
        let err = m
            .spot_price(Region::UsEast1, InstanceType::M5Xlarge, SimTime::from_days(500))
            .unwrap_err();
        assert!(matches!(err, MarketError::BeyondHorizon { .. }));
    }

    #[test]
    fn stable_regions_have_lower_hazard() {
        let m = market();
        let t = SimTime::from_days(3);
        let stable = m
            .hazard_rate(Region::ApNortheast3, InstanceType::M5Xlarge, t)
            .unwrap();
        let unstable = m
            .hazard_rate(Region::CaCentral1, InstanceType::M5Xlarge, t)
            .unwrap();
        assert!(
            stable < unstable,
            "ap-northeast-3 hazard {stable} should be below ca-central-1 {unstable}"
        );
    }

    #[test]
    fn interruption_sampling_matches_hazard_scale() {
        let m = market();
        let mut rng = SimRng::seed_from_u64(99);
        let n = 600;
        let mut count_before = |region: Region, hours: u64| {
            let mut interrupted = 0;
            for _ in 0..n {
                if let Some(d) = m
                    .sample_interruption_delay(region, InstanceType::M5Xlarge, SimTime::from_days(1), &mut rng)
                    .unwrap()
                {
                    if d <= SimDuration::from_hours(hours) {
                        interrupted += 1;
                    }
                }
            }
            interrupted
        };
        let unstable = count_before(Region::CaCentral1, 10);
        let stable = count_before(Region::ApNortheast3, 10);
        assert!(
            unstable > 2 * stable.max(1),
            "unstable {unstable} vs stable {stable}"
        );
        // Unstable region: P(interrupt within 10 h) should be substantial.
        assert!(unstable as f64 / n as f64 > 0.35, "unstable rate too low: {unstable}/{n}");
    }

    #[test]
    fn fulfillment_tracks_placement_score() {
        let m = market();
        let mut rng = SimRng::seed_from_u64(4);
        let t = SimTime::from_days(2);
        let trials = 500;
        let mut hits = |region: Region| {
            (0..trials)
                .filter(|_| m.try_fulfill(region, InstanceType::M5Xlarge, t, &mut rng).unwrap())
                .count()
        };
        let high = hits(Region::ApNortheast3); // placement mean 7
        let low = hits(Region::UsEast1); // placement mean 3
        assert!(high > low, "high {high} vs low {low}");
    }

    #[test]
    fn az_prices_cluster_near_regional_price() {
        let m = market();
        let t = SimTime::from_days(20);
        let regional = m
            .spot_price(Region::UsEast1, InstanceType::C52xlarge, t)
            .unwrap()
            .rate();
        for az in Region::UsEast1.zones() {
            let p = m.spot_price_az(az, InstanceType::C52xlarge, t).unwrap().rate();
            assert!((p - regional).abs() / regional < 0.08, "AZ {az}: {p} vs {regional}");
        }
        // And the offsets are not all identical.
        let prices: Vec<f64> = Region::UsEast1
            .zones()
            .map(|az| m.spot_price_az(az, InstanceType::C52xlarge, t).unwrap().rate())
            .collect();
        assert!(prices.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn regions_offering_excludes_p3_gaps() {
        let m = market();
        let regions = m.regions_offering(InstanceType::P32xlarge);
        assert!(!regions.contains(&Region::ApNortheast3));
        assert_eq!(m.regions_offering(InstanceType::M5Xlarge).len(), 12);
        assert!(m.is_available(Region::UsEast1, InstanceType::P32xlarge));
        assert!(!m.is_available(Region::EuNorth1, InstanceType::P32xlarge));
    }

    #[test]
    fn bands_hover_near_profile_base() {
        let m = market();
        let mut matches = 0;
        let mut total = 0;
        for day in 0..200 {
            let band = m
                .interruption_band(Region::ApNortheast3, InstanceType::M5Xlarge, SimTime::from_days(day))
                .unwrap();
            total += 1;
            if band == InterruptionBand::Under5 {
                matches += 1;
            }
        }
        assert!(
            matches as f64 / total as f64 > 0.6,
            "base band should dominate: {matches}/{total}"
        );
    }

    #[test]
    fn hazard_spikes_inside_episodes() {
        // Use a TenToFifteen market (ca-central's Over20 band deliberately
        // has near-homogeneous hazard; see episode_params).
        let m = market();
        let state = m
            .state(Region::EuWest3, InstanceType::M5Xlarge)
            .unwrap();
        if let Some(&(start, _)) = state.episodes.first() {
            let inside = state.hazard_at(start + SimDuration::from_secs(60));
            let band = state.daily_band[(start.as_days() as usize).min(state.daily_band.len() - 1)];
            let quiet = quiet_hazard(band);
            assert!(inside > 2.0 * quiet, "episode hazard {inside} vs quiet {quiet}");
        }
    }
}

#[cfg(test)]
mod weekday_tests {
    use super::*;

    #[test]
    fn epoch_is_monday_and_weeks_wrap() {
        assert_eq!(Weekday::of(SimTime::ZERO), Weekday::Monday);
        assert_eq!(Weekday::of(SimTime::from_days(5)), Weekday::Saturday);
        assert_eq!(Weekday::of(SimTime::from_days(7)), Weekday::Monday);
        assert!(Weekday::of(SimTime::from_days(6)).is_weekend());
        assert!(!Weekday::of(SimTime::from_days(3)).is_weekend());
    }

    #[test]
    fn weekday_hazard_shapes_the_week() {
        assert!(Weekday::Wednesday.hazard_factor() > Weekday::Monday.hazard_factor());
        assert!(Weekday::Sunday.hazard_factor() < Weekday::Monday.hazard_factor());
    }

    #[test]
    fn hazard_rate_reflects_weekly_pattern() {
        let m = SpotMarket::new(MarketConfig::with_seed(3));
        // Compare a mid-week day against the following Sunday, far from
        // surges, same band day (bands can change daily, so average a few
        // weeks to wash that out).
        let mut midweek = 0.0;
        let mut weekend = 0.0;
        let mut weeks = 0;
        for week in 8..20 {
            let wed = SimTime::from_days(week * 7 + 2);
            let sun = SimTime::from_days(week * 7 + 6);
            let b_wed = m.interruption_band(Region::UsEast1, InstanceType::M5Xlarge, wed).unwrap();
            let b_sun = m.interruption_band(Region::UsEast1, InstanceType::M5Xlarge, sun).unwrap();
            if b_wed != b_sun {
                continue; // band moved mid-week; skip for a clean comparison
            }
            if m.in_demand_episode(Region::UsEast1, InstanceType::M5Xlarge, wed).unwrap()
                || m.in_demand_episode(Region::UsEast1, InstanceType::M5Xlarge, sun).unwrap()
            {
                continue;
            }
            midweek += m.hazard_rate(Region::UsEast1, InstanceType::M5Xlarge, wed).unwrap();
            weekend += m.hazard_rate(Region::UsEast1, InstanceType::M5Xlarge, sun).unwrap();
            weeks += 1;
        }
        assert!(weeks > 0, "no clean comparison weeks found");
        assert!(
            midweek > weekend,
            "midweek hazard {midweek} should exceed weekend {weekend} over {weeks} weeks"
        );
    }
}
