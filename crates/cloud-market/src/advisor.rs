//! Spot Instance Advisor metrics: Interruption-Frequency bands, the derived
//! Stability Score, and the Spot Placement Score (paper §3.1).
//!
//! AWS publishes the Interruption Frequency as a banded percentage
//! (`<5%`, `5–10%`, …, `>20%`). The paper collapses the band into a 1–3
//! *Stability Score* — 3 when interruption likelihood is below 5%, 1 when it
//! exceeds 20%, and 2 otherwise — and sums it with the 1–10 *Spot Placement
//! Score* to rank regions.

use std::fmt;

use serde::{Deserialize, Serialize};

/// An Interruption Frequency band from the Spot Instance Advisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum InterruptionBand {
    Under5,
    FiveToTen,
    TenToFifteen,
    FifteenToTwenty,
    Over20,
}

impl InterruptionBand {
    /// Every band, most stable first.
    pub const ALL: [InterruptionBand; 5] = [
        InterruptionBand::Under5,
        InterruptionBand::FiveToTen,
        InterruptionBand::TenToFifteen,
        InterruptionBand::FifteenToTwenty,
        InterruptionBand::Over20,
    ];

    /// The label the advisor displays, e.g. `"<5%"`.
    pub fn label(self) -> &'static str {
        match self {
            InterruptionBand::Under5 => "<5%",
            InterruptionBand::FiveToTen => "5-10%",
            InterruptionBand::TenToFifteen => "10-15%",
            InterruptionBand::FifteenToTwenty => "15-20%",
            InterruptionBand::Over20 => ">20%",
        }
    }

    /// The Stability Score the paper derives from the band: 3 for `<5%`, 1
    /// for `>20%`, 2 for everything in between.
    pub fn stability_score(self) -> StabilityScore {
        match self {
            InterruptionBand::Under5 => StabilityScore::new(3).expect("3 is valid"),
            InterruptionBand::Over20 => StabilityScore::new(1).expect("1 is valid"),
            _ => StabilityScore::new(2).expect("2 is valid"),
        }
    }

    /// The calibrated baseline interruption hazard (events per instance-hour)
    /// this band corresponds to in the simulator.
    ///
    /// Fitted so that the paper's reported interruption counts reproduce
    /// (see DESIGN.md §5): a Stability-1 region yields ≈3 interruptions per
    /// 10-hour restart-from-scratch workload.
    pub fn base_hourly_hazard(self) -> f64 {
        match self {
            InterruptionBand::Under5 => 0.022,
            InterruptionBand::FiveToTen => 0.045,
            InterruptionBand::TenToFifteen => 0.060,
            InterruptionBand::FifteenToTwenty => 0.070,
            InterruptionBand::Over20 => 0.080,
        }
    }

    /// Moves one band toward more interruptions, saturating at `>20%`.
    pub fn worse(self) -> InterruptionBand {
        match self {
            InterruptionBand::Under5 => InterruptionBand::FiveToTen,
            InterruptionBand::FiveToTen => InterruptionBand::TenToFifteen,
            InterruptionBand::TenToFifteen => InterruptionBand::FifteenToTwenty,
            InterruptionBand::FifteenToTwenty | InterruptionBand::Over20 => {
                InterruptionBand::Over20
            }
        }
    }

    /// Moves one band toward fewer interruptions, saturating at `<5%`.
    pub fn better(self) -> InterruptionBand {
        match self {
            InterruptionBand::Under5 | InterruptionBand::FiveToTen => InterruptionBand::Under5,
            InterruptionBand::TenToFifteen => InterruptionBand::FiveToTen,
            InterruptionBand::FifteenToTwenty => InterruptionBand::TenToFifteen,
            InterruptionBand::Over20 => InterruptionBand::FifteenToTwenty,
        }
    }
}

impl fmt::Display for InterruptionBand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Error for out-of-range score values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScoreOutOfRange {
    kind: &'static str,
    value: u8,
    lo: u8,
    hi: u8,
}

impl fmt::Display for ScoreOutOfRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} out of range [{}, {}]",
            self.kind, self.value, self.lo, self.hi
        )
    }
}

impl std::error::Error for ScoreOutOfRange {}

/// The paper's Stability Score: 1–3, inversely proportional to the
/// Interruption Frequency.
///
/// # Examples
///
/// ```
/// use cloud_market::{InterruptionBand, StabilityScore};
///
/// assert_eq!(InterruptionBand::Under5.stability_score().value(), 3);
/// assert!(StabilityScore::new(4).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct StabilityScore(u8);

impl StabilityScore {
    /// The worst (most interruption-prone) score.
    pub const MIN: StabilityScore = StabilityScore(1);

    /// Creates a score, validating the 1–3 range.
    ///
    /// # Errors
    ///
    /// Returns [`ScoreOutOfRange`] when `value` is outside `1..=3`.
    pub fn new(value: u8) -> Result<Self, ScoreOutOfRange> {
        if (1..=3).contains(&value) {
            Ok(StabilityScore(value))
        } else {
            Err(ScoreOutOfRange {
                kind: "stability score",
                value,
                lo: 1,
                hi: 3,
            })
        }
    }

    /// The raw score.
    pub fn value(self) -> u8 {
        self.0
    }
}

impl fmt::Display for StabilityScore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The Spot Placement Score: 1–10, the likelihood a spot request succeeds.
///
/// # Examples
///
/// ```
/// use cloud_market::PlacementScore;
///
/// let s = PlacementScore::new(7)?;
/// assert!(s.fulfill_probability() > 0.7);
/// # Ok::<(), cloud_market::ScoreOutOfRange>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PlacementScore(u8);

impl PlacementScore {
    /// The worst score — what a blacked-out region advertises.
    pub const MIN: PlacementScore = PlacementScore(1);

    /// Creates a score, validating the 1–10 range.
    ///
    /// # Errors
    ///
    /// Returns [`ScoreOutOfRange`] when `value` is outside `1..=10`.
    pub fn new(value: u8) -> Result<Self, ScoreOutOfRange> {
        if (1..=10).contains(&value) {
            Ok(PlacementScore(value))
        } else {
            Err(ScoreOutOfRange {
                kind: "placement score",
                value,
                lo: 1,
                hi: 10,
            })
        }
    }

    /// Creates a score from a real-valued model output, rounding and
    /// clamping into range.
    pub fn from_f64_clamped(value: f64) -> Self {
        let v = value.round().clamp(1.0, 10.0) as u8;
        PlacementScore(v)
    }

    /// The raw score.
    pub fn value(self) -> u8 {
        self.0
    }

    /// The per-attempt probability that a spot request in this market is
    /// fulfilled, as modelled by the simulator: `0.25 + 0.075 × score`
    /// (score 10 → certainty).
    pub fn fulfill_probability(self) -> f64 {
        0.25 + 0.075 * f64::from(self.0)
    }
}

impl fmt::Display for PlacementScore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The combined region score the Optimizer ranks on: Placement + Stability
/// (range 2–13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CombinedScore(u8);

impl CombinedScore {
    /// Combines the two advisor metrics.
    pub fn new(placement: PlacementScore, stability: StabilityScore) -> Self {
        CombinedScore(placement.value() + stability.value())
    }

    /// The raw combined value.
    pub fn value(self) -> u8 {
        self.0
    }

    /// Whether this score meets a threshold (paper Algorithm 1's `T`).
    pub fn meets(self, threshold: u8) -> bool {
        self.0 >= threshold
    }
}

impl fmt::Display for CombinedScore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stability_mapping_matches_paper() {
        assert_eq!(InterruptionBand::Under5.stability_score().value(), 3);
        assert_eq!(InterruptionBand::FiveToTen.stability_score().value(), 2);
        assert_eq!(InterruptionBand::TenToFifteen.stability_score().value(), 2);
        assert_eq!(InterruptionBand::FifteenToTwenty.stability_score().value(), 2);
        assert_eq!(InterruptionBand::Over20.stability_score().value(), 1);
    }

    #[test]
    fn hazards_increase_with_band_severity() {
        let hazards: Vec<f64> = InterruptionBand::ALL
            .iter()
            .map(|b| b.base_hourly_hazard())
            .collect();
        assert!(hazards.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn band_walk_saturates() {
        assert_eq!(InterruptionBand::Over20.worse(), InterruptionBand::Over20);
        assert_eq!(InterruptionBand::Under5.better(), InterruptionBand::Under5);
        assert_eq!(
            InterruptionBand::Under5.worse().better(),
            InterruptionBand::Under5
        );
    }

    #[test]
    fn score_validation() {
        assert!(StabilityScore::new(0).is_err());
        assert!(StabilityScore::new(3).is_ok());
        assert!(PlacementScore::new(0).is_err());
        assert!(PlacementScore::new(11).is_err());
        assert!(PlacementScore::new(10).is_ok());
        let err = PlacementScore::new(42).unwrap_err();
        assert!(err.to_string().contains("placement score 42"));
    }

    #[test]
    fn placement_clamping() {
        assert_eq!(PlacementScore::from_f64_clamped(-3.0).value(), 1);
        assert_eq!(PlacementScore::from_f64_clamped(6.4).value(), 6);
        assert_eq!(PlacementScore::from_f64_clamped(99.0).value(), 10);
    }

    #[test]
    fn fulfill_probability_monotone_and_bounded() {
        let mut last = 0.0;
        for v in 1..=10 {
            let p = PlacementScore::new(v).unwrap().fulfill_probability();
            assert!(p > last && p <= 1.0);
            last = p;
        }
        assert_eq!(PlacementScore::new(10).unwrap().fulfill_probability(), 1.0);
    }

    #[test]
    fn combined_score_sums_and_thresholds() {
        let c = CombinedScore::new(
            PlacementScore::new(7).unwrap(),
            StabilityScore::new(3).unwrap(),
        );
        assert_eq!(c.value(), 10);
        assert!(c.meets(6));
        assert!(c.meets(10));
        assert!(!c.meets(11));
    }

    #[test]
    fn band_labels() {
        assert_eq!(InterruptionBand::Under5.to_string(), "<5%");
        assert_eq!(InterruptionBand::Over20.to_string(), ">20%");
    }
}
