//! Money newtypes: [`Usd`] amounts and [`UsdPerHour`] rates.
//!
//! Keeping rates and amounts apart prevents the classic billing bug of
//! summing a price-per-hour into a dollar total without multiplying by
//! elapsed time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};
use sim_kernel::SimDuration;

/// A non-negative dollar amount.
///
/// # Examples
///
/// ```
/// use cloud_market::Usd;
///
/// let total = Usd::new(1.25) + Usd::new(0.75);
/// assert_eq!(total, Usd::new(2.0));
/// assert_eq!(total.to_string(), "$2.00");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Usd(f64);

/// A non-negative dollars-per-hour rate.
///
/// # Examples
///
/// ```
/// use cloud_market::UsdPerHour;
/// use sim_kernel::SimDuration;
///
/// let rate = UsdPerHour::new(0.192);
/// let cost = rate.for_duration(SimDuration::from_hours(10));
/// assert!((cost.amount() - 1.92).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct UsdPerHour(f64);

impl Usd {
    /// Zero dollars.
    pub const ZERO: Usd = Usd(0.0);

    /// Creates an amount.
    ///
    /// # Panics
    ///
    /// Panics if `amount` is negative or not finite.
    pub fn new(amount: f64) -> Self {
        assert!(
            amount.is_finite() && amount >= 0.0,
            "Usd::new: amount must be finite and non-negative, got {amount}"
        );
        Usd(amount)
    }

    /// The raw dollar amount.
    pub fn amount(self) -> f64 {
        self.0
    }

    /// Saturating subtraction (never goes negative).
    pub fn saturating_sub(self, other: Usd) -> Usd {
        Usd((self.0 - other.0).max(0.0))
    }

    /// The ratio of this amount to another (e.g. normalized cost).
    ///
    /// # Panics
    ///
    /// Panics if `denom` is zero.
    pub fn ratio_to(self, denom: Usd) -> f64 {
        assert!(denom.0 > 0.0, "Usd::ratio_to: division by zero dollars");
        self.0 / denom.0
    }
}

impl UsdPerHour {
    /// Zero rate.
    pub const ZERO: UsdPerHour = UsdPerHour(0.0);

    /// Creates a rate.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is negative or not finite.
    pub fn new(rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate >= 0.0,
            "UsdPerHour::new: rate must be finite and non-negative, got {rate}"
        );
        UsdPerHour(rate)
    }

    /// The raw dollars-per-hour value.
    pub fn rate(self) -> f64 {
        self.0
    }

    /// The cost of running at this rate for `duration` (per-second billing).
    pub fn for_duration(self, duration: SimDuration) -> Usd {
        Usd(self.0 * duration.as_hours_f64())
    }

    /// Scales the rate by a non-negative factor (e.g. a demand episode
    /// multiplier).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn scaled(self, factor: f64) -> UsdPerHour {
        UsdPerHour::new(self.0 * factor)
    }

    /// The smaller of two rates.
    pub fn min(self, other: UsdPerHour) -> UsdPerHour {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// The larger of two rates.
    pub fn max(self, other: UsdPerHour) -> UsdPerHour {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for Usd {
    type Output = Usd;
    fn add(self, rhs: Usd) -> Usd {
        Usd(self.0 + rhs.0)
    }
}

impl AddAssign for Usd {
    fn add_assign(&mut self, rhs: Usd) {
        self.0 += rhs.0;
    }
}

impl Sub for Usd {
    type Output = Usd;

    /// # Panics
    ///
    /// Panics if the result would be negative; use
    /// [`Usd::saturating_sub`] when that is expected.
    fn sub(self, rhs: Usd) -> Usd {
        Usd::new(self.0 - rhs.0)
    }
}

impl Mul<f64> for Usd {
    type Output = Usd;

    /// # Panics
    ///
    /// Panics if `rhs` is negative or not finite.
    fn mul(self, rhs: f64) -> Usd {
        Usd::new(self.0 * rhs)
    }
}

impl Div<f64> for Usd {
    type Output = Usd;

    /// # Panics
    ///
    /// Panics if `rhs` is not strictly positive.
    fn div(self, rhs: f64) -> Usd {
        assert!(rhs > 0.0, "Usd division by non-positive scalar");
        Usd(self.0 / rhs)
    }
}

impl Sum for Usd {
    fn sum<I: Iterator<Item = Usd>>(iter: I) -> Usd {
        iter.fold(Usd::ZERO, Add::add)
    }
}

impl fmt::Display for Usd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${:.2}", self.0)
    }
}

impl fmt::Display for UsdPerHour {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${:.4}/h", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_times_duration_is_cost() {
        let rate = UsdPerHour::new(0.5);
        assert_eq!(rate.for_duration(SimDuration::from_hours(4)), Usd::new(2.0));
        // Per-second billing: 30 minutes at $1/h is 50 cents.
        assert_eq!(
            UsdPerHour::new(1.0).for_duration(SimDuration::from_mins(30)),
            Usd::new(0.5)
        );
    }

    #[test]
    fn sum_of_costs() {
        let total: Usd = [Usd::new(1.0), Usd::new(2.5), Usd::new(0.5)].into_iter().sum();
        assert_eq!(total, Usd::new(4.0));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_amount_rejected() {
        Usd::new(-0.01);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn subtraction_underflow_panics() {
        let _ = Usd::new(1.0) - Usd::new(2.0);
    }

    #[test]
    fn saturating_sub_clamps_to_zero() {
        assert_eq!(Usd::new(1.0).saturating_sub(Usd::new(2.0)), Usd::ZERO);
        assert_eq!(Usd::new(3.0).saturating_sub(Usd::new(1.0)), Usd::new(2.0));
    }

    #[test]
    fn ratio_to_normalizes() {
        assert_eq!(Usd::new(1.0).ratio_to(Usd::new(4.0)), 0.25);
    }

    #[test]
    fn rate_ordering_helpers() {
        let a = UsdPerHour::new(0.1);
        let b = UsdPerHour::new(0.2);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Usd::new(41.456).to_string(), "$41.46");
        assert_eq!(UsdPerHour::new(0.192).to_string(), "$0.1920/h");
    }

    #[test]
    fn scaled_rate() {
        let scaled = UsdPerHour::new(0.1).scaled(1.5);
        assert!((scaled.rate() - 0.15).abs() < 1e-12);
    }
}
