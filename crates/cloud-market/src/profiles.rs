//! Calibrated per-(region, instance-type) market profiles.
//!
//! These constants are the synthetic substitute for AWS's proprietary spot
//! datasets (Spot Instance Advisor, Spot Placement Score, price history).
//! They are calibrated so that the paper's structural facts hold by
//! construction:
//!
//! * **Table 1** — the cheapest spot region at day 0 per instance type is
//!   us-west-2 (m5.large), ca-central-1 (m5.xlarge, r5.2xlarge),
//!   ap-northeast-3 (m5.2xlarge) and eu-north-1 (c5.2xlarge).
//! * **Table 3** — for m5.xlarge, combined scores tier the regions exactly
//!   as the paper reports for thresholds 6 / 5 / 4, and the threshold-4
//!   regions are the cheapest overall in the threshold experiment window.
//! * **Figure 4c** — p3.2xlarge placement scores are uniform across regions
//!   while its interruption bands still vary.

use crate::advisor::InterruptionBand;
use crate::instance::InstanceType;
use crate::money::UsdPerHour;
use crate::region::Region;

/// A transient demand surge: the market behaviour the paper's motivational
/// experiment observed — the nominally "cheapest" region attracts load,
/// its spot price climbs well above the baseline, and interruptions
/// intensify, before demand drains away again.
///
/// The price multiplier rises linearly from 1 at `start_day` to
/// `peak_mult` at `peak_day`, then falls linearly back to 1 at `end_day`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PriceSurge {
    /// Day the surge begins.
    pub start_day: f64,
    /// Day the multiplier peaks.
    pub peak_day: f64,
    /// Day the surge has fully decayed.
    pub end_day: f64,
    /// Peak price multiplier (≥ 1).
    pub peak_mult: f64,
    /// Interruption-hazard multiplier while the surge is active.
    pub hazard_mult: f64,
}

impl PriceSurge {
    /// The price multiplier on fractional day `day`.
    pub fn price_factor(&self, day: f64) -> f64 {
        if day <= self.start_day || day >= self.end_day {
            1.0
        } else if day <= self.peak_day {
            1.0 + (self.peak_mult - 1.0) * (day - self.start_day)
                / (self.peak_day - self.start_day)
        } else {
            1.0 + (self.peak_mult - 1.0) * (self.end_day - day) / (self.end_day - self.peak_day)
        }
    }

    /// The hazard multiplier on fractional day `day`.
    pub fn hazard_factor(&self, day: f64) -> f64 {
        if day <= self.start_day || day >= self.end_day {
            1.0
        } else {
            self.hazard_mult
        }
    }
}

/// The static market profile of one (region, instance type) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct MarketProfile {
    region: Region,
    instance_type: InstanceType,
    spot_base_start: UsdPerHour,
    spot_base_end: UsdPerHour,
    base_band: InterruptionBand,
    placement_mean: f64,
    hazard_scale: f64,
    available: bool,
    surges: Vec<PriceSurge>,
}

impl MarketProfile {
    /// The region.
    pub fn region(&self) -> Region {
        self.region
    }

    /// The instance type.
    pub fn instance_type(&self) -> InstanceType {
        self.instance_type
    }

    /// Baseline spot price at the start of the trace horizon.
    pub fn spot_base_start(&self) -> UsdPerHour {
        self.spot_base_start
    }

    /// Baseline spot price at the end of the trace horizon (prices drift
    /// linearly in between).
    pub fn spot_base_end(&self) -> UsdPerHour {
        self.spot_base_end
    }

    /// Baseline spot price at a fractional position `frac ∈ [0, 1]` through
    /// the horizon.
    pub fn spot_base_at(&self, frac: f64) -> UsdPerHour {
        let f = frac.clamp(0.0, 1.0);
        UsdPerHour::new(
            self.spot_base_start.rate() + (self.spot_base_end.rate() - self.spot_base_start.rate()) * f,
        )
    }

    /// The long-run Interruption-Frequency band.
    pub fn base_band(&self) -> InterruptionBand {
        self.base_band
    }

    /// Mean Spot Placement Score (1–10 scale, real-valued before rounding).
    pub fn placement_mean(&self) -> f64 {
        self.placement_mean
    }

    /// Idiosyncratic hazard multiplier on top of the band baseline (models
    /// markets like r5.2xlarge in ca-central-1 that the paper found
    /// anomalously interruption-prone).
    pub fn hazard_scale(&self) -> f64 {
        self.hazard_scale
    }

    /// Whether the instance type is offered in this region at all (the paper
    /// notes p3.2xlarge is missing from some regions).
    pub fn is_available(&self) -> bool {
        self.available
    }

    /// The demand surges this market experiences over the horizon.
    pub fn surges(&self) -> &[PriceSurge] {
        &self.surges
    }

    /// The combined surge price multiplier on fractional day `day`.
    pub fn surge_price_factor(&self, day: f64) -> f64 {
        self.surges.iter().map(|s| s.price_factor(day)).product()
    }

    /// The combined surge hazard multiplier on fractional day `day`.
    pub fn surge_hazard_factor(&self, day: f64) -> f64 {
        self.surges.iter().map(|s| s.hazard_factor(day)).product()
    }

    /// The largest combined hazard multiplier over the horizon.
    pub fn max_surge_hazard_factor(&self) -> f64 {
        self.surges
            .iter()
            .map(|s| s.hazard_mult.max(1.0))
            .product()
    }
}

/// The short, sharp capacity crunch around day 40 — the window the
/// checkpoint-workload experiments of Figure 7d run in, where the
/// baseline region's interruption rate roughly doubles. Exposed as a
/// named calibration constant so the `capacity_crunch` regime reuses the
/// same crunch intensity for its randomly-selected crunch weeks.
pub const CRUNCH_SURGE: PriceSurge = PriceSurge {
    start_day: 39.5,
    peak_day: 40.5,
    end_day: 44.0,
    peak_mult: 1.8,
    hazard_mult: 2.0,
};

/// Per-region multiplier on the reference (us-east-1) on-demand price.
fn on_demand_multiplier(region: Region) -> f64 {
    match region {
        Region::UsEast1 | Region::UsEast2 | Region::UsWest2 => 1.00,
        Region::UsWest1 => 1.12,
        Region::CaCentral1 => 1.07,
        Region::EuWest1 => 1.055,
        Region::EuWest2 => 1.09,
        Region::EuWest3 => 1.10,
        Region::EuNorth1 => 1.02,
        Region::ApNortheast3 => 1.24,
        Region::ApSoutheast1 => 1.155,
        Region::ApSoutheast2 => 1.16,
    }
}

/// The on-demand hourly price of `instance_type` in `region`.
///
/// # Examples
///
/// ```
/// use cloud_market::{on_demand_price, InstanceType, Region};
///
/// let p = on_demand_price(Region::UsEast1, InstanceType::M5Xlarge);
/// assert!((p.rate() - 0.192).abs() < 1e-9);
/// ```
pub fn on_demand_price(region: Region, instance_type: InstanceType) -> UsdPerHour {
    instance_type
        .reference_on_demand_price()
        .scaled(on_demand_multiplier(region))
}

/// The region with the cheapest on-demand price for `instance_type`.
pub fn cheapest_on_demand_region(instance_type: InstanceType) -> Region {
    Region::ALL
        .into_iter()
        .min_by(|a, b| {
            on_demand_price(*a, instance_type)
                .rate()
                .total_cmp(&on_demand_price(*b, instance_type).rate())
        })
        .expect("region catalog is non-empty")
}

/// m5.xlarge reference row: (spot start, spot end, band, placement mean).
///
/// This is the tier table from DESIGN.md §5 that makes the paper's Table 3
/// hold by construction.
fn m5_xlarge_row(region: Region) -> (f64, f64, InterruptionBand, f64) {
    use InterruptionBand::*;
    match region {
        Region::UsEast1 => (0.0455, 0.0455, Over20, 3.0),
        Region::UsEast2 => (0.0450, 0.0450, Over20, 3.0),
        Region::UsWest1 => (0.0700, 0.1060, Under5, 6.0),
        Region::UsWest2 => (0.0465, 0.0463, Over20, 3.0),
        Region::CaCentral1 => (0.0420, 0.0780, Over20, 4.0),
        Region::EuWest1 => (0.0730, 0.1110, FiveToTen, 6.0),
        Region::EuWest2 => (0.0590, 0.0595, TenToFifteen, 3.0),
        Region::EuWest3 => (0.0580, 0.0585, TenToFifteen, 3.0),
        Region::EuNorth1 => (0.0620, 0.0960, FiveToTen, 5.0),
        Region::ApNortheast3 => (0.0660, 0.1030, Under5, 7.0),
        Region::ApSoutheast1 => (0.0560, 0.0570, Over20, 4.0),
        Region::ApSoutheast2 => (0.0445, 0.0440, Over20, 3.0),
    }
}

/// The market profile for a (region, instance type) pair.
///
/// Prices for non-m5.xlarge types scale the m5.xlarge row by the on-demand
/// price ratio, with targeted overrides that pin the paper's Table 1 baseline
/// regions and the per-type anomalies the paper calls out.
pub fn profile(region: Region, instance_type: InstanceType) -> MarketProfile {
    let (m5x_start, m5x_end, band, placement) = m5_xlarge_row(region);
    let ratio = instance_type.reference_on_demand_price().rate()
        / InstanceType::M5Xlarge.reference_on_demand_price().rate();
    let mut start = m5x_start * ratio;
    let mut end = m5x_end * ratio;
    let mut band = band;
    let mut placement = placement;
    // The perpetually-cheapest markets carry extra reclaim pressure beyond
    // their advisor band (calibrates Figure 10's threshold-4 crossover).
    let mut hazard_scale = match region {
        Region::UsEast1 | Region::UsEast2 | Region::UsWest2 | Region::ApSoutheast2 => 1.9,
        _ => 1.0,
    };
    let mut available = true;

    // Cheap regions attract demand early in the horizon (the paper's §2.2
    // observation): the baseline-cheapest region surges hardest.
    let surge_with = |peak: f64| PriceSurge {
        start_day: 0.4,
        peak_day: 2.0,
        end_day: 25.0,
        peak_mult: peak,
        hazard_mult: 1.0,
    };
    let crunch = CRUNCH_SURGE;
    let mut surges: Vec<PriceSurge> = match region {
        Region::CaCentral1 => vec![surge_with(2.1), crunch],
        Region::UsEast1 | Region::UsEast2 | Region::UsWest2 | Region::ApSoutheast2 => {
            vec![surge_with(1.5), crunch]
        }
        _ => Vec::new(),
    };

    match (instance_type, region) {
        // Even top-tier regions have off days: a short capacity wobble in
        // ap-northeast-3 around day 10 (the window of the paper's
        // initial-distribution experiment, §5.2.3, where the single
        // best-scoring region alone still saw 69 interruptions).
        (InstanceType::M5Xlarge, Region::ApNortheast3) => {
            surges.push(PriceSurge {
                start_day: 9.5,
                peak_day: 11.0,
                end_day: 14.5,
                peak_mult: 1.25,
                hazard_mult: 3.2,
            });
        }
        // Table 1: m5.large is cheapest in us-west-2 (Stability 1 there).
        (InstanceType::M5Large, Region::UsWest2) => {
            start = 0.0190;
            end = 0.0200;
            surges = vec![surge_with(1.9), crunch];
            // The m5.large pool in us-west-2 is deeper than the region's
            // m5.xlarge tier-C baseline (Figure 8c's 137-interruption
            // calibration).
            hazard_scale = 1.55;
        }
        (InstanceType::M5Large, Region::CaCentral1) => {
            start = 0.0240;
            end = 0.0300;
        }
        // Table 1: m5.2xlarge is cheapest in ap-northeast-3 (moderate band).
        (InstanceType::M52xlarge, Region::ApNortheast3) => {
            start = 0.0780;
            end = 0.0800;
            band = InterruptionBand::FiveToTen;
            surges = vec![surge_with(1.25)];
        }
        // Figure 8a: r5.2xlarge in its baseline ca-central-1 is anomalously
        // interruption-prone (215 interruptions for 40 workloads).
        (InstanceType::R52xlarge, Region::CaCentral1) => {
            hazard_scale = 1.3;
        }
        // Table 1: c5.2xlarge is cheapest in eu-north-1 (moderate band).
        (InstanceType::C52xlarge, Region::EuNorth1) => {
            start = 0.0700;
            end = 0.0710;
            band = InterruptionBand::TenToFifteen;
            surges = vec![surge_with(1.45)];
        }
        (InstanceType::C52xlarge, Region::CaCentral1) => {
            start = 0.0780;
            end = 0.0950;
        }
        _ => {}
    }

    if instance_type == InstanceType::P32xlarge {
        // Figure 4c: p3.2xlarge placement scores are consistent across
        // regions; the paper excluded regions where p3 is not offered.
        placement = 4.0;
        if matches!(
            region,
            Region::ApNortheast3 | Region::EuWest3 | Region::EuNorth1
        ) {
            available = false;
        }
    }

    MarketProfile {
        region,
        instance_type,
        spot_base_start: UsdPerHour::new(start),
        spot_base_end: UsdPerHour::new(end),
        base_band: band,
        placement_mean: placement,
        hazard_scale,
        available,
        surges,
    }
}

/// All available profiles for an instance type.
pub fn profiles_for(instance_type: InstanceType) -> Vec<MarketProfile> {
    Region::ALL
        .into_iter()
        .map(|r| profile(r, instance_type))
        .filter(MarketProfile::is_available)
        .collect()
}

/// The region with the cheapest *baseline* spot price at day 0 for an
/// instance type — the paper's Table 1 "baseline region".
pub fn cheapest_spot_region_at_start(instance_type: InstanceType) -> Region {
    profiles_for(instance_type)
        .into_iter()
        .min_by(|a, b| {
            a.spot_base_start()
                .rate()
                .total_cmp(&b.spot_base_start().rate())
        })
        .expect("every instance type is available somewhere")
        .region()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::advisor::CombinedScore;
    use crate::advisor::PlacementScore;

    #[test]
    fn table1_baseline_regions_hold() {
        assert_eq!(
            cheapest_spot_region_at_start(InstanceType::M5Large),
            Region::UsWest2
        );
        assert_eq!(
            cheapest_spot_region_at_start(InstanceType::M5Xlarge),
            Region::CaCentral1
        );
        assert_eq!(
            cheapest_spot_region_at_start(InstanceType::M52xlarge),
            Region::ApNortheast3
        );
        assert_eq!(
            cheapest_spot_region_at_start(InstanceType::R52xlarge),
            Region::CaCentral1
        );
        assert_eq!(
            cheapest_spot_region_at_start(InstanceType::C52xlarge),
            Region::EuNorth1
        );
    }

    /// Combined score of a profile's long-run means.
    fn combined(region: Region) -> u8 {
        let p = profile(region, InstanceType::M5Xlarge);
        let placement = PlacementScore::from_f64_clamped(p.placement_mean());
        let stability = p.base_band().stability_score();
        CombinedScore::new(placement, stability).value()
    }

    #[test]
    fn table3_tier_structure_holds() {
        // Threshold 6 regions.
        for r in [
            Region::UsWest1,
            Region::ApNortheast3,
            Region::EuWest1,
            Region::EuNorth1,
        ] {
            assert!(combined(r) >= 6, "{r} should meet threshold 6");
        }
        // Threshold 5 (but not 6) regions.
        for r in [
            Region::ApSoutheast1,
            Region::EuWest3,
            Region::CaCentral1,
            Region::EuWest2,
        ] {
            assert_eq!(combined(r), 5, "{r} should score exactly 5");
        }
        // Threshold 4 regions: exactly 4 and the cheapest overall later in
        // the horizon.
        for r in [
            Region::UsEast1,
            Region::UsEast2,
            Region::ApSoutheast2,
            Region::UsWest2,
        ] {
            assert!(combined(r) <= 5, "{r} should be a low-score region");
            assert!(combined(r) >= 4, "{r} should still meet threshold 4");
        }
    }

    #[test]
    fn threshold4_regions_cheapest_late_in_horizon() {
        let mut prices: Vec<(Region, f64)> = Region::ALL
            .into_iter()
            .map(|r| {
                (
                    r,
                    profile(r, InstanceType::M5Xlarge).spot_base_at(0.5).rate(),
                )
            })
            .collect();
        prices.sort_by(|a, b| a.1.total_cmp(&b.1));
        let cheapest4: Vec<Region> = prices.iter().take(4).map(|&(r, _)| r).collect();
        for r in [
            Region::UsEast1,
            Region::UsEast2,
            Region::ApSoutheast2,
            Region::UsWest2,
        ] {
            assert!(
                cheapest4.contains(&r),
                "{r} should be among the 4 cheapest mid-horizon, got {cheapest4:?}"
            );
        }
    }

    #[test]
    fn spot_prices_stay_below_on_demand() {
        for itype in InstanceType::ALL {
            for p in profiles_for(itype) {
                let od = on_demand_price(p.region(), itype);
                assert!(
                    p.spot_base_start() < od && p.spot_base_end() < od,
                    "{}/{} spot base exceeds on-demand",
                    p.region(),
                    itype
                );
            }
        }
    }

    #[test]
    fn p3_unavailable_where_paper_excludes_it() {
        assert!(!profile(Region::ApNortheast3, InstanceType::P32xlarge).is_available());
        assert!(!profile(Region::EuNorth1, InstanceType::P32xlarge).is_available());
        assert!(profile(Region::UsEast1, InstanceType::P32xlarge).is_available());
        assert_eq!(profiles_for(InstanceType::P32xlarge).len(), 9);
    }

    #[test]
    fn p3_placement_uniform_across_regions() {
        let scores: Vec<f64> = profiles_for(InstanceType::P32xlarge)
            .iter()
            .map(|p| p.placement_mean())
            .collect();
        assert!(scores.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn cheapest_on_demand_is_a_unit_multiplier_region() {
        let r = cheapest_on_demand_region(InstanceType::M5Xlarge);
        assert!(matches!(
            r,
            Region::UsEast1 | Region::UsEast2 | Region::UsWest2
        ));
    }

    #[test]
    fn spot_base_at_interpolates() {
        let p = profile(Region::CaCentral1, InstanceType::M5Xlarge);
        let mid = p.spot_base_at(0.5).rate();
        assert!((mid - 0.060).abs() < 1e-9, "mid {mid}");
        assert_eq!(p.spot_base_at(-1.0), p.spot_base_start());
        assert_eq!(p.spot_base_at(2.0), p.spot_base_end());
    }

    #[test]
    fn r5_ca_central_hazard_anomaly() {
        // The r5/ca-central market is anomalously interruption-prone beyond
        // its band; stable-tier regions carry no extra scale.
        assert!(profile(Region::CaCentral1, InstanceType::R52xlarge).hazard_scale() > 1.0);
        assert_eq!(
            profile(Region::EuNorth1, InstanceType::R52xlarge).hazard_scale(),
            1.0
        );
        // Perpetually-cheap tier-C markets carry extra reclaim pressure.
        assert!(profile(Region::UsEast1, InstanceType::R52xlarge).hazard_scale() > 1.0);
    }
}
