//! Spot market history: a `describe-spot-price-history`-style query API
//! and a SpotLake-style dataset archive.
//!
//! The paper's Monitor builds on exactly these data sources: AWS's price
//! history API (§5.1.2 uses it for the cost model) and the SpotLake
//! archive service (related work §6, \[85\]) that joins prices with
//! Interruption-Frequency and Placement-Score snapshots.

use serde::{Deserialize, Serialize};
use sim_kernel::{SimDuration, SimTime};

use crate::advisor::{InterruptionBand, PlacementScore};
use crate::instance::InstanceType;
use crate::market::{MarketError, SpotMarket};
use crate::region::Region;

/// One price observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PricePoint {
    /// Observation instant.
    pub at: SimTime,
    /// Spot price in USD/hour.
    pub price: f64,
}

/// A `describe-spot-price-history` query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PriceHistoryQuery {
    /// The region to query.
    pub region: Region,
    /// The instance type to query.
    pub instance_type: InstanceType,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub to: SimTime,
    /// Sampling granularity.
    pub granularity: SimDuration,
}

impl PriceHistoryQuery {
    /// Executes the query against a market.
    ///
    /// # Errors
    ///
    /// Returns a [`MarketError`] for unknown markets or out-of-horizon
    /// windows.
    ///
    /// # Panics
    ///
    /// Panics if `from >= to` or the granularity is zero.
    pub fn run(&self, market: &SpotMarket) -> Result<Vec<PricePoint>, MarketError> {
        assert!(self.from < self.to, "empty query window");
        assert!(!self.granularity.is_zero(), "zero granularity");
        let mut out = Vec::new();
        let mut t = self.from;
        while t < self.to {
            let price = market.spot_price(self.region, self.instance_type, t)?;
            out.push(PricePoint {
                at: t,
                price: price.rate(),
            });
            t += self.granularity;
        }
        Ok(out)
    }
}

/// Summary statistics over a price history.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PriceSummary {
    /// Lowest observed price.
    pub min: f64,
    /// Highest observed price.
    pub max: f64,
    /// Mean price.
    pub mean: f64,
    /// Coefficient of variation (stddev / mean).
    pub cv: f64,
}

/// Summarizes a price series.
///
/// Returns `None` for an empty series.
pub fn summarize(points: &[PricePoint]) -> Option<PriceSummary> {
    if points.is_empty() {
        return None;
    }
    let n = points.len() as f64;
    let mean = points.iter().map(|p| p.price).sum::<f64>() / n;
    let var = points.iter().map(|p| (p.price - mean).powi(2)).sum::<f64>() / n;
    Some(PriceSummary {
        min: points.iter().map(|p| p.price).fold(f64::INFINITY, f64::min),
        max: points
            .iter()
            .map(|p| p.price)
            .fold(f64::NEG_INFINITY, f64::max),
        mean,
        cv: if mean > 0.0 { var.sqrt() / mean } else { 0.0 },
    })
}

/// One SpotLake-style archive row: price joined with advisor metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchiveRow {
    /// Observation instant.
    pub at: SimTime,
    /// Region.
    pub region: Region,
    /// Instance type.
    pub instance_type: InstanceType,
    /// Spot price, USD/hour.
    pub spot_price: f64,
    /// On-demand price, USD/hour.
    pub on_demand_price: f64,
    /// Interruption-Frequency band.
    pub band: InterruptionBand,
    /// Spot Placement Score.
    pub placement: PlacementScore,
}

/// Collects a SpotLake-style archive for an instance type: one row per
/// (region, sample instant).
///
/// # Errors
///
/// Returns a [`MarketError`] for out-of-horizon windows.
pub fn collect_archive(
    market: &SpotMarket,
    instance_type: InstanceType,
    from: SimTime,
    to: SimTime,
    granularity: SimDuration,
) -> Result<Vec<ArchiveRow>, MarketError> {
    assert!(from < to, "empty archive window");
    assert!(!granularity.is_zero(), "zero granularity");
    let mut rows = Vec::new();
    for &region in market.regions_offering(instance_type) {
        let mut t = from;
        while t < to {
            rows.push(ArchiveRow {
                at: t,
                region,
                instance_type,
                spot_price: market.spot_price(region, instance_type, t)?.rate(),
                on_demand_price: market.on_demand_price(region, instance_type).rate(),
                band: market.interruption_band(region, instance_type, t)?,
                placement: market.placement_score(region, instance_type, t)?,
            });
            t += granularity;
        }
    }
    Ok(rows)
}

/// Serializes archive rows as CSV (the format SpotLake publishes).
pub fn archive_to_csv(rows: &[ArchiveRow]) -> String {
    let mut out = String::from(
        "timestamp_secs,region,instance_type,spot_price,on_demand_price,interruption_band,placement_score\n",
    );
    for row in rows {
        out.push_str(&format!(
            "{},{},{},{:.6},{:.6},{},{}\n",
            row.at.as_secs(),
            row.region,
            row.instance_type,
            row.spot_price,
            row.on_demand_price,
            row.band.label(),
            row.placement.value(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::market::MarketConfig;

    fn market() -> SpotMarket {
        SpotMarket::new(MarketConfig::with_seed(13))
    }

    #[test]
    fn history_query_samples_the_window() {
        let m = market();
        let q = PriceHistoryQuery {
            region: Region::UsEast1,
            instance_type: InstanceType::M5Xlarge,
            from: SimTime::from_days(5),
            to: SimTime::from_days(6),
            granularity: SimDuration::from_hours(1),
        };
        let points = q.run(&m).unwrap();
        assert_eq!(points.len(), 24);
        assert!(points.windows(2).all(|w| w[0].at < w[1].at));
        assert!(points.iter().all(|p| p.price > 0.0));
    }

    #[test]
    fn summary_statistics() {
        let points = vec![
            PricePoint { at: SimTime::ZERO, price: 1.0 },
            PricePoint { at: SimTime::from_secs(1), price: 3.0 },
        ];
        let s = summarize(&points).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.mean, 2.0);
        assert!((s.cv - 0.5).abs() < 1e-12);
        assert_eq!(summarize(&[]), None);
    }

    #[test]
    fn archive_covers_all_offering_regions() {
        let m = market();
        let rows = collect_archive(
            &m,
            InstanceType::P32xlarge,
            SimTime::from_days(1),
            SimTime::from_days(2),
            SimDuration::from_hours(6),
        )
        .unwrap();
        // 9 offering regions × 4 samples.
        assert_eq!(rows.len(), 36);
        let regions: std::collections::BTreeSet<Region> = rows.iter().map(|r| r.region).collect();
        assert_eq!(regions.len(), 9);
    }

    #[test]
    fn csv_export_has_header_and_rows() {
        let m = market();
        let rows = collect_archive(
            &m,
            InstanceType::M5Xlarge,
            SimTime::from_days(1),
            SimTime::from_days(1) + SimDuration::from_hours(2),
            SimDuration::from_hours(1),
        )
        .unwrap();
        let csv = archive_to_csv(&rows);
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines[0].starts_with("timestamp_secs,region"));
        assert_eq!(lines.len(), 1 + rows.len());
        assert!(lines[1].contains("m5.xlarge"));
    }

    #[test]
    #[should_panic(expected = "empty query window")]
    fn inverted_window_panics() {
        let m = market();
        let _ = PriceHistoryQuery {
            region: Region::UsEast1,
            instance_type: InstanceType::M5Xlarge,
            from: SimTime::from_days(2),
            to: SimTime::from_days(1),
            granularity: SimDuration::from_hours(1),
        }
        .run(&m);
    }

    #[test]
    fn history_reflects_early_surge() {
        // ca-central's early surge must be visible in its price history.
        let m = market();
        let early = PriceHistoryQuery {
            region: Region::CaCentral1,
            instance_type: InstanceType::M5Xlarge,
            from: SimTime::from_days(1),
            to: SimTime::from_days(3),
            granularity: SimDuration::from_hours(1),
        }
        .run(&m)
        .unwrap();
        let late = PriceHistoryQuery {
            region: Region::CaCentral1,
            instance_type: InstanceType::M5Xlarge,
            from: SimTime::from_days(60),
            to: SimTime::from_days(62),
            granularity: SimDuration::from_hours(1),
        }
        .run(&m)
        .unwrap();
        let mean = |ps: &[PricePoint]| summarize(ps).unwrap().mean;
        assert!(
            mean(&early) > mean(&late),
            "surge window {} should exceed calm window {}",
            mean(&early),
            mean(&late)
        );
    }
}
