//! Pluggable market regimes: named, seeded perturbation programs layered
//! over the calibrated baseline market.
//!
//! The paper's evaluation runs against one calibrated market. A regime
//! generalizes "which market are we in" into a first-class axis:
//!
//! * [`MarketRegime::Baseline`] — the calibrated paper market, untouched.
//!   Every multiplier is exactly `1.0` and every delta exactly `0.0`, so a
//!   baseline market is **bit-identical** to the pre-regime build (the
//!   compatibility guarantee the golden suite pins down).
//! * [`MarketRegime::CapacityCrunch`] — randomly-selected weeks of fleet
//!   capacity pressure: advisor bands shrink (one band worse), hazard
//!   spikes, prices firm up, and placement scores sag.
//! * [`MarketRegime::CorrelatedShock`] — cross-region price shocks from a
//!   single shared seed fork: every region jumps together for a few days,
//!   the correlation that per-region processes cannot express.
//! * [`MarketRegime::RegimeSwitching`] — a seeded Markov chain over
//!   [`MARKET_SEGMENT_DAYS`]-day segments switching between calm, crunch,
//!   and shock behaviour — the chained-generator state in `LazyTrack`
//!   already crosses segment boundaries, so switches slot in for free.
//!
//! Two pieces carry a regime:
//!
//! * [`RegimeSpec`] — *static* generator calibration (AR(1) persistence
//!   and innovation, weekday hazard factors, episode arrival scaling)
//!   extracted from the constants that used to be hard-coded in
//!   `market.rs`.
//! * [`RegimeSchedule`] — a *per-day* program of multipliers built once
//!   per market from the market's own parent RNG via regime-specific fork
//!   labels. Forks are pure functions of `(seed, label)`, so adding the
//!   schedule never perturbs the baseline streams.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};
use sim_kernel::SimRng;

use crate::market::{Weekday, MARKET_SEGMENT_DAYS};
use crate::profiles::CRUNCH_SURGE;

/// A named market regime. `Copy + Eq + Hash` so it can ride on
/// `MarketConfig` and key shared-market caches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MarketRegime {
    /// The calibrated paper market; bit-identical to the pre-regime build.
    #[default]
    Baseline,
    /// Randomly-selected weeks of capacity pressure (bands shrink, hazard
    /// spikes, placement sags).
    CapacityCrunch,
    /// Cross-region correlated price shocks from one shared seed fork.
    CorrelatedShock,
    /// A seeded Markov chain over 14-day segments of calm/crunch/shock.
    RegimeSwitching,
}

impl MarketRegime {
    /// Every regime, in canonical order.
    pub const ALL: [MarketRegime; 4] = [
        MarketRegime::Baseline,
        MarketRegime::CapacityCrunch,
        MarketRegime::CorrelatedShock,
        MarketRegime::RegimeSwitching,
    ];

    /// The canonical snake_case name (CLI flag value, trace label).
    pub fn name(self) -> &'static str {
        match self {
            MarketRegime::Baseline => "baseline",
            MarketRegime::CapacityCrunch => "capacity_crunch",
            MarketRegime::CorrelatedShock => "correlated_shock",
            MarketRegime::RegimeSwitching => "regime_switching",
        }
    }

    /// Whether this is the default (baseline) regime.
    pub fn is_baseline(self) -> bool {
        self == MarketRegime::Baseline
    }

    /// The static generator calibration for this regime.
    pub fn spec(self) -> RegimeSpec {
        match self {
            MarketRegime::Baseline => RegimeSpec::BASELINE,
            // Crunch markets are jumpier (more frequent demand episodes,
            // heavier mid-week pressure) even outside crunch weeks.
            MarketRegime::CapacityCrunch => RegimeSpec {
                episode_rate_mult: 1.35,
                midweek_hazard: 1.2,
                ..RegimeSpec::BASELINE
            },
            // Shock regimes keep the baseline calibration between shocks;
            // the shared-fork schedule carries the correlated jumps.
            MarketRegime::CorrelatedShock => RegimeSpec {
                price_sigma: 0.028,
                ..RegimeSpec::BASELINE
            },
            MarketRegime::RegimeSwitching => RegimeSpec::BASELINE,
        }
    }
}

impl fmt::Display for MarketRegime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for MarketRegime {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        MarketRegime::ALL
            .into_iter()
            .find(|r| r.name() == s)
            .ok_or_else(|| {
                let names: Vec<&str> = MarketRegime::ALL.iter().map(|r| r.name()).collect();
                format!("unknown regime {s:?} (expected one of {})", names.join(", "))
            })
    }
}

/// Static generator calibration: the constants that used to be hard-coded
/// in the market's AR(1)/episode generators and `Weekday::hazard_factor`,
/// now owned by the regime.
///
/// [`RegimeSpec::BASELINE`] reproduces every historical literal exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegimeSpec {
    /// AR(1) persistence of the hourly price process.
    pub price_phi: f64,
    /// AR(1) innovation std-dev of the hourly price process.
    pub price_sigma: f64,
    /// AR(1) persistence of the daily placement-score process.
    pub placement_phi: f64,
    /// Weekday hazard factor for Tuesday–Thursday.
    pub midweek_hazard: f64,
    /// Weekday hazard factor for Monday and Friday.
    pub shoulder_hazard: f64,
    /// Weekday hazard factor for the weekend.
    pub weekend_hazard: f64,
    /// Multiplier on the Poisson arrival rate of demand episodes.
    pub episode_rate_mult: f64,
}

impl RegimeSpec {
    /// The calibrated paper market's constants, verbatim.
    pub const BASELINE: RegimeSpec = RegimeSpec {
        price_phi: 0.97,
        price_sigma: 0.022,
        placement_phi: 0.7,
        midweek_hazard: 1.12,
        shoulder_hazard: 1.0,
        weekend_hazard: 0.82,
        episode_rate_mult: 1.0,
    };

    /// The day-of-week interruption-hazard factor under this spec.
    pub fn weekday_factor(&self, day: Weekday) -> f64 {
        match day {
            Weekday::Tuesday | Weekday::Wednesday | Weekday::Thursday => self.midweek_hazard,
            Weekday::Monday | Weekday::Friday => self.shoulder_hazard,
            Weekday::Saturday | Weekday::Sunday => self.weekend_hazard,
        }
    }

    /// The largest weekday factor — the weekly term of the thinning bound.
    pub fn max_weekday_factor(&self) -> f64 {
        self.midweek_hazard.max(self.shoulder_hazard).max(self.weekend_hazard)
    }
}

/// One day's regime perturbation, applied uniformly across every
/// (region, instance type) market — that shared application is what makes
/// shocks *correlated*.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegimeDay {
    /// Multiplier on the instantaneous interruption hazard.
    pub hazard_mult: f64,
    /// Multiplier on the hourly spot price (applied before the on-demand
    /// clamp, so shocked prices still respect the price ceiling).
    pub price_mult: f64,
    /// Advisor-band degradation: the band reads this many steps worse.
    pub band_penalty: u8,
    /// Additive shift of the real-valued placement score before rounding.
    pub placement_delta: f64,
}

impl RegimeDay {
    /// A day the regime leaves untouched.
    pub const NEUTRAL: RegimeDay = RegimeDay {
        hazard_mult: 1.0,
        price_mult: 1.0,
        band_penalty: 0,
        placement_delta: 0.0,
    };
}

/// The per-day regime program of one market build: one [`RegimeDay`] per
/// horizon day, shared by every (region, instance type) state.
///
/// Built once per market from the market's parent RNG via regime-specific
/// fork labels — forks are pure functions of `(seed, label)`, so the
/// baseline streams (band walk, episodes, prices, placements) are never
/// perturbed by the schedule's draws.
#[derive(Debug, Clone, PartialEq)]
pub struct RegimeSchedule {
    days: Box<[RegimeDay]>,
    max_hazard_mult: f64,
}

impl RegimeSchedule {
    /// A schedule leaving every day untouched (the baseline program).
    pub fn neutral(horizon_days: u32) -> Self {
        RegimeSchedule {
            days: vec![RegimeDay::NEUTRAL; (horizon_days as usize).max(1)].into_boxed_slice(),
            max_hazard_mult: 1.0,
        }
    }

    /// Builds the schedule for `regime` over `horizon_days` days, drawing
    /// only from regime-specific forks of `rng` (the market's parent RNG).
    pub fn build(regime: MarketRegime, horizon_days: u32, rng: &SimRng) -> Self {
        let days = (horizon_days as usize).max(1);
        let mut program = vec![RegimeDay::NEUTRAL; days];
        match regime {
            MarketRegime::Baseline => {}
            MarketRegime::CapacityCrunch => {
                // Each week independently has a 25% chance of being a
                // crunch week; crunch intensity reuses the calibrated
                // day-40 crunch surge from `profiles`.
                let mut crunch_rng = rng.fork("regime:crunch");
                let crunch = RegimeDay {
                    hazard_mult: CRUNCH_SURGE.hazard_mult * 1.25,
                    price_mult: (CRUNCH_SURGE.peak_mult + 1.0) / 2.0,
                    band_penalty: 1,
                    placement_delta: -2.0,
                };
                for week in 0..days.div_ceil(7) {
                    if crunch_rng.chance(0.25) {
                        let start = week * 7;
                        for day in program.iter_mut().skip(start).take(7) {
                            *day = crunch;
                        }
                    }
                }
            }
            MarketRegime::CorrelatedShock => {
                // Poisson shock arrivals (mean ~3 weeks apart), each a
                // 2–6 day window where every region's price jumps together
                // and hazard firms up.
                let mut shock_rng = rng.fork("regime:shock");
                let mut t = 0.0_f64;
                loop {
                    t += shock_rng.exponential(1.0 / 21.0);
                    if !t.is_finite() || t >= days as f64 {
                        break;
                    }
                    let len = 2 + shock_rng.pick_index(5); // 2..=6 days
                    let jump = shock_rng.uniform_range(1.5, 2.2);
                    let start = t as usize;
                    let shock = RegimeDay {
                        hazard_mult: 1.6,
                        price_mult: jump,
                        band_penalty: 1,
                        placement_delta: -1.0,
                    };
                    for day in program.iter_mut().skip(start).take(len) {
                        *day = shock;
                    }
                    t = (start + len) as f64;
                }
            }
            MarketRegime::RegimeSwitching => {
                // A Markov chain over MARKET_SEGMENT_DAYS-day segments:
                // calm ↔ crunch ↔ shock with sticky transitions, so the
                // regime holds for whole lazy-track segments at a time.
                #[derive(Clone, Copy, PartialEq)]
                enum Phase {
                    Calm,
                    Crunch,
                    Shock,
                }
                let mut switch_rng = rng.fork("regime:switch");
                let mut phase = Phase::Calm;
                let n_segments = days.div_ceil(MARKET_SEGMENT_DAYS);
                for seg in 0..n_segments {
                    let day = match phase {
                        Phase::Calm => RegimeDay::NEUTRAL,
                        Phase::Crunch => RegimeDay {
                            hazard_mult: 1.8,
                            price_mult: 1.1,
                            band_penalty: 1,
                            placement_delta: -1.0,
                        },
                        Phase::Shock => RegimeDay {
                            hazard_mult: 1.5,
                            price_mult: 1.6,
                            band_penalty: 0,
                            placement_delta: -0.5,
                        },
                    };
                    let start = seg * MARKET_SEGMENT_DAYS;
                    for d in program.iter_mut().skip(start).take(MARKET_SEGMENT_DAYS) {
                        *d = day;
                    }
                    let roll = switch_rng.uniform();
                    phase = match phase {
                        Phase::Calm if roll < 0.30 => Phase::Crunch,
                        Phase::Calm if roll < 0.45 => Phase::Shock,
                        Phase::Calm => Phase::Calm,
                        Phase::Crunch if roll < 0.50 => Phase::Calm,
                        Phase::Crunch if roll < 0.60 => Phase::Shock,
                        Phase::Crunch => Phase::Crunch,
                        Phase::Shock if roll < 0.60 => Phase::Calm,
                        Phase::Shock if roll < 0.80 => Phase::Crunch,
                        Phase::Shock => Phase::Shock,
                    };
                }
            }
        }
        let max_hazard_mult = program
            .iter()
            .map(|d| d.hazard_mult)
            .fold(1.0_f64, f64::max);
        RegimeSchedule {
            days: program.into_boxed_slice(),
            max_hazard_mult,
        }
    }

    /// The perturbation for day `idx` (clamped to the final day, matching
    /// the market's defensive trailing-index behaviour).
    pub fn day(&self, idx: usize) -> RegimeDay {
        self.days[idx.min(self.days.len() - 1)]
    }

    /// The largest per-day hazard multiplier — the regime term of the
    /// interruption-sampling thinning bound.
    pub fn max_hazard_mult(&self) -> f64 {
        self.max_hazard_mult
    }

    /// Days the regime perturbs (any non-neutral field).
    pub fn perturbed_days(&self) -> usize {
        self.days.iter().filter(|d| **d != RegimeDay::NEUTRAL).count()
    }

    /// Horizon length in days.
    pub fn len_days(&self) -> usize {
        self.days.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parent(seed: u64) -> SimRng {
        SimRng::seed_from_u64(seed).fork("spot-market")
    }

    #[test]
    fn baseline_spec_reproduces_historical_constants() {
        let spec = MarketRegime::Baseline.spec();
        assert_eq!(spec.price_phi, 0.97);
        assert_eq!(spec.price_sigma, 0.022);
        assert_eq!(spec.placement_phi, 0.7);
        assert_eq!(spec.weekday_factor(Weekday::Wednesday), 1.12);
        assert_eq!(spec.weekday_factor(Weekday::Monday), 1.0);
        assert_eq!(spec.weekday_factor(Weekday::Sunday), 0.82);
        assert_eq!(spec.max_weekday_factor(), 1.12);
        assert_eq!(spec.episode_rate_mult, 1.0);
    }

    #[test]
    fn baseline_schedule_is_all_neutral() {
        let s = RegimeSchedule::build(MarketRegime::Baseline, 210, &parent(7));
        assert_eq!(s.perturbed_days(), 0);
        assert_eq!(s.max_hazard_mult(), 1.0);
        assert_eq!(s.len_days(), 210);
        assert_eq!(s, RegimeSchedule::neutral(210));
    }

    #[test]
    fn schedules_are_deterministic_per_seed() {
        for regime in MarketRegime::ALL {
            let a = RegimeSchedule::build(regime, 210, &parent(42));
            let b = RegimeSchedule::build(regime, 210, &parent(42));
            assert_eq!(a, b, "{regime} must be a pure function of the seed");
        }
        let a = RegimeSchedule::build(MarketRegime::CorrelatedShock, 210, &parent(1));
        let b = RegimeSchedule::build(MarketRegime::CorrelatedShock, 210, &parent(2));
        assert_ne!(a, b, "different seeds give different shock programs");
    }

    #[test]
    fn non_baseline_regimes_perturb_some_days() {
        for regime in [
            MarketRegime::CapacityCrunch,
            MarketRegime::CorrelatedShock,
            MarketRegime::RegimeSwitching,
        ] {
            let perturbed: usize = (0..8)
                .map(|seed| RegimeSchedule::build(regime, 210, &parent(seed)).perturbed_days())
                .sum();
            assert!(perturbed > 0, "{regime} never perturbed any day over 8 seeds");
        }
    }

    #[test]
    fn crunch_weeks_are_whole_weeks() {
        let s = RegimeSchedule::build(MarketRegime::CapacityCrunch, 210, &parent(3));
        for week in 0..30 {
            let days: Vec<bool> = (0..7)
                .map(|d| s.day(week * 7 + d) != RegimeDay::NEUTRAL)
                .collect();
            assert!(
                days.iter().all(|&b| b) || days.iter().all(|&b| !b),
                "week {week} is split: {days:?}"
            );
        }
    }

    #[test]
    fn switching_regime_changes_only_at_segment_boundaries() {
        let s = RegimeSchedule::build(MarketRegime::RegimeSwitching, 210, &parent(11));
        for seg in 0..(210 / MARKET_SEGMENT_DAYS) {
            let first = s.day(seg * MARKET_SEGMENT_DAYS);
            for d in 0..MARKET_SEGMENT_DAYS {
                assert_eq!(
                    s.day(seg * MARKET_SEGMENT_DAYS + d),
                    first,
                    "segment {seg} not uniform"
                );
            }
        }
    }

    #[test]
    fn regime_names_round_trip() {
        for regime in MarketRegime::ALL {
            assert_eq!(regime.name().parse::<MarketRegime>().unwrap(), regime);
            assert_eq!(regime.to_string(), regime.name());
        }
        assert!("warp-drive".parse::<MarketRegime>().is_err());
        assert_eq!(MarketRegime::default(), MarketRegime::Baseline);
        assert!(MarketRegime::Baseline.is_baseline());
        assert!(!MarketRegime::CapacityCrunch.is_baseline());
    }

    #[test]
    fn max_hazard_mult_bounds_every_day() {
        for regime in MarketRegime::ALL {
            let s = RegimeSchedule::build(regime, 210, &parent(9));
            let max = (0..s.len_days()).map(|i| s.day(i).hazard_mult).fold(0.0, f64::max);
            assert!(s.max_hazard_mult() >= max);
            assert!(s.max_hazard_mult() >= 1.0);
        }
    }
}
