//! Score and hazard overlays — the market's fault-injection seam.
//!
//! A [`MarketOverlay`] is a set of time-windowed overrides a chaos layer
//! compiles from its scenario: placement/stability pins (e.g. a blacked-out
//! region advertising the minimum placement score) and hazard multipliers.
//! The market itself stays immutable and deterministic; consumers that
//! should *observe* faults (the Monitor, assessment builders) apply an
//! overlay on top of base market reads. An empty overlay is always an
//! identity.
//!
//! Overlays compose with [market regimes](crate::regime): a regime
//! perturbs the *base generators* at construction (it changes what the
//! market is), while an overlay rewrites *reads* over a time window (it
//! changes what a consumer sees). Chaos scenarios layered on a
//! non-baseline regime therefore fault an already-perturbed market —
//! the combination the tournament's `--chaos regime` mode exercises.

use sim_kernel::SimTime;

use crate::advisor::{PlacementScore, StabilityScore};
use crate::region::Region;

/// One windowed override, active on `[from, until)`.
#[derive(Debug, Clone, PartialEq)]
pub struct OverlayWindow {
    /// Regions affected; `None` means every region.
    pub regions: Option<Vec<Region>>,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
    /// Pins the placement score to at most this value while active.
    pub placement_cap: Option<PlacementScore>,
    /// Pins the stability score to at most this value while active.
    pub stability_cap: Option<StabilityScore>,
    /// Multiplies the interruption hazard while active (1.0 = neutral).
    pub hazard_multiplier: f64,
    /// Whether spot capacity is entirely gone while active.
    pub blackout: bool,
}

impl OverlayWindow {
    /// A neutral window over `[from, until)` for `regions` (`None` = all).
    pub fn new(regions: Option<Vec<Region>>, from: SimTime, until: SimTime) -> Self {
        OverlayWindow {
            regions,
            from,
            until,
            placement_cap: None,
            stability_cap: None,
            hazard_multiplier: 1.0,
            blackout: false,
        }
    }

    /// Whether this window applies to `region` at `at`.
    pub fn applies(&self, region: Region, at: SimTime) -> bool {
        at >= self.from
            && at < self.until
            && self.regions.as_ref().is_none_or(|r| r.contains(&region))
    }
}

/// A collection of windowed overrides applied on top of base market reads.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MarketOverlay {
    windows: Vec<OverlayWindow>,
}

impl MarketOverlay {
    /// An empty (identity) overlay.
    pub fn new() -> Self {
        MarketOverlay::default()
    }

    /// Adds a window.
    pub fn push(&mut self, window: OverlayWindow) {
        self.windows.push(window);
    }

    /// All windows, in insertion order.
    pub fn windows(&self) -> &[OverlayWindow] {
        &self.windows
    }

    /// Whether any override applies to `region` at `at`.
    pub fn is_active(&self, region: Region, at: SimTime) -> bool {
        self.windows.iter().any(|w| w.applies(region, at))
    }

    /// Whether a blackout window covers `region` at `at`.
    pub fn is_blackout(&self, region: Region, at: SimTime) -> bool {
        self.windows
            .iter()
            .any(|w| w.blackout && w.applies(region, at))
    }

    /// The observed placement score: the base capped by every active pin.
    pub fn placement_score(
        &self,
        region: Region,
        at: SimTime,
        base: PlacementScore,
    ) -> PlacementScore {
        self.windows
            .iter()
            .filter(|w| w.applies(region, at))
            .filter_map(|w| w.placement_cap)
            .fold(base, |score, cap| score.min(cap))
    }

    /// The observed stability score: the base capped by every active pin.
    pub fn stability_score(
        &self,
        region: Region,
        at: SimTime,
        base: StabilityScore,
    ) -> StabilityScore {
        self.windows
            .iter()
            .filter(|w| w.applies(region, at))
            .filter_map(|w| w.stability_cap)
            .fold(base, |score, cap| score.min(cap))
    }

    /// The combined hazard multiplier of every active window.
    pub fn hazard_multiplier(&self, region: Region, at: SimTime) -> f64 {
        self.windows
            .iter()
            .filter(|w| w.applies(region, at))
            .map(|w| w.hazard_multiplier)
            .product()
    }

    /// The earliest blackout window for `region` still ending after `at`,
    /// as `(from, until)`.
    pub fn next_blackout_window(&self, region: Region, at: SimTime) -> Option<(SimTime, SimTime)> {
        self.windows
            .iter()
            .filter(|w| {
                w.blackout && w.until > at && w.regions.as_ref().is_none_or(|r| r.contains(&region))
            })
            .map(|w| (w.from, w.until))
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scores() -> (PlacementScore, StabilityScore) {
        (
            PlacementScore::new(8).unwrap(),
            StabilityScore::new(3).unwrap(),
        )
    }

    fn window(region: Region, from_h: u64, until_h: u64) -> OverlayWindow {
        OverlayWindow::new(
            Some(vec![region]),
            SimTime::from_hours(from_h),
            SimTime::from_hours(until_h),
        )
    }

    #[test]
    fn empty_overlay_is_identity() {
        let overlay = MarketOverlay::new();
        let (p, s) = scores();
        let t = SimTime::from_hours(5);
        assert_eq!(overlay.placement_score(Region::UsEast1, t, p), p);
        assert_eq!(overlay.stability_score(Region::UsEast1, t, s), s);
        assert_eq!(overlay.hazard_multiplier(Region::UsEast1, t), 1.0);
        assert!(!overlay.is_blackout(Region::UsEast1, t));
        assert!(overlay.next_blackout_window(Region::UsEast1, t).is_none());
    }

    #[test]
    fn pins_apply_only_inside_window_and_region() {
        let mut overlay = MarketOverlay::new();
        let mut w = window(Region::CaCentral1, 1, 10);
        w.placement_cap = Some(PlacementScore::new(1).unwrap());
        w.blackout = true;
        overlay.push(w);
        let (p, _) = scores();
        let inside = SimTime::from_hours(5);
        let outside = SimTime::from_hours(11);
        assert_eq!(
            overlay.placement_score(Region::CaCentral1, inside, p).value(),
            1
        );
        assert_eq!(overlay.placement_score(Region::CaCentral1, outside, p), p);
        assert_eq!(overlay.placement_score(Region::UsEast1, inside, p), p);
        assert!(overlay.is_blackout(Region::CaCentral1, inside));
        assert!(!overlay.is_blackout(Region::UsEast1, inside));
    }

    #[test]
    fn hazard_multipliers_stack() {
        let mut overlay = MarketOverlay::new();
        let mut a = OverlayWindow::new(None, SimTime::ZERO, SimTime::from_hours(10));
        a.hazard_multiplier = 4.0;
        let mut b = window(Region::UsEast1, 0, 10);
        b.hazard_multiplier = 2.0;
        overlay.push(a);
        overlay.push(b);
        let t = SimTime::from_hours(1);
        assert_eq!(overlay.hazard_multiplier(Region::UsEast1, t), 8.0);
        assert_eq!(overlay.hazard_multiplier(Region::UsWest2, t), 4.0);
    }

    #[test]
    fn next_blackout_window_finds_earliest_ending_after() {
        let mut overlay = MarketOverlay::new();
        let mut early = window(Region::CaCentral1, 1, 3);
        early.blackout = true;
        let mut late = window(Region::CaCentral1, 8, 12);
        late.blackout = true;
        overlay.push(late.clone());
        overlay.push(early);
        let t = SimTime::from_hours(2);
        let (from, until) = overlay.next_blackout_window(Region::CaCentral1, t).unwrap();
        assert_eq!(from, SimTime::from_hours(1));
        assert_eq!(until, SimTime::from_hours(3));
        let after = SimTime::from_hours(5);
        assert_eq!(
            overlay.next_blackout_window(Region::CaCentral1, after),
            Some((SimTime::from_hours(8), SimTime::from_hours(12)))
        );
    }
}
