//! The instance-type catalog: the six EC2 types the paper evaluates.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::money::UsdPerHour;

/// An instance family (paper §2.1.2: compute-, memory-, general-purpose and
/// GPU-optimized representatives).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum InstanceFamily {
    M5,
    C5,
    R5,
    P3,
}

impl InstanceFamily {
    /// Human-readable family description, as used in the paper's figures.
    pub fn description(self) -> &'static str {
        match self {
            InstanceFamily::M5 => "general-purpose",
            InstanceFamily::C5 => "compute-optimized",
            InstanceFamily::R5 => "memory-optimized",
            InstanceFamily::P3 => "GPU-optimized",
        }
    }
}

/// An instance size within a family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum InstanceSize {
    Large,
    Xlarge,
    Xlarge2,
}

impl InstanceSize {
    /// The size suffix as it appears in type names.
    pub fn suffix(self) -> &'static str {
        match self {
            InstanceSize::Large => "large",
            InstanceSize::Xlarge => "xlarge",
            InstanceSize::Xlarge2 => "2xlarge",
        }
    }
}

/// An instance type evaluated in the paper.
///
/// # Examples
///
/// ```
/// use cloud_market::InstanceType;
///
/// let it: InstanceType = "m5.xlarge".parse()?;
/// assert_eq!(it, InstanceType::M5Xlarge);
/// assert_eq!(it.vcpus(), 4);
/// # Ok::<(), cloud_market::ParseInstanceTypeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum InstanceType {
    M5Large,
    M5Xlarge,
    M52xlarge,
    C52xlarge,
    R52xlarge,
    P32xlarge,
}

impl InstanceType {
    /// Every instance type in the catalog, in a stable order.
    pub const ALL: [InstanceType; 6] = [
        InstanceType::M5Large,
        InstanceType::M5Xlarge,
        InstanceType::M52xlarge,
        InstanceType::C52xlarge,
        InstanceType::R52xlarge,
        InstanceType::P32xlarge,
    ];

    /// The API name, e.g. `"m5.xlarge"`.
    pub fn name(self) -> &'static str {
        match self {
            InstanceType::M5Large => "m5.large",
            InstanceType::M5Xlarge => "m5.xlarge",
            InstanceType::M52xlarge => "m5.2xlarge",
            InstanceType::C52xlarge => "c5.2xlarge",
            InstanceType::R52xlarge => "r5.2xlarge",
            InstanceType::P32xlarge => "p3.2xlarge",
        }
    }

    /// The family.
    pub fn family(self) -> InstanceFamily {
        match self {
            InstanceType::M5Large | InstanceType::M5Xlarge | InstanceType::M52xlarge => {
                InstanceFamily::M5
            }
            InstanceType::C52xlarge => InstanceFamily::C5,
            InstanceType::R52xlarge => InstanceFamily::R5,
            InstanceType::P32xlarge => InstanceFamily::P3,
        }
    }

    /// The size.
    pub fn size(self) -> InstanceSize {
        match self {
            InstanceType::M5Large => InstanceSize::Large,
            InstanceType::M5Xlarge => InstanceSize::Xlarge,
            _ => InstanceSize::Xlarge2,
        }
    }

    /// Virtual CPU count.
    pub fn vcpus(self) -> u32 {
        match self {
            InstanceType::M5Large => 2,
            InstanceType::M5Xlarge => 4,
            InstanceType::M52xlarge | InstanceType::C52xlarge | InstanceType::R52xlarge => 8,
            InstanceType::P32xlarge => 8,
        }
    }

    /// Memory in GiB.
    pub fn memory_gib(self) -> u32 {
        match self {
            InstanceType::M5Large => 8,
            InstanceType::M5Xlarge => 16,
            InstanceType::M52xlarge => 32,
            InstanceType::C52xlarge => 16,
            InstanceType::R52xlarge => 64,
            InstanceType::P32xlarge => 61,
        }
    }

    /// GPU count (only P3 carries GPUs in this catalog).
    pub fn gpus(self) -> u32 {
        match self {
            InstanceType::P32xlarge => 1,
            _ => 0,
        }
    }

    /// The reference (us-east-1) on-demand hourly price.
    ///
    /// Regional prices apply a per-region multiplier on top of this; see
    /// [`crate::profiles::on_demand_price`].
    pub fn reference_on_demand_price(self) -> UsdPerHour {
        let rate = match self {
            InstanceType::M5Large => 0.096,
            InstanceType::M5Xlarge => 0.192,
            InstanceType::M52xlarge => 0.384,
            InstanceType::C52xlarge => 0.34,
            InstanceType::R52xlarge => 0.504,
            InstanceType::P32xlarge => 3.06,
        };
        UsdPerHour::new(rate)
    }
}

impl fmt::Display for InstanceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown instance-type name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseInstanceTypeError {
    input: String,
}

impl fmt::Display for ParseInstanceTypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown instance type `{}`", self.input)
    }
}

impl std::error::Error for ParseInstanceTypeError {}

impl FromStr for InstanceType {
    type Err = ParseInstanceTypeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        InstanceType::ALL
            .into_iter()
            .find(|t| t.name() == s)
            .ok_or_else(|| ParseInstanceTypeError { input: s.to_owned() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for t in InstanceType::ALL {
            assert_eq!(t.name().parse::<InstanceType>().unwrap(), t);
        }
    }

    #[test]
    fn unknown_type_errors() {
        let err = "z9.mega".parse::<InstanceType>().unwrap_err();
        assert!(err.to_string().contains("z9.mega"));
    }

    #[test]
    fn families_and_sizes() {
        assert_eq!(InstanceType::M5Large.family(), InstanceFamily::M5);
        assert_eq!(InstanceType::M5Large.size(), InstanceSize::Large);
        assert_eq!(InstanceType::C52xlarge.size(), InstanceSize::Xlarge2);
        assert_eq!(InstanceType::P32xlarge.family(), InstanceFamily::P3);
        assert_eq!(InstanceSize::Xlarge2.suffix(), "2xlarge");
        assert_eq!(InstanceFamily::R5.description(), "memory-optimized");
    }

    #[test]
    fn specs_scale_within_family() {
        assert!(InstanceType::M5Large.vcpus() < InstanceType::M5Xlarge.vcpus());
        assert!(InstanceType::M5Xlarge.memory_gib() < InstanceType::M52xlarge.memory_gib());
        assert_eq!(InstanceType::P32xlarge.gpus(), 1);
        assert_eq!(InstanceType::M5Xlarge.gpus(), 0);
    }

    #[test]
    fn on_demand_prices_scale_with_size() {
        let large = InstanceType::M5Large.reference_on_demand_price();
        let xlarge = InstanceType::M5Xlarge.reference_on_demand_price();
        let xl2 = InstanceType::M52xlarge.reference_on_demand_price();
        assert!((xlarge.rate() - 2.0 * large.rate()).abs() < 1e-9);
        assert!((xl2.rate() - 2.0 * xlarge.rate()).abs() < 1e-9);
    }
}
