//! # cloud-market
//!
//! The simulated multi-region cloud *market* substrate of the SpotVerse
//! reproduction: region and instance catalogs, on-demand pricing, and
//! seeded, deterministic trajectories of spot prices, Interruption-Frequency
//! bands, Spot Placement Scores and demand episodes.
//!
//! The live AWS datasets the paper consumes (Spot Instance Advisor, Spot
//! Placement Score API, `describe-spot-price-history`) are proprietary and
//! online-only; this crate replaces them with a calibrated synthetic
//! generator whose structural facts match the paper's tables (see DESIGN.md
//! §1 and §5, and [`profiles`]).
//!
//! # Examples
//!
//! ```
//! use cloud_market::{InstanceType, MarketConfig, Region, SpotMarket};
//! use sim_kernel::SimTime;
//!
//! let market = SpotMarket::new(MarketConfig::with_seed(1));
//! let t = SimTime::from_days(3);
//!
//! // SpotVerse's two key metrics, per region:
//! let stability = market.stability_score(Region::ApNortheast3, InstanceType::M5Xlarge, t)?;
//! let placement = market.placement_score(Region::ApNortheast3, InstanceType::M5Xlarge, t)?;
//! assert!(stability.value() >= 1 && placement.value() >= 1);
//! # Ok::<(), cloud_market::MarketError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod advisor;
pub mod history;
mod instance;
mod market;
mod money;
pub mod overlay;
pub mod profiles;
pub mod regime;
mod region;
pub mod traces;

pub use advisor::{
    CombinedScore, InterruptionBand, PlacementScore, ScoreOutOfRange, StabilityScore,
};
pub use instance::{InstanceFamily, InstanceSize, InstanceType, ParseInstanceTypeError};
pub use market::{MarketConfig, MarketError, SpotMarket, Weekday, MARKET_SEGMENT_DAYS};
pub use money::{Usd, UsdPerHour};
pub use overlay::{MarketOverlay, OverlayWindow};
pub use profiles::{
    cheapest_on_demand_region, cheapest_spot_region_at_start, on_demand_price, MarketProfile,
    PriceSurge,
};
pub use regime::{MarketRegime, RegimeDay, RegimeSchedule, RegimeSpec};
pub use region::{AvailabilityZone, Geography, ParseRegionError, Region};
