//! The region and availability-zone catalog.
//!
//! The twelve AWS regions appearing in the paper's experiments (Tables 1 and
//! 3, Figures 2–10).

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// A cloud region.
///
/// # Examples
///
/// ```
/// use cloud_market::Region;
///
/// let r: Region = "ca-central-1".parse()?;
/// assert_eq!(r, Region::CaCentral1);
/// assert_eq!(r.to_string(), "ca-central-1");
/// # Ok::<(), cloud_market::ParseRegionError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Region {
    UsEast1,
    UsEast2,
    UsWest1,
    UsWest2,
    CaCentral1,
    EuWest1,
    EuWest2,
    EuWest3,
    EuNorth1,
    ApNortheast3,
    ApSoutheast1,
    ApSoutheast2,
}

impl Region {
    /// Every region in the catalog, in a stable order.
    pub const ALL: [Region; 12] = [
        Region::UsEast1,
        Region::UsEast2,
        Region::UsWest1,
        Region::UsWest2,
        Region::CaCentral1,
        Region::EuWest1,
        Region::EuWest2,
        Region::EuWest3,
        Region::EuNorth1,
        Region::ApNortheast3,
        Region::ApSoutheast1,
        Region::ApSoutheast2,
    ];

    /// The region's API name, e.g. `"us-east-1"`.
    pub fn name(self) -> &'static str {
        match self {
            Region::UsEast1 => "us-east-1",
            Region::UsEast2 => "us-east-2",
            Region::UsWest1 => "us-west-1",
            Region::UsWest2 => "us-west-2",
            Region::CaCentral1 => "ca-central-1",
            Region::EuWest1 => "eu-west-1",
            Region::EuWest2 => "eu-west-2",
            Region::EuWest3 => "eu-west-3",
            Region::EuNorth1 => "eu-north-1",
            Region::ApNortheast3 => "ap-northeast-3",
            Region::ApSoutheast1 => "ap-southeast-1",
            Region::ApSoutheast2 => "ap-southeast-2",
        }
    }

    /// Number of availability zones the region exposes.
    pub fn az_count(self) -> u8 {
        match self {
            Region::UsEast1 => 6,
            Region::UsEast2 => 3,
            Region::UsWest1 => 2,
            Region::UsWest2 => 4,
            Region::CaCentral1 => 3,
            Region::EuWest1 => 3,
            Region::EuWest2 => 3,
            Region::EuWest3 => 3,
            Region::EuNorth1 => 3,
            Region::ApNortheast3 => 3,
            Region::ApSoutheast1 => 3,
            Region::ApSoutheast2 => 3,
        }
    }

    /// Iterates over the region's availability zones.
    pub fn zones(self) -> impl Iterator<Item = AvailabilityZone> {
        (0..self.az_count()).map(move |index| AvailabilityZone { region: self, index })
    }

    /// The region's modeled spot-capacity depth: how strongly one
    /// account's concentrated fleet crowds the market. Deep hyperscale
    /// regions barely notice 40 instances; small regions (Osaka,
    /// N. California) do — the asymmetry behind the paper's
    /// initial-distribution effect (§5.2.3).
    pub fn capacity_depth_coefficient(self) -> f64 {
        match self {
            // Deep: flagship regions with huge spot pools.
            Region::UsEast1 | Region::UsEast2 | Region::UsWest2 | Region::EuWest1 => 0.2,
            // Medium.
            Region::CaCentral1
            | Region::EuWest2
            | Region::EuWest3
            | Region::EuNorth1
            | Region::ApSoutheast1
            | Region::ApSoutheast2 => 0.7,
            // Shallow: small regions where a 40-instance fleet is material.
            Region::UsWest1 | Region::ApNortheast3 => 1.3,
        }
    }

    /// The geography group the region belongs to (used for inter-region
    /// transfer pricing).
    pub fn geography(self) -> Geography {
        match self {
            Region::UsEast1 | Region::UsEast2 | Region::UsWest1 | Region::UsWest2 => {
                Geography::NorthAmerica
            }
            Region::CaCentral1 => Geography::NorthAmerica,
            Region::EuWest1 | Region::EuWest2 | Region::EuWest3 | Region::EuNorth1 => {
                Geography::Europe
            }
            Region::ApNortheast3 | Region::ApSoutheast1 | Region::ApSoutheast2 => {
                Geography::AsiaPacific
            }
        }
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown region name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRegionError {
    input: String,
}

impl fmt::Display for ParseRegionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown region name `{}`", self.input)
    }
}

impl std::error::Error for ParseRegionError {}

impl FromStr for Region {
    type Err = ParseRegionError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Region::ALL
            .into_iter()
            .find(|r| r.name() == s)
            .ok_or_else(|| ParseRegionError { input: s.to_owned() })
    }
}

/// A broad geography, used for inter-region data-transfer pricing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Geography {
    NorthAmerica,
    Europe,
    AsiaPacific,
}

/// An availability zone within a region, e.g. `ca-central-1b`.
///
/// # Examples
///
/// ```
/// use cloud_market::{AvailabilityZone, Region};
///
/// let az = AvailabilityZone::new(Region::CaCentral1, 1).unwrap();
/// assert_eq!(az.to_string(), "ca-central-1b");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AvailabilityZone {
    region: Region,
    index: u8,
}

impl AvailabilityZone {
    /// Creates a zone by index within a region, or `None` if the index is
    /// out of range for the region.
    pub fn new(region: Region, index: u8) -> Option<Self> {
        (index < region.az_count()).then_some(AvailabilityZone { region, index })
    }

    /// The containing region.
    pub fn region(self) -> Region {
        self.region
    }

    /// The zero-based zone index within the region.
    pub fn index(self) -> u8 {
        self.index
    }

    /// The zone letter suffix (`a`, `b`, …).
    pub fn letter(self) -> char {
        (b'a' + self.index) as char
    }
}

impl fmt::Display for AvailabilityZone {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.region.name(), self.letter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip_through_parse() {
        for region in Region::ALL {
            let parsed: Region = region.name().parse().expect("roundtrip");
            assert_eq!(parsed, region);
        }
    }

    #[test]
    fn unknown_region_errors() {
        let err = "mars-north-1".parse::<Region>().unwrap_err();
        assert!(err.to_string().contains("mars-north-1"));
    }

    #[test]
    fn all_is_exhaustive_and_unique() {
        let mut names: Vec<&str> = Region::ALL.iter().map(|r| r.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn zones_match_az_count() {
        for region in Region::ALL {
            assert_eq!(region.zones().count(), region.az_count() as usize);
        }
    }

    #[test]
    fn zone_constructor_validates_index() {
        assert!(AvailabilityZone::new(Region::UsWest1, 1).is_some());
        assert!(AvailabilityZone::new(Region::UsWest1, 2).is_none());
    }

    #[test]
    fn zone_display_uses_letters() {
        let az = AvailabilityZone::new(Region::UsEast1, 5).unwrap();
        assert_eq!(az.to_string(), "us-east-1f");
        assert_eq!(az.letter(), 'f');
        assert_eq!(az.region(), Region::UsEast1);
        assert_eq!(az.index(), 5);
    }

    #[test]
    fn capacity_depth_is_positive_and_tiered() {
        for r in Region::ALL {
            assert!(r.capacity_depth_coefficient() > 0.0);
        }
        assert!(
            Region::UsEast1.capacity_depth_coefficient()
                < Region::ApNortheast3.capacity_depth_coefficient()
        );
    }

    #[test]
    fn geography_partitions_regions() {
        assert_eq!(Region::UsEast1.geography(), Geography::NorthAmerica);
        assert_eq!(Region::EuNorth1.geography(), Geography::Europe);
        assert_eq!(Region::ApNortheast3.geography(), Geography::AsiaPacific);
    }
}
