//! Trace extraction for the paper's dataset figures.
//!
//! Figure 2 plots spot-price diversity across instance types, regions and
//! AZs; Figure 4 plots the Interruption-Frequency heatmap and six-month
//! averages of the Stability and Placement scores. These helpers pull those
//! series straight out of a [`SpotMarket`].

use serde::{Deserialize, Serialize};
use sim_kernel::SimTime;

use crate::advisor::InterruptionBand;
use crate::instance::InstanceType;
use crate::market::{MarketError, SpotMarket};
use crate::region::Region;

/// A labelled numeric series sampled by elapsed day.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DailySeries {
    /// Display label, e.g. `"ca-central-1a"`.
    pub label: String,
    /// `(elapsed_day, value)` points.
    pub points: Vec<(u32, f64)>,
}

impl DailySeries {
    /// Mean of the series values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64
    }
}

/// Figure 2: per-AZ spot price traces for an instance type.
///
/// Produces one series per (region, AZ) combination over `days` days,
/// sampled daily at noon.
///
/// # Errors
///
/// Returns a [`MarketError`] if `days` exceeds the market horizon.
pub fn price_traces(
    market: &SpotMarket,
    instance_type: InstanceType,
    days: u32,
) -> Result<Vec<DailySeries>, MarketError> {
    let mut out = Vec::new();
    for &region in market.regions_offering(instance_type) {
        for az in region.zones() {
            let mut points = Vec::with_capacity(days as usize);
            for day in 0..days {
                let at = SimTime::from_days(u64::from(day)) + sim_kernel::SimDuration::from_hours(12);
                let price = market.spot_price_az(az, instance_type, at)?;
                points.push((day, price.rate()));
            }
            out.push(DailySeries {
                label: az.to_string(),
                points,
            });
        }
    }
    Ok(out)
}

/// Figure 4a: the Interruption-Frequency band per region per day.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BandHeatmap {
    /// Row regions, in catalog order.
    pub regions: Vec<Region>,
    /// `cells[row][day]` is the band of `regions[row]` on that day.
    pub cells: Vec<Vec<InterruptionBand>>,
}

impl BandHeatmap {
    /// Fraction of cells in each band, most stable first (a summary of the
    /// heat distribution).
    pub fn band_shares(&self) -> [f64; 5] {
        let mut counts = [0usize; 5];
        let mut total = 0usize;
        for row in &self.cells {
            for band in row {
                let idx = InterruptionBand::ALL
                    .iter()
                    .position(|b| b == band)
                    .expect("band is in ALL");
                counts[idx] += 1;
                total += 1;
            }
        }
        let mut shares = [0.0; 5];
        if total > 0 {
            for i in 0..5 {
                shares[i] = counts[i] as f64 / total as f64;
            }
        }
        shares
    }
}

/// Figure 4a: builds the band heatmap for an instance type over `days` days.
///
/// # Errors
///
/// Returns a [`MarketError`] if `days` exceeds the market horizon.
pub fn band_heatmap(
    market: &SpotMarket,
    instance_type: InstanceType,
    days: u32,
) -> Result<BandHeatmap, MarketError> {
    let regions = market.regions_offering(instance_type).to_vec();
    let mut cells = Vec::with_capacity(regions.len());
    for &region in &regions {
        let mut row = Vec::with_capacity(days as usize);
        for day in 0..days {
            row.push(market.interruption_band(
                region,
                instance_type,
                SimTime::from_days(u64::from(day)),
            )?);
        }
        cells.push(row);
    }
    Ok(BandHeatmap { regions, cells })
}

/// Figure 4b: the cross-region average Stability Score per day.
///
/// # Errors
///
/// Returns a [`MarketError`] if `days` exceeds the market horizon.
pub fn average_stability_series(
    market: &SpotMarket,
    instance_type: InstanceType,
    days: u32,
) -> Result<DailySeries, MarketError> {
    let regions = market.regions_offering(instance_type);
    let mut points = Vec::with_capacity(days as usize);
    for day in 0..days {
        let at = SimTime::from_days(u64::from(day));
        let sum: u32 = regions
            .iter()
            .map(|&r| {
                market
                    .stability_score(r, instance_type, at)
                    .map(|s| u32::from(s.value()))
            })
            .sum::<Result<u32, _>>()?;
        points.push((day, f64::from(sum) / regions.len() as f64));
    }
    Ok(DailySeries {
        label: format!("{instance_type} avg stability"),
        points,
    })
}

/// Figure 4c: the cross-region average Spot Placement Score per day.
///
/// # Errors
///
/// Returns a [`MarketError`] if `days` exceeds the market horizon.
pub fn average_placement_series(
    market: &SpotMarket,
    instance_type: InstanceType,
    days: u32,
) -> Result<DailySeries, MarketError> {
    let regions = market.regions_offering(instance_type);
    let mut points = Vec::with_capacity(days as usize);
    for day in 0..days {
        let at = SimTime::from_days(u64::from(day));
        let sum: u32 = regions
            .iter()
            .map(|&r| {
                market
                    .placement_score(r, instance_type, at)
                    .map(|s| u32::from(s.value()))
            })
            .sum::<Result<u32, _>>()?;
        points.push((day, f64::from(sum) / regions.len() as f64));
    }
    Ok(DailySeries {
        label: format!("{instance_type} avg placement"),
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::market::MarketConfig;

    fn market() -> SpotMarket {
        SpotMarket::new(MarketConfig::with_seed(11))
    }

    #[test]
    fn price_traces_cover_all_azs() {
        let m = market();
        let traces = price_traces(&m, InstanceType::M5Xlarge, 30).unwrap();
        let expected: usize = Region::ALL.iter().map(|r| r.az_count() as usize).sum();
        assert_eq!(traces.len(), expected);
        for t in &traces {
            assert_eq!(t.points.len(), 30);
            assert!(t.points.iter().all(|&(_, p)| p > 0.0));
        }
    }

    #[test]
    fn price_traces_show_regional_diversity() {
        let m = market();
        let traces = price_traces(&m, InstanceType::M5Xlarge, 10).unwrap();
        let means: Vec<f64> = traces.iter().map(DailySeries::mean).collect();
        let lo = means.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = means.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(hi / lo > 1.5, "regional spread too small: {lo}..{hi}");
    }

    #[test]
    fn heatmap_dimensions_and_shares() {
        let m = market();
        let hm = band_heatmap(&m, InstanceType::M52xlarge, 180).unwrap();
        assert_eq!(hm.regions.len(), 12);
        assert_eq!(hm.cells.len(), 12);
        assert!(hm.cells.iter().all(|row| row.len() == 180));
        let shares = hm.band_shares();
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Mixed market: both stable and unstable cells appear.
        assert!(shares[0] > 0.0, "some <5% cells expected");
        assert!(shares[4] > 0.0, "some >20% cells expected");
    }

    #[test]
    fn average_scores_within_scale_bounds() {
        let m = market();
        for itype in [
            InstanceType::C52xlarge,
            InstanceType::M52xlarge,
            InstanceType::P32xlarge,
        ] {
            let stability = average_stability_series(&m, itype, 180).unwrap();
            assert!(stability
                .points
                .iter()
                .all(|&(_, v)| (1.0..=3.0).contains(&v)));
            let placement = average_placement_series(&m, itype, 180).unwrap();
            assert!(placement
                .points
                .iter()
                .all(|&(_, v)| (1.0..=10.0).contains(&v)));
        }
    }

    #[test]
    fn p3_placement_flatter_than_m5() {
        // Figure 4c: p3.2xlarge placement is consistent across regions, so
        // its cross-region average should vary less than m5.2xlarge's.
        let m = market();
        let spread = |s: &DailySeries| {
            let lo = s.points.iter().map(|&(_, v)| v).fold(f64::INFINITY, f64::min);
            let hi = s
                .points
                .iter()
                .map(|&(_, v)| v)
                .fold(f64::NEG_INFINITY, f64::max);
            hi - lo
        };
        let p3 = average_placement_series(&m, InstanceType::P32xlarge, 180).unwrap();
        let m5 = average_placement_series(&m, InstanceType::M52xlarge, 180).unwrap();
        assert!(
            p3.points.iter().map(|&(_, v)| v).sum::<f64>() / 180.0 <= 5.0,
            "p3 average should sit near its uniform mean"
        );
        // Both wobble, but the absolute levels differ (m5 mix of 3..7 means).
        assert!(spread(&p3) < 3.0 && spread(&m5) < 3.0);
    }
}
