//! Property-based tests for the market's structural invariants: these must
//! hold for *every* seed and instant, not just the calibrated bench seed.

use proptest::prelude::*;

use cloud_market::{
    on_demand_price, InstanceType, InterruptionBand, MarketConfig, Region, SpotMarket, Weekday,
};
use sim_kernel::{SimDuration, SimRng, SimTime};

fn any_region() -> impl Strategy<Value = Region> {
    (0usize..12).prop_map(|i| Region::ALL[i])
}

fn any_type() -> impl Strategy<Value = InstanceType> {
    (0usize..6).prop_map(|i| InstanceType::ALL[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Spot prices are strictly positive and never exceed on-demand, for
    /// every market, seed, and instant.
    #[test]
    fn prices_bounded_by_on_demand(
        seed in 0u64..1000,
        region in any_region(),
        itype in any_type(),
        hour in 0u64..(209 * 24),
    ) {
        let market = SpotMarket::new(MarketConfig::with_seed(seed));
        if !market.is_available(region, itype) {
            return Ok(());
        }
        let at = SimTime::from_secs(hour * 3600);
        let spot = market.spot_price(region, itype, at).unwrap();
        let od = on_demand_price(region, itype);
        prop_assert!(spot.rate() > 0.0);
        prop_assert!(spot <= od, "{region}/{itype}@{at}: {spot} > {od}");
    }

    /// The same (seed, query) always returns the same answer — full
    /// market determinism.
    #[test]
    fn market_queries_are_deterministic(
        seed in 0u64..500,
        region in any_region(),
        day in 0u64..200,
    ) {
        let a = SpotMarket::new(MarketConfig::with_seed(seed));
        let b = SpotMarket::new(MarketConfig::with_seed(seed));
        let at = SimTime::from_days(day);
        let itype = InstanceType::M5Xlarge;
        prop_assert_eq!(a.spot_price(region, itype, at).unwrap(), b.spot_price(region, itype, at).unwrap());
        prop_assert_eq!(a.placement_score(region, itype, at).unwrap(), b.placement_score(region, itype, at).unwrap());
        prop_assert_eq!(a.interruption_band(region, itype, at).unwrap(), b.interruption_band(region, itype, at).unwrap());
        prop_assert_eq!(a.hazard_rate(region, itype, at).unwrap(), b.hazard_rate(region, itype, at).unwrap());
    }

    /// The stability score is always the band's mapping, and hazard is
    /// strictly positive.
    #[test]
    fn stability_follows_band_and_hazard_positive(
        seed in 0u64..300,
        region in any_region(),
        day in 0u64..200,
    ) {
        let market = SpotMarket::new(MarketConfig::with_seed(seed));
        let itype = InstanceType::C52xlarge;
        let at = SimTime::from_days(day);
        let band = market.interruption_band(region, itype, at).unwrap();
        let stability = market.stability_score(region, itype, at).unwrap();
        prop_assert_eq!(stability, band.stability_score());
        prop_assert!(market.hazard_rate(region, itype, at).unwrap() > 0.0);
    }

    /// Sampled interruption delays land strictly after the start and
    /// within the horizon; a zero multiplier never interrupts.
    #[test]
    fn interruption_samples_in_range(
        seed in 0u64..200,
        day in 0u64..180,
        draw_seed in 0u64..1000,
    ) {
        let market = SpotMarket::new(MarketConfig::with_seed(seed));
        let start = SimTime::from_days(day);
        let mut rng = SimRng::seed_from_u64(draw_seed);
        if let Some(delay) = market
            .sample_interruption_delay(Region::UsEast1, InstanceType::M5Xlarge, start, &mut rng)
            .unwrap()
        {
            prop_assert!(delay >= SimDuration::from_secs(1));
            prop_assert!(start + delay <= market.horizon());
        }
        let none = market
            .sample_interruption_delay_scaled(
                Region::UsEast1,
                InstanceType::M5Xlarge,
                start,
                0.0,
                &mut rng,
            )
            .unwrap();
        prop_assert_eq!(none, None, "zero hazard multiplier never interrupts");
    }

    /// AZ prices stay within a tight band around the regional price.
    #[test]
    fn az_prices_stay_near_regional(
        seed in 0u64..200,
        day in 0u64..200,
        az_index in 0u8..3,
    ) {
        let market = SpotMarket::new(MarketConfig::with_seed(seed));
        let at = SimTime::from_days(day);
        let regional = market
            .spot_price(Region::EuWest1, InstanceType::M5Xlarge, at)
            .unwrap()
            .rate();
        let az = cloud_market::AvailabilityZone::new(Region::EuWest1, az_index).unwrap();
        let p = market.spot_price_az(az, InstanceType::M5Xlarge, at).unwrap().rate();
        prop_assert!((p - regional).abs() / regional < 0.10, "AZ {p} vs regional {regional}");
    }

    /// Weekday arithmetic is periodic with period 7.
    #[test]
    fn weekday_is_periodic(day in 0u64..10_000) {
        prop_assert_eq!(
            Weekday::of(SimTime::from_days(day)),
            Weekday::of(SimTime::from_days(day + 7))
        );
    }

    /// Band walk transitions are between adjacent bands only.
    #[test]
    fn band_walk_moves_one_step_per_day(seed in 0u64..100, region in any_region()) {
        let market = SpotMarket::new(MarketConfig::with_seed(seed));
        let itype = InstanceType::M5Xlarge;
        let mut prev = market.interruption_band(region, itype, SimTime::ZERO).unwrap();
        for day in 1..200u64 {
            let band = market.interruption_band(region, itype, SimTime::from_days(day)).unwrap();
            let adjacent = band == prev || band == prev.better() || band == prev.worse();
            prop_assert!(adjacent, "{region} day {day}: {prev:?} -> {band:?}");
            prev = band;
        }
    }
}

#[test]
fn band_catalogue_is_ordered_and_complete() {
    // Non-proptest sanity on the band lattice used everywhere above.
    let hazards: Vec<f64> = InterruptionBand::ALL
        .iter()
        .map(|b| b.base_hourly_hazard())
        .collect();
    assert!(hazards.windows(2).all(|w| w[0] < w[1]));
    assert_eq!(InterruptionBand::ALL.len(), 5);
}
