//! Declarative chaos scenarios.
//!
//! A [`ChaosScenario`] is a named schedule of [`FaultDirective`]s. All
//! times are offsets **relative to the experiment start**, so the same
//! scenario can be replayed against any experiment window. Scenarios are
//! pure data: the [`crate::engine::ChaosEngine`] compiles them against a
//! seed and a concrete start instant into deterministic injection hooks.

use cloud_market::Region;
use serde::{Deserialize, Serialize};
use sim_kernel::SimDuration;

/// Which regions a directive applies to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RegionScope {
    /// Every region the market offers.
    All,
    /// Only the listed regions.
    Only(Vec<Region>),
}

impl RegionScope {
    /// Whether `region` falls under this scope.
    pub fn covers(&self, region: Region) -> bool {
        match self {
            RegionScope::All => true,
            RegionScope::Only(regions) => regions.contains(&region),
        }
    }
}

/// One declarative fault, active over `[from, until)` offsets from the
/// experiment start. The five variants are the five supported fault
/// classes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultDirective {
    /// Region-wide spot capacity outage: all spot requests in scope fail,
    /// running spot instances are reclaimed within the window, and the
    /// region's placement score reads as the minimum (1) while active.
    SpotBlackout {
        /// Affected regions.
        scope: RegionScope,
        /// Window start offset.
        from: SimDuration,
        /// Window end offset.
        until: SimDuration,
    },
    /// Correlated interruption burst: the interruption hazard in scope is
    /// multiplied while active (stacking with the §5.2.3 crowding effect).
    HazardBurst {
        /// Affected regions.
        scope: RegionScope,
        /// Window start offset.
        from: SimDuration,
        /// Window end offset.
        until: SimDuration,
        /// Hazard multiplier (> 1 worsens, < 1 calms).
        multiplier: f64,
    },
    /// Lost or late two-minute notices: with `probability`, an instance
    /// interrupted in the window gets a shortened warning drawn uniformly
    /// from `[0, max_notice]` instead of the full 120 s.
    NoticeDisruption {
        /// Affected regions.
        scope: RegionScope,
        /// Window start offset.
        from: SimDuration,
        /// Window end offset.
        until: SimDuration,
        /// Chance a notice in the window is disrupted.
        probability: f64,
        /// Upper bound of the shortened warning (0 = notice fully lost).
        max_notice: SimDuration,
    },
    /// Control-plane degradation: KV, object-store, and function calls
    /// are throttled with `throttle_probability`, and successful calls
    /// gain `added_latency`.
    ControlPlaneDegradation {
        /// Window start offset.
        from: SimDuration,
        /// Window end offset.
        until: SimDuration,
        /// Chance any single call returns a throttling error.
        throttle_probability: f64,
        /// Extra latency on calls that do succeed.
        added_latency: SimDuration,
    },
    /// Event-delivery disruption: each event-bus delivery in the window is
    /// lost with `lose_probability` or (failing that) duplicated with
    /// `duplicate_probability` — the at-least-once/at-most-once failure
    /// modes a real EventBridge consumer must survive. Only event
    /// delivery is affected; request/response services are untouched.
    DeliveryDisruption {
        /// Window start offset.
        from: SimDuration,
        /// Window end offset.
        until: SimDuration,
        /// Chance a delivery is silently dropped.
        lose_probability: f64,
        /// Chance a (non-lost) delivery arrives twice.
        duplicate_probability: f64,
    },
    /// Checkpoint-store corruption: with `probability`, a checkpoint
    /// generation written in the window reads back invalid, forcing the
    /// controller to fall back to an older generation or restart.
    CheckpointCorruption {
        /// Window start offset.
        from: SimDuration,
        /// Window end offset.
        until: SimDuration,
        /// Chance a written checkpoint generation is corrupt.
        probability: f64,
    },
}

impl FaultDirective {
    /// A stable snake_case label for the fault family — used by trace
    /// records and diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            FaultDirective::SpotBlackout { .. } => "spot_blackout",
            FaultDirective::HazardBurst { .. } => "hazard_burst",
            FaultDirective::NoticeDisruption { .. } => "notice_disruption",
            FaultDirective::ControlPlaneDegradation { .. } => "control_plane_degradation",
            FaultDirective::DeliveryDisruption { .. } => "delivery_disruption",
            FaultDirective::CheckpointCorruption { .. } => "checkpoint_corruption",
        }
    }
}

/// A named, ordered schedule of fault directives.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosScenario {
    name: String,
    directives: Vec<FaultDirective>,
}

impl ChaosScenario {
    /// An empty scenario with a display name.
    pub fn new(name: impl Into<String>) -> Self {
        ChaosScenario {
            name: name.into(),
            directives: Vec::new(),
        }
    }

    /// Adds a directive (builder style).
    #[must_use]
    pub fn with(mut self, directive: FaultDirective) -> Self {
        self.directives.push(directive);
        self
    }

    /// The scenario name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The fault schedule.
    pub fn directives(&self) -> &[FaultDirective] {
        &self.directives
    }

    /// The fault-family labels of the schedule, in directive order.
    pub fn directive_kinds(&self) -> Vec<&'static str> {
        self.directives.iter().map(FaultDirective::kind).collect()
    }
}

/// Offset covering any realistic experiment (experiments cap at 30 days).
fn whole_run() -> SimDuration {
    SimDuration::from_days(60)
}

/// `region_blackout`: the cheapest M5 region (the one single-region
/// baselines gravitate to) loses all spot capacity for a day and a half.
pub fn region_blackout() -> ChaosScenario {
    ChaosScenario::new("region_blackout").with(FaultDirective::SpotBlackout {
        scope: RegionScope::Only(vec![Region::CaCentral1]),
        from: SimDuration::from_hours(1),
        until: SimDuration::from_hours(36),
    })
}

/// `notice_loss`: interruption notices are lost (0 s warning) for the
/// whole run with high probability, stressing checkpoint durability.
pub fn notice_loss() -> ChaosScenario {
    ChaosScenario::new("notice_loss").with(FaultDirective::NoticeDisruption {
        scope: RegionScope::All,
        from: SimDuration::ZERO,
        until: whole_run(),
        probability: 0.9,
        max_notice: SimDuration::ZERO,
    })
}

/// `throttle_storm`: the control plane throttles heavily for a day.
pub fn throttle_storm() -> ChaosScenario {
    ChaosScenario::new("throttle_storm").with(FaultDirective::ControlPlaneDegradation {
        from: SimDuration::from_mins(30),
        until: SimDuration::from_hours(24),
        throttle_probability: 0.4,
        added_latency: SimDuration::from_secs(20),
    })
}

/// `correlated_crunch`: a correlated capacity crunch multiplies the
/// interruption hazard across every region for ten hours.
pub fn correlated_crunch() -> ChaosScenario {
    ChaosScenario::new("correlated_crunch").with(FaultDirective::HazardBurst {
        scope: RegionScope::All,
        from: SimDuration::from_hours(2),
        until: SimDuration::from_hours(12),
        multiplier: 8.0,
    })
}

/// `flaky_checkpoints`: the checkpoint store corrupts more than half of
/// everything written to it, for the whole run.
pub fn flaky_checkpoints() -> ChaosScenario {
    ChaosScenario::new("flaky_checkpoints").with(FaultDirective::CheckpointCorruption {
        from: SimDuration::ZERO,
        until: whole_run(),
        probability: 0.6,
    })
}

/// `telemetry_blackout`: the control plane rejects *every* call for eight
/// hours straight, so no fresh advisor snapshot can be collected — the
/// controller must serve stale assessments and eventually degrade to
/// on-demand placement once the snapshot ages past its TTL.
pub fn telemetry_blackout() -> ChaosScenario {
    ChaosScenario::new("telemetry_blackout").with(FaultDirective::ControlPlaneDegradation {
        from: SimDuration::from_hours(1),
        until: SimDuration::from_hours(9),
        throttle_probability: 1.0,
        added_latency: SimDuration::from_secs(30),
    })
}

/// `region_flap`: a top-tier region (one Algorithm 1 actually selects)
/// loses spot capacity in three short bursts. Each flap rejects launches
/// and reclaims running instances, feeding the circuit breaker enough
/// strikes to quarantine the region between bursts.
pub fn region_flap() -> ChaosScenario {
    let flap = |from_h: u64, until_h: u64| FaultDirective::SpotBlackout {
        scope: RegionScope::Only(vec![Region::ApNortheast3]),
        from: SimDuration::from_hours(from_h),
        until: SimDuration::from_hours(until_h),
    };
    ChaosScenario::new("region_flap")
        .with(flap(1, 4))
        .with(flap(6, 9))
        .with(flap(11, 14))
}

/// `sweep_shard_chaos`: the environment a distributed sweep orchestrator
/// must survive — a two-day stretch where the control plane throttles a
/// quarter of all calls and adds latency, while the event bus loses 30 %
/// of shard dispatches outright and duplicates another 20 %. Tuned so
/// shards miss claims, leases expire, and re-drives occasionally exhaust
/// their attempts into the dead-letter path.
pub fn sweep_shard_chaos() -> ChaosScenario {
    ChaosScenario::new("sweep_shard_chaos")
        .with(FaultDirective::ControlPlaneDegradation {
            from: SimDuration::ZERO,
            until: SimDuration::from_hours(48),
            throttle_probability: 0.25,
            added_latency: SimDuration::from_secs(15),
        })
        .with(FaultDirective::DeliveryDisruption {
            from: SimDuration::ZERO,
            until: SimDuration::from_hours(48),
            lose_probability: 0.3,
            duplicate_probability: 0.2,
        })
}

/// Names of every scenario in the shipped library, in display order.
pub const SCENARIO_NAMES: [&str; 8] = [
    "region_blackout",
    "notice_loss",
    "throttle_storm",
    "correlated_crunch",
    "flaky_checkpoints",
    "telemetry_blackout",
    "region_flap",
    "sweep_shard_chaos",
];

/// The full shipped scenario library.
pub fn library() -> Vec<ChaosScenario> {
    vec![
        region_blackout(),
        notice_loss(),
        throttle_storm(),
        correlated_crunch(),
        flaky_checkpoints(),
        telemetry_blackout(),
        region_flap(),
        sweep_shard_chaos(),
    ]
}

/// Looks a library scenario up by name.
pub fn by_name(name: &str) -> Option<ChaosScenario> {
    library().into_iter().find(|s| s.name() == name)
}

/// Composes the chaos accent matched to a market regime — the fault
/// schedule a tournament layers on top of the regime's own market-level
/// stress so strategies are graded under the *combination*, not either
/// alone. `Baseline` gets no accent (`None`): fault-free baseline runs
/// must stay byte-identical to the pre-regime engine.
pub fn for_regime(regime: cloud_market::MarketRegime) -> Option<ChaosScenario> {
    use cloud_market::MarketRegime;
    match regime {
        MarketRegime::Baseline => None,
        // A capacity crunch squeezes supply: the cheap region every
        // single-region baseline gravitates to blacks out inside a
        // fleet-wide hazard burst.
        MarketRegime::CapacityCrunch => Some(
            ChaosScenario::new("crunch_squeeze")
                .with(FaultDirective::HazardBurst {
                    scope: RegionScope::All,
                    from: SimDuration::from_hours(4),
                    until: SimDuration::from_hours(18),
                    multiplier: 3.0,
                })
                .with(FaultDirective::SpotBlackout {
                    scope: RegionScope::Only(vec![Region::CaCentral1]),
                    from: SimDuration::from_hours(6),
                    until: SimDuration::from_hours(12),
                }),
        ),
        // Correlated shocks arrive fast and wide: warnings shrink, so
        // checkpoint cadence (not reaction speed) decides survival.
        MarketRegime::CorrelatedShock => Some(
            ChaosScenario::new("shock_notices").with(FaultDirective::NoticeDisruption {
                scope: RegionScope::All,
                from: SimDuration::ZERO,
                until: whole_run(),
                probability: 0.5,
                max_notice: SimDuration::from_secs(30),
            }),
        ),
        // Regime flips stress the control plane's picture of the world:
        // throttled telemetry plus a mid-run hazard spike.
        MarketRegime::RegimeSwitching => Some(
            ChaosScenario::new("switching_turbulence")
                .with(FaultDirective::ControlPlaneDegradation {
                    from: SimDuration::from_hours(2),
                    until: SimDuration::from_hours(26),
                    throttle_probability: 0.2,
                    added_latency: SimDuration::from_secs(10),
                })
                .with(FaultDirective::HazardBurst {
                    scope: RegionScope::All,
                    from: SimDuration::from_hours(30),
                    until: SimDuration::from_hours(40),
                    multiplier: 4.0,
                }),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_matches_names() {
        let lib = library();
        assert_eq!(lib.len(), SCENARIO_NAMES.len());
        for (scenario, name) in lib.iter().zip(SCENARIO_NAMES) {
            assert_eq!(scenario.name(), name);
            assert!(!scenario.directives().is_empty());
        }
    }

    #[test]
    fn by_name_finds_each() {
        for name in SCENARIO_NAMES {
            assert!(by_name(name).is_some(), "{name} missing from library");
        }
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn scope_covers() {
        assert!(RegionScope::All.covers(Region::UsEast1));
        let only = RegionScope::Only(vec![Region::CaCentral1]);
        assert!(only.covers(Region::CaCentral1));
        assert!(!only.covers(Region::UsEast1));
    }

    #[test]
    fn builder_appends() {
        let s = ChaosScenario::new("custom")
            .with(FaultDirective::SpotBlackout {
                scope: RegionScope::All,
                from: SimDuration::ZERO,
                until: SimDuration::from_hours(1),
            })
            .with(FaultDirective::CheckpointCorruption {
                from: SimDuration::ZERO,
                until: SimDuration::from_hours(2),
                probability: 1.0,
            });
        assert_eq!(s.directives().len(), 2);
        assert_eq!(s.name(), "custom");
        assert_eq!(s.directive_kinds(), vec!["spot_blackout", "checkpoint_corruption"]);
    }

    #[test]
    fn regime_accents_cover_every_non_baseline_regime() {
        assert!(for_regime(cloud_market::MarketRegime::Baseline).is_none());
        for regime in cloud_market::MarketRegime::ALL {
            if regime.is_baseline() {
                continue;
            }
            let scenario = for_regime(regime).expect("non-baseline regime has a chaos accent");
            assert!(!scenario.directives().is_empty());
            assert!(!scenario.name().is_empty());
        }
    }

    #[test]
    fn directive_kinds_are_stable_labels() {
        assert_eq!(
            region_blackout().directive_kinds(),
            vec!["spot_blackout"]
        );
        assert_eq!(notice_loss().directive_kinds(), vec!["notice_disruption"]);
        assert_eq!(
            throttle_storm().directive_kinds(),
            vec!["control_plane_degradation"]
        );
        assert_eq!(correlated_crunch().directive_kinds(), vec!["hazard_burst"]);
        assert_eq!(
            sweep_shard_chaos().directive_kinds(),
            vec!["control_plane_degradation", "delivery_disruption"]
        );
    }
}
