//! The chaos engine: compiles a [`ChaosScenario`] + seed + start instant
//! into concrete, deterministic injection hooks for every substrate seam.
//!
//! Determinism contract: with the same scenario, seed, and start time, the
//! engine answers every query identically across runs — and with no
//! scenario (or outside every fault window) it consumes no randomness, so
//! installing a neutral engine leaves an experiment's event trace
//! byte-identical to the fault-free run.

use cloud_compute::{FaultInjector, INTERRUPTION_NOTICE};
use cloud_market::{MarketOverlay, OverlayWindow, PlacementScore, Region};
use sim_kernel::{SimDuration, SimRng, SimTime};

use crate::scenario::{ChaosScenario, FaultDirective, RegionScope};

/// A compiled notice-disruption window (absolute times).
#[derive(Debug, Clone)]
struct NoticeWindow {
    scope: RegionScope,
    from: SimTime,
    until: SimTime,
    probability: f64,
    max_notice: SimDuration,
}

/// A compiled control-plane degradation window (absolute times).
#[derive(Debug, Clone)]
struct ControlWindow {
    from: SimTime,
    until: SimTime,
    throttle_probability: f64,
    added_latency: SimDuration,
}

/// A compiled event-delivery disruption window (absolute times).
#[derive(Debug, Clone)]
struct DeliveryWindow {
    from: SimTime,
    until: SimTime,
    lose_probability: f64,
    duplicate_probability: f64,
}

/// A compiled checkpoint-corruption window (absolute times).
#[derive(Debug, Clone)]
struct CkptWindow {
    from: SimTime,
    until: SimTime,
    probability: f64,
}

/// The compiled form of one scenario, bound to a seed and a start instant.
///
/// The engine hands out per-substrate injectors ([`compute_injector`],
/// [`service_injector`]) and answers controller-side policy queries
/// (notice duration, checkpoint corruption) itself.
///
/// [`compute_injector`]: ChaosEngine::compute_injector
/// [`service_injector`]: ChaosEngine::service_injector
#[derive(Debug, Clone)]
pub struct ChaosEngine {
    name: String,
    seed: u64,
    overlay: MarketOverlay,
    notice_windows: Vec<NoticeWindow>,
    control_windows: Vec<ControlWindow>,
    delivery_windows: Vec<DeliveryWindow>,
    ckpt_windows: Vec<CkptWindow>,
    notice_rng: SimRng,
}

impl ChaosEngine {
    /// Compiles `scenario` against `seed` at absolute `start`.
    pub fn new(scenario: &ChaosScenario, seed: u64, start: SimTime) -> Self {
        let mut overlay = MarketOverlay::new();
        let mut notice_windows = Vec::new();
        let mut control_windows = Vec::new();
        let mut delivery_windows = Vec::new();
        let mut ckpt_windows = Vec::new();
        for directive in scenario.directives() {
            match directive {
                FaultDirective::SpotBlackout { scope, from, until } => {
                    let mut w =
                        OverlayWindow::new(scope_regions(scope), start + *from, start + *until);
                    w.blackout = true;
                    w.placement_cap = Some(PlacementScore::MIN);
                    overlay.push(w);
                }
                FaultDirective::HazardBurst {
                    scope,
                    from,
                    until,
                    multiplier,
                } => {
                    let mut w =
                        OverlayWindow::new(scope_regions(scope), start + *from, start + *until);
                    w.hazard_multiplier = *multiplier;
                    overlay.push(w);
                }
                FaultDirective::NoticeDisruption {
                    scope,
                    from,
                    until,
                    probability,
                    max_notice,
                } => notice_windows.push(NoticeWindow {
                    scope: scope.clone(),
                    from: start + *from,
                    until: start + *until,
                    probability: *probability,
                    max_notice: *max_notice,
                }),
                FaultDirective::ControlPlaneDegradation {
                    from,
                    until,
                    throttle_probability,
                    added_latency,
                } => control_windows.push(ControlWindow {
                    from: start + *from,
                    until: start + *until,
                    throttle_probability: *throttle_probability,
                    added_latency: *added_latency,
                }),
                FaultDirective::DeliveryDisruption {
                    from,
                    until,
                    lose_probability,
                    duplicate_probability,
                } => delivery_windows.push(DeliveryWindow {
                    from: start + *from,
                    until: start + *until,
                    lose_probability: *lose_probability,
                    duplicate_probability: *duplicate_probability,
                }),
                FaultDirective::CheckpointCorruption {
                    from,
                    until,
                    probability,
                } => ckpt_windows.push(CkptWindow {
                    from: start + *from,
                    until: start + *until,
                    probability: *probability,
                }),
            }
        }
        let notice_rng = SimRng::seed_from_u64(seed).fork("chaos-notice");
        ChaosEngine {
            name: scenario.name().to_string(),
            seed,
            overlay,
            notice_windows,
            control_windows,
            delivery_windows,
            ckpt_windows,
            notice_rng,
        }
    }

    /// The scenario name this engine was compiled from.
    pub fn scenario_name(&self) -> &str {
        &self.name
    }

    /// The market-facing overlay (score pins, hazard windows, blackouts).
    pub fn overlay(&self) -> &MarketOverlay {
        &self.overlay
    }

    /// Whether `region` is inside a spot blackout at `at`.
    pub fn is_blackout(&self, region: Region, at: SimTime) -> bool {
        self.overlay.is_blackout(region, at)
    }

    /// An injector for [`cloud_compute::Ec2::set_fault_injector`]. Pure —
    /// consults only compiled windows, never randomness.
    pub fn compute_injector(&self) -> Box<dyn FaultInjector> {
        Box::new(ComputeChaos {
            overlay: self.overlay.clone(),
        })
    }

    /// An injector for one managed service, with its own substream named
    /// by `label` (e.g. `"kv"`, `"s3"`, `"fn"`) so services draw
    /// independently but reproducibly.
    pub fn service_injector(&self, label: &str) -> Box<dyn aws_stack::ServiceFaultInjector> {
        Box::new(ServiceChaos {
            windows: self.control_windows.clone(),
            delivery: self.delivery_windows.clone(),
            rng: SimRng::seed_from_u64(self.seed)
                .fork("chaos-service")
                .fork(label),
        })
    }

    /// The interruption warning an instance in `region` reclaimed at
    /// `reclaim_at` actually receives. Outside every notice-disruption
    /// window this is the full two minutes and no randomness is consumed.
    pub fn notice_duration(&mut self, region: Region, reclaim_at: SimTime) -> SimDuration {
        for w in &self.notice_windows {
            if reclaim_at >= w.from && reclaim_at < w.until && w.scope.covers(region) {
                if self.notice_rng.chance(w.probability) {
                    let max = w.max_notice.as_secs().min(INTERRUPTION_NOTICE.as_secs());
                    let secs = if max == 0 {
                        0
                    } else {
                        self.notice_rng.uniform_u64(max + 1)
                    };
                    return SimDuration::from_secs(secs);
                }
                return INTERRUPTION_NOTICE;
            }
        }
        INTERRUPTION_NOTICE
    }

    /// Whether the checkpoint generation `generation` of `workload`,
    /// written at `written_at`, reads back corrupt. A pure hash draw over
    /// `(seed, workload, generation)`: the verdict is identical whenever
    /// it is asked (at write, at read, in a replay).
    pub fn checkpoint_corrupted(
        &self,
        workload: &str,
        generation: u64,
        written_at: SimTime,
    ) -> bool {
        for w in &self.ckpt_windows {
            if written_at >= w.from && written_at < w.until {
                return hash_unit(self.seed, workload, generation) < w.probability;
            }
        }
        false
    }
}

fn scope_regions(scope: &RegionScope) -> Option<Vec<Region>> {
    match scope {
        RegionScope::All => None,
        RegionScope::Only(regions) => Some(regions.clone()),
    }
}

/// A deterministic draw in `[0, 1)` from a keyed hash — FNV-1a over the
/// key material finished with SplitMix64, matching the kernel's substream
/// derivation style.
fn hash_unit(seed: u64, workload: &str, generation: u64) -> f64 {
    const FNV_OFFSET: u64 = 0xcbf29ce484222325;
    const FNV_PRIME: u64 = 0x100000001b3;
    let mut h = FNV_OFFSET;
    for chunk in [seed, generation] {
        for byte in chunk.to_le_bytes() {
            h = (h ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        }
    }
    for byte in workload.bytes() {
        h = (h ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
    }
    // SplitMix64 finalizer.
    let mut z = h.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Pure window-driven injector for the compute substrate.
#[derive(Debug)]
struct ComputeChaos {
    overlay: MarketOverlay,
}

impl FaultInjector for ComputeChaos {
    fn spot_blocked(&self, region: Region, at: SimTime) -> bool {
        self.overlay.is_blackout(region, at)
    }

    fn hazard_multiplier(&self, region: Region, at: SimTime) -> f64 {
        self.overlay.hazard_multiplier(region, at)
    }

    fn forced_reclaim_window(&self, region: Region, at: SimTime) -> Option<(SimTime, SimTime)> {
        self.overlay.next_blackout_window(region, at)
    }
}

/// Seeded injector for one managed service.
#[derive(Debug)]
struct ServiceChaos {
    windows: Vec<ControlWindow>,
    delivery: Vec<DeliveryWindow>,
    rng: SimRng,
}

impl aws_stack::ServiceFaultInjector for ServiceChaos {
    fn intercept(
        &mut self,
        op: aws_stack::ServiceOp,
        at: SimTime,
    ) -> Option<aws_stack::ServiceFault> {
        // Event deliveries answer only to delivery windows; request/response
        // calls only to control windows. Keeps the two fault families on
        // disjoint RNG-consumption paths so adding one never perturbs the
        // other.
        if op == aws_stack::ServiceOp::EventDeliver {
            for w in &self.delivery {
                if at >= w.from && at < w.until {
                    if w.lose_probability > 0.0 && self.rng.chance(w.lose_probability) {
                        return Some(aws_stack::ServiceFault::Lost);
                    }
                    if w.duplicate_probability > 0.0 && self.rng.chance(w.duplicate_probability) {
                        return Some(aws_stack::ServiceFault::Duplicate);
                    }
                    return None;
                }
            }
            return None;
        }
        for w in &self.windows {
            if at >= w.from && at < w.until {
                if w.throttle_probability > 0.0 && self.rng.chance(w.throttle_probability) {
                    return Some(aws_stack::ServiceFault::Throttled);
                }
                if w.added_latency > SimDuration::ZERO {
                    return Some(aws_stack::ServiceFault::Delayed(w.added_latency));
                }
                return None;
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario;

    fn t(hours: u64) -> SimTime {
        SimTime::from_hours(hours)
    }

    #[test]
    fn blackout_compiles_to_overlay_and_compute_hooks() {
        let engine = ChaosEngine::new(&scenario::region_blackout(), 7, SimTime::ZERO);
        let inj = engine.compute_injector();
        assert!(inj.spot_blocked(Region::CaCentral1, t(2)));
        assert!(!inj.spot_blocked(Region::CaCentral1, t(40)));
        assert!(!inj.spot_blocked(Region::UsEast1, t(2)));
        assert!(engine.is_blackout(Region::CaCentral1, t(2)));
        let (from, until) = inj.forced_reclaim_window(Region::CaCentral1, t(0)).unwrap();
        assert_eq!(from, t(1));
        assert_eq!(until, t(36));
        assert_eq!(
            engine
                .overlay()
                .placement_score(Region::CaCentral1, t(2), PlacementScore::new(9).unwrap())
                .value(),
            1
        );
    }

    #[test]
    fn hazard_burst_multiplies_only_inside_window() {
        let engine = ChaosEngine::new(&scenario::correlated_crunch(), 7, SimTime::ZERO);
        let inj = engine.compute_injector();
        assert_eq!(inj.hazard_multiplier(Region::UsEast1, t(5)), 8.0);
        assert_eq!(inj.hazard_multiplier(Region::UsEast1, t(13)), 1.0);
    }

    #[test]
    fn notice_loss_shortens_notices_deterministically() {
        let mut a = ChaosEngine::new(&scenario::notice_loss(), 7, SimTime::ZERO);
        let mut b = ChaosEngine::new(&scenario::notice_loss(), 7, SimTime::ZERO);
        let seq_a: Vec<_> = (0..32)
            .map(|i| a.notice_duration(Region::UsEast1, t(i)))
            .collect();
        let seq_b: Vec<_> = (0..32)
            .map(|i| b.notice_duration(Region::UsEast1, t(i)))
            .collect();
        assert_eq!(seq_a, seq_b);
        // p = 0.9, max_notice = 0: nearly every notice is fully lost.
        let lost = seq_a.iter().filter(|d| **d == SimDuration::ZERO).count();
        assert!(lost >= 20, "expected mostly lost notices, got {lost}/32");
        assert!(seq_a
            .iter()
            .all(|d| *d == SimDuration::ZERO || *d == INTERRUPTION_NOTICE));
    }

    #[test]
    fn neutral_engine_gives_full_notice_without_consuming_rng() {
        let empty = ChaosScenario::new("empty");
        let mut engine = ChaosEngine::new(&empty, 7, SimTime::ZERO);
        let before = engine.notice_rng.clone().next_u64();
        for i in 0..8 {
            assert_eq!(
                engine.notice_duration(Region::UsEast1, t(i)),
                INTERRUPTION_NOTICE
            );
        }
        assert_eq!(engine.notice_rng.clone().next_u64(), before);
    }

    #[test]
    fn throttle_storm_intercepts_inside_window_only() {
        let engine = ChaosEngine::new(&scenario::throttle_storm(), 7, SimTime::ZERO);
        let mut inj = engine.service_injector("kv");
        assert_eq!(inj.intercept(aws_stack::ServiceOp::KvRead, t(48)), None);
        let mut throttled = 0;
        let mut delayed = 0;
        for _ in 0..200 {
            match inj.intercept(aws_stack::ServiceOp::KvWrite, t(2)) {
                Some(aws_stack::ServiceFault::Throttled) => throttled += 1,
                Some(aws_stack::ServiceFault::Delayed(d)) => {
                    assert_eq!(d, SimDuration::from_secs(20));
                    delayed += 1;
                }
                other => panic!("unexpected control-plane fault {other:?}"),
            }
        }
        assert!(throttled > 40, "p=0.4 over 200 calls, got {throttled}");
        assert_eq!(throttled + delayed, 200);
    }

    #[test]
    fn delivery_disruption_loses_and_duplicates_only_event_delivery() {
        let engine = ChaosEngine::new(&scenario::sweep_shard_chaos(), 7, SimTime::ZERO);
        let mut inj = engine.service_injector("bus");
        let mut lost = 0;
        let mut duplicated = 0;
        let mut clean = 0;
        for _ in 0..300 {
            match inj.intercept(aws_stack::ServiceOp::EventDeliver, t(2)) {
                Some(aws_stack::ServiceFault::Lost) => lost += 1,
                Some(aws_stack::ServiceFault::Duplicate) => duplicated += 1,
                None => clean += 1,
                other => panic!("unexpected delivery fault {other:?}"),
            }
        }
        assert!(lost > 50, "p=0.3 over 300 deliveries, got {lost}");
        assert!(duplicated > 15, "p=0.2 of the rest, got {duplicated}");
        assert!(clean > 100);
        // Outside the window deliveries are exact and draw no randomness.
        assert_eq!(inj.intercept(aws_stack::ServiceOp::EventDeliver, t(72)), None);
        // Request/response ops never see delivery faults — only the
        // control-plane window's throttle/delay family.
        let mut kv = engine.service_injector("kv");
        for _ in 0..200 {
            assert!(!matches!(
                kv.intercept(aws_stack::ServiceOp::KvWrite, t(2)),
                Some(aws_stack::ServiceFault::Lost | aws_stack::ServiceFault::Duplicate)
            ));
        }
    }

    #[test]
    fn service_labels_draw_independent_streams() {
        let engine = ChaosEngine::new(&scenario::throttle_storm(), 7, SimTime::ZERO);
        let sample = |label: &str| {
            let mut inj = engine.service_injector(label);
            (0..64)
                .map(|_| {
                    matches!(
                        inj.intercept(aws_stack::ServiceOp::KvRead, t(2)),
                        Some(aws_stack::ServiceFault::Throttled)
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(sample("kv"), sample("kv"));
        assert_ne!(sample("kv"), sample("s3"));
    }

    #[test]
    fn checkpoint_corruption_is_a_pure_draw() {
        let engine = ChaosEngine::new(&scenario::flaky_checkpoints(), 7, SimTime::ZERO);
        let verdicts: Vec<_> = (0..64)
            .map(|g| engine.checkpoint_corrupted("ngs-shard-3", g, t(1)))
            .collect();
        // Repeat queries (any order) agree.
        for (g, v) in verdicts.iter().enumerate().rev() {
            assert_eq!(engine.checkpoint_corrupted("ngs-shard-3", g as u64, t(1)), *v);
        }
        let corrupt = verdicts.iter().filter(|v| **v).count();
        assert!(
            (20..=56).contains(&corrupt),
            "p=0.6 over 64 generations, got {corrupt}"
        );
        // Outside the window nothing corrupts.
        let clean = ChaosEngine::new(&scenario::region_blackout(), 7, SimTime::ZERO);
        assert!(!clean.checkpoint_corrupted("ngs-shard-3", 0, t(1)));
    }

    #[test]
    fn same_seed_same_everything_different_seed_diverges() {
        let mk = |seed| ChaosEngine::new(&scenario::notice_loss(), seed, SimTime::ZERO);
        let run = |mut e: ChaosEngine| {
            (0..32)
                .map(|i| e.notice_duration(Region::UsWest2, t(i)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(mk(7)), run(mk(7)));
        assert_ne!(run(mk(7)), run(mk(8)));
    }
}
