//! # chaos
//!
//! Deterministic fault injection for SpotVerse experiments.
//!
//! A [`ChaosScenario`] is declarative data — a named schedule of
//! [`FaultDirective`]s covering five fault classes (spot blackouts,
//! correlated hazard bursts, lost/late interruption notices,
//! control-plane degradation, checkpoint corruption). The
//! [`ChaosEngine`] compiles a scenario against a seed and a start
//! instant into injection hooks for the substrate seams:
//!
//! * [`cloud_compute::FaultInjector`] — spot request denial, hazard
//!   multipliers, forced reclaims inside blackout windows;
//! * [`cloud_market::MarketOverlay`] — what the Monitor *observes*
//!   (placement pins, blackouts) on top of the immutable market;
//! * [`aws_stack::ServiceFaultInjector`] — throttling and latency on
//!   KV, object-store, and function calls;
//! * controller policies — notice shortening and checkpoint-corruption
//!   verdicts, queried by the experiment loop itself.
//!
//! Identical scenario + seed ⇒ identical event trace; an engine with no
//! active fault consumes no randomness, leaving fault-free runs
//! untouched.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod engine;
pub mod scenario;

pub use engine::ChaosEngine;
pub use scenario::{
    by_name, correlated_crunch, flaky_checkpoints, for_regime, library, notice_loss,
    region_blackout, region_flap, sweep_shard_chaos, telemetry_blackout, throttle_storm,
    ChaosScenario, FaultDirective, RegionScope, SCENARIO_NAMES,
};
