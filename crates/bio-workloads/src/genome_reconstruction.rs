//! The Galaxy-specific standard workload: SARS-CoV-2 Genome Reconstruction
//! (paper §5.1.1).
//!
//! A 23-step workflow that processes VCF-formatted variant datasets from
//! sequenced viral isolates against the reference SARS-CoV-2 genome,
//! reconstructs consensus genomes in FASTA format, and classifies lineages
//! with Pangolin. Any interruption forces recomputation from the beginning.

use galaxy_flow::{DataFormat, RecoveryMode, Tool, ToolCategory, Workflow};
use sim_kernel::SimDuration;

/// The 23 steps: (label, tool, weight, output format). Weights are relative
/// durations; the builder normalizes them to the requested total.
const STEPS: [(&str, &str, u32, DataFormat); 23] = [
    ("fetch-vcf-collection", "sra-toolkit", 3, DataFormat::Vcf),
    ("fetch-reference-genome", "sra-toolkit", 1, DataFormat::Fasta),
    ("validate-vcf", "vcf-tools", 2, DataFormat::Vcf),
    ("normalize-variants", "bcftools-norm", 3, DataFormat::Vcf),
    ("filter-low-quality", "bcftools-filter", 3, DataFormat::Vcf),
    ("decompose-multiallelic", "vt-decompose", 2, DataFormat::Vcf),
    ("annotate-variants", "snpeff", 5, DataFormat::Vcf),
    ("intersect-samples", "bcftools-isec", 3, DataFormat::Vcf),
    ("merge-vcfs", "bcftools-merge", 4, DataFormat::Vcf),
    ("index-merged", "tabix", 1, DataFormat::Vcf),
    ("compute-allele-freq", "vcf-tools", 3, DataFormat::Tabular),
    ("mask-problematic-sites", "bcftools-filter", 2, DataFormat::Vcf),
    ("build-consensus-1", "bcftools-consensus", 6, DataFormat::Fasta),
    ("build-consensus-2", "bcftools-consensus", 6, DataFormat::Fasta),
    ("merge-consensus", "seqkit-concat", 2, DataFormat::Fasta),
    ("qc-consensus", "seqkit-stats", 2, DataFormat::Tabular),
    ("align-to-reference", "mafft", 8, DataFormat::Fasta),
    ("trim-alignment", "trimal", 3, DataFormat::Fasta),
    ("call-lineages-pangolin", "pangolin", 7, DataFormat::Tabular),
    ("scorpio-classify", "scorpio", 4, DataFormat::Tabular),
    ("summarize-lineages", "datamash", 2, DataFormat::Tabular),
    ("render-report", "multiqc", 3, DataFormat::Html),
    ("export-results", "galaxy-export", 1, DataFormat::Tabular),
];

/// Builds the 23-step Genome Reconstruction workload with the given total
/// duration.
///
/// # Panics
///
/// Panics if `total` is shorter than 23 seconds (every step needs a
/// positive duration).
///
/// # Examples
///
/// ```
/// use bio_workloads::genome_reconstruction::genome_reconstruction_workload;
/// use sim_kernel::SimDuration;
///
/// let wf = genome_reconstruction_workload(SimDuration::from_hours(10));
/// assert_eq!(wf.len(), 23);
/// ```
pub fn genome_reconstruction_workload(total: SimDuration) -> Workflow {
    assert!(
        total.as_secs() >= 23,
        "genome reconstruction needs ≥23 s, got {total}"
    );
    let weight_sum: u32 = STEPS.iter().map(|&(_, _, w, _)| w).sum();
    let mut b = Workflow::builder(
        "sars-cov-2-genome-reconstruction",
        RecoveryMode::RestartFromScratch,
    );
    let mut prev = None;
    let mut allocated = SimDuration::ZERO;
    for (i, (label, tool, weight, format)) in STEPS.iter().enumerate() {
        let duration = if i == STEPS.len() - 1 {
            total - allocated
        } else {
            let d = SimDuration::from_secs(
                (total.as_secs() as f64 * f64::from(*weight) / f64::from(weight_sum)).round()
                    as u64,
            )
            .max(SimDuration::from_secs(1));
            allocated += d;
            d
        };
        let inputs: Vec<_> = prev.into_iter().collect();
        let id = b.add_step_full(*label, *tool, duration, &inputs, 1, *format, 0.05);
        prev = Some(id);
    }
    b.build().expect("genome reconstruction workflow is statically valid")
}

/// The tools the workload needs installed.
pub fn required_tools() -> Vec<Tool> {
    let mut seen = std::collections::BTreeSet::new();
    STEPS
        .iter()
        .filter(|(_, tool, _, _)| seen.insert(*tool))
        .map(|(_, tool, _, _)| {
            let category = match *tool {
                "sra-toolkit" => ToolCategory::DataRetrieval,
                "pangolin" | "scorpio" => ToolCategory::Classification,
                "mafft" | "trimal" => ToolCategory::Alignment,
                "multiqc" => ToolCategory::Reporting,
                t if t.starts_with("bcftools") || t.starts_with("vcf") || t == "vt-decompose" => {
                    ToolCategory::VariantAnalysis
                }
                _ => ToolCategory::General,
            };
            Tool::new(*tool, *tool, "1.0", category)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_exactly_23_steps() {
        let wf = genome_reconstruction_workload(SimDuration::from_hours(10));
        assert_eq!(wf.len(), 23, "paper: a 23-step workflow");
    }

    #[test]
    fn durations_sum_exactly_to_total() {
        for hours in [5, 10, 11, 20] {
            let total = SimDuration::from_hours(hours);
            let wf = genome_reconstruction_workload(total);
            assert_eq!(wf.total_duration(), total);
        }
    }

    #[test]
    fn restart_from_scratch_semantics() {
        let wf = genome_reconstruction_workload(SimDuration::from_hours(10));
        assert_eq!(wf.recovery(), RecoveryMode::RestartFromScratch);
        assert!(wf.steps().iter().all(|s| s.shards() == 1));
    }

    #[test]
    fn pipeline_starts_with_vcf_and_produces_fasta_then_lineages() {
        let wf = genome_reconstruction_workload(SimDuration::from_hours(10));
        assert_eq!(wf.steps()[0].output_format(), DataFormat::Vcf);
        assert!(wf
            .steps()
            .iter()
            .any(|s| s.output_format() == DataFormat::Fasta));
        assert!(wf.steps().iter().any(|s| s.tool().as_str() == "pangolin"));
    }

    #[test]
    fn required_tools_cover_every_step_without_duplicates() {
        let wf = genome_reconstruction_workload(SimDuration::from_hours(10));
        let tools = required_tools();
        for step in wf.steps() {
            assert!(tools.iter().any(|t| t.id() == step.tool()));
        }
        let mut ids: Vec<&str> = tools.iter().map(|t| t.id().as_str()).collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), before, "tool list has duplicates");
    }

    #[test]
    fn alignment_is_the_heaviest_step() {
        let wf = genome_reconstruction_workload(SimDuration::from_hours(10));
        let longest = wf.steps().iter().max_by_key(|s| s.duration()).unwrap();
        assert_eq!(longest.label(), "align-to-reference");
    }
}
