//! # bio-workloads
//!
//! The paper's bioinformatics workloads (§5.1.1) as
//! [`galaxy_flow::Workflow`] definitions:
//!
//! * [`qiime::standard_general_workload`] — QIIME 2 microbiome analysis,
//!   the *standard general* workload (restart-from-scratch),
//! * [`genome_reconstruction::genome_reconstruction_workload`] — the
//!   23-step SARS-CoV-2 Genome Reconstruction workflow, the Galaxy-specific
//!   *standard* workload,
//! * [`ngs_preprocessing::ngs_preprocessing_workload`] — NGS Data
//!   Preprocessing over a sharded 1 GB dataset, the *checkpoint* workload.
//!
//! The paper pads real tool runtimes with sleep intervals so each workload
//! "runs consistently for 10 to 11 hours" regardless of the instance; these
//! builders take the total duration directly and distribute it over steps,
//! which reproduces the same timing semantics. [`spec::paper_fleet`] draws
//! the 40-workload fleets the evaluation uses.
//!
//! # Examples
//!
//! ```
//! use bio_workloads::{paper_fleet, WorkloadKind};
//! use sim_kernel::SimRng;
//!
//! let rng = SimRng::seed_from_u64(42);
//! let fleet = paper_fleet(WorkloadKind::GenomeReconstruction, 40, &rng);
//! assert_eq!(fleet.len(), 40);
//! let workflow = fleet[0].build_workflow();
//! assert_eq!(workflow.len(), 23);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod genome_reconstruction;
pub mod ngs_preprocessing;
pub mod qiime;
pub mod spec;

pub use spec::{paper_fleet, workload_fleet, WorkloadKind, WorkloadSpec};
