//! The Standard General Workload: QIIME 2 microbiome analysis (paper
//! §5.1.1).
//!
//! Sequence demultiplexing → DADA2 quality control → phylogenetic tree
//! construction → diversity analysis. Interruptions force a complete
//! restart. The paper pads processing with sleep intervals so every run
//! lasts 10–11 hours regardless of instance specs; here the requested total
//! duration is distributed over the steps in fixed proportions.

use galaxy_flow::{DataFormat, RecoveryMode, Tool, ToolCategory, Workflow};
use sim_kernel::SimDuration;

/// Step proportions (label, tool, share of total duration, output format).
const STEPS: [(&str, &str, f64, DataFormat); 5] = [
    ("import-sequences", "qiime2-tools-import", 0.05, DataFormat::Qza),
    ("demultiplex", "qiime2-demux", 0.15, DataFormat::Qza),
    ("dada2-denoise", "dada2", 0.35, DataFormat::Qza),
    ("phylogenetic-tree", "qiime2-phylogeny", 0.20, DataFormat::Qza),
    ("diversity-analysis", "qiime2-diversity", 0.25, DataFormat::Qza),
];

/// Builds the QIIME 2 standard general workload with the given total
/// duration.
///
/// # Panics
///
/// Panics if `total` is shorter than one minute (each step must get a
/// positive duration).
///
/// # Examples
///
/// ```
/// use bio_workloads::qiime::standard_general_workload;
/// use sim_kernel::SimDuration;
///
/// let wf = standard_general_workload(SimDuration::from_hours(10));
/// assert_eq!(wf.len(), 5);
/// assert!(!wf.is_checkpointable());
/// ```
pub fn standard_general_workload(total: SimDuration) -> Workflow {
    assert!(
        total >= SimDuration::from_mins(1),
        "QIIME 2 workload needs at least one minute, got {total}"
    );
    let mut b = Workflow::builder("qiime2-standard-general", RecoveryMode::RestartFromScratch);
    let mut prev = None;
    let mut allocated = SimDuration::ZERO;
    for (i, (label, tool, share, format)) in STEPS.iter().enumerate() {
        // Give the final step the rounding remainder so durations sum
        // exactly to `total`.
        let duration = if i == STEPS.len() - 1 {
            total - allocated
        } else {
            let d = SimDuration::from_secs((total.as_secs() as f64 * share).round() as u64)
                .max(SimDuration::from_secs(1));
            allocated += d;
            d
        };
        let inputs: Vec<_> = prev.into_iter().collect();
        let id = b.add_step_full(*label, *tool, duration, &inputs, 1, *format, 0.2);
        prev = Some(id);
    }
    b.build().expect("QIIME 2 workflow is statically valid")
}

/// The tools the workload needs installed.
pub fn required_tools() -> Vec<Tool> {
    vec![
        Tool::new("qiime2-tools-import", "QIIME 2 import", "2024.2", ToolCategory::DataRetrieval),
        Tool::new("qiime2-demux", "QIIME 2 demux", "2024.2", ToolCategory::QualityControl),
        Tool::new("dada2", "DADA2", "1.26", ToolCategory::QualityControl),
        Tool::new("qiime2-phylogeny", "QIIME 2 phylogeny", "2024.2", ToolCategory::Phylogenetics),
        Tool::new("qiime2-diversity", "QIIME 2 diversity", "2024.2", ToolCategory::Reporting),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations_sum_exactly_to_total() {
        for hours in [5, 10, 20] {
            let total = SimDuration::from_hours(hours);
            let wf = standard_general_workload(total);
            assert_eq!(wf.total_duration(), total, "{hours}h");
        }
    }

    #[test]
    fn is_linear_chain() {
        let wf = standard_general_workload(SimDuration::from_hours(10));
        for (i, step) in wf.steps().iter().enumerate() {
            if i == 0 {
                assert!(step.inputs().is_empty());
            } else {
                assert_eq!(step.inputs().len(), 1);
                assert_eq!(step.inputs()[0].index(), i - 1);
            }
            assert_eq!(step.shards(), 1, "standard workload is monolithic");
        }
    }

    #[test]
    fn restart_semantics() {
        let wf = standard_general_workload(SimDuration::from_hours(10));
        assert_eq!(wf.recovery(), RecoveryMode::RestartFromScratch);
    }

    #[test]
    fn dada2_is_the_longest_step() {
        let wf = standard_general_workload(SimDuration::from_hours(10));
        let longest = wf
            .steps()
            .iter()
            .max_by_key(|s| s.duration())
            .unwrap();
        assert_eq!(longest.label(), "dada2-denoise");
    }

    #[test]
    fn required_tools_cover_every_step() {
        let wf = standard_general_workload(SimDuration::from_hours(10));
        let tools = required_tools();
        for step in wf.steps() {
            assert!(
                tools.iter().any(|t| t.id() == step.tool()),
                "missing tool {}",
                step.tool()
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one minute")]
    fn rejects_degenerate_duration() {
        standard_general_workload(SimDuration::from_secs(10));
    }
}
