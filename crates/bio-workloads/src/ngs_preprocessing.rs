//! The checkpoint workload: NGS Data Preprocessing (paper §5.1.1).
//!
//! FastQC quality assessment, Cutadapt-equivalent trimming and MultiQC
//! aggregation over a 1 GB SRA FastQC dataset that is *segmented into
//! shards*, each file's processing status tracked individually — the
//! paper's checkpointing mechanism. On an interruption notice the progress
//! record (and the ≤1 GB working set, sized to fit the two-minute notice)
//! is uploaded, and a replacement instance in any region resumes from the
//! last completed shard.

use galaxy_flow::{DataFormat, RecoveryMode, Tool, ToolCategory, Workflow};
use sim_kernel::SimDuration;

/// Default shard count (the segmented FastQC dataset).
pub const DEFAULT_SHARDS: u32 = 20;

/// Size of the checkpointed dataset in GiB (paper: a 1 GB SRA dataset,
/// chosen to upload within the two-minute notice).
pub const DATASET_GIB: f64 = 1.0;

/// Builds the NGS preprocessing checkpoint workload.
///
/// `total` is the uninterrupted duration; `shards` controls checkpoint
/// granularity (progress is lost only back to the last completed shard).
///
/// # Panics
///
/// Panics if `shards == 0` or `total` is shorter than one second per shard.
///
/// # Examples
///
/// ```
/// use bio_workloads::ngs_preprocessing::ngs_preprocessing_workload;
/// use sim_kernel::SimDuration;
///
/// let wf = ngs_preprocessing_workload(SimDuration::from_hours(10), 20);
/// assert!(wf.is_checkpointable());
/// ```
pub fn ngs_preprocessing_workload(total: SimDuration, shards: u32) -> Workflow {
    assert!(shards > 0, "NGS preprocessing needs at least one shard");
    assert!(
        total.as_secs() >= u64::from(shards) + 3,
        "total {total} too short for {shards} shards"
    );
    // Fixed small prologue/epilogue around the sharded body.
    let fetch = SimDuration::from_secs((total.as_secs() as f64 * 0.03).round() as u64)
        .max(SimDuration::from_secs(1));
    let report = SimDuration::from_secs((total.as_secs() as f64 * 0.02).round() as u64)
        .max(SimDuration::from_secs(1));
    let body = total - fetch - report;
    // Split the body between per-shard QC and per-shard trimming.
    let qc = SimDuration::from_secs(body.as_secs() * 55 / 100);
    let trim = body - qc;

    let mut b = Workflow::builder("ngs-data-preprocessing", RecoveryMode::ResumeFromCheckpoint);
    let fetch_id = b.add_step_full(
        "fetch-sra-dataset",
        "sra-toolkit",
        fetch,
        &[],
        1,
        DataFormat::Sra,
        DATASET_GIB,
    );
    let qc_id = b.add_step_full(
        "fastqc-per-shard",
        "fastqc",
        qc,
        &[fetch_id],
        shards,
        DataFormat::Html,
        0.02,
    );
    let trim_id = b.add_step_full(
        "cutadapt-per-shard",
        "cutadapt",
        trim,
        &[qc_id],
        shards,
        DataFormat::FastqGz,
        0.5,
    );
    b.add_step_full(
        "multiqc-aggregate",
        "multiqc",
        report,
        &[trim_id],
        1,
        DataFormat::Html,
        0.01,
    );
    b.build().expect("NGS preprocessing workflow is statically valid")
}

/// The tools the workload needs installed.
pub fn required_tools() -> Vec<Tool> {
    vec![
        Tool::new("sra-toolkit", "SRA Toolkit", "3.0", ToolCategory::DataRetrieval),
        Tool::new("fastqc", "FastQC", "0.12.1", ToolCategory::QualityControl),
        Tool::new("cutadapt", "Cutadapt", "4.4", ToolCategory::SequenceTrimming),
        Tool::new("multiqc", "MultiQC", "1.14", ToolCategory::Reporting),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use galaxy_flow::WorkflowInvocation;

    #[test]
    fn checkpoint_semantics_and_shard_counts() {
        let wf = ngs_preprocessing_workload(SimDuration::from_hours(10), 20);
        assert_eq!(wf.recovery(), RecoveryMode::ResumeFromCheckpoint);
        let shard_units: u32 = wf.steps().iter().map(|s| s.shards()).sum();
        assert_eq!(shard_units, 1 + 20 + 20 + 1);
    }

    #[test]
    fn duration_is_close_to_requested() {
        for hours in [5, 10, 20] {
            let total = SimDuration::from_hours(hours);
            let wf = ngs_preprocessing_workload(total, DEFAULT_SHARDS);
            let diff = wf
                .total_duration()
                .max(total)
                .saturating_sub(wf.total_duration().min(total));
            // Per-shard rounding may shift the total by at most one second
            // per unit.
            assert!(diff.as_secs() <= 60, "{hours}h: diff {diff}");
        }
    }

    #[test]
    fn interruption_only_loses_current_shard() {
        let wf = ngs_preprocessing_workload(SimDuration::from_hours(10), 20);
        let mut inv = WorkflowInvocation::new(&wf);
        inv.record_execution(SimDuration::from_hours(5)).unwrap();
        let before = inv.units_done();
        assert!(before > 0);
        inv.handle_interruption();
        assert_eq!(inv.units_done(), before, "checkpoint keeps completed shards");
        // Lost work is bounded by one shard of the larger sharded step.
        let max_unit = inv
            .plan()
            .units()
            .iter()
            .map(|u| u.duration)
            .max()
            .unwrap();
        assert!(max_unit < SimDuration::from_hours(1), "shards are fine-grained");
    }

    #[test]
    fn dataset_fits_interruption_notice() {
        // The constraint the paper engineered the 1 GB dataset around.
        use cloud_compute::transfer::fits_in_interruption_notice;
        use cloud_market::Region;
        assert!(fits_in_interruption_notice(
            Region::CaCentral1,
            Region::ApNortheast3,
            DATASET_GIB
        ));
    }

    #[test]
    fn required_tools_cover_every_step() {
        let wf = ngs_preprocessing_workload(SimDuration::from_hours(10), 4);
        let tools = required_tools();
        for step in wf.steps() {
            assert!(tools.iter().any(|t| t.id() == step.tool()));
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        ngs_preprocessing_workload(SimDuration::from_hours(10), 0);
    }
}
