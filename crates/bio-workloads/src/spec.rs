//! Workload specifications and fleet generation.
//!
//! Experiments run fleets of 40–42 parallel workloads, each "designed to run
//! consistently for 10 to 11 hours" (paper §5.1.1). [`WorkloadSpec`] names a
//! workload kind and duration; [`workload_fleet`] draws a deterministic
//! fleet with per-workload durations jittered inside the paper's window.

use galaxy_flow::{Tool, Workflow};
use serde::{Deserialize, Serialize};
use sim_kernel::{SimDuration, SimRng};

use crate::genome_reconstruction;
use crate::ngs_preprocessing;
use crate::qiime;

/// The paper's three workload kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// QIIME 2 microbiome analysis — standard general workload.
    StandardGeneral,
    /// SARS-CoV-2 genome reconstruction — Galaxy-specific standard workload.
    GenomeReconstruction,
    /// NGS data preprocessing — Galaxy-specific checkpoint workload.
    NgsPreprocessing,
}

impl WorkloadKind {
    /// Every kind, in a stable order.
    pub const ALL: [WorkloadKind; 3] = [
        WorkloadKind::StandardGeneral,
        WorkloadKind::GenomeReconstruction,
        WorkloadKind::NgsPreprocessing,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::StandardGeneral => "standard general (QIIME 2)",
            WorkloadKind::GenomeReconstruction => "genome reconstruction",
            WorkloadKind::NgsPreprocessing => "NGS data preprocessing",
        }
    }

    /// Whether the kind resumes from checkpoints.
    pub fn is_checkpointable(self) -> bool {
        matches!(self, WorkloadKind::NgsPreprocessing)
    }
}

impl std::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A concrete workload to run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Stable identifier within an experiment, e.g. `"w-07"`.
    pub id: String,
    /// The workload kind.
    pub kind: WorkloadKind,
    /// The uninterrupted duration.
    pub duration: SimDuration,
    /// Checkpoint shard count override for sharded workloads
    /// (`None` = the kind's default granularity).
    pub shards: Option<u32>,
}

impl WorkloadSpec {
    /// Materializes the workflow for this spec.
    pub fn build_workflow(&self) -> Workflow {
        match self.kind {
            WorkloadKind::StandardGeneral => qiime::standard_general_workload(self.duration),
            WorkloadKind::GenomeReconstruction => {
                genome_reconstruction::genome_reconstruction_workload(self.duration)
            }
            WorkloadKind::NgsPreprocessing => ngs_preprocessing::ngs_preprocessing_workload(
                self.duration,
                self.shards.unwrap_or(ngs_preprocessing::DEFAULT_SHARDS),
            ),
        }
    }

    /// The tools this spec's workflow needs.
    pub fn required_tools(&self) -> Vec<Tool> {
        match self.kind {
            WorkloadKind::StandardGeneral => qiime::required_tools(),
            WorkloadKind::GenomeReconstruction => genome_reconstruction::required_tools(),
            WorkloadKind::NgsPreprocessing => ngs_preprocessing::required_tools(),
        }
    }
}

/// Draws a fleet of `count` workloads of one kind with durations uniform in
/// `[base, base + jitter]` — the paper's "10 to 11 hours" window is
/// `workload_fleet(kind, 40, 10 h, 1 h, rng)`.
///
/// # Panics
///
/// Panics if `count == 0`.
pub fn workload_fleet(
    kind: WorkloadKind,
    count: usize,
    base: SimDuration,
    jitter: SimDuration,
    rng: &SimRng,
) -> Vec<WorkloadSpec> {
    assert!(count > 0, "workload_fleet: empty fleet");
    (0..count)
        .map(|i| {
            let mut stream = rng.fork_indexed("workload-duration", i as u64);
            let extra = if jitter.is_zero() {
                0
            } else {
                stream.uniform_u64(jitter.as_secs() + 1)
            };
            WorkloadSpec {
                id: format!("w-{i:02}"),
                kind,
                duration: base + SimDuration::from_secs(extra),
                shards: None,
            }
        })
        .collect()
}

/// The paper's canonical fleet: `count` workloads lasting 10–11 hours.
pub fn paper_fleet(kind: WorkloadKind, count: usize, rng: &SimRng) -> Vec<WorkloadSpec> {
    workload_fleet(
        kind,
        count,
        SimDuration::from_hours(10),
        SimDuration::from_hours(1),
        rng,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_durations_inside_window() {
        let rng = SimRng::seed_from_u64(1);
        let fleet = paper_fleet(WorkloadKind::GenomeReconstruction, 40, &rng);
        assert_eq!(fleet.len(), 40);
        for spec in &fleet {
            assert!(spec.duration >= SimDuration::from_hours(10));
            assert!(spec.duration <= SimDuration::from_hours(11));
        }
        // Not all identical.
        assert!(fleet.windows(2).any(|w| w[0].duration != w[1].duration));
    }

    #[test]
    fn fleet_is_deterministic_per_seed() {
        let a = paper_fleet(WorkloadKind::StandardGeneral, 10, &SimRng::seed_from_u64(7));
        let b = paper_fleet(WorkloadKind::StandardGeneral, 10, &SimRng::seed_from_u64(7));
        let c = paper_fleet(WorkloadKind::StandardGeneral, 10, &SimRng::seed_from_u64(8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn specs_build_their_workflows() {
        let rng = SimRng::seed_from_u64(2);
        for kind in WorkloadKind::ALL {
            let fleet = paper_fleet(kind, 2, &rng);
            for spec in fleet {
                let wf = spec.build_workflow();
                assert!(wf.validate().is_ok());
                assert_eq!(wf.is_checkpointable(), kind.is_checkpointable());
                assert!(!spec.required_tools().is_empty());
            }
        }
    }

    #[test]
    fn ids_are_unique() {
        let rng = SimRng::seed_from_u64(3);
        let fleet = paper_fleet(WorkloadKind::NgsPreprocessing, 42, &rng);
        let mut ids: Vec<&str> = fleet.iter().map(|s| s.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 42);
    }

    #[test]
    fn shard_override_changes_granularity() {
        let rng = SimRng::seed_from_u64(9);
        let mut spec = paper_fleet(WorkloadKind::NgsPreprocessing, 1, &rng)[0].clone();
        let default_units =
            galaxy_flow::ExecutionPlan::new(&spec.build_workflow()).unit_count();
        spec.shards = Some(80);
        let fine_units = galaxy_flow::ExecutionPlan::new(&spec.build_workflow()).unit_count();
        assert!(fine_units > default_units);
        assert_eq!(fine_units, 1 + 80 + 80 + 1);
    }

    #[test]
    fn zero_jitter_gives_fixed_durations() {
        let rng = SimRng::seed_from_u64(4);
        let fleet = workload_fleet(
            WorkloadKind::StandardGeneral,
            5,
            SimDuration::from_hours(5),
            SimDuration::ZERO,
            &rng,
        );
        assert!(fleet.iter().all(|s| s.duration == SimDuration::from_hours(5)));
    }

    #[test]
    fn kind_names_and_display() {
        assert_eq!(WorkloadKind::NgsPreprocessing.to_string(), "NGS data preprocessing");
        assert!(WorkloadKind::NgsPreprocessing.is_checkpointable());
        assert!(!WorkloadKind::GenomeReconstruction.is_checkpointable());
    }
}
