//! Property-based tests for the compute control plane.

use std::sync::Arc;

use proptest::prelude::*;

use cloud_compute::{
    transfer, AmiCatalog, BillingLedger, Ec2, Ec2Config, PurchaseModel, ServiceKind,
    SpotRequestOutcome, TerminationReason,
};
use cloud_market::{InstanceType, MarketConfig, Region, SpotMarket, Usd};
use sim_kernel::{SimDuration, SimRng, SimTime};

fn any_region() -> impl Strategy<Value = Region> {
    (0usize..12).prop_map(|i| Region::ALL[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Transfer pricing is symmetric, zero on the diagonal, and linear in
    /// size; transfer time is positive for positive sizes.
    #[test]
    fn transfer_tariff_properties(
        from in any_region(),
        to in any_region(),
        gib in 0.0f64..500.0,
    ) {
        let cost = transfer::transfer_cost(from, to, gib);
        let reverse = transfer::transfer_cost(to, from, gib);
        prop_assert_eq!(cost, reverse, "tariff is symmetric");
        if from == to || gib == 0.0 {
            prop_assert_eq!(cost, Usd::ZERO);
        }
        let double = transfer::transfer_cost(from, to, gib * 2.0);
        prop_assert!((double.amount() - 2.0 * cost.amount()).abs() < 1e-9);
        if gib > 0.0 {
            prop_assert!(transfer::transfer_time(from, to, gib) >= SimDuration::from_secs(1));
        }
    }

    /// The crowding multiplier is 1 with no instances, grows monotonically
    /// with concurrent launches, and saturates at 1 + coefficient.
    #[test]
    fn crowding_multiplier_is_monotone(seed in 0u64..100, launches in 1usize..60) {
        let market = Arc::new(SpotMarket::new(MarketConfig::with_seed(seed)));
        let mut ec2 = Ec2::new(market, Ec2Config::default(), SimRng::seed_from_u64(seed));
        let region = Region::ApNortheast3;
        let itype = InstanceType::M5Xlarge;
        let mut last = ec2.crowding_multiplier(region, itype);
        prop_assert_eq!(last, 1.0);
        let cap = 1.0 + ec2.config().crowding_coefficient * region.capacity_depth_coefficient();
        let mut t = SimTime::from_days(1);
        for _ in 0..launches {
            // Force a running instance via on-demand (deterministic).
            ec2.launch_on_demand(region, itype, t).unwrap();
            t += SimDuration::from_secs(60);
            let m = ec2.crowding_multiplier(region, itype);
            // On-demand instances do not crowd the spot market.
            prop_assert_eq!(m, 1.0);
            last = m;
        }
        // Spot instances do crowd it.
        let mut spot_running = 0u32;
        for _ in 0..launches {
            if let SpotRequestOutcome::Fulfilled(_) = ec2.request_spot(region, itype, t).unwrap() {
                spot_running += 1;
                t += SimDuration::from_secs(60);
                let m = ec2.crowding_multiplier(region, itype);
                prop_assert!(m >= last - 1e-12, "multiplier decreased: {m} < {last}");
                prop_assert!(m <= cap + 1e-12);
                last = m;
            }
        }
        if spot_running as f64 >= ec2.config().crowding_fleet_scale {
            prop_assert!((last - cap).abs() < 1e-9, "should saturate at {cap}, got {last}");
        }
    }

    /// Terminating an on-demand instance bills exactly rate × runtime, for
    /// arbitrary runtimes, and the ledger total matches the sum of
    /// per-instance costs.
    #[test]
    fn on_demand_billing_is_exact(
        seed in 0u64..100,
        runtimes in prop::collection::vec(60u64..200_000, 1..8),
    ) {
        let market = Arc::new(SpotMarket::new(MarketConfig::with_seed(seed)));
        let rate = market
            .on_demand_price(Region::EuWest2, InstanceType::C52xlarge)
            .rate();
        let mut ec2 = Ec2::new(market, Ec2Config::default(), SimRng::seed_from_u64(seed));
        let mut expected_total = 0.0;
        for secs in &runtimes {
            let launch = ec2
                .launch_on_demand(Region::EuWest2, InstanceType::C52xlarge, SimTime::from_days(1))
                .unwrap();
            let cost = ec2
                .terminate(
                    launch.instance,
                    SimTime::from_days(1) + SimDuration::from_secs(*secs),
                    TerminationReason::Completed,
                )
                .unwrap();
            let expected = rate * (*secs as f64) / 3600.0;
            prop_assert!((cost.amount() - expected).abs() < 1e-9);
            expected_total += expected;
        }
        let billed = ec2.ledger().total_for_service(ServiceKind::OnDemandInstance);
        prop_assert!((billed.amount() - expected_total).abs() < 1e-6);
    }

    /// AMI propagation is idempotent: propagating twice charges once.
    #[test]
    fn ami_propagation_is_idempotent(size in 0.5f64..50.0, home in any_region()) {
        let mut catalog = AmiCatalog::new();
        let mut ledger = BillingLedger::new();
        let ami = catalog.register("img", size, home);
        catalog.propagate(ami, Region::ALL, SimTime::ZERO, &mut ledger).unwrap();
        let first = ledger.total();
        catalog.propagate(ami, Region::ALL, SimTime::from_hours(1), &mut ledger).unwrap();
        prop_assert_eq!(ledger.total(), first);
        prop_assert_eq!(catalog.get(ami).unwrap().regions().count(), 12);
    }

    /// Spot usage cost over an interval never exceeds the on-demand cost
    /// for the same interval, anywhere, anytime.
    #[test]
    fn spot_never_out_bills_on_demand(
        seed in 0u64..100,
        region in any_region(),
        start_hour in 0u64..4000,
        len_mins in 1u64..3000,
    ) {
        let market = Arc::new(SpotMarket::new(MarketConfig::with_seed(seed)));
        let ec2 = Ec2::new(market, Ec2Config::default(), SimRng::seed_from_u64(seed));
        let start = SimTime::from_hours(start_hour);
        let end = start + SimDuration::from_mins(len_mins);
        let spot = ec2
            .usage_cost(region, InstanceType::M5Xlarge, PurchaseModel::Spot, start, end)
            .unwrap();
        let od = ec2
            .usage_cost(region, InstanceType::M5Xlarge, PurchaseModel::OnDemand, start, end)
            .unwrap();
        prop_assert!(spot.amount() <= od.amount() + 1e-9, "{spot:?} > {od:?}");
        prop_assert!(spot.amount() > 0.0);
    }
}
