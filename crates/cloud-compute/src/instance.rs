//! Instance identities and lifecycle records.

use std::fmt;

use serde::{Deserialize, Serialize};
use sim_kernel::SimTime;

use cloud_market::{InstanceType, Region, Usd};

/// Unique identifier of a launched instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InstanceId(u64);

impl InstanceId {
    pub(crate) fn new(raw: u64) -> Self {
        InstanceId(raw)
    }

    /// The raw numeric id.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Reconstructs an id from its raw value — for trace tooling and
    /// tests that replay recorded runs; [`Ec2`](crate::Ec2) alone mints
    /// fresh ids.
    pub fn from_raw(raw: u64) -> Self {
        InstanceId(raw)
    }
}

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i-{:08x}", self.0)
    }
}

/// The purchase model an instance was launched under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum PurchaseModel {
    Spot,
    OnDemand,
}

impl fmt::Display for PurchaseModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PurchaseModel::Spot => "spot",
            PurchaseModel::OnDemand => "on-demand",
        })
    }
}

/// Why an instance stopped running.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TerminationReason {
    /// Its workload finished and the owner shut it down.
    Completed,
    /// The provider reclaimed the spot capacity.
    Interrupted,
    /// The owner terminated it for another reason (e.g. migration).
    Manual,
}

/// The lifecycle state of an instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InstanceState {
    /// Booting or serving its workload.
    Running,
    /// Terminated at the recorded instant.
    Terminated {
        /// When it stopped.
        at: SimTime,
        /// Why it stopped.
        reason: TerminationReason,
    },
}

/// The full record of one launched instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceRecord {
    id: InstanceId,
    region: Region,
    instance_type: InstanceType,
    model: PurchaseModel,
    launched_at: SimTime,
    ready_at: SimTime,
    state: InstanceState,
    cost: Usd,
}

impl InstanceRecord {
    pub(crate) fn new(
        id: InstanceId,
        region: Region,
        instance_type: InstanceType,
        model: PurchaseModel,
        launched_at: SimTime,
        ready_at: SimTime,
    ) -> Self {
        InstanceRecord {
            id,
            region,
            instance_type,
            model,
            launched_at,
            ready_at,
            state: InstanceState::Running,
            cost: Usd::ZERO,
        }
    }

    /// The instance id.
    pub fn id(&self) -> InstanceId {
        self.id
    }

    /// The hosting region.
    pub fn region(&self) -> Region {
        self.region
    }

    /// The instance type.
    pub fn instance_type(&self) -> InstanceType {
        self.instance_type
    }

    /// Spot or on-demand.
    pub fn model(&self) -> PurchaseModel {
        self.model
    }

    /// When the launch was initiated (billing starts here).
    pub fn launched_at(&self) -> SimTime {
        self.launched_at
    }

    /// When boot completed and the workload could start.
    pub fn ready_at(&self) -> SimTime {
        self.ready_at
    }

    /// Current lifecycle state.
    pub fn state(&self) -> InstanceState {
        self.state
    }

    /// True while the instance is running.
    pub fn is_running(&self) -> bool {
        matches!(self.state, InstanceState::Running)
    }

    /// Total billed cost (final once terminated).
    pub fn cost(&self) -> Usd {
        self.cost
    }

    pub(crate) fn terminate(&mut self, at: SimTime, reason: TerminationReason, cost: Usd) {
        debug_assert!(self.is_running(), "double termination of {}", self.id);
        self.state = InstanceState::Terminated { at, reason };
        self.cost = cost;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(InstanceId::new(0xabc).to_string(), "i-00000abc");
        assert_eq!(PurchaseModel::Spot.to_string(), "spot");
        assert_eq!(PurchaseModel::OnDemand.to_string(), "on-demand");
    }

    #[test]
    fn record_lifecycle() {
        let mut rec = InstanceRecord::new(
            InstanceId::new(1),
            Region::UsEast1,
            InstanceType::M5Xlarge,
            PurchaseModel::Spot,
            SimTime::from_secs(0),
            SimTime::from_secs(120),
        );
        assert!(rec.is_running());
        assert_eq!(rec.ready_at(), SimTime::from_secs(120));
        rec.terminate(
            SimTime::from_hours(10),
            TerminationReason::Completed,
            Usd::new(0.5),
        );
        assert!(!rec.is_running());
        assert_eq!(rec.cost(), Usd::new(0.5));
        assert_eq!(
            rec.state(),
            InstanceState::Terminated {
                at: SimTime::from_hours(10),
                reason: TerminationReason::Completed
            }
        );
    }
}
