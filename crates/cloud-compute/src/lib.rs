//! # cloud-compute
//!
//! The simulated cloud *compute* substrate of the SpotVerse reproduction:
//! an EC2-like control plane ([`Ec2`]) with the exact observable contract
//! the paper's Controller programs against —
//!
//! * spot requests that succeed probabilistically according to the market's
//!   Spot Placement Score and otherwise stay **open** for later retry,
//! * fulfilled spot instances that carry a pre-sampled future interruption
//!   instant (the two-minute notice fires [`INTERRUPTION_NOTICE`] before it),
//! * on-demand launches that always succeed and never interrupt,
//! * per-second billing against the market's hourly spot price curve,
//!   recorded in a [`BillingLedger`] with per-service/per-region rollups,
//! * AMI propagation across regions ([`AmiCatalog`]) and a shared
//!   inter-region [`transfer`] tariff.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use cloud_compute::{Ec2, Ec2Config, SpotRequestOutcome};
//! use cloud_market::{InstanceType, MarketConfig, Region, SpotMarket};
//! use sim_kernel::{SimRng, SimTime};
//!
//! let market = Arc::new(SpotMarket::new(MarketConfig::with_seed(9)));
//! let mut ec2 = Ec2::new(market, Ec2Config::default(), SimRng::seed_from_u64(9));
//! match ec2.request_spot(Region::UsWest1, InstanceType::M5Xlarge, SimTime::ZERO)? {
//!     SpotRequestOutcome::Fulfilled(launch) => {
//!         // schedule workload start at launch.ready_at, interruption
//!         // handling at launch.interruption_at …
//!         assert!(launch.ready_at > SimTime::ZERO);
//!     }
//!     SpotRequestOutcome::OpenNoCapacity => {
//!         // retry in 15 minutes, as SpotVerse's Controller does
//!     }
//! }
//! # Ok::<(), cloud_compute::Ec2Error>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod ami;
mod billing;
mod ec2;
mod instance;
pub mod transfer;

pub use ami::{Ami, AmiCatalog, AmiError, AmiId};
pub use billing::{BillingLedger, LineItem, ServiceKind};
pub use ec2::{
    Ec2, Ec2Config, Ec2Error, FaultInjector, LaunchedSpot, SpotRequestOutcome, INTERRUPTION_NOTICE,
};
pub use instance::{InstanceId, InstanceRecord, InstanceState, PurchaseModel, TerminationReason};
