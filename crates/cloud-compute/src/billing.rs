//! The billing ledger: every dollar an experiment spends is recorded as a
//! line item attributed to a service and region, so reports can break costs
//! down exactly the way the paper's cost model does (§5.1.2: instance usage,
//! shared serverless services, and cross-region data transfer).

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};
use sim_kernel::SimTime;

use cloud_market::{Region, Usd};

/// The billable service a line item belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum ServiceKind {
    SpotInstance,
    OnDemandInstance,
    DataTransfer,
    FunctionRuntime,
    KvStore,
    ObjectStorage,
    Metrics,
}

impl ServiceKind {
    /// Every service kind, in a stable order.
    pub const ALL: [ServiceKind; 7] = [
        ServiceKind::SpotInstance,
        ServiceKind::OnDemandInstance,
        ServiceKind::DataTransfer,
        ServiceKind::FunctionRuntime,
        ServiceKind::KvStore,
        ServiceKind::ObjectStorage,
        ServiceKind::Metrics,
    ];

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            ServiceKind::SpotInstance => "spot instances",
            ServiceKind::OnDemandInstance => "on-demand instances",
            ServiceKind::DataTransfer => "data transfer",
            ServiceKind::FunctionRuntime => "function runtime",
            ServiceKind::KvStore => "kv store",
            ServiceKind::ObjectStorage => "object storage",
            ServiceKind::Metrics => "metrics",
        }
    }
}

impl fmt::Display for ServiceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One recorded charge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LineItem {
    /// When the charge was recorded.
    pub at: SimTime,
    /// Which service produced it.
    pub service: ServiceKind,
    /// Which region it is attributed to.
    pub region: Region,
    /// The amount.
    pub amount: Usd,
}

/// An append-only cost ledger with per-service and per-region rollups.
///
/// # Examples
///
/// ```
/// use cloud_compute::{BillingLedger, ServiceKind};
/// use cloud_market::{Region, Usd};
/// use sim_kernel::SimTime;
///
/// let mut ledger = BillingLedger::new();
/// ledger.charge(SimTime::ZERO, ServiceKind::SpotInstance, Region::UsEast1, Usd::new(1.5));
/// assert_eq!(ledger.total(), Usd::new(1.5));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BillingLedger {
    items: Vec<LineItem>,
}

impl BillingLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        BillingLedger { items: Vec::new() }
    }

    /// Records a charge. Zero-amount charges are dropped.
    pub fn charge(&mut self, at: SimTime, service: ServiceKind, region: Region, amount: Usd) {
        if amount > Usd::ZERO {
            self.items.push(LineItem {
                at,
                service,
                region,
                amount,
            });
        }
    }

    /// Total across all line items.
    pub fn total(&self) -> Usd {
        self.items.iter().map(|i| i.amount).sum()
    }

    /// Total attributed to one service.
    pub fn total_for_service(&self, service: ServiceKind) -> Usd {
        self.items
            .iter()
            .filter(|i| i.service == service)
            .map(|i| i.amount)
            .sum()
    }

    /// Total attributed to one region.
    pub fn total_for_region(&self, region: Region) -> Usd {
        self.items
            .iter()
            .filter(|i| i.region == region)
            .map(|i| i.amount)
            .sum()
    }

    /// Total instance spend (spot + on-demand).
    pub fn instance_total(&self) -> Usd {
        self.total_for_service(ServiceKind::SpotInstance)
            + self.total_for_service(ServiceKind::OnDemandInstance)
    }

    /// Per-region rollup, in region order.
    pub fn by_region(&self) -> BTreeMap<Region, Usd> {
        let mut map = BTreeMap::new();
        for item in &self.items {
            let entry = map.entry(item.region).or_insert(Usd::ZERO);
            *entry += item.amount;
        }
        map
    }

    /// Per-service rollup, in service order.
    pub fn by_service(&self) -> BTreeMap<ServiceKind, Usd> {
        let mut map = BTreeMap::new();
        for item in &self.items {
            let entry = map.entry(item.service).or_insert(Usd::ZERO);
            *entry += item.amount;
        }
        map
    }

    /// Number of line items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if nothing has been charged.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates over line items in recording order.
    pub fn iter(&self) -> std::slice::Iter<'_, LineItem> {
        self.items.iter()
    }

    /// Absorbs another ledger's items.
    pub fn merge(&mut self, other: BillingLedger) {
        self.items.extend(other.items);
    }
}

impl<'a> IntoIterator for &'a BillingLedger {
    type Item = &'a LineItem;
    type IntoIter = std::slice::Iter<'a, LineItem>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn totals_roll_up_by_dimension() {
        let mut ledger = BillingLedger::new();
        ledger.charge(t(0), ServiceKind::SpotInstance, Region::UsEast1, Usd::new(2.0));
        ledger.charge(t(1), ServiceKind::SpotInstance, Region::EuWest1, Usd::new(3.0));
        ledger.charge(t(2), ServiceKind::DataTransfer, Region::UsEast1, Usd::new(0.5));
        assert_eq!(ledger.total(), Usd::new(5.5));
        assert_eq!(ledger.total_for_service(ServiceKind::SpotInstance), Usd::new(5.0));
        assert_eq!(ledger.total_for_region(Region::UsEast1), Usd::new(2.5));
        assert_eq!(ledger.instance_total(), Usd::new(5.0));
        assert_eq!(ledger.len(), 3);
    }

    #[test]
    fn zero_charges_are_dropped() {
        let mut ledger = BillingLedger::new();
        ledger.charge(t(0), ServiceKind::Metrics, Region::UsEast1, Usd::ZERO);
        assert!(ledger.is_empty());
    }

    #[test]
    fn rollup_maps_cover_all_items() {
        let mut ledger = BillingLedger::new();
        ledger.charge(t(0), ServiceKind::SpotInstance, Region::UsEast1, Usd::new(1.0));
        ledger.charge(t(0), ServiceKind::KvStore, Region::UsEast1, Usd::new(0.25));
        ledger.charge(t(0), ServiceKind::SpotInstance, Region::EuWest2, Usd::new(2.0));
        let by_region = ledger.by_region();
        assert_eq!(by_region[&Region::UsEast1], Usd::new(1.25));
        assert_eq!(by_region[&Region::EuWest2], Usd::new(2.0));
        let by_service = ledger.by_service();
        assert_eq!(by_service[&ServiceKind::SpotInstance], Usd::new(3.0));
        assert_eq!(by_service[&ServiceKind::KvStore], Usd::new(0.25));
    }

    #[test]
    fn merge_combines_ledgers() {
        let mut a = BillingLedger::new();
        a.charge(t(0), ServiceKind::SpotInstance, Region::UsEast1, Usd::new(1.0));
        let mut b = BillingLedger::new();
        b.charge(t(5), ServiceKind::ObjectStorage, Region::UsEast1, Usd::new(0.1));
        a.merge(b);
        assert_eq!(a.total(), Usd::new(1.1));
        assert_eq!(a.iter().count(), 2);
        assert_eq!((&a).into_iter().count(), 2);
    }

    #[test]
    fn service_labels_are_distinct() {
        let mut labels: Vec<&str> = ServiceKind::ALL.iter().map(|s| s.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), ServiceKind::ALL.len());
    }
}
