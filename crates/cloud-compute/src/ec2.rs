//! The EC2-like compute control plane: spot requests, on-demand launches,
//! interruption scheduling, and per-second billing against the market's
//! hourly price curve.
//!
//! The control plane is *synchronous with respect to sim time*: callers
//! (the SpotVerse Controller, or baseline strategies) invoke it at a given
//! instant and receive outcomes carrying future instants (boot-ready time,
//! interruption time) that they are responsible for scheduling as events.
//! This keeps the compute substrate reusable under any orchestration model.

use std::collections::HashMap;
use std::sync::Arc;

use sim_kernel::{SimDuration, SimRng, SimTime};

use cloud_market::{InstanceType, MarketError, Region, SpotMarket, Usd};

use crate::billing::{BillingLedger, ServiceKind};
use crate::instance::{InstanceId, InstanceRecord, PurchaseModel, TerminationReason};

/// The two-minute interruption notice AWS gives spot instances.
pub const INTERRUPTION_NOTICE: SimDuration = SimDuration::from_secs(120);

/// An injection seam over the spot request lifecycle and interruption
/// engine. A chaos layer implements this to force capacity outages,
/// correlated interruption bursts, and forced reclaims; with no injector
/// installed (or with the default no-op answers) behavior is byte-for-byte
/// identical to the fault-free control plane.
pub trait FaultInjector: std::fmt::Debug + Send {
    /// Whether spot capacity in `region` is forced unavailable at `at`
    /// (the request stays open, as if the market had no capacity).
    fn spot_blocked(&self, region: Region, at: SimTime) -> bool {
        let _ = (region, at);
        false
    }

    /// Extra multiplier applied to the interruption hazard of an instance
    /// launched in `region` at `at` (stacks with crowding). `1.0` is
    /// neutral.
    fn hazard_multiplier(&self, region: Region, at: SimTime) -> f64 {
        let _ = (region, at);
        1.0
    }

    /// If a capacity outage will reclaim every running spot instance in
    /// `region`, the `[from, until)` window of the first such outage
    /// ending after `at`. Instances launched before `until` are reclaimed
    /// inside the window.
    fn forced_reclaim_window(&self, region: Region, at: SimTime) -> Option<(SimTime, SimTime)> {
        let _ = (region, at);
        None
    }
}

/// Configuration of the compute control plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ec2Config {
    /// Fixed boot delay from launch until the workload can start.
    pub boot_delay: SimDuration,
    /// Global crowding scale: concentrating this account's spot instances
    /// in one (region, type) market raises the marginal reclaim hazard by
    /// `1 + scale * region_depth * min(1, others / fleet_scale)`, where
    /// `region_depth` is [`Region::capacity_depth_coefficient`] — the
    /// effect behind the paper's initial-distribution experiment (§5.2.3).
    pub crowding_coefficient: f64,
    /// Fleet size at which crowding saturates.
    pub crowding_fleet_scale: f64,
}

impl Default for Ec2Config {
    fn default() -> Self {
        Ec2Config {
            boot_delay: SimDuration::from_secs(150),
            crowding_coefficient: 1.0,
            crowding_fleet_scale: 40.0,
        }
    }
}

/// Errors from the compute control plane.
#[derive(Debug, Clone, PartialEq)]
pub enum Ec2Error {
    /// The underlying market rejected the query.
    Market(MarketError),
    /// No instance with that id exists.
    UnknownInstance(InstanceId),
    /// The instance is already terminated.
    AlreadyTerminated(InstanceId),
}

impl std::fmt::Display for Ec2Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Ec2Error::Market(e) => write!(f, "market error: {e}"),
            Ec2Error::UnknownInstance(id) => write!(f, "unknown instance {id}"),
            Ec2Error::AlreadyTerminated(id) => write!(f, "instance {id} already terminated"),
        }
    }
}

impl std::error::Error for Ec2Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Ec2Error::Market(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MarketError> for Ec2Error {
    fn from(e: MarketError) -> Self {
        Ec2Error::Market(e)
    }
}

/// The outcome of one spot-request attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum SpotRequestOutcome {
    /// Capacity was granted.
    Fulfilled(LaunchedSpot),
    /// No capacity at this instant; the request stays open and should be
    /// retried (the paper's Controller sweeps open requests every 15 min).
    OpenNoCapacity,
}

/// Details of a fulfilled spot launch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaunchedSpot {
    /// The instance created.
    pub instance: InstanceId,
    /// When boot completes and the workload can start.
    pub ready_at: SimTime,
    /// When the provider will reclaim the instance, if ever within the
    /// market horizon. The two-minute notice fires at
    /// `interruption_at - INTERRUPTION_NOTICE`.
    pub interruption_at: Option<SimTime>,
}

/// The EC2-like control plane.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use cloud_compute::{Ec2, Ec2Config, SpotRequestOutcome, TerminationReason};
/// use cloud_market::{InstanceType, MarketConfig, Region, SpotMarket};
/// use sim_kernel::{SimRng, SimTime};
///
/// let market = Arc::new(SpotMarket::new(MarketConfig::with_seed(3)));
/// let mut ec2 = Ec2::new(market, Ec2Config::default(), SimRng::seed_from_u64(3));
/// let outcome = ec2.request_spot(Region::ApNortheast3, InstanceType::M5Xlarge, SimTime::ZERO)?;
/// if let SpotRequestOutcome::Fulfilled(launch) = outcome {
///     ec2.terminate(launch.instance, SimTime::from_hours(1), TerminationReason::Completed)?;
/// }
/// # Ok::<(), cloud_compute::Ec2Error>(())
/// ```
#[derive(Debug)]
pub struct Ec2 {
    market: Arc<SpotMarket>,
    config: Ec2Config,
    rng: SimRng,
    ledger: BillingLedger,
    instances: HashMap<InstanceId, InstanceRecord>,
    /// Exact count of running spot instances per (region, type), kept in
    /// lockstep with `instances` so `crowding_multiplier` is O(1) instead
    /// of a scan over every record ever created (which made spot requests
    /// superlinear in fleet size).
    running_spot: [[u32; InstanceType::ALL.len()]; Region::ALL.len()],
    next_instance: u64,
    spot_attempts: u64,
    spot_fulfillments: u64,
    injector: Option<Box<dyn FaultInjector>>,
}

impl Ec2 {
    /// Creates a control plane over a market.
    pub fn new(market: Arc<SpotMarket>, config: Ec2Config, rng: SimRng) -> Self {
        Ec2 {
            market,
            config,
            rng: rng.fork("ec2"),
            ledger: BillingLedger::new(),
            instances: HashMap::new(),
            running_spot: [[0; InstanceType::ALL.len()]; Region::ALL.len()],
            next_instance: 1,
            spot_attempts: 0,
            spot_fulfillments: 0,
            injector: None,
        }
    }

    /// Installs a fault injector over the request lifecycle and
    /// interruption engine. Chaos-only: fault-free experiments never call
    /// this, so their RNG streams are untouched.
    pub fn set_fault_injector(&mut self, injector: Box<dyn FaultInjector>) {
        self.injector = Some(injector);
    }

    /// The market this control plane trades against.
    pub fn market(&self) -> &SpotMarket {
        &self.market
    }

    /// The configuration in effect.
    pub fn config(&self) -> Ec2Config {
        self.config
    }

    /// Attempts a spot request at `at`.
    ///
    /// A fulfilled request creates a running instance, samples its future
    /// interruption from the market hazard, and starts billing. An
    /// unfulfilled request stays open (the caller retries later).
    ///
    /// # Errors
    ///
    /// Returns [`Ec2Error::Market`] if the type is not offered in the region
    /// or `at` is beyond the market horizon.
    pub fn request_spot(
        &mut self,
        region: Region,
        instance_type: InstanceType,
        at: SimTime,
    ) -> Result<SpotRequestOutcome, Ec2Error> {
        self.spot_attempts += 1;
        if self
            .injector
            .as_ref()
            .is_some_and(|i| i.spot_blocked(region, at))
        {
            return Ok(SpotRequestOutcome::OpenNoCapacity);
        }
        if !self.market.try_fulfill(region, instance_type, at, &mut self.rng)? {
            return Ok(SpotRequestOutcome::OpenNoCapacity);
        }
        self.spot_fulfillments += 1;
        let id = self.fresh_id();
        let ready_at = at + self.config.boot_delay;
        let hazard = self
            .injector
            .as_ref()
            .map_or(1.0, |i| i.hazard_multiplier(region, at));
        let crowding = self.crowding_multiplier(region, instance_type) * hazard;
        let mut interruption_at = self
            .market
            .sample_interruption_delay_scaled(region, instance_type, at, crowding, &mut self.rng)?
            .map(|d| at + d);
        // A region-wide capacity outage reclaims this instance inside the
        // outage window, whatever the sampled hazard said.
        if let Some((from, until)) = self
            .injector
            .as_ref()
            .and_then(|i| i.forced_reclaim_window(region, at))
        {
            let window_start = from.max(at);
            let span = (until - window_start).as_secs().max(1);
            let jitter = SimDuration::from_secs(self.rng.uniform_u64(span.min(600)));
            let forced = window_start + jitter;
            interruption_at = Some(interruption_at.map_or(forced, |t| t.min(forced)));
        }
        // An interruption during boot is indistinguishable from a failed
        // request at the workload level; keep it anyway (realism), but
        // never earlier than the notice period after launch.
        let interruption_at = interruption_at.map(|t| t.max(at + INTERRUPTION_NOTICE));
        self.instances.insert(
            id,
            InstanceRecord::new(id, region, instance_type, PurchaseModel::Spot, at, ready_at),
        );
        self.running_spot[region as usize][instance_type as usize] += 1;
        Ok(SpotRequestOutcome::Fulfilled(LaunchedSpot {
            instance: id,
            ready_at,
            interruption_at,
        }))
    }

    /// Launches an on-demand instance (always succeeds).
    ///
    /// # Errors
    ///
    /// Returns [`Ec2Error::Market`] if the type is not offered in the region.
    pub fn launch_on_demand(
        &mut self,
        region: Region,
        instance_type: InstanceType,
        at: SimTime,
    ) -> Result<LaunchedSpot, Ec2Error> {
        if !self.market.is_available(region, instance_type) {
            return Err(Ec2Error::Market(MarketError::Unavailable {
                region,
                instance_type,
            }));
        }
        let id = self.fresh_id();
        let ready_at = at + self.config.boot_delay;
        self.instances.insert(
            id,
            InstanceRecord::new(
                id,
                region,
                instance_type,
                PurchaseModel::OnDemand,
                at,
                ready_at,
            ),
        );
        Ok(LaunchedSpot {
            instance: id,
            ready_at,
            interruption_at: None,
        })
    }

    /// Terminates an instance, finalizing its bill (per-second usage at the
    /// market's hourly spot curve, or the flat on-demand rate).
    ///
    /// Returns the instance's total cost.
    ///
    /// # Errors
    ///
    /// Returns [`Ec2Error::UnknownInstance`] or
    /// [`Ec2Error::AlreadyTerminated`] on misuse, and
    /// [`Ec2Error::Market`] if billing needs prices beyond the horizon.
    pub fn terminate(
        &mut self,
        id: InstanceId,
        at: SimTime,
        reason: TerminationReason,
    ) -> Result<Usd, Ec2Error> {
        // Compute the bill before mutating the record so market errors leave
        // the instance untouched.
        let (region, itype, model, launched_at, running) = {
            let rec = self.instances.get(&id).ok_or(Ec2Error::UnknownInstance(id))?;
            (
                rec.region(),
                rec.instance_type(),
                rec.model(),
                rec.launched_at(),
                rec.is_running(),
            )
        };
        if !running {
            return Err(Ec2Error::AlreadyTerminated(id));
        }
        let cost = self.usage_cost(region, itype, model, launched_at, at)?;
        let service = match model {
            PurchaseModel::Spot => ServiceKind::SpotInstance,
            PurchaseModel::OnDemand => ServiceKind::OnDemandInstance,
        };
        self.ledger.charge(at, service, region, cost);
        self.instances
            .get_mut(&id)
            .expect("checked above")
            .terminate(at, reason, cost);
        if model == PurchaseModel::Spot {
            self.running_spot[region as usize][itype as usize] -= 1;
        }
        Ok(cost)
    }

    /// The cost of running `model` capacity from `from` to `to`, integrating
    /// the hourly spot curve for spot instances.
    ///
    /// # Errors
    ///
    /// Returns [`Ec2Error::Market`] for queries beyond the horizon.
    pub fn usage_cost(
        &self,
        region: Region,
        instance_type: InstanceType,
        model: PurchaseModel,
        from: SimTime,
        to: SimTime,
    ) -> Result<Usd, Ec2Error> {
        assert!(to >= from, "usage_cost: negative interval");
        match model {
            PurchaseModel::OnDemand => Ok(self
                .market
                .on_demand_price(region, instance_type)
                .for_duration(to - from)),
            PurchaseModel::Spot => {
                let mut total = Usd::ZERO;
                let mut cursor = from;
                while cursor < to {
                    let hour_end = SimTime::from_secs((cursor.as_secs() / 3600 + 1) * 3600);
                    let segment_end = hour_end.min(to);
                    let price = self.market.spot_price(region, instance_type, cursor)?;
                    total += price.for_duration(segment_end - cursor);
                    cursor = segment_end;
                }
                Ok(total)
            }
        }
    }

    /// Looks up an instance record.
    pub fn instance(&self, id: InstanceId) -> Option<&InstanceRecord> {
        self.instances.get(&id)
    }

    /// Number of currently running instances.
    pub fn running_count(&self) -> usize {
        self.instances.values().filter(|r| r.is_running()).count()
    }

    /// All instance records, in id order.
    pub fn instances(&self) -> Vec<&InstanceRecord> {
        let mut v: Vec<&InstanceRecord> = self.instances.values().collect();
        v.sort_by_key(|r| r.id());
        v
    }

    /// The billing ledger.
    pub fn ledger(&self) -> &BillingLedger {
        &self.ledger
    }

    /// Mutable access to the ledger, for charging non-compute services
    /// (data transfer, serverless) against the same books.
    pub fn ledger_mut(&mut self) -> &mut BillingLedger {
        &mut self.ledger
    }

    /// Total spot-request attempts made so far.
    pub fn spot_attempts(&self) -> u64 {
        self.spot_attempts
    }

    /// Total spot requests fulfilled so far.
    pub fn spot_fulfillments(&self) -> u64 {
        self.spot_fulfillments
    }

    /// The crowding hazard multiplier for a new instance in this market,
    /// based on how many of this account's spot instances already run there.
    pub fn crowding_multiplier(&self, region: Region, instance_type: InstanceType) -> f64 {
        let others = f64::from(self.running_spot[region as usize][instance_type as usize]);
        1.0 + self.config.crowding_coefficient
            * region.capacity_depth_coefficient()
            * (others / self.config.crowding_fleet_scale).min(1.0)
    }

    fn fresh_id(&mut self) -> InstanceId {
        let id = InstanceId::new(self.next_instance);
        self.next_instance += 1;
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloud_market::MarketConfig;

    fn ec2(seed: u64) -> Ec2 {
        let market = Arc::new(SpotMarket::new(MarketConfig::with_seed(seed)));
        Ec2::new(market, Ec2Config::default(), SimRng::seed_from_u64(seed))
    }

    fn fulfill(ec2: &mut Ec2, region: Region, at: SimTime) -> LaunchedSpot {
        let mut t = at;
        loop {
            match ec2.request_spot(region, InstanceType::M5Xlarge, t).unwrap() {
                SpotRequestOutcome::Fulfilled(launch) => return launch,
                SpotRequestOutcome::OpenNoCapacity => t += SimDuration::from_mins(15),
            }
        }
    }

    #[test]
    fn spot_launch_boots_and_bills() {
        let mut e = ec2(1);
        let launch = fulfill(&mut e, Region::ApNortheast3, SimTime::ZERO);
        assert_eq!(e.running_count(), 1);
        let rec = e.instance(launch.instance).unwrap();
        assert_eq!(rec.ready_at() - rec.launched_at(), e.config().boot_delay);
        let end = rec.launched_at() + SimDuration::from_hours(10);
        let cost = e
            .terminate(launch.instance, end, TerminationReason::Completed)
            .unwrap();
        assert!(cost > Usd::ZERO);
        assert_eq!(e.ledger().total_for_service(ServiceKind::SpotInstance), cost);
        assert_eq!(e.running_count(), 0);
    }

    #[test]
    fn spot_cost_is_below_on_demand_cost() {
        let mut e = ec2(2);
        let launch = fulfill(&mut e, Region::CaCentral1, SimTime::ZERO);
        let start = e.instance(launch.instance).unwrap().launched_at();
        let end = start + SimDuration::from_hours(10);
        let spot_cost = e
            .usage_cost(
                Region::CaCentral1,
                InstanceType::M5Xlarge,
                PurchaseModel::Spot,
                start,
                end,
            )
            .unwrap();
        let od_cost = e
            .usage_cost(
                Region::CaCentral1,
                InstanceType::M5Xlarge,
                PurchaseModel::OnDemand,
                start,
                end,
            )
            .unwrap();
        assert!(spot_cost < od_cost, "spot {spot_cost} vs od {od_cost}");
    }

    #[test]
    fn on_demand_never_interrupts() {
        let mut e = ec2(3);
        let launch = e
            .launch_on_demand(Region::UsEast1, InstanceType::M5Xlarge, SimTime::ZERO)
            .unwrap();
        assert_eq!(launch.interruption_at, None);
        let cost = e
            .terminate(
                launch.instance,
                SimTime::from_hours(10) + e.config().boot_delay,
                TerminationReason::Completed,
            )
            .unwrap();
        // 10h + boot (150 s) at $0.192/h.
        let expected = 0.192 * (10.0 + 150.0 / 3600.0);
        assert!((cost.amount() - expected).abs() < 1e-9, "cost {cost}");
    }

    #[test]
    fn interruption_respects_notice_floor() {
        let mut e = ec2(4);
        for day in 0..5 {
            let launch = fulfill(&mut e, Region::CaCentral1, SimTime::from_days(day));
            if let Some(at) = launch.interruption_at {
                let rec = e.instance(launch.instance).unwrap();
                assert!(at >= rec.launched_at() + INTERRUPTION_NOTICE);
            }
        }
    }

    #[test]
    fn unstable_regions_interrupt_sooner() {
        let mut e = ec2(5);
        let ten_hours = SimDuration::from_hours(10);
        let mut count = |region: Region| {
            let mut interrupted = 0;
            for i in 0..120 {
                let launch = fulfill(&mut e, region, SimTime::from_hours(i));
                let start = e.instance(launch.instance).unwrap().launched_at();
                if launch
                    .interruption_at
                    .is_some_and(|at| at <= start + ten_hours)
                {
                    interrupted += 1;
                }
                let _ = e.terminate(launch.instance, start + SimDuration::from_secs(300), TerminationReason::Manual);
            }
            interrupted
        };
        let unstable = count(Region::CaCentral1);
        let stable = count(Region::ApNortheast3);
        assert!(
            unstable > 2 * stable.max(1),
            "unstable {unstable} vs stable {stable}"
        );
    }

    #[test]
    fn double_terminate_errors() {
        let mut e = ec2(6);
        let launch = e
            .launch_on_demand(Region::UsEast1, InstanceType::M5Xlarge, SimTime::ZERO)
            .unwrap();
        e.terminate(launch.instance, SimTime::from_hours(1), TerminationReason::Completed)
            .unwrap();
        let err = e
            .terminate(launch.instance, SimTime::from_hours(2), TerminationReason::Completed)
            .unwrap_err();
        assert!(matches!(err, Ec2Error::AlreadyTerminated(_)));
        let err = e
            .terminate(InstanceId::new(999), SimTime::from_hours(2), TerminationReason::Completed)
            .unwrap_err();
        assert!(matches!(err, Ec2Error::UnknownInstance(_)));
    }

    #[test]
    fn unavailable_market_rejected() {
        let mut e = ec2(7);
        let err = e
            .launch_on_demand(Region::ApNortheast3, InstanceType::P32xlarge, SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, Ec2Error::Market(MarketError::Unavailable { .. })));
        assert!(err.to_string().contains("not offered"));
    }

    #[test]
    fn placement_affects_fulfillment_rate() {
        let mut e = ec2(8);
        let mut open = 0;
        for i in 0..200 {
            if matches!(
                e.request_spot(Region::UsEast1, InstanceType::M5Xlarge, SimTime::from_hours(i))
                    .unwrap(),
                SpotRequestOutcome::OpenNoCapacity
            ) {
                open += 1;
            }
        }
        // Placement mean 3 → fulfill ≈ 0.475, so roughly half stay open.
        assert!(open > 60 && open < 150, "open {open}");
        assert_eq!(e.spot_attempts(), 200);
        assert!(e.spot_fulfillments() > 50);
    }

    #[test]
    fn crowding_counter_matches_record_scan() {
        // The O(1) running-spot counters must agree with the full record
        // scan they replaced, through launches, interruptions, and
        // completed terminations across regions.
        let mut e = ec2(11);
        let mut live = Vec::new();
        for i in 0..40u64 {
            let region = Region::ALL[(i % 4) as usize];
            let launch = fulfill(&mut e, region, SimTime::from_hours(i));
            live.push(launch.instance);
            if i % 3 == 0 {
                let victim = live.remove(0);
                let rec = e.instance(victim).unwrap();
                let (at, reason) = if i % 2 == 0 {
                    (rec.ready_at() + SimDuration::from_hours(1), TerminationReason::Completed)
                } else {
                    (rec.ready_at() + SimDuration::from_mins(7), TerminationReason::Interrupted)
                };
                e.terminate(victim, at, reason).unwrap();
            }
            for region in Region::ALL {
                for itype in InstanceType::ALL {
                    let scan = e
                        .instances
                        .values()
                        .filter(|r| {
                            r.is_running()
                                && r.region() == region
                                && r.instance_type() == itype
                                && r.model() == PurchaseModel::Spot
                        })
                        .count() as u32;
                    assert_eq!(
                        e.running_spot[region as usize][itype as usize],
                        scan,
                        "{region:?}/{itype:?} after step {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn usage_cost_integrates_hour_boundaries() {
        let e = ec2(9);
        // Split a 2-hour run at an odd offset; summing the parts must equal
        // the whole (billing additivity).
        let start = SimTime::from_secs(1800);
        let mid = SimTime::from_secs(5400);
        let end = SimTime::from_secs(start.as_secs() + 7200);
        let whole = e
            .usage_cost(Region::EuWest1, InstanceType::M5Xlarge, PurchaseModel::Spot, start, end)
            .unwrap();
        let a = e
            .usage_cost(Region::EuWest1, InstanceType::M5Xlarge, PurchaseModel::Spot, start, mid)
            .unwrap();
        let b = e
            .usage_cost(Region::EuWest1, InstanceType::M5Xlarge, PurchaseModel::Spot, mid, end)
            .unwrap();
        assert!(((a + b).amount() - whole.amount()).abs() < 1e-9);
    }
}
