//! Amazon-Machine-Image propagation (paper §4, "Galaxy and Tool
//! Integration"): a customized AMI (Galaxy + tools + Planemo + API key) is
//! built once and copied to every region SpotVerse may launch in, paying
//! inter-region transfer for each copy.

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use serde::{Deserialize, Serialize};
use sim_kernel::SimTime;

use cloud_market::Region;
#[cfg(test)]
use cloud_market::Usd;

use crate::billing::{BillingLedger, ServiceKind};
use crate::transfer;

/// Identifier of a machine image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AmiId(u64);

impl fmt::Display for AmiId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ami-{:08x}", self.0)
    }
}

/// A registered machine image.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ami {
    id: AmiId,
    name: String,
    size_gib: f64,
    home_region: Region,
    regions: BTreeSet<Region>,
}

impl Ami {
    /// The image id.
    pub fn id(&self) -> AmiId {
        self.id
    }

    /// Display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Image size in GiB (drives copy cost and latency).
    pub fn size_gib(&self) -> f64 {
        self.size_gib
    }

    /// Region the image was built in.
    pub fn home_region(&self) -> Region {
        self.home_region
    }

    /// Regions the image is currently available in.
    pub fn regions(&self) -> impl Iterator<Item = Region> + '_ {
        self.regions.iter().copied()
    }

    /// Whether the image can be launched in `region`.
    pub fn is_available_in(&self, region: Region) -> bool {
        self.regions.contains(&region)
    }
}

/// Errors from the AMI catalog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AmiError {
    /// No image with that id.
    UnknownAmi(AmiId),
}

impl fmt::Display for AmiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AmiError::UnknownAmi(id) => write!(f, "unknown AMI {id}"),
        }
    }
}

impl std::error::Error for AmiError {}

/// The per-account image catalog.
///
/// # Examples
///
/// ```
/// use cloud_compute::{AmiCatalog, BillingLedger};
/// use cloud_market::Region;
/// use sim_kernel::SimTime;
///
/// let mut catalog = AmiCatalog::new();
/// let mut ledger = BillingLedger::new();
/// let ami = catalog.register("galaxy-spotverse", 12.0, Region::CaCentral1);
/// let done = catalog
///     .copy_to(ami, Region::EuNorth1, SimTime::ZERO, &mut ledger)
///     .unwrap();
/// assert!(done > SimTime::ZERO);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AmiCatalog {
    images: HashMap<AmiId, Ami>,
    next_id: u64,
}

impl AmiCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        AmiCatalog::default()
    }

    /// Registers an image built in `home_region`.
    pub fn register(&mut self, name: impl Into<String>, size_gib: f64, home_region: Region) -> AmiId {
        assert!(size_gib > 0.0, "AMI size must be positive");
        self.next_id += 1;
        let id = AmiId(self.next_id);
        let mut regions = BTreeSet::new();
        regions.insert(home_region);
        self.images.insert(
            id,
            Ami {
                id,
                name: name.into(),
                size_gib,
                home_region,
                regions,
            },
        );
        id
    }

    /// Looks up an image.
    pub fn get(&self, id: AmiId) -> Option<&Ami> {
        self.images.get(&id)
    }

    /// Copies an image to `region`, charging transfer cost to `ledger` and
    /// returning when the copy completes. Copying to a region that already
    /// has the image is free and instantaneous.
    ///
    /// # Errors
    ///
    /// Returns [`AmiError::UnknownAmi`] for an unregistered id.
    pub fn copy_to(
        &mut self,
        id: AmiId,
        region: Region,
        at: SimTime,
        ledger: &mut BillingLedger,
    ) -> Result<SimTime, AmiError> {
        let ami = self.images.get_mut(&id).ok_or(AmiError::UnknownAmi(id))?;
        if ami.regions.contains(&region) {
            return Ok(at);
        }
        let from = ami.home_region;
        let cost = transfer::transfer_cost(from, region, ami.size_gib);
        ledger.charge(at, ServiceKind::DataTransfer, region, cost);
        ami.regions.insert(region);
        Ok(at + transfer::transfer_time(from, region, ami.size_gib))
    }

    /// Copies an image to every region in `regions`, returning the latest
    /// completion time.
    ///
    /// # Errors
    ///
    /// Returns [`AmiError::UnknownAmi`] for an unregistered id.
    pub fn propagate(
        &mut self,
        id: AmiId,
        regions: impl IntoIterator<Item = Region>,
        at: SimTime,
        ledger: &mut BillingLedger,
    ) -> Result<SimTime, AmiError> {
        let mut done = at;
        for region in regions {
            done = done.max(self.copy_to(id, region, at, ledger)?);
        }
        Ok(done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_copy() {
        let mut catalog = AmiCatalog::new();
        let mut ledger = BillingLedger::new();
        let ami = catalog.register("img", 10.0, Region::UsEast1);
        assert!(catalog.get(ami).unwrap().is_available_in(Region::UsEast1));
        assert!(!catalog.get(ami).unwrap().is_available_in(Region::EuWest1));
        let done = catalog
            .copy_to(ami, Region::EuWest1, SimTime::ZERO, &mut ledger)
            .unwrap();
        assert!(done > SimTime::ZERO);
        assert!(catalog.get(ami).unwrap().is_available_in(Region::EuWest1));
        assert!(ledger.total_for_service(ServiceKind::DataTransfer) > Usd::ZERO);
    }

    #[test]
    fn recopy_is_free() {
        let mut catalog = AmiCatalog::new();
        let mut ledger = BillingLedger::new();
        let ami = catalog.register("img", 10.0, Region::UsEast1);
        catalog
            .copy_to(ami, Region::EuWest1, SimTime::ZERO, &mut ledger)
            .unwrap();
        let before = ledger.total();
        let done = catalog
            .copy_to(ami, Region::EuWest1, SimTime::from_hours(1), &mut ledger)
            .unwrap();
        assert_eq!(done, SimTime::from_hours(1));
        assert_eq!(ledger.total(), before);
    }

    #[test]
    fn propagate_reaches_all_regions() {
        let mut catalog = AmiCatalog::new();
        let mut ledger = BillingLedger::new();
        let ami = catalog.register("img", 8.0, Region::CaCentral1);
        catalog
            .propagate(ami, Region::ALL, SimTime::ZERO, &mut ledger)
            .unwrap();
        for r in Region::ALL {
            assert!(catalog.get(ami).unwrap().is_available_in(r));
        }
        assert_eq!(catalog.get(ami).unwrap().regions().count(), 12);
    }

    #[test]
    fn unknown_ami_errors() {
        let mut catalog = AmiCatalog::new();
        let mut ledger = BillingLedger::new();
        let err = catalog
            .copy_to(AmiId(77), Region::UsEast1, SimTime::ZERO, &mut ledger)
            .unwrap_err();
        assert!(err.to_string().contains("unknown AMI"));
    }

    #[test]
    fn cross_geography_copies_cost_more() {
        let mut catalog = AmiCatalog::new();
        let mut ledger_near = BillingLedger::new();
        let mut ledger_far = BillingLedger::new();
        let near = catalog.register("img", 10.0, Region::UsEast1);
        catalog
            .copy_to(near, Region::UsWest2, SimTime::ZERO, &mut ledger_near)
            .unwrap();
        let far = catalog.register("img2", 10.0, Region::UsEast1);
        catalog
            .copy_to(far, Region::ApSoutheast1, SimTime::ZERO, &mut ledger_far)
            .unwrap();
        assert!(ledger_far.total() > ledger_near.total());
    }
}
