//! Inter-region data-transfer pricing and latency.
//!
//! The paper's cost model (§5.1.2) explicitly accounts for cross-region S3
//! uploads/downloads incurred by checkpoint workloads under the multi-region
//! strategy; these helpers give one shared tariff to the AMI catalog, the
//! object store, and the checkpoint path.

use cloud_market::{Region, Usd};
use sim_kernel::SimDuration;

/// Per-GiB transfer price between two regions.
///
/// Same-region transfers are free; same-geography inter-region transfers
/// cost $0.02/GiB; cross-geography transfers cost $0.09/GiB.
pub fn price_per_gib(from: Region, to: Region) -> Usd {
    if from == to {
        Usd::ZERO
    } else if from.geography() == to.geography() {
        Usd::new(0.02)
    } else {
        Usd::new(0.09)
    }
}

/// The cost of moving `gib` gibibytes from `from` to `to`.
///
/// # Panics
///
/// Panics if `gib` is negative or not finite.
pub fn transfer_cost(from: Region, to: Region, gib: f64) -> Usd {
    assert!(gib.is_finite() && gib >= 0.0, "transfer_cost: bad size {gib}");
    price_per_gib(from, to) * gib
}

/// Effective inter-region throughput in GiB per second.
fn throughput_gib_per_sec(from: Region, to: Region) -> f64 {
    if from == to {
        0.5
    } else if from.geography() == to.geography() {
        0.125
    } else {
        0.05
    }
}

/// The wall-clock time to move `gib` gibibytes from `from` to `to`.
///
/// # Panics
///
/// Panics if `gib` is negative or not finite.
pub fn transfer_time(from: Region, to: Region, gib: f64) -> SimDuration {
    assert!(gib.is_finite() && gib >= 0.0, "transfer_time: bad size {gib}");
    let secs = gib / throughput_gib_per_sec(from, to);
    SimDuration::from_secs(secs.ceil() as u64)
}

/// Whether a transfer of `gib` from `from` to `to` fits inside the
/// two-minute spot interruption notice — the feasibility constraint the
/// paper highlights for checkpoint uploads (§5.1.2 sized the FastQC dataset
/// at 1 GB for exactly this reason).
pub fn fits_in_interruption_notice(from: Region, to: Region, gib: f64) -> bool {
    transfer_time(from, to, gib) <= SimDuration::from_secs(120)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_region_is_free_and_fast() {
        assert_eq!(price_per_gib(Region::UsEast1, Region::UsEast1), Usd::ZERO);
        assert_eq!(
            transfer_cost(Region::UsEast1, Region::UsEast1, 100.0),
            Usd::ZERO
        );
        assert!(transfer_time(Region::UsEast1, Region::UsEast1, 1.0).as_secs() <= 2);
    }

    #[test]
    fn cross_geography_is_most_expensive() {
        let same_geo = price_per_gib(Region::UsEast1, Region::UsWest2);
        let cross_geo = price_per_gib(Region::UsEast1, Region::ApNortheast3);
        assert!(cross_geo > same_geo);
        assert!(same_geo > Usd::ZERO);
    }

    #[test]
    fn cost_scales_linearly_with_size() {
        let one = transfer_cost(Region::UsEast1, Region::EuWest1, 1.0);
        let ten = transfer_cost(Region::UsEast1, Region::EuWest1, 10.0);
        assert!((ten.amount() - 10.0 * one.amount()).abs() < 1e-12);
    }

    #[test]
    fn checkpoint_gigabyte_fits_notice_window() {
        // The paper's 1 GB checkpoint upload must fit the 2-minute notice
        // even cross-geography.
        assert!(fits_in_interruption_notice(
            Region::CaCentral1,
            Region::ApNortheast3,
            1.0
        ));
        // A 100 GiB dataset does not (the §7 limitation).
        assert!(!fits_in_interruption_notice(
            Region::CaCentral1,
            Region::ApNortheast3,
            100.0
        ));
    }

    #[test]
    fn transfer_time_monotone_in_distance() {
        let near = transfer_time(Region::UsEast1, Region::UsWest2, 10.0);
        let far = transfer_time(Region::UsEast1, Region::ApSoutheast1, 10.0);
        assert!(far > near);
    }
}
