//! # spotverse-cli
//!
//! The command-line interface to the SpotVerse simulator — the "intuitive
//! user interface" direction of the paper's §7. The main subcommands:
//!
//! * `simulate`   — run one strategy over a workload fleet,
//! * `compare`    — run every strategy on the identical market,
//! * `chaos`      — strategy × fault-scenario degradation matrix,
//! * `tournament` — strategies × market regimes leaderboard with
//!   per-regime win matrices,
//! * `advisor`    — print Algorithm 1's per-region score inputs,
//! * `traces`     — export a SpotLake-style market archive as CSV.
//!
//! ```text
//! cargo run -p spotverse-cli -- compare --instances 20 --workload genome
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod args;
mod commands;

pub use args::{ArgError, ParsedArgs};
pub use commands::{
    advisor, chaos_matrix, compare, run, schema, simulate, traces, usage, CliError,
};
