//! A small, dependency-free command-line argument parser.
//!
//! Supports `--flag value` and `--flag=value` forms, collects positional
//! arguments, and rejects unknown flags against a declared schema so typos
//! fail loudly.

use std::collections::BTreeMap;
use std::fmt;

/// Argument-parsing errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// A flag not in the command's schema.
    UnknownFlag(String),
    /// A flag declared to take a value was last on the line.
    MissingValue(String),
    /// A value failed to parse as the expected type.
    InvalidValue {
        /// The flag.
        flag: String,
        /// The raw value.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
    /// The same flag appeared twice.
    DuplicateFlag(String),
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::UnknownFlag(flag) => write!(f, "unknown flag `{flag}`"),
            ArgError::MissingValue(flag) => write!(f, "flag `{flag}` expects a value"),
            ArgError::InvalidValue {
                flag,
                value,
                expected,
            } => write!(f, "flag `{flag}`: `{value}` is not a valid {expected}"),
            ArgError::DuplicateFlag(flag) => write!(f, "flag `{flag}` given twice"),
        }
    }
}

impl std::error::Error for ArgError {}

/// Parsed arguments: flag → value, plus positionals.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParsedArgs {
    flags: BTreeMap<String, String>,
    positionals: Vec<String>,
}

impl ParsedArgs {
    /// Parses `args` against a schema of permitted flag names (without the
    /// leading `--`).
    ///
    /// # Errors
    ///
    /// Returns an [`ArgError`] on unknown flags, duplicates, or missing
    /// values.
    pub fn parse<I, S>(args: I, schema: &[&str]) -> Result<Self, ArgError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut flags = BTreeMap::new();
        let mut positionals = Vec::new();
        let mut iter = args.into_iter().map(Into::into).peekable();
        while let Some(arg) = iter.next() {
            if let Some(stripped) = arg.strip_prefix("--") {
                let (name, inline_value) = match stripped.split_once('=') {
                    Some((n, v)) => (n.to_owned(), Some(v.to_owned())),
                    None => (stripped.to_owned(), None),
                };
                if !schema.contains(&name.as_str()) {
                    return Err(ArgError::UnknownFlag(format!("--{name}")));
                }
                let value = match inline_value {
                    Some(v) => v,
                    None => iter
                        .next()
                        .ok_or_else(|| ArgError::MissingValue(format!("--{name}")))?,
                };
                if flags.insert(name.clone(), value).is_some() {
                    return Err(ArgError::DuplicateFlag(format!("--{name}")));
                }
            } else {
                positionals.push(arg);
            }
        }
        Ok(ParsedArgs { flags, positionals })
    }

    /// Positional arguments, in order.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// A string flag, or the default when absent.
    pub fn str_or<'a>(&'a self, flag: &str, default: &'a str) -> &'a str {
        self.flags.get(flag).map(String::as_str).unwrap_or(default)
    }

    /// An optional string flag.
    pub fn opt_str(&self, flag: &str) -> Option<&str> {
        self.flags.get(flag).map(String::as_str)
    }

    /// A `u64` flag, or the default when absent.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::InvalidValue`] when present but unparsable.
    pub fn u64_or(&self, flag: &str, default: u64) -> Result<u64, ArgError> {
        match self.flags.get(flag) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ArgError::InvalidValue {
                flag: format!("--{flag}"),
                value: raw.clone(),
                expected: "integer",
            }),
        }
    }

    /// A `u8` flag, or the default when absent.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::InvalidValue`] when present but unparsable.
    pub fn u8_or(&self, flag: &str, default: u8) -> Result<u8, ArgError> {
        match self.flags.get(flag) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ArgError::InvalidValue {
                flag: format!("--{flag}"),
                value: raw.clone(),
                expected: "small integer",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCHEMA: &[&str] = &["seed", "instances", "strategy"];

    #[test]
    fn parses_space_and_equals_forms() {
        let args = ParsedArgs::parse(
            ["--seed", "42", "--strategy=spotverse", "extra"],
            SCHEMA,
        )
        .unwrap();
        assert_eq!(args.u64_or("seed", 0).unwrap(), 42);
        assert_eq!(args.str_or("strategy", "x"), "spotverse");
        assert_eq!(args.positionals(), ["extra"]);
    }

    #[test]
    fn defaults_apply_when_absent() {
        let args = ParsedArgs::parse(Vec::<String>::new(), SCHEMA).unwrap();
        assert_eq!(args.u64_or("seed", 7).unwrap(), 7);
        assert_eq!(args.str_or("strategy", "spotverse"), "spotverse");
        assert_eq!(args.opt_str("instances"), None);
    }

    #[test]
    fn unknown_flag_rejected() {
        let err = ParsedArgs::parse(["--sede", "42"], SCHEMA).unwrap_err();
        assert_eq!(err, ArgError::UnknownFlag("--sede".into()));
        assert!(err.to_string().contains("--sede"));
    }

    #[test]
    fn missing_and_invalid_values() {
        let err = ParsedArgs::parse(["--seed"], SCHEMA).unwrap_err();
        assert_eq!(err, ArgError::MissingValue("--seed".into()));
        let args = ParsedArgs::parse(["--seed", "abc"], SCHEMA).unwrap();
        assert!(matches!(
            args.u64_or("seed", 0),
            Err(ArgError::InvalidValue { .. })
        ));
    }

    #[test]
    fn duplicate_flag_rejected() {
        let err = ParsedArgs::parse(["--seed", "1", "--seed=2"], SCHEMA).unwrap_err();
        assert_eq!(err, ArgError::DuplicateFlag("--seed".into()));
    }

    #[test]
    fn u8_parsing() {
        let args = ParsedArgs::parse(["--seed", "6"], SCHEMA).unwrap();
        assert_eq!(args.u8_or("seed", 0).unwrap(), 6);
        let bad = ParsedArgs::parse(["--seed", "300"], SCHEMA).unwrap();
        assert!(bad.u8_or("seed", 0).is_err());
    }
}
