//! CLI subcommands: each builds its inputs from parsed flags, runs against
//! the simulator, and renders plain-text output (returned as a `String` so
//! commands are unit-testable without capturing stdout).

use std::fmt;
use std::sync::Arc;

use bio_workloads::{paper_fleet, WorkloadKind};
use chaos::ChaosScenario;
use cloud_market::history::{archive_to_csv, collect_archive};
use cloud_market::{InstanceType, MarketRegime, Region, SpotMarket};
use sim_kernel::{SimDuration, SimRng, SimTime};
use spotverse::{
    merged_fleet_trace_jsonl, merged_trace_jsonl, render_tournament, resolve_jobs,
    run_experiment_on, run_fleet_matrix, run_matrix, run_matrix_orchestrated, run_tournament,
    summary_line, trace_to_jsonl, BidPriceAwareStrategy, CellOutcome, CheckpointAdaptiveStrategy,
    ExperimentConfig, ExperimentReport, FleetConfig, FleetReport, FleetSweepCell, LoadProfile,
    MarketCache, Monitor, NaiveMultiRegionStrategy, OnDemandStrategy, OrchestratorConfig,
    SingleRegionStrategy, SkyPilotStrategy, SpotVerseConfig, render_analysis,
    render_analysis_json, ReplayCursor, SpotVerseStrategy, Strategy, SweepCell, TimeWindow,
    TournamentChaos, TournamentConfig, TraceConfig, WorkloadPhase,
};

use crate::args::{ArgError, ParsedArgs};
use galaxy_flow::to_ga_json;

/// CLI errors.
#[derive(Debug)]
pub enum CliError {
    /// Bad arguments.
    Args(ArgError),
    /// A flag value outside its domain (e.g. unknown strategy name).
    BadInput(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::BadInput(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Args(e)
    }
}

/// Top-level usage text.
pub fn usage() -> String {
    "\
spotverse — multi-region spot-instance experiment simulator

USAGE:
    spotverse <command> [flags]

COMMANDS:
    simulate    run one strategy over a workload fleet and print its report
    fleet       multiplex N staggered workloads over one shared control
                plane, with optional per-region concurrency caps
    compare     run every strategy on the same market and print a table
    sweep       run a strategies × seeds cell matrix, in-process or
                re-hosted on the distributed orchestrator
    chaos       fault-injection matrix: strategies × scenarios, with the
                degradation vs the fault-free run
    tournament  strategies × market regimes leaderboard: every strategy
                runs the same fleet under every regime (optionally with
                regime-matched chaos) and is ranked per regime on
                completions, then cost, then makespan
    advisor     show per-region scores (Algorithm 1's inputs) at an instant
    trace       run one strategy with the decision recorder on and print
                the canonical JSONL trace (optionally under a scenario)
    analyse     replay trace JSONL files (single runs, merged sweeps,
                fleet traces) into derived analytics views: cost ledgers,
                breaker timelines, occupancy, distributions, win matrices
    traces      export a SpotLake-style market archive as CSV
    workflow    export one of the paper's workflows as a Galaxy .ga document
    help        show this message

COMMON FLAGS:
    --seed <u64>             experiment seed            (default 2024)
    --instances <n>          fleet size                 (default 20)
    --instance-type <name>   e.g. m5.xlarge             (default m5.xlarge)
    --workload <kind>        genome | ngs | qiime       (default genome)
    --start-day <d>          day offset into the market (default 1)

SIMULATE / TRACE FLAGS:
    --strategy <name>        spotverse | single-region | on-demand |
                             skypilot | naive-multi | bid-price |
                             checkpoint-adaptive        (default spotverse)
    --threshold <t>          Algorithm 1 threshold      (default 6)
    --region <name>          region for single-region   (default ca-central-1)
    --regime <name>          market regime for the run: baseline |
                             capacity_crunch | correlated_shock |
                             regime_switching (default baseline; also
                             accepted by fleet, compare, chaos, sweep)
    --scenario <name>        (trace only) fault scenario overlaying the run;
                             omit for a fault-free trace

FLEET FLAGS:
    --loadgen <profile>      generate the fleet from an arrival-process
                             profile: poisson | diurnal | burst; replaces
                             --instances/--spacing-mins/--workload
    --workloads <n>          generated fleet size           (default 100)
    --rate <r>               mean arrivals per hour         (default 12)
    --spacing-mins <m>       arrival gap between workloads  (default 60)
    --capacity <k>           per-region cap on concurrently running
                             instances; omit for unbounded
    --deadline-days <d>      per-workload runtime budget    (default 30)
    --strategy <name>        as simulate, or `all` to sweep every
                             strategy over the same fleet   (default spotverse)
    --output <form>          table | trace (merged JSONL)   (default table)
    --jobs <n>               as compare; cells are strategies

COMPARE / CHAOS FLAGS:
    --jobs <n>               sweep worker threads; falls back to the
                             SPOTVERSE_JOBS env var, then
                             min(cells, CPU cores). Output is identical
                             for any value.

SWEEP FLAGS:
    --strategy <name>        as simulate, or `all`          (default spotverse)
    --seeds <n>              cells per strategy, at seeds
                             seed..seed+n                   (default 1)
    --orchestrated <bool>    true re-hosts the sweep on the distributed
                             shard orchestrator (leases, re-drives,
                             dead-letters)                  (default false)
    --scenario <name>        chaos scenario faulting the *orchestration*
                             services (requires --orchestrated true);
                             e.g. sweep_shard_chaos
    --shard-size <n>         cells per dispatched shard     (default 1)
    --max-attempts <n>       attempts before dead-letter    (default 4)
    --output <form>          table | trace (merged JSONL)   (default table)
    --jobs <n>               as compare (in-process mode only)

TOURNAMENT FLAGS:
    --regime <name>          baseline | capacity_crunch | correlated_shock |
                             regime_switching | all     (default all)
    --strategy <name>        as simulate, or `all` for the full field
                             including bid-price and checkpoint-adaptive
                                                        (default all)
    --seeds <n>              repetition seeds per (strategy, regime)
                             pairing, at seed..seed+n   (default 1)
    --chaos <mode>           off | regime (each non-baseline regime runs
                             its matched scenario) | a fixed scenario
                             name applied to every cell (default off)
    --spacing-mins <m>       arrival gap between workloads  (default 60)
    --deadline-days <d>      per-workload runtime budget    (default 30)
    --jobs <n>               as compare; cells are
                             strategies × regimes × seeds

CHAOS FLAGS:
    --scenario <name>        region_blackout | notice_loss | throttle_storm |
                             correlated_crunch | flaky_checkpoints |
                             telemetry_blackout | region_flap |
                             sweep_shard_chaos | all
                                                        (default all)
    --strategy <name>        as simulate, or `all`      (default all)

ANALYSE (positional args are trace JSONL files):
    --from <secs>            fold only records at sim-time >= secs
    --until <secs>           fold only records at sim-time <  secs
    --output <form>          table | json               (default table)

ADVISOR / TRACES FLAGS:
    --day <d>                advisor snapshot day       (default 1)
    --days <n>               trace length in days       (default 14)

WORKFLOW FLAGS:
    --workload <kind>        genome | ngs | qiime       (default genome)
    --duration-hours <h>     total workflow duration    (default 10)
"
    .to_owned()
}

fn parse_workload(name: &str) -> Result<WorkloadKind, CliError> {
    match name {
        "genome" => Ok(WorkloadKind::GenomeReconstruction),
        "ngs" => Ok(WorkloadKind::NgsPreprocessing),
        "qiime" => Ok(WorkloadKind::StandardGeneral),
        other => Err(CliError::BadInput(format!(
            "unknown workload `{other}` (expected genome | ngs | qiime)"
        ))),
    }
}

fn parse_instance_type(name: &str) -> Result<InstanceType, CliError> {
    name.parse()
        .map_err(|e| CliError::BadInput(format!("{e}")))
}

fn parse_region(name: &str) -> Result<Region, CliError> {
    name.parse()
        .map_err(|e| CliError::BadInput(format!("{e}")))
}

/// The `--jobs` flag: absent means "resolve from the environment".
fn parse_jobs(args: &ParsedArgs) -> Result<Option<usize>, CliError> {
    match args.opt_str("jobs") {
        None => Ok(None),
        Some(raw) => raw
            .parse::<usize>()
            .ok()
            .filter(|&n| n > 0)
            .map(Some)
            .ok_or_else(|| {
                CliError::BadInput(format!("--jobs: `{raw}` is not a positive integer"))
            }),
    }
}

/// Shared experiment scaffolding from common flags.
struct CommonConfig {
    config: ExperimentConfig,
    instance_type: InstanceType,
}

/// `--regime` on a single-experiment command: one named regime, default
/// `baseline` (`tournament` interprets the flag itself to allow `all`).
fn parse_regime(args: &ParsedArgs) -> Result<MarketRegime, CliError> {
    args.str_or("regime", "baseline")
        .parse()
        .map_err(CliError::BadInput)
}

fn common_config(args: &ParsedArgs) -> Result<CommonConfig, CliError> {
    let seed = args.u64_or("seed", 2024)?;
    let instances = args.u64_or("instances", 20)? as usize;
    if instances == 0 {
        return Err(CliError::BadInput("--instances must be positive".into()));
    }
    let instance_type = parse_instance_type(args.str_or("instance-type", "m5.xlarge"))?;
    let kind = parse_workload(args.str_or("workload", "genome"))?;
    let start_day = args.u64_or("start-day", 1)?;
    let rng = SimRng::seed_from_u64(seed);
    let mut config = ExperimentConfig::new(seed, instance_type, paper_fleet(kind, instances, &rng));
    config.start = SimTime::from_days(start_day);
    config.market = config.market.with_regime(parse_regime(args)?);
    Ok(CommonConfig {
        config,
        instance_type,
    })
}

fn build_strategy(
    name: &str,
    instance_type: InstanceType,
    threshold: u8,
    region: Region,
) -> Result<Box<dyn Strategy>, CliError> {
    match name {
        "spotverse" => Ok(Box::new(SpotVerseStrategy::new(
            SpotVerseConfig::builder(instance_type)
                .threshold(threshold)
                .build(),
        ))),
        "single-region" => Ok(Box::new(SingleRegionStrategy::new(region))),
        "on-demand" => Ok(Box::new(OnDemandStrategy::new())),
        "skypilot" => Ok(Box::new(SkyPilotStrategy::new())),
        "naive-multi" => Ok(Box::new(NaiveMultiRegionStrategy::paper_motivational())),
        "bid-price" => Ok(Box::new(BidPriceAwareStrategy::new())),
        "checkpoint-adaptive" => Ok(Box::new(CheckpointAdaptiveStrategy::new())),
        other => Err(CliError::BadInput(format!(
            "unknown strategy `{other}` (expected spotverse | single-region | on-demand | \
             skypilot | naive-multi | bid-price | checkpoint-adaptive)"
        ))),
    }
}

fn render_report(report: &ExperimentReport) -> String {
    let mut out = String::new();
    out.push_str(&summary_line(report));
    out.push('\n');
    out.push_str(&format!(
        "  cost breakdown: spot {}  on-demand {}  transfer {}  shared services {}\n",
        report.cost.spot_instances,
        report.cost.on_demand_instances,
        report.cost.data_transfer,
        report.cost.shared_services,
    ));
    out.push_str(&format!(
        "  instance-hours {:.1}   spot requests {}/{} fulfilled\n",
        report.instance_hours, report.spot_fulfillments, report.spot_attempts,
    ));
    if !report.interruptions_by_region.is_empty() {
        out.push_str("  interruptions by region:");
        for (region, n) in &report.interruptions_by_region {
            out.push_str(&format!(" {region}={n}"));
        }
        out.push('\n');
    }
    out
}

/// `spotverse simulate`.
pub fn simulate(args: &ParsedArgs) -> Result<String, CliError> {
    let common = common_config(args)?;
    let threshold = args.u8_or("threshold", 6)?;
    let region = parse_region(args.str_or("region", "ca-central-1"))?;
    let strategy = build_strategy(
        args.str_or("strategy", "spotverse"),
        common.instance_type,
        threshold,
        region,
    )?;
    let market = Arc::new(SpotMarket::new(common.config.market));
    let report = run_experiment_on(market, common.config, strategy);
    Ok(render_report(&report))
}

fn phase_name(phase: WorkloadPhase) -> &'static str {
    match phase {
        WorkloadPhase::Pending => "pending",
        WorkloadPhase::Requesting => "requesting",
        WorkloadPhase::Running => "running",
        WorkloadPhase::Migrating => "migrating",
        WorkloadPhase::Completed => "completed",
        WorkloadPhase::Expired => "expired",
    }
}

fn render_fleet_report(report: &FleetReport) -> String {
    let mut out = String::new();
    out.push_str(&summary_line(&report.aggregate));
    out.push('\n');
    out.push_str(&format!(
        "  fleet: {} expired, {} capacity deferral(s)\n",
        report.expired, report.capacity_deferrals,
    ));
    out.push_str(&format!(
        "  {:<6} {:>13} {:<10} {:>11} {:>5} {:>8} {:>10} {:<14}\n",
        "id", "arrival", "phase", "completion", "intr", "launches", "billed", "region",
    ));
    for w in &report.workloads {
        let completion = match w.completion_time {
            Some(d) => format!("{:.1}h", d.as_hours_f64()),
            None => "-".to_owned(),
        };
        out.push_str(&format!(
            "  {:<6} {:>13} {:<10} {:>11} {:>5} {:>8} {:>10} {:<14}\n",
            w.id,
            w.arrival.to_string(),
            phase_name(w.phase),
            completion,
            w.interruptions,
            w.launches,
            w.billed.to_string(),
            w.final_region,
        ));
    }
    out
}

/// `spotverse fleet`: N workloads with staggered arrivals multiplexed
/// over one shared control plane, optionally capacity-capped per region.
/// `--strategy all` sweeps every strategy over the same fleet shape on
/// one cached market via the fleet sweep engine.
pub fn fleet(args: &ParsedArgs) -> Result<String, CliError> {
    let seed = args.u64_or("seed", 2024)?;
    let instances = args.u64_or("instances", 20)? as usize;
    if instances == 0 {
        return Err(CliError::BadInput("--instances must be positive".into()));
    }
    let instance_type = parse_instance_type(args.str_or("instance-type", "m5.xlarge"))?;
    let kind = parse_workload(args.str_or("workload", "genome"))?;
    let start_day = args.u64_or("start-day", 1)?;
    let spacing_mins = args.u64_or("spacing-mins", 60)?;
    let deadline_days = args.u64_or("deadline-days", 30)?;
    if deadline_days == 0 {
        return Err(CliError::BadInput("--deadline-days must be positive".into()));
    }
    let capacity = match args.opt_str("capacity") {
        None => None,
        Some(raw) => match raw.parse::<u32>() {
            Ok(k) if k > 0 => Some(k),
            _ => {
                return Err(CliError::BadInput(format!(
                    "--capacity: `{raw}` is not a positive integer"
                )))
            }
        },
    };
    let output = args.str_or("output", "table");
    if !matches!(output, "table" | "trace") {
        return Err(CliError::BadInput(format!(
            "--output: `{output}` is not table | trace"
        )));
    }
    let threshold = args.u8_or("threshold", 6)?;
    let region = parse_region(args.str_or("region", "ca-central-1"))?;
    let strategy_arg = args.str_or("strategy", "spotverse");
    let strategies: Vec<&str> = if strategy_arg == "all" {
        vec!["single-region", "naive-multi", "skypilot", "spotverse", "on-demand"]
    } else {
        // Validate a user-supplied name up front so the sweep closure can
        // rely on it.
        build_strategy(strategy_arg, instance_type, threshold, region)?;
        vec![strategy_arg]
    };
    let jobs_flag = parse_jobs(args)?;

    let mut config = match args.opt_str("loadgen") {
        Some(profile_name) => {
            let rate = match args.opt_str("rate") {
                None => 12.0,
                Some(raw) => raw
                    .parse::<f64>()
                    .ok()
                    .filter(|r| r.is_finite() && *r > 0.0)
                    .ok_or_else(|| {
                        CliError::BadInput(format!("--rate: `{raw}` is not a positive number"))
                    })?,
            };
            let count = args.u64_or("workloads", 100)? as usize;
            if count == 0 {
                return Err(CliError::BadInput("--workloads must be positive".into()));
            }
            let profile = LoadProfile::named(profile_name, rate).ok_or_else(|| {
                CliError::BadInput(format!(
                    "unknown loadgen profile `{profile_name}` (expected poisson | diurnal | burst)"
                ))
            })?;
            profile.generate(seed, count, instance_type)
        }
        None => {
            let rng = SimRng::seed_from_u64(seed);
            let specs = paper_fleet(kind, instances, &rng);
            FleetConfig::staggered(
                seed,
                instance_type,
                specs,
                SimDuration::from_mins(spacing_mins),
            )
        }
    };
    config.start = SimTime::from_days(start_day);
    config.max_runtime = SimDuration::from_days(deadline_days);
    config.region_capacity = capacity;
    config.market = config.market.with_regime(parse_regime(args)?);
    if output == "trace" {
        config.trace = TraceConfig::enabled();
    }

    let cells: Vec<FleetSweepCell> = strategies
        .iter()
        .map(|name| FleetSweepCell::new(*name, *name, config.clone()))
        .collect();
    let cache = MarketCache::new();
    let jobs = resolve_jobs(jobs_flag, cells.len());
    let outcomes = run_fleet_matrix(&cells, jobs, &cache, |cell| {
        build_strategy(&cell.strategy, instance_type, threshold, region)
            .expect("fleet strategy names validated before the sweep")
    });
    if output == "trace" {
        return Ok(merged_fleet_trace_jsonl(&outcomes));
    }
    let mut out = String::new();
    for outcome in &outcomes {
        match &outcome.result {
            Ok(report) => out.push_str(&render_fleet_report(report)),
            Err(e) => out.push_str(&format!("{:<20} FAILED: {e}\n", outcome.strategy)),
        }
    }
    Ok(out)
}

/// `spotverse compare`: every strategy on the same market, one sweep cell
/// per strategy, executed on the parallel sweep engine. All cells share a
/// single cached market construction.
pub fn compare(args: &ParsedArgs) -> Result<String, CliError> {
    let common = common_config(args)?;
    let threshold = args.u8_or("threshold", 6)?;
    let region = parse_region(args.str_or("region", "ca-central-1"))?;
    let jobs_flag = parse_jobs(args)?;
    let names = ["single-region", "naive-multi", "skypilot", "spotverse", "on-demand"];
    let cells: Vec<SweepCell> = names
        .iter()
        .map(|name| SweepCell::new(*name, *name, common.config.clone()))
        .collect();
    let cache = MarketCache::new();
    let jobs = resolve_jobs(jobs_flag, cells.len());
    let outcomes = run_matrix(&cells, jobs, &cache, |cell| {
        build_strategy(&cell.strategy, common.instance_type, threshold, region)
            .expect("compare strategy names are from the fixed list")
    });
    let mut out = String::new();
    for outcome in &outcomes {
        match &outcome.result {
            Ok(report) => {
                out.push_str(&summary_line(report));
                out.push('\n');
            }
            Err(e) => out.push_str(&format!("{:<20} FAILED: {e}\n", outcome.strategy)),
        }
    }
    Ok(out)
}

/// `spotverse sweep`: a strategies × seeds cell matrix. In-process it runs
/// on the parallel sweep engine; with `--orchestrated true` the same cells
/// are re-hosted on the distributed shard orchestrator (event-bus
/// dispatch, KV leases, re-drives, dead-letters), optionally with a chaos
/// scenario faulting the orchestration services. Fault-free, both modes
/// print byte-identical cell output (`--output trace` is byte-identical
/// end to end).
pub fn sweep(args: &ParsedArgs) -> Result<String, CliError> {
    let base_seed = args.u64_or("seed", 2024)?;
    let instances = args.u64_or("instances", 20)? as usize;
    if instances == 0 {
        return Err(CliError::BadInput("--instances must be positive".into()));
    }
    let instance_type = parse_instance_type(args.str_or("instance-type", "m5.xlarge"))?;
    let kind = parse_workload(args.str_or("workload", "genome"))?;
    let start_day = args.u64_or("start-day", 1)?;
    let threshold = args.u8_or("threshold", 6)?;
    let region = parse_region(args.str_or("region", "ca-central-1"))?;
    let seeds = args.u64_or("seeds", 1)?;
    if seeds == 0 {
        return Err(CliError::BadInput("--seeds must be positive".into()));
    }
    let strategy_arg = args.str_or("strategy", "spotverse");
    let strategies: Vec<&str> = if strategy_arg == "all" {
        vec!["single-region", "naive-multi", "skypilot", "spotverse", "on-demand"]
    } else {
        // Validate a user-supplied name up front so the sweep closure can
        // rely on it.
        build_strategy(strategy_arg, instance_type, threshold, region)?;
        vec![strategy_arg]
    };
    let orchestrated = match args.str_or("orchestrated", "false") {
        "true" => true,
        "false" => false,
        other => {
            return Err(CliError::BadInput(format!(
                "--orchestrated: `{other}` is not true | false"
            )))
        }
    };
    let output = args.str_or("output", "table");
    if output != "table" && output != "trace" {
        return Err(CliError::BadInput(format!(
            "unknown output `{output}` (expected table | trace)"
        )));
    }
    let scenario = match args.opt_str("scenario") {
        None => None,
        Some(name) => Some(chaos::by_name(name).ok_or_else(|| {
            CliError::BadInput(format!(
                "unknown scenario `{name}` (expected {})",
                chaos::SCENARIO_NAMES.join(" | ")
            ))
        })?),
    };
    if scenario.is_some() && !orchestrated {
        return Err(CliError::BadInput(
            "--scenario faults the orchestration services; it requires --orchestrated true".into(),
        ));
    }
    let regime = parse_regime(args)?;
    let mut cells: Vec<SweepCell> = Vec::with_capacity(strategies.len() * seeds as usize);
    for name in &strategies {
        for s in 0..seeds {
            let seed = base_seed + s;
            let rng = SimRng::seed_from_u64(seed);
            let mut config =
                ExperimentConfig::new(seed, instance_type, paper_fleet(kind, instances, &rng));
            config.start = SimTime::from_days(start_day);
            config.market = config.market.with_regime(regime);
            if output == "trace" {
                config.trace = TraceConfig::enabled();
            }
            cells.push(SweepCell::new(format!("{name}/s{seed}"), *name, config));
        }
    }
    let cache = MarketCache::new();
    let strategy_for = |cell: &SweepCell| {
        build_strategy(&cell.strategy, instance_type, threshold, region)
            .expect("sweep strategy names validated before the sweep")
    };
    if !orchestrated {
        let jobs = resolve_jobs(parse_jobs(args)?, cells.len());
        let outcomes = run_matrix(&cells, jobs, &cache, strategy_for);
        return Ok(match output {
            "trace" => merged_trace_jsonl(&outcomes),
            _ => render_sweep_cells(&outcomes),
        });
    }
    let shard_size = args.u64_or("shard-size", 1)? as usize;
    if shard_size == 0 {
        return Err(CliError::BadInput("--shard-size must be positive".into()));
    }
    let max_attempts = args.u64_or("max-attempts", 4)? as u32;
    if max_attempts == 0 {
        return Err(CliError::BadInput("--max-attempts must be positive".into()));
    }
    let orch_config = OrchestratorConfig {
        seed: base_seed,
        shard_size,
        max_attempts,
        chaos: scenario,
        ..OrchestratorConfig::default()
    };
    let report = run_matrix_orchestrated(&cells, &orch_config, &cache, strategy_for);
    if output == "trace" {
        return Ok(merged_trace_jsonl(&report.outcomes));
    }
    let mut out = render_sweep_cells(&report.outcomes);
    let s = &report.stats;
    out.push_str(&format!(
        "orchestration: shards {}  dispatches {}  redrives {}  lease-expiries {}  \
         duplicate-executions {}  bus-lost {}  bus-duplicated {}  service-cost {}\n",
        s.shards,
        s.dispatches,
        s.redrives,
        s.lease_expiries,
        s.duplicate_executions,
        s.bus_lost,
        s.bus_duplicated,
        s.service_cost,
    ));
    let completed = report.outcomes.iter().filter(|o| o.result.is_ok()).count();
    let dead = report.outcomes.len() - completed;
    out.push_str(&format!(
        "cells: {} total = {completed} completed + {dead} dead-lettered\n",
        report.outcomes.len(),
    ));
    for dl in &report.dead_letters {
        out.push_str(&format!(
            "dead-letter shard {} [{}]{}:",
            dl.shard,
            dl.labels.join(", "),
            if dl.recorded { "" } else { " (record write lost)" },
        ));
        for a in &dl.attempts {
            out.push_str(&format!(
                "  attempt {} @{}s: {}",
                a.attempt,
                a.dispatched_at.as_secs(),
                a.failure,
            ));
        }
        out.push('\n');
    }
    Ok(out)
}

/// Cell rows shared by both sweep modes: a summary line per successful
/// cell, a FAILED line per failed (e.g. dead-lettered) cell.
fn render_sweep_cells(outcomes: &[CellOutcome]) -> String {
    let mut out = String::new();
    for outcome in outcomes {
        match &outcome.result {
            Ok(report) => {
                out.push_str(&summary_line(report));
                out.push('\n');
            }
            Err(e) => out.push_str(&format!("{:<20} FAILED: {e}\n", outcome.label)),
        }
    }
    out
}

/// One row of the chaos table. A failed cell renders as a FAILED line with
/// the captured panic/error message; deltas print as `-` when there is no
/// fault-free baseline to compare against.
fn chaos_row(label: &str, outcome: &CellOutcome, baseline: Option<&ExperimentReport>) -> String {
    match &outcome.result {
        Err(e) => format!("{:<14} {:<19} FAILED: {e}\n", outcome.strategy, label),
        Ok(r) => {
            let (added_makespan, added_cost) = match baseline {
                Some(b) => (
                    format!("{:>+11.1}h", r.makespan.as_hours_f64() - b.makespan.as_hours_f64()),
                    format!("{:>+11.2}", r.cost.total.amount() - b.cost.total.amount()),
                ),
                None => (format!("{:>12}", "-"), format!("{:>11}", "-")),
            };
            format!(
                "{:<14} {:<19} {:>6}/{:<2} {:>11} {added_makespan} {:>10} {added_cost} {:>6} {:>6} {:>6} {:>6} {:>7.1}\n",
                r.strategy,
                label,
                r.completed,
                r.workloads,
                r.makespan.to_string(),
                r.cost.total.to_string(),
                r.checkpoints.torn_writes,
                r.checkpoints.corrupt_reads,
                r.resilience.breaker_trips,
                r.resilience.freshness.stale_serves,
                r.resilience.freshness.degraded_time.as_hours_f64(),
            )
        }
    }
}

/// `spotverse chaos`: the strategy × scenario degradation matrix. Every
/// cell runs the same fleet on the same market with a fault scenario
/// compiled against the experiment seed, and is compared against that
/// strategy's fault-free run.
pub fn chaos_matrix(args: &ParsedArgs) -> Result<String, CliError> {
    let common = common_config(args)?;
    let threshold = args.u8_or("threshold", 6)?;
    let region = parse_region(args.str_or("region", "ca-central-1"))?;
    let scenario_arg = args.str_or("scenario", "all");
    let strategy_arg = args.str_or("strategy", "all");
    let scenarios: Vec<ChaosScenario> = if scenario_arg == "all" {
        chaos::library()
    } else {
        vec![chaos::by_name(scenario_arg).ok_or_else(|| {
            CliError::BadInput(format!(
                "unknown scenario `{scenario_arg}` (expected {} | all)",
                chaos::SCENARIO_NAMES.join(" | ")
            ))
        })?]
    };
    let strategies: Vec<&str> = if strategy_arg == "all" {
        vec!["single-region", "skypilot", "spotverse"]
    } else {
        // Validate a user-supplied name up front so the sweep closure can
        // rely on it.
        build_strategy(strategy_arg, common.instance_type, threshold, region)?;
        vec![strategy_arg]
    };
    let jobs_flag = parse_jobs(args)?;
    let fleet = common.config.workloads.len();
    // Strategy-major cells: per strategy one fault-free baseline followed
    // by one cell per scenario. All cells share one cached market — chaos
    // faults overlay on the read path and never mutate the base market.
    let group = 1 + scenarios.len();
    let mut cells: Vec<SweepCell> = Vec::with_capacity(strategies.len() * group);
    for name in &strategies {
        cells.push(SweepCell::new(
            format!("{name}/fault-free"),
            *name,
            common.config.clone(),
        ));
        for scenario in &scenarios {
            let mut config = common.config.clone();
            config.chaos = Some(scenario.clone());
            cells.push(SweepCell::new(
                format!("{name}/{}", scenario.name()),
                *name,
                config,
            ));
        }
    }
    let cache = MarketCache::new();
    let jobs = resolve_jobs(jobs_flag, cells.len());
    let outcomes = run_matrix(&cells, jobs, &cache, |cell| {
        build_strategy(&cell.strategy, common.instance_type, threshold, region)
            .expect("chaos strategy names validated before the sweep")
    });
    let mut out = format!(
        "chaos degradation matrix  (seed {}, fleet {fleet})\n\
         {:<14} {:<19} {:>9} {:>11} {:>12} {:>10} {:>11} {:>6} {:>6} {:>6} {:>6} {:>7}\n",
        common.config.seed,
        "strategy",
        "scenario",
        "completed",
        "makespan",
        "Δmakespan",
        "cost",
        "Δcost",
        "torn",
        "corrupt",
        "trips",
        "stale",
        "degr-h",
    );
    for chunk in outcomes.chunks(group) {
        let baseline = chunk[0].report();
        out.push_str(&chaos_row("(fault-free)", &chunk[0], None));
        for (scenario, outcome) in scenarios.iter().zip(&chunk[1..]) {
            out.push_str(&chaos_row(scenario.name(), outcome, baseline));
        }
    }
    let recovered = outcomes.iter().filter(|c| c.recovered()).count();
    if recovered > 0 {
        out.push_str(&format!("({recovered} cell(s) recovered after one retry)\n"));
    }
    Ok(out)
}

/// `spotverse tournament`: every strategy under every market regime,
/// ranked per regime on completions, then billed cost, then makespan.
/// Cells run on the fleet sweep engine with tracing on; the per-regime
/// win matrices are replayed from the merged traces, so the leaderboard
/// agrees with `spotverse analyse` by construction.
pub fn tournament(args: &ParsedArgs) -> Result<String, CliError> {
    let seed = args.u64_or("seed", 2024)?;
    let instances = args.u64_or("instances", 20)? as usize;
    if instances == 0 {
        return Err(CliError::BadInput("--instances must be positive".into()));
    }
    let instance_type = parse_instance_type(args.str_or("instance-type", "m5.xlarge"))?;
    let kind = parse_workload(args.str_or("workload", "genome"))?;
    let start_day = args.u64_or("start-day", 1)?;
    let spacing_mins = args.u64_or("spacing-mins", 60)?;
    let deadline_days = args.u64_or("deadline-days", 30)?;
    if deadline_days == 0 {
        return Err(CliError::BadInput("--deadline-days must be positive".into()));
    }
    let reps = args.u64_or("seeds", 1)?;
    if reps == 0 {
        return Err(CliError::BadInput("--seeds must be positive".into()));
    }
    let threshold = args.u8_or("threshold", 6)?;
    let region = parse_region(args.str_or("region", "ca-central-1"))?;
    let strategy_arg = args.str_or("strategy", "all");
    let strategies: Vec<&str> = if strategy_arg == "all" {
        vec![
            "single-region",
            "naive-multi",
            "skypilot",
            "spotverse",
            "on-demand",
            "bid-price",
            "checkpoint-adaptive",
        ]
    } else {
        // Validate a user-supplied name up front so the sweep closure can
        // rely on it.
        build_strategy(strategy_arg, instance_type, threshold, region)?;
        vec![strategy_arg]
    };
    let regime_arg = args.str_or("regime", "all");
    let regimes: Vec<MarketRegime> = if regime_arg == "all" {
        MarketRegime::ALL.to_vec()
    } else {
        vec![regime_arg.parse().map_err(CliError::BadInput)?]
    };
    let chaos_mode = match args.str_or("chaos", "off") {
        "off" => TournamentChaos::Off,
        "regime" => TournamentChaos::RegimeMatched,
        name => TournamentChaos::Fixed(chaos::by_name(name).ok_or_else(|| {
            CliError::BadInput(format!(
                "--chaos: `{name}` is not off | regime | one of {}",
                chaos::SCENARIO_NAMES.join(" | ")
            ))
        })?),
    };
    let jobs_flag = parse_jobs(args)?;

    let rng = SimRng::seed_from_u64(seed);
    let mut fleet = FleetConfig::staggered(
        seed,
        instance_type,
        paper_fleet(kind, instances, &rng),
        SimDuration::from_mins(spacing_mins),
    );
    fleet.start = SimTime::from_days(start_day);
    fleet.max_runtime = SimDuration::from_days(deadline_days);

    let mut config = TournamentConfig::new(
        strategies.iter().map(|s| (*s).to_owned()).collect(),
        regimes,
        reps,
        fleet,
    );
    config.chaos = chaos_mode;
    let cache = MarketCache::new();
    let jobs = resolve_jobs(jobs_flag, config.cells());
    let report = run_tournament(&config, jobs, &cache, |name| {
        build_strategy(name, instance_type, threshold, region)
            .expect("tournament strategy names validated before the sweep")
    });
    let mut out = format!(
        "tournament: {} strategies × {} regimes × {} seed(s)  ({} cells, fleet {instances})\n",
        config.strategies.len(),
        config.regimes.len(),
        reps,
        config.cells(),
    );
    out.push_str(&render_tournament(&report));
    Ok(out)
}

/// `spotverse trace`: one experiment with the decision-trace recorder
/// enabled, printed as canonical JSONL — one record per line, stable key
/// order, byte-identical across runs at the same seed.
pub fn trace(args: &ParsedArgs) -> Result<String, CliError> {
    let mut common = common_config(args)?;
    let threshold = args.u8_or("threshold", 6)?;
    let region = parse_region(args.str_or("region", "ca-central-1"))?;
    let strategy = build_strategy(
        args.str_or("strategy", "spotverse"),
        common.instance_type,
        threshold,
        region,
    )?;
    if let Some(name) = args.opt_str("scenario") {
        let scenario = chaos::by_name(name).ok_or_else(|| {
            CliError::BadInput(format!(
                "unknown scenario `{name}` (expected {})",
                chaos::SCENARIO_NAMES.join(" | ")
            ))
        })?;
        common.config.chaos = Some(scenario);
    }
    common.config.trace = TraceConfig::enabled();
    let market = Arc::new(SpotMarket::new(common.config.market));
    let report = run_experiment_on(market, common.config, strategy);
    let run_trace = report.trace.expect("tracing was enabled for this run");
    Ok(trace_to_jsonl(&run_trace))
}

/// `spotverse advisor`.
pub fn advisor(args: &ParsedArgs) -> Result<String, CliError> {
    let seed = args.u64_or("seed", 2024)?;
    let instance_type = parse_instance_type(args.str_or("instance-type", "m5.xlarge"))?;
    let day = args.u64_or("day", 1)?;
    let market = SpotMarket::new(cloud_market::MarketConfig::with_seed(seed));
    let monitor = Monitor::new(instance_type, Region::UsEast1);
    let assessments = monitor
        .fresh_assessments(&market, SimTime::from_days(day))
        .map_err(|e| CliError::BadInput(format!("{e}")))?;
    let mut out = format!(
        "{:<16} {:>10} {:>10} {:>9} {:>10} {:>9}\n",
        "region", "spot $/h", "od $/h", "placement", "stability", "combined"
    );
    for a in &assessments {
        out.push_str(&format!(
            "{:<16} {:>10.4} {:>10.4} {:>9} {:>10} {:>9}\n",
            a.region.name(),
            a.spot_price.rate(),
            a.on_demand_price.rate(),
            a.placement.value(),
            a.stability.value(),
            a.combined().value(),
        ));
    }
    Ok(out)
}

/// `spotverse traces`.
pub fn traces(args: &ParsedArgs) -> Result<String, CliError> {
    let seed = args.u64_or("seed", 2024)?;
    let instance_type = parse_instance_type(args.str_or("instance-type", "m5.xlarge"))?;
    let days = args.u64_or("days", 14)?;
    if days == 0 {
        return Err(CliError::BadInput("--days must be positive".into()));
    }
    let market = SpotMarket::new(
        cloud_market::MarketConfig::with_seed(seed).with_regime(parse_regime(args)?),
    );
    let rows = collect_archive(
        &market,
        instance_type,
        SimTime::ZERO,
        SimTime::from_days(days),
        SimDuration::from_hours(6),
    )
    .map_err(|e| CliError::BadInput(format!("{e}")))?;
    Ok(archive_to_csv(&rows))
}

fn parse_sim_time_flag(args: &ParsedArgs, flag: &str) -> Result<Option<SimTime>, CliError> {
    match args.opt_str(flag) {
        None => Ok(None),
        Some(raw) => raw.parse::<u64>().map(SimTime::from_secs).map(Some).map_err(|_| {
            CliError::BadInput(format!("--{flag}: `{raw}` is not a sim-time in seconds"))
        }),
    }
}

/// `spotverse analyse`: replay trace JSONL files into derived views.
pub fn analyse(args: &ParsedArgs) -> Result<String, CliError> {
    let files = args.positionals();
    if files.is_empty() {
        return Err(CliError::BadInput(
            "analyse requires at least one trace JSONL file (see `spotverse trace`)".into(),
        ));
    }
    let window = TimeWindow {
        from: parse_sim_time_flag(args, "from")?,
        until: parse_sim_time_flag(args, "until")?,
    };
    let output = args.str_or("output", "table");
    let mut cursor = ReplayCursor::new(window);
    let multi = files.len() > 1;
    for path in files {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError::BadInput(format!("{path}: {e}")))?;
        if multi {
            // Keep records from different files apart: unlabelled records
            // get the file stem as their cell key.
            let stem = std::path::Path::new(path)
                .file_stem()
                .map_or_else(|| path.clone(), |s| s.to_string_lossy().into_owned());
            cursor.set_default_cell(Some(stem));
        }
        cursor
            .feed(&text)
            .map_err(|e| CliError::BadInput(format!("{path}: {e}")))?;
        if !text.ends_with('\n') {
            cursor
                .feed("\n")
                .map_err(|e| CliError::BadInput(format!("{path}: {e}")))?;
        }
    }
    let state = cursor
        .finish()
        .map_err(|e| CliError::BadInput(format!("{e}")))?;
    match output {
        "table" => Ok(render_analysis(&state)),
        "json" => Ok(render_analysis_json(&state)),
        other => Err(CliError::BadInput(format!(
            "unknown output `{other}` (expected table | json)"
        ))),
    }
}

/// `spotverse workflow`: export a paper workflow as a `.ga` document.
pub fn workflow(args: &ParsedArgs) -> Result<String, CliError> {
    let kind = parse_workload(args.str_or("workload", "genome"))?;
    let hours = args.u64_or("duration-hours", 10)?;
    if hours == 0 {
        return Err(CliError::BadInput("--duration-hours must be positive".into()));
    }
    let spec = bio_workloads::WorkloadSpec {
        id: "cli-export".into(),
        kind,
        duration: SimDuration::from_hours(hours),
        shards: None,
    };
    Ok(to_ga_json(&spec.build_workflow()))
}

/// Flag schemas per command.
pub fn schema(command: &str) -> &'static [&'static str] {
    match command {
        "simulate" => &[
            "seed",
            "instances",
            "instance-type",
            "workload",
            "start-day",
            "strategy",
            "threshold",
            "region",
            "regime",
        ],
        "fleet" => &[
            "seed",
            "instances",
            "instance-type",
            "workload",
            "start-day",
            "loadgen",
            "workloads",
            "rate",
            "spacing-mins",
            "capacity",
            "deadline-days",
            "strategy",
            "threshold",
            "region",
            "regime",
            "output",
            "jobs",
        ],
        "compare" => &[
            "seed",
            "instances",
            "instance-type",
            "workload",
            "start-day",
            "threshold",
            "region",
            "regime",
            "jobs",
        ],
        "sweep" => &[
            "seed",
            "instances",
            "instance-type",
            "workload",
            "start-day",
            "strategy",
            "threshold",
            "region",
            "regime",
            "seeds",
            "orchestrated",
            "scenario",
            "shard-size",
            "max-attempts",
            "output",
            "jobs",
        ],
        "chaos" => &[
            "seed",
            "instances",
            "instance-type",
            "workload",
            "start-day",
            "strategy",
            "threshold",
            "region",
            "regime",
            "scenario",
            "jobs",
        ],
        "tournament" => &[
            "seed",
            "instances",
            "instance-type",
            "workload",
            "start-day",
            "spacing-mins",
            "deadline-days",
            "strategy",
            "threshold",
            "region",
            "regime",
            "seeds",
            "chaos",
            "jobs",
        ],
        "advisor" => &["seed", "instance-type", "day"],
        "trace" => &[
            "seed",
            "instances",
            "instance-type",
            "workload",
            "start-day",
            "strategy",
            "threshold",
            "region",
            "regime",
            "scenario",
        ],
        "analyse" => &["from", "until", "output"],
        "traces" => &["seed", "instance-type", "days", "regime"],
        "workflow" => &["workload", "duration-hours"],
        _ => &[],
    }
}

/// Dispatches a full command line (without the binary name).
///
/// # Errors
///
/// Returns a [`CliError`] for unknown commands, bad flags, or bad values.
pub fn run<I, S>(argv: I) -> Result<String, CliError>
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    let mut iter = argv.into_iter().map(Into::into);
    let command = match iter.next() {
        Some(c) => c,
        None => return Ok(usage()),
    };
    let rest: Vec<String> = iter.collect();
    match command.as_str() {
        "simulate" => simulate(&ParsedArgs::parse(rest, schema("simulate"))?),
        "fleet" => fleet(&ParsedArgs::parse(rest, schema("fleet"))?),
        "compare" => compare(&ParsedArgs::parse(rest, schema("compare"))?),
        "sweep" => sweep(&ParsedArgs::parse(rest, schema("sweep"))?),
        "chaos" => chaos_matrix(&ParsedArgs::parse(rest, schema("chaos"))?),
        "tournament" => tournament(&ParsedArgs::parse(rest, schema("tournament"))?),
        "advisor" => advisor(&ParsedArgs::parse(rest, schema("advisor"))?),
        "trace" => trace(&ParsedArgs::parse(rest, schema("trace"))?),
        "analyse" | "analyze" => analyse(&ParsedArgs::parse(rest, schema("analyse"))?),
        "traces" => traces(&ParsedArgs::parse(rest, schema("traces"))?),
        "workflow" => workflow(&ParsedArgs::parse(rest, schema("workflow"))?),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(CliError::BadInput(format!(
            "unknown command `{other}` (try `spotverse help`)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_paths() {
        assert!(run(Vec::<String>::new()).unwrap().contains("USAGE"));
        assert!(run(["help"]).unwrap().contains("COMMANDS"));
        assert!(run(["--help"]).unwrap().contains("simulate"));
    }

    #[test]
    fn unknown_command_errors() {
        let err = run(["simualte"]).unwrap_err();
        assert!(err.to_string().contains("simualte"));
    }

    #[test]
    fn advisor_lists_all_regions() {
        let out = run(["advisor", "--day", "3", "--seed", "5"]).unwrap();
        for region in Region::ALL {
            assert!(out.contains(region.name()), "missing {region}");
        }
        assert!(out.contains("combined"));
    }

    #[test]
    fn traces_emit_csv() {
        let out = run(["traces", "--days", "2", "--instance-type", "c5.2xlarge"]).unwrap();
        assert!(out.starts_with("timestamp_secs,"));
        assert!(out.contains("c5.2xlarge"));
        // 12 regions × 8 samples + header.
        assert_eq!(out.lines().count(), 1 + 12 * 8);
    }

    #[test]
    fn trace_emits_deterministic_jsonl() {
        let argv = ["trace", "--instances", "3", "--seed", "21", "--workload", "ngs"];
        let a = run(argv).unwrap();
        let b = run(argv).unwrap();
        assert_eq!(a, b, "same seed must give byte-identical traces");
        let first = a.lines().next().unwrap();
        assert!(first.starts_with("{\"seq\":0,\"t\":"), "canonical first line: {first}");
        assert!(first.contains("\"event\":\"run_started\""));
        assert!(first.contains("\"strategy\":\"spotverse\""));
        assert!(a.lines().last().unwrap().contains("\"event\":\"run_ended\""));
        assert!(a.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn trace_accepts_scenario_and_rejects_unknown() {
        let out = run([
            "trace",
            "--instances",
            "2",
            "--seed",
            "5",
            "--workload",
            "ngs",
            "--scenario",
            "notice_loss",
        ])
        .unwrap();
        assert!(out.contains("\"chaos\":\"notice_loss\""));
        let err = run(["trace", "--scenario", "meteor-strike"]).unwrap_err();
        assert!(err.to_string().contains("meteor-strike"));
    }

    #[test]
    fn simulate_runs_a_small_fleet() {
        let out = run([
            "simulate",
            "--instances",
            "3",
            "--strategy",
            "on-demand",
            "--seed",
            "9",
        ])
        .unwrap();
        assert!(out.contains("on-demand"));
        assert!(out.contains("3/3"));
        assert!(out.contains("cost breakdown"));
    }

    #[test]
    fn tournament_ranks_every_strategy_per_regime() {
        let argv = [
            "tournament",
            "--instances",
            "2",
            "--seed",
            "11",
            "--workload",
            "ngs",
            "--strategy",
            "all",
            "--regime",
            "all",
            "--jobs",
            "4",
        ];
        let out = run(argv).unwrap();
        assert!(out.starts_with("tournament: 7 strategies × 4 regimes × 1 seed(s)"));
        for regime in MarketRegime::ALL {
            assert!(out.contains(&format!("regime {}", regime.name())), "missing {regime}");
        }
        assert!(out.contains("#1 "));
        assert!(out.contains("#7 "));
        assert!(!out.contains("FAILED"));
        // Deterministic regardless of parallelism.
        let mut serial: Vec<String> = argv.iter().map(|s| (*s).to_owned()).collect();
        let n = serial.len();
        serial[n - 1] = "1".into();
        assert_eq!(out, run(serial).unwrap());
    }

    #[test]
    fn tournament_regime_chaos_labels_the_standings() {
        let out = run([
            "tournament",
            "--instances",
            "2",
            "--seed",
            "11",
            "--workload",
            "ngs",
            "--strategy",
            "on-demand",
            "--regime",
            "capacity_crunch",
            "--chaos",
            "regime",
        ])
        .unwrap();
        assert!(out.contains("regime capacity_crunch  (chaos: crunch_squeeze)"));
    }

    #[test]
    fn single_run_commands_accept_the_regime_flag() {
        let base = ["simulate", "--instances", "2", "--workload", "ngs", "--strategy", "skypilot"];
        let baseline = run(base).unwrap();
        let explicit = run(base.iter().copied().chain(["--regime", "baseline"])).unwrap();
        assert_eq!(baseline, explicit, "explicit baseline must equal the default");
        let crunch = run(base.iter().copied().chain(["--regime", "capacity_crunch"])).unwrap();
        assert_ne!(baseline, crunch, "capacity_crunch must change the report");
        let err = run(["simulate", "--regime", "bull-market"]).unwrap_err();
        assert!(err.to_string().contains("bull-market"));
        // The archive exporter rides the same axis.
        let calm = run(["traces", "--days", "2"]).unwrap();
        let shocked = run(["traces", "--days", "2", "--regime", "correlated_shock"]).unwrap();
        assert_ne!(calm, shocked, "regime must perturb the exported archive");
    }

    #[test]
    fn tournament_rejects_bad_inputs() {
        let err = run(["tournament", "--regime", "bull-market"]).unwrap_err();
        assert!(err.to_string().contains("bull-market"));
        let err = run(["tournament", "--chaos", "meteor-strike"]).unwrap_err();
        assert!(err.to_string().contains("meteor-strike"));
        let err = run(["tournament", "--seeds", "0"]).unwrap_err();
        assert!(err.to_string().contains("--seeds"));
        let err = run(["tournament", "--strategy", "blimp"]).unwrap_err();
        assert!(err.to_string().contains("blimp"));
    }

    #[test]
    fn sweep_modes_agree_fault_free() {
        let base = [
            "sweep",
            "--instances",
            "2",
            "--seed",
            "7",
            "--workload",
            "ngs",
            "--strategy",
            "on-demand",
            "--seeds",
            "2",
            "--output",
            "trace",
        ];
        let inprocess = run(base).unwrap();
        let mut orch: Vec<String> = base.iter().map(|s| (*s).to_owned()).collect();
        orch.push("--orchestrated".into());
        orch.push("true".into());
        let orchestrated = run(orch).unwrap();
        assert_eq!(
            inprocess, orchestrated,
            "fault-free orchestration must be byte-identical to in-process"
        );
        assert!(inprocess.contains("\"cell\":\"on-demand/s7\""));
        assert!(inprocess.contains("\"cell\":\"on-demand/s8\""));
    }

    #[test]
    fn sweep_orchestrated_chaos_accounts_for_every_cell() {
        let out = run([
            "sweep",
            "--instances",
            "2",
            "--seed",
            "7",
            "--workload",
            "ngs",
            "--strategy",
            "on-demand",
            "--seeds",
            "2",
            "--orchestrated",
            "true",
            "--scenario",
            "sweep_shard_chaos",
        ])
        .unwrap();
        assert!(out.contains("orchestration: shards 2"), "footer missing: {out}");
        let accounting = out
            .lines()
            .find(|l| l.starts_with("cells: 2 total = "))
            .expect("accounting line present");
        assert!(accounting.contains("completed"));
        assert!(accounting.contains("dead-lettered"));
    }

    #[test]
    fn sweep_rejects_bad_inputs() {
        let err = run(["sweep", "--orchestrated", "maybe"]).unwrap_err();
        assert!(err.to_string().contains("maybe"));
        let err = run(["sweep", "--scenario", "sweep_shard_chaos"]).unwrap_err();
        assert!(err.to_string().contains("--orchestrated true"));
        let err = run(["sweep", "--orchestrated", "true", "--scenario", "meteor"]).unwrap_err();
        assert!(err.to_string().contains("meteor"));
        let err = run(["sweep", "--seeds", "0"]).unwrap_err();
        assert!(err.to_string().contains("--seeds"));
    }

    #[test]
    fn simulate_rejects_bad_inputs() {
        assert!(run(["simulate", "--strategy", "warp-drive"]).is_err());
        assert!(run(["simulate", "--workload", "quake"]).is_err());
        assert!(run(["simulate", "--instance-type", "z9.mega"]).is_err());
        assert!(run(["simulate", "--region", "mars-north-1"]).is_err());
        assert!(run(["simulate", "--instances", "0"]).is_err());
        assert!(run(["simulate", "--bogus", "1"]).is_err());
    }

    #[test]
    fn workflow_exports_valid_ga() {
        let out = run(["workflow", "--workload", "ngs", "--duration-hours", "8"]).unwrap();
        let imported = galaxy_flow::from_ga_json(&out).unwrap();
        assert!(imported.is_checkpointable());
        assert_eq!(imported.name(), "ngs-data-preprocessing");
        let genome = run(["workflow"]).unwrap();
        assert_eq!(galaxy_flow::from_ga_json(&genome).unwrap().len(), 23);
        assert!(run(["workflow", "--duration-hours", "0"]).is_err());
    }

    #[test]
    fn chaos_cell_is_deterministic() {
        let argv = [
            "chaos",
            "--scenario",
            "region_blackout",
            "--strategy",
            "spotverse",
            "--seed",
            "7",
            "--instances",
            "3",
            "--workload",
            "ngs",
        ];
        let a = run(argv).unwrap();
        let b = run(argv).unwrap();
        assert_eq!(a, b, "same seed must give byte-identical reports");
        assert!(a.contains("(fault-free)"));
        assert!(a.contains("region_blackout"));
        assert!(a.contains("spotverse"));
    }

    #[test]
    fn chaos_rejects_unknown_scenario() {
        let err = run(["chaos", "--scenario", "meteor-strike"]).unwrap_err();
        assert!(err.to_string().contains("meteor-strike"));
        assert!(err.to_string().contains("region_blackout"));
    }

    #[test]
    fn compare_lists_every_strategy() {
        let out = run(["compare", "--instances", "2", "--seed", "11", "--workload", "ngs"]).unwrap();
        for name in ["single-region", "naive-multi", "skypilot", "spotverse", "on-demand"] {
            assert!(out.contains(name), "missing {name} in:\n{out}");
        }
    }

    #[test]
    fn jobs_count_does_not_change_output() {
        let base = [
            "chaos",
            "--scenario",
            "throttle_storm",
            "--seed",
            "13",
            "--instances",
            "3",
            "--workload",
            "ngs",
        ];
        let serial = run(base.iter().copied().chain(["--jobs", "1"])).unwrap();
        let parallel = run(base.iter().copied().chain(["--jobs", "4"])).unwrap();
        assert_eq!(serial, parallel, "jobs must not affect the report");

        let compare_base = ["compare", "--instances", "2", "--seed", "11", "--workload", "ngs"];
        let c1 = run(compare_base.iter().copied().chain(["--jobs", "1"])).unwrap();
        let c4 = run(compare_base.iter().copied().chain(["--jobs", "4"])).unwrap();
        assert_eq!(c1, c4);
    }

    #[test]
    fn fleet_runs_staggered_workloads() {
        let out = run([
            "fleet",
            "--instances",
            "3",
            "--seed",
            "9",
            "--workload",
            "ngs",
            "--spacing-mins",
            "120",
            "--capacity",
            "1",
        ])
        .unwrap();
        assert!(out.contains("3/3"), "all workloads should finish:\n{out}");
        assert!(out.contains("fleet:"));
        assert!(out.contains("completed"));
        // Three per-workload rows, one per spec id.
        for id in ["w-00", "w-01", "w-02"] {
            assert!(out.contains(id), "missing {id} in:\n{out}");
        }
    }

    #[test]
    fn fleet_strategy_all_sweeps_every_strategy() {
        let out = run([
            "fleet",
            "--instances",
            "2",
            "--seed",
            "11",
            "--workload",
            "ngs",
            "--strategy",
            "all",
        ])
        .unwrap();
        for name in ["single-region", "naive-multi", "skypilot", "spotverse", "on-demand"] {
            assert!(out.contains(name), "missing {name} in:\n{out}");
        }
    }

    #[test]
    fn fleet_jobs_count_does_not_change_output() {
        let base = [
            "fleet",
            "--instances",
            "2",
            "--seed",
            "13",
            "--workload",
            "ngs",
            "--strategy",
            "all",
            "--spacing-mins",
            "45",
        ];
        let serial = run(base.iter().copied().chain(["--jobs", "1"])).unwrap();
        let parallel = run(base.iter().copied().chain(["--jobs", "4"])).unwrap();
        assert_eq!(serial, parallel, "jobs must not affect the fleet report");
    }

    #[test]
    fn fleet_trace_output_is_merged_jsonl() {
        let argv = [
            "fleet",
            "--instances",
            "2",
            "--seed",
            "5",
            "--workload",
            "ngs",
            "--spacing-mins",
            "90",
            "--output",
            "trace",
        ];
        let a = run(argv).unwrap();
        let b = run(argv).unwrap();
        assert_eq!(a, b, "same seed must give byte-identical fleet traces");
        assert!(a.lines().all(|l| l.starts_with("{\"cell\":\"spotverse\",")));
        assert!(a.contains("\"event\":\"workloads_arrived\""));
        assert!(a.lines().last().unwrap().contains("\"event\":\"run_ended\""));
    }

    #[test]
    fn fleet_rejects_bad_inputs() {
        assert!(run(["fleet", "--capacity", "0"]).is_err());
        assert!(run(["fleet", "--capacity", "lots"]).is_err());
        assert!(run(["fleet", "--deadline-days", "0"]).is_err());
        assert!(run(["fleet", "--output", "xml"]).is_err());
        assert!(run(["fleet", "--strategy", "warp-drive"]).is_err());
        assert!(run(["fleet", "--instances", "0"]).is_err());
        assert!(run(["fleet", "--loadgen", "sawtooth"]).is_err());
        assert!(run(["fleet", "--loadgen", "poisson", "--workloads", "0"]).is_err());
        assert!(run(["fleet", "--loadgen", "poisson", "--rate", "-3"]).is_err());
        assert!(run(["fleet", "--loadgen", "poisson", "--rate", "brisk"]).is_err());
    }

    #[test]
    fn fleet_loadgen_generates_and_completes() {
        let out = run([
            "fleet", "--loadgen", "poisson", "--workloads", "6", "--rate", "30", "--seed", "17",
        ])
        .unwrap();
        assert!(out.contains("6/6"), "generated fleet should finish:\n{out}");
        // Generated spec ids, not the staggered fleet's w-NN ids.
        assert!(out.contains("g-0000"), "missing generated ids in:\n{out}");
    }

    #[test]
    fn fleet_loadgen_trace_is_deterministic_and_multi_tenant() {
        let argv = [
            "fleet", "--loadgen", "burst", "--workloads", "8", "--rate", "40", "--seed", "3",
            "--output", "trace",
        ];
        let a = run(argv).unwrap();
        let b = run(argv).unwrap();
        assert_eq!(a, b, "same seed + profile must give byte-identical traces");
        assert!(a.contains("\"event\":\"workloads_arrived\""));
        // Generated fleets are multi-tenant: arrivals carry tenant and
        // priority annotations.
        assert!(a.contains("\"tenant\":["), "missing tenant field in:\n{a}");
        assert!(a.contains("\"priority\":["), "missing priority field in:\n{a}");
    }

    #[test]
    fn jobs_flag_rejects_bad_values() {
        for bad in ["0", "-2", "many", ""] {
            let err = run(["compare", "--instances", "2", "--jobs", bad]);
            assert!(err.is_err(), "--jobs {bad} should be rejected");
        }
        assert!(run(["chaos", "--scenario", "throttle_storm", "--instances", "2", "--jobs", "x"])
            .is_err());
    }
}
