//! The `spotverse` binary: parse argv, dispatch, print.

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match spotverse_cli::run(argv) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `spotverse help` for usage");
            ExitCode::FAILURE
        }
    }
}
