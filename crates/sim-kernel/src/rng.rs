//! Deterministic, forkable random-number streams.
//!
//! Every stochastic component of the simulator (price processes, interruption
//! hazards, placement outcomes…) draws from its own [`SimRng`] stream forked
//! from the experiment seed, so adding draws to one component never perturbs
//! another — a prerequisite for apples-to-apples strategy comparisons.
//!
//! The generator is a self-contained xoshiro256++ seeded via SplitMix64, so
//! streams are cheap to clone and stable across dependency upgrades.

/// A seeded random stream (xoshiro256++).
///
/// # Examples
///
/// ```
/// use sim_kernel::SimRng;
///
/// let mut a = SimRng::seed_from_u64(7);
/// let mut b = SimRng::seed_from_u64(7);
/// assert_eq!(a.uniform_u64(100), b.uniform_u64(100));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
    seed: u64,
}

/// SplitMix64 finalizer — used to expand seeds and derive substreams.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes a label into a stream discriminant (FNV-1a).
fn hash_label(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl SimRng {
    /// Creates a stream from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut s = seed;
        let mut state = [0u64; 4];
        for slot in &mut state {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            *slot = splitmix64(s);
        }
        SimRng { state, seed }
    }

    /// The seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Forks an independent substream identified by a label.
    ///
    /// Forking is a pure function of `(self.seed, label)` — it does not
    /// consume state from `self`, so fork order is irrelevant.
    pub fn fork(&self, label: &str) -> SimRng {
        SimRng::seed_from_u64(splitmix64(self.seed ^ hash_label(label)))
    }

    /// Forks an independent substream identified by a label and index.
    pub fn fork_indexed(&self, label: &str, index: u64) -> SimRng {
        SimRng::seed_from_u64(splitmix64(
            self.seed ^ hash_label(label) ^ splitmix64(index.wrapping_add(1)),
        ))
    }

    /// Raw 64-bit output (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 high bits → [0, 1) with full double precision.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is not finite.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "invalid range");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)` (unbiased via rejection).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn uniform_u64(&mut self, n: u64) -> u64 {
        assert!(n > 0, "uniform_u64: n must be positive");
        // Lemire-style rejection for unbiased bounded output.
        let threshold = n.wrapping_neg() % n;
        loop {
            let x = self.next_u64();
            let (hi, lo) = {
                let wide = u128::from(x) * u128::from(n);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= threshold {
                return hi;
            }
        }
    }

    /// Uniform index into a slice of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn pick_index(&mut self, len: usize) -> usize {
        assert!(len > 0, "pick_index: empty slice");
        self.uniform_u64(len as u64) as usize
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.uniform() < p
    }

    /// Exponentially distributed waiting time with the given rate (events per
    /// unit time). Returns `f64::INFINITY` when the rate is zero.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is negative or NaN.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate >= 0.0, "exponential: rate must be non-negative");
        if rate == 0.0 {
            return f64::INFINITY;
        }
        let u = self.uniform();
        // u in [0,1): 1-u in (0,1], so ln is finite.
        -(1.0 - u).ln() / rate
    }

    /// Standard normal draw (Box–Muller).
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = loop {
            let u = self.uniform();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Normal draw with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "normal: std_dev must be non-negative");
        mean + std_dev * self.standard_normal()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.uniform_u64(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = SimRng::seed_from_u64(11);
        let _ = a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn forks_are_independent_of_parent_consumption() {
        let parent = SimRng::seed_from_u64(1);
        let mut consumed = parent.clone();
        let _ = consumed.uniform();
        let f1 = parent.fork("market");
        let f2 = consumed.fork("market");
        assert_eq!(f1.seed(), f2.seed(), "fork must not depend on parent state");
    }

    #[test]
    fn distinct_labels_give_distinct_streams() {
        let parent = SimRng::seed_from_u64(1);
        assert_ne!(parent.fork("a").seed(), parent.fork("b").seed());
        assert_ne!(
            parent.fork_indexed("w", 0).seed(),
            parent.fork_indexed("w", 1).seed()
        );
    }

    #[test]
    fn uniform_is_in_unit_interval() {
        let mut rng = SimRng::seed_from_u64(8);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_u64_covers_small_ranges() {
        let mut rng = SimRng::seed_from_u64(12);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.uniform_u64(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn exponential_mean_is_inverse_rate() {
        let mut rng = SimRng::seed_from_u64(9);
        let rate = 0.25;
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(rate)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.15, "mean {mean} far from 4.0");
    }

    #[test]
    fn exponential_zero_rate_never_fires() {
        let mut rng = SimRng::seed_from_u64(2);
        assert_eq!(rng.exponential(0.0), f64::INFINITY);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from_u64(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        // Out-of-range probabilities clamp instead of panicking.
        assert!(rng.chance(2.0));
        assert!(!rng.chance(-1.0));
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut rng = SimRng::seed_from_u64(4);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn pick_index_in_bounds() {
        let mut rng = SimRng::seed_from_u64(6);
        for _ in 0..1000 {
            assert!(rng.pick_index(7) < 7);
        }
    }
}
