//! The simulation engine: drives a [`Model`] by delivering events in time
//! order until the queue drains or a horizon is reached.

use crate::event::{EventQueue, EventToken};
use crate::time::{SimDuration, SimTime};

/// A discrete-event model.
///
/// The engine owns the clock and queue; the model reacts to each event and
/// may schedule further events through the [`Scheduler`] it is handed.
pub trait Model {
    /// The event alphabet of the model.
    type Event;

    /// Reacts to `event` occurring at `now`.
    fn handle(&mut self, now: SimTime, event: Self::Event, scheduler: &mut Scheduler<'_, Self::Event>);
}

/// Scheduling capability handed to [`Model::handle`].
#[derive(Debug)]
pub struct Scheduler<'a, E> {
    queue: &'a mut EventQueue<E>,
    now: SimTime,
}

impl<'a, E> Scheduler<'a, E> {
    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire `delay` after now.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventToken {
        self.queue.schedule(self.now + delay, event)
    }

    /// Schedules `event` at an absolute instant.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the current instant; time travel would break
    /// determinism.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventToken {
        assert!(
            at >= self.now,
            "schedule_at: {at} precedes current time {}",
            self.now
        );
        self.queue.schedule(at, event)
    }

    /// Cancels a previously scheduled event.
    pub fn cancel(&mut self, token: EventToken) -> bool {
        self.queue.cancel(token)
    }
}

/// Outcome of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained.
    Drained,
    /// The horizon was reached with events still pending.
    HorizonReached,
    /// The model requested an early stop (via [`Simulation::run_until`]'s
    /// predicate).
    Stopped,
}

/// A running simulation: clock + queue + model.
///
/// # Examples
///
/// ```
/// use sim_kernel::{Model, RunOutcome, Scheduler, SimDuration, SimTime, Simulation};
///
/// struct Counter(u32);
///
/// impl Model for Counter {
///     type Event = ();
///     fn handle(&mut self, _now: SimTime, _ev: (), s: &mut Scheduler<'_, ()>) {
///         self.0 += 1;
///         if self.0 < 3 {
///             s.schedule_in(SimDuration::from_secs(1), ());
///         }
///     }
/// }
///
/// let mut sim = Simulation::new(Counter(0));
/// sim.schedule_at(SimTime::ZERO, ());
/// assert_eq!(sim.run(), RunOutcome::Drained);
/// assert_eq!(sim.model().0, 3);
/// assert_eq!(sim.now(), SimTime::from_secs(2));
/// ```
#[derive(Debug)]
pub struct Simulation<M: Model> {
    queue: EventQueue<M::Event>,
    model: M,
    now: SimTime,
    delivered: u64,
}

impl<M: Model> Simulation<M> {
    /// Creates a simulation at the epoch with an empty queue.
    pub fn new(model: M) -> Self {
        Simulation {
            queue: EventQueue::new(),
            model,
            now: SimTime::ZERO,
            delivered: 0,
        }
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events delivered so far.
    pub fn events_delivered(&self) -> u64 {
        self.delivered
    }

    /// Borrows the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutably borrows the model.
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consumes the simulation, returning the model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Schedules an initial event at an absolute time.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the current instant.
    pub fn schedule_at(&mut self, at: SimTime, event: M::Event) -> EventToken {
        assert!(at >= self.now, "schedule_at precedes current time");
        self.queue.schedule(at, event)
    }

    /// Delivers a single event, if one is pending. Returns `false` when the
    /// queue is empty.
    pub fn step(&mut self) -> bool {
        match self.queue.pop() {
            Some((time, event)) => {
                debug_assert!(time >= self.now, "event queue went backwards");
                self.now = time;
                self.delivered += 1;
                let mut scheduler = Scheduler {
                    queue: &mut self.queue,
                    now: self.now,
                };
                self.model.handle(time, event, &mut scheduler);
                true
            }
            None => false,
        }
    }

    /// Runs until the queue drains.
    pub fn run(&mut self) -> RunOutcome {
        while self.step() {}
        RunOutcome::Drained
    }

    /// Runs until the queue drains or the next event would fire after
    /// `horizon` (the clock never advances past the horizon).
    pub fn run_until_horizon(&mut self, horizon: SimTime) -> RunOutcome {
        loop {
            match self.queue.peek_time() {
                None => return RunOutcome::Drained,
                Some(t) if t > horizon => return RunOutcome::HorizonReached,
                Some(_) => {
                    self.step();
                }
            }
        }
    }

    /// Runs until the queue drains or `stop` returns `true` (checked after
    /// each delivered event).
    pub fn run_until<F>(&mut self, mut stop: F) -> RunOutcome
    where
        F: FnMut(&M) -> bool,
    {
        loop {
            if !self.step() {
                return RunOutcome::Drained;
            }
            if stop(&self.model) {
                return RunOutcome::Stopped;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Recorder {
        seen: Vec<(SimTime, u32)>,
    }

    impl Model for Recorder {
        type Event = u32;
        fn handle(&mut self, now: SimTime, ev: u32, s: &mut Scheduler<'_, u32>) {
            self.seen.push((now, ev));
            if ev == 1 {
                // Chain an event two seconds later.
                s.schedule_in(SimDuration::from_secs(2), 99);
            }
        }
    }

    #[test]
    fn events_deliver_in_order_and_chain() {
        let mut sim = Simulation::new(Recorder { seen: Vec::new() });
        sim.schedule_at(SimTime::from_secs(5), 2);
        sim.schedule_at(SimTime::from_secs(1), 1);
        assert_eq!(sim.run(), RunOutcome::Drained);
        assert_eq!(
            sim.model().seen,
            vec![
                (SimTime::from_secs(1), 1),
                (SimTime::from_secs(3), 99),
                (SimTime::from_secs(5), 2)
            ]
        );
        assert_eq!(sim.events_delivered(), 3);
    }

    #[test]
    fn horizon_stops_clock() {
        let mut sim = Simulation::new(Recorder { seen: Vec::new() });
        sim.schedule_at(SimTime::from_secs(1), 0);
        sim.schedule_at(SimTime::from_secs(100), 0);
        assert_eq!(
            sim.run_until_horizon(SimTime::from_secs(10)),
            RunOutcome::HorizonReached
        );
        assert_eq!(sim.now(), SimTime::from_secs(1));
        assert_eq!(sim.model().seen.len(), 1);
    }

    #[test]
    fn run_until_predicate_stops_early() {
        let mut sim = Simulation::new(Recorder { seen: Vec::new() });
        for i in 0..10 {
            sim.schedule_at(SimTime::from_secs(i), 0);
        }
        let out = sim.run_until(|m| m.seen.len() == 4);
        assert_eq!(out, RunOutcome::Stopped);
        assert_eq!(sim.model().seen.len(), 4);
    }

    #[test]
    #[should_panic(expected = "schedule_at")]
    fn scheduling_in_the_past_panics() {
        let mut sim = Simulation::new(Recorder { seen: Vec::new() });
        sim.schedule_at(SimTime::from_secs(10), 1);
        sim.step();
        // now == 10; scheduling at 3 must panic.
        sim.schedule_at(SimTime::from_secs(3), 1);
    }
}
