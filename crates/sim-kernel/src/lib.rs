//! # sim-kernel
//!
//! A deterministic discrete-event simulation kernel. It is the foundation of
//! the SpotVerse reproduction: the cloud market, the compute substrate, the
//! serverless stack, and the Galaxy-like workflow engine all advance on this
//! kernel's clock and draw randomness from its forkable seeded streams.
//!
//! Design goals:
//!
//! * **Determinism** — equal-time events are delivered in scheduling order,
//!   and every stochastic component owns an independent [`SimRng`] stream
//!   forked from the experiment seed, so results are reproducible
//!   bit-for-bit and strategies can be compared on identical market
//!   trajectories.
//! * **Unit safety** — [`SimTime`] / [`SimDuration`] newtypes keep instants
//!   and spans apart (the paper mixes two-minute interruption notices with
//!   multi-day traces).
//! * **Reporting** — [`RunningStats`], [`TimeSeries`], and
//!   [`CumulativeCounter`] capture exactly the quantities the paper plots.
//!
//! # Examples
//!
//! ```
//! use sim_kernel::{Model, Scheduler, SimDuration, SimTime, Simulation};
//!
//! /// Counts pings, re-arming itself once.
//! struct Ping(u32);
//!
//! impl Model for Ping {
//!     type Event = &'static str;
//!     fn handle(&mut self, _t: SimTime, ev: &'static str, s: &mut Scheduler<'_, &'static str>) {
//!         self.0 += 1;
//!         if ev == "first" {
//!             s.schedule_in(SimDuration::from_mins(2), "second");
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(Ping(0));
//! sim.schedule_at(SimTime::ZERO, "first");
//! sim.run();
//! assert_eq!(sim.model().0, 2);
//! assert_eq!(sim.now(), SimTime::from_secs(120));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod engine;
mod event;
mod rng;
mod series;
mod stats;
mod time;
mod trace;

pub use engine::{Model, RunOutcome, Scheduler, Simulation};
pub use event::{EventQueue, EventToken};
pub use rng::SimRng;
pub use series::{CumulativeCounter, TimeSeries};
pub use stats::{percentile, Histogram, RunningStats};
pub use time::{SimDuration, SimTime};
pub use trace::RingBuffer;
