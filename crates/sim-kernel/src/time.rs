//! Simulated time: [`SimTime`] instants and [`SimDuration`] spans.
//!
//! The kernel measures time in whole simulated seconds. Newtypes keep
//! instants and spans statically distinct (paper experiments mix hours-long
//! workloads with two-minute interruption notices, so unit confusion is a
//! real hazard).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An instant in simulated time, in whole seconds since the simulation epoch.
///
/// # Examples
///
/// ```
/// use sim_kernel::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_hours(10);
/// assert_eq!(t.as_secs(), 36_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of simulated time, in whole seconds.
///
/// # Examples
///
/// ```
/// use sim_kernel::SimDuration;
///
/// let d = SimDuration::from_mins(2);
/// assert_eq!(d.as_secs(), 120);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant `secs` seconds after the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs)
    }

    /// Creates an instant `hours` hours after the epoch.
    pub const fn from_hours(hours: u64) -> Self {
        SimTime(hours * 3600)
    }

    /// Creates an instant `days` days after the epoch.
    pub const fn from_days(days: u64) -> Self {
        SimTime(days * 86_400)
    }

    /// Seconds since the epoch.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// Hours since the epoch, as a float (useful for reporting).
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3600.0
    }

    /// Whole days since the epoch (truncating).
    pub const fn as_days(self) -> u64 {
        self.0 / 86_400
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; simulated clocks never run
    /// backwards, so this indicates a logic error in the caller.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("duration_since: `earlier` is later than `self`"),
        )
    }

    /// The span from `earlier` to `self`, or [`SimDuration::ZERO`] if
    /// `earlier` is later.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Returns the earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs)
    }

    /// Creates a span of `mins` minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60)
    }

    /// Creates a span of `hours` hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3600)
    }

    /// Creates a span of `days` days.
    pub const fn from_days(days: u64) -> Self {
        SimDuration(days * 86_400)
    }

    /// Creates a span from fractional hours, rounding to the nearest second.
    ///
    /// # Panics
    ///
    /// Panics if `hours` is negative or not finite.
    pub fn from_hours_f64(hours: f64) -> Self {
        assert!(
            hours.is_finite() && hours >= 0.0,
            "from_hours_f64: hours must be finite and non-negative, got {hours}"
        );
        SimDuration((hours * 3600.0).round() as u64)
    }

    /// The span in whole seconds.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// The span in fractional hours.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3600.0
    }

    /// True if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction of spans.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Returns the smaller of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Returns the larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;

    /// # Panics
    ///
    /// Panics if the result would precede the epoch.
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime - SimDuration precedes the epoch"),
        )
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    /// # Panics
    ///
    /// Panics if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    /// # Panics
    ///
    /// Panics if `rhs` is longer than `self`.
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.0;
        let (d, rem) = (total / 86_400, total % 86_400);
        let (h, rem) = (rem / 3600, rem % 3600);
        let (m, s) = (rem / 60, rem % 60);
        if d > 0 {
            write!(f, "{d}d{h:02}h{m:02}m{s:02}s")
        } else if h > 0 {
            write!(f, "{h}h{m:02}m{s:02}s")
        } else if m > 0 {
            write!(f, "{m}m{s:02}s")
        } else {
            write!(f, "{s}s")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree_on_units() {
        assert_eq!(SimDuration::from_mins(1).as_secs(), 60);
        assert_eq!(SimDuration::from_hours(2).as_secs(), 7200);
        assert_eq!(SimDuration::from_days(1), SimDuration::from_hours(24));
        assert_eq!(SimTime::from_hours(3), SimTime::from_secs(10_800));
        assert_eq!(SimTime::from_days(2).as_days(), 2);
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t0 = SimTime::from_secs(100);
        let d = SimDuration::from_secs(42);
        let t1 = t0 + d;
        assert_eq!(t1 - t0, d);
        assert_eq!(t1 - d, t0);
    }

    #[test]
    fn saturating_duration_since_clamps() {
        let early = SimTime::from_secs(5);
        let late = SimTime::from_secs(9);
        assert_eq!(early.saturating_duration_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_duration_since(early).as_secs(), 4);
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn duration_since_panics_on_backwards_clock() {
        let _ = SimTime::from_secs(1).duration_since(SimTime::from_secs(2));
    }

    #[test]
    fn from_hours_f64_rounds_to_seconds() {
        assert_eq!(SimDuration::from_hours_f64(0.5).as_secs(), 1800);
        assert_eq!(SimDuration::from_hours_f64(10.25).as_secs(), 36_900);
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(SimDuration::from_secs(59).to_string(), "59s");
        assert_eq!(SimDuration::from_secs(61).to_string(), "1m01s");
        assert_eq!(SimDuration::from_hours(25).to_string(), "1d01h00m00s");
        assert_eq!(SimTime::from_hours(1).to_string(), "t+1h00m00s");
    }

    #[test]
    fn min_max_order_correctly() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let x = SimDuration::from_secs(1);
        let y = SimDuration::from_secs(2);
        assert_eq!(x.max(y), y);
        assert_eq!(x.min(y), x);
    }

    #[test]
    fn as_hours_f64_matches_seconds() {
        assert_eq!(SimDuration::from_hours(3).as_hours_f64(), 3.0);
        assert_eq!(SimTime::from_hours(3).as_hours_f64(), 3.0);
    }
}
