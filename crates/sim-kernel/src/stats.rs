//! Online statistics used by experiment reports: running moments, quantiles,
//! and fixed-bin histograms.

use serde::{Deserialize, Serialize};

/// Welford running mean/variance with min/max tracking.
///
/// # Examples
///
/// ```
/// use sim_kernel::RunningStats;
///
/// let stats: RunningStats = [2.0, 4.0, 6.0].into_iter().collect();
/// assert_eq!(stats.mean(), 4.0);
/// assert_eq!(stats.min(), Some(2.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    total: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            total: 0.0,
        }
    }

    /// Records an observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN; a NaN observation would silently poison every
    /// downstream statistic.
    pub fn record(&mut self, x: f64) {
        assert!(!x.is_nan(), "RunningStats::record: NaN observation");
        self.count += 1;
        self.total += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Mean of observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0.0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation, if any.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, if any.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total_n = n1 + n2;
        self.mean += delta * n2 / total_n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total_n;
        self.count += other.count;
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = RunningStats::new();
        for x in iter {
            s.record(x);
        }
        s
    }
}

impl Extend<f64> for RunningStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.record(x);
        }
    }
}

/// Linear-interpolated percentile of a sample (sorts a copy).
///
/// Returns `None` for an empty sample.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]` or any value is NaN.
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("percentile: NaN value"));
    if sorted.len() == 1 {
        return Some(sorted[0]);
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// Fixed-width histogram over `[lo, hi)` with out-of-range overflow bins.
///
/// # Examples
///
/// ```
/// use sim_kernel::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// h.record(1.0);
/// h.record(9.5);
/// assert_eq!(h.bin_counts()[0], 1);
/// assert_eq!(h.bin_counts()[4], 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi, "Histogram: lo must be < hi");
        assert!(bins > 0, "Histogram: need at least one bin");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records an observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Per-bin counts.
    pub fn bin_counts(&self) -> &[u64] {
        &self.bins
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range's upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations, including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_basic_moments() {
        let s: RunningStats = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
        assert_eq!(s.count(), 4);
        assert_eq!(s.mean(), 2.5);
        assert!((s.variance() - 1.25).abs() < 1e-12);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(4.0));
        assert_eq!(s.total(), 10.0);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let sequential: RunningStats = data.iter().copied().collect();
        let mut left: RunningStats = data[..37].iter().copied().collect();
        let right: RunningStats = data[37..].iter().copied().collect();
        left.merge(&right);
        assert_eq!(left.count(), sequential.count());
        assert!((left.mean() - sequential.mean()).abs() < 1e-9);
        assert!((left.variance() - sequential.variance()).abs() < 1e-9);
        assert_eq!(left.min(), sequential.min());
        assert_eq!(left.max(), sequential.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: RunningStats = [5.0].into_iter().collect();
        s.merge(&RunningStats::new());
        assert_eq!(s.count(), 1);
        let mut e = RunningStats::new();
        e.merge(&s);
        assert_eq!(e.mean(), 5.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_observation_panics() {
        RunningStats::new().record(f64::NAN);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&v, 0.0), Some(10.0));
        assert_eq!(percentile(&v, 100.0), Some(40.0));
        assert_eq!(percentile(&v, 50.0), Some(25.0));
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(percentile(&[7.0], 99.0), Some(7.0));
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [-1.0, 0.0, 0.5, 5.0, 9.999, 10.0, 50.0] {
            h.record(x);
        }
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.bin_counts()[0], 2); // 0.0 and 0.5
        assert_eq!(h.bin_counts()[5], 1);
        assert_eq!(h.bin_counts()[9], 1);
        assert_eq!(h.total(), 7);
    }
}
