//! The deterministic event queue.
//!
//! Events scheduled at the same instant are delivered in the order they were
//! scheduled (FIFO tie-break via a monotone sequence number), which makes
//! whole-simulation runs reproducible bit-for-bit for a given seed.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::time::SimTime;

/// Handle to a scheduled event, usable to cancel it before it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventToken(u64);

#[derive(Debug)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered queue of simulation events.
///
/// Cancellation is lazy: cancelled tokens are remembered and the matching
/// entries are skipped when popped.
///
/// # Examples
///
/// ```
/// use sim_kernel::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(10), "late");
/// q.schedule(SimTime::from_secs(5), "early");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(5), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(10), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    cancelled: HashSet<u64>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at `time` and returns a cancellation token.
    ///
    /// Events at equal times fire in scheduling order.
    pub fn schedule(&mut self, time: SimTime, event: E) -> EventToken {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
        EventToken(seq)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the token had not already fired or been cancelled.
    /// Cancelling an already-delivered event is a silent no-op that returns
    /// `false`.
    pub fn cancel(&mut self, token: EventToken) -> bool {
        if token.0 >= self.next_seq {
            return false;
        }
        self.cancelled.insert(token.0)
    }

    /// Removes and returns the earliest live event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            return Some((entry.time, entry.event));
        }
        None
    }

    /// The firing time of the earliest live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drop cancelled heads so the peek is accurate.
        while let Some(head) = self.heap.peek() {
            if self.cancelled.contains(&head.seq) {
                let seq = head.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
            } else {
                return Some(head.time);
            }
        }
        None
    }

    /// Number of scheduled entries, including not-yet-skipped cancellations.
    pub fn len(&self) -> usize {
        self.heap.len().saturating_sub(self.cancelled.len())
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 'c');
        q.schedule(SimTime::from_secs(1), 'a');
        q.schedule(SimTime::from_secs(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(7);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation_skips_event() {
        let mut q = EventQueue::new();
        let keep = q.schedule(SimTime::from_secs(1), "keep");
        let drop = q.schedule(SimTime::from_secs(2), "drop");
        assert!(q.cancel(drop));
        assert!(!q.cancel(drop), "double-cancel reports false");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "keep")));
        assert_eq!(q.pop(), None);
        // Cancelling after delivery is a no-op.
        assert!(!q.cancel(keep) || q.pop().is_none());
    }

    #[test]
    fn peek_time_sees_through_cancellations() {
        let mut q = EventQueue::new();
        let first = q.schedule(SimTime::from_secs(1), ());
        q.schedule(SimTime::from_secs(5), ());
        q.cancel(first);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), ());
        q.schedule(SimTime::from_secs(2), ());
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_unknown_token_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventToken(99)));
    }
}
