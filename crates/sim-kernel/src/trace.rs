//! A bounded, deterministic event collector for trace records.
//!
//! Simulations emit a stream of typed observability records; a
//! [`RingBuffer`] caps how many are retained so a pathological run cannot
//! exhaust memory. Unlike a classic overwrite-oldest ring, this buffer
//! keeps the **first** `capacity` records and counts the rest as dropped:
//! a trace prefix is stable no matter how long the run goes on, which is
//! what golden-trace comparisons need (an overwrite-oldest ring would make
//! the retained window depend on total run length).
//!
//! Each sweep cell owns its buffer and fills it from a single worker
//! thread, so no synchronization is needed; cross-cell determinism comes
//! from merging per-cell buffers in cell order after the sweep joins.

/// A bounded collector that retains the first `capacity` items pushed and
/// counts any overflow in [`RingBuffer::dropped`].
#[derive(Debug, Clone)]
pub struct RingBuffer<T> {
    capacity: usize,
    items: Vec<T>,
    dropped: u64,
}

impl<T> RingBuffer<T> {
    /// Creates an empty buffer retaining at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "RingBuffer capacity must be positive");
        Self {
            capacity,
            // Traces are usually far smaller than the cap; grow on demand.
            items: Vec::new(),
            dropped: 0,
        }
    }

    /// Appends `item` if there is room; returns `false` (and bumps the
    /// dropped count) once the buffer is full.
    pub fn push(&mut self, item: T) -> bool {
        if self.items.len() < self.capacity {
            self.items.push(item);
            true
        } else {
            self.dropped += 1;
            false
        }
    }

    /// Number of retained items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing has been retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The retention cap this buffer was built with.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many pushes were rejected because the buffer was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates the retained items in push order.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.items.iter()
    }

    /// Consumes the buffer, yielding the retained items (in push order)
    /// and the dropped count.
    #[must_use]
    pub fn into_parts(self) -> (Vec<T>, u64) {
        (self.items, self.dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_first_n_and_counts_overflow() {
        let mut ring = RingBuffer::new(3);
        assert!(ring.is_empty());
        for i in 0..5 {
            let accepted = ring.push(i);
            assert_eq!(accepted, i < 3);
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        assert_eq!(ring.capacity(), 3);
        let (items, dropped) = ring.into_parts();
        assert_eq!(items, vec![0, 1, 2]);
        assert_eq!(dropped, 2);
    }

    #[test]
    fn iter_preserves_push_order() {
        let mut ring = RingBuffer::new(8);
        for word in ["a", "b", "c"] {
            ring.push(word);
        }
        let collected: Vec<&str> = ring.iter().copied().collect();
        assert_eq!(collected, vec!["a", "b", "c"]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = RingBuffer::<u8>::new(0);
    }
}
