//! Time-series recording for experiment figures: sampled series and
//! cumulative event counters (e.g. "cumulative interruptions over elapsed
//! time", Figure 7 of the paper).

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// An append-only `(time, value)` series.
///
/// Points must be appended in non-decreasing time order.
///
/// # Examples
///
/// ```
/// use sim_kernel::{SimTime, TimeSeries};
///
/// let mut s = TimeSeries::new("price");
/// s.push(SimTime::from_secs(0), 1.0);
/// s.push(SimTime::from_secs(10), 2.0);
/// assert_eq!(s.value_at(SimTime::from_secs(5)), Some(1.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    name: String,
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series with a display name.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// The series' display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a point.
    ///
    /// # Panics
    ///
    /// Panics if `time` precedes the last appended point, or `value` is NaN.
    pub fn push(&mut self, time: SimTime, value: f64) {
        assert!(!value.is_nan(), "TimeSeries::push: NaN value");
        if let Some(&(last, _)) = self.points.last() {
            assert!(time >= last, "TimeSeries::push: time went backwards");
        }
        self.points.push((time, value));
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the series has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Iterates over `(time, value)` points.
    pub fn iter(&self) -> std::slice::Iter<'_, (SimTime, f64)> {
        self.points.iter()
    }

    /// The last point, if any.
    pub fn last(&self) -> Option<(SimTime, f64)> {
        self.points.last().copied()
    }

    /// Step-function value at `time`: the value of the latest point at or
    /// before `time`, or `None` if `time` precedes the first point.
    pub fn value_at(&self, time: SimTime) -> Option<f64> {
        match self.points.partition_point(|&(t, _)| t <= time) {
            0 => None,
            n => Some(self.points[n - 1].1),
        }
    }

    /// Resamples the step function at a fixed period over `[start, end]`
    /// inclusive; instants before the first point carry the first point's
    /// value.
    ///
    /// # Panics
    ///
    /// Panics if the series is empty, `start > end`, or `period` is zero.
    pub fn resample(
        &self,
        start: SimTime,
        end: SimTime,
        period: crate::time::SimDuration,
    ) -> Vec<(SimTime, f64)> {
        assert!(!self.points.is_empty(), "resample: empty series");
        assert!(start <= end, "resample: start after end");
        assert!(!period.is_zero(), "resample: zero period");
        let first_value = self.points[0].1;
        let mut out = Vec::new();
        let mut t = start;
        loop {
            out.push((t, self.value_at(t).unwrap_or(first_value)));
            if t >= end {
                break;
            }
            t += period;
        }
        out
    }

    /// Time-weighted mean of the step function between the first and last
    /// points. Returns the single value for a one-point series.
    ///
    /// # Panics
    ///
    /// Panics if the series is empty.
    pub fn time_weighted_mean(&self) -> f64 {
        assert!(!self.points.is_empty(), "time_weighted_mean: empty series");
        if self.points.len() == 1 {
            return self.points[0].1;
        }
        let mut weighted = 0.0;
        let mut total_secs = 0.0;
        for pair in self.points.windows(2) {
            let (t0, v0) = pair[0];
            let (t1, _) = pair[1];
            let dt = (t1 - t0).as_secs() as f64;
            weighted += v0 * dt;
            total_secs += dt;
        }
        if total_secs == 0.0 {
            self.points[0].1
        } else {
            weighted / total_secs
        }
    }
}

impl<'a> IntoIterator for &'a TimeSeries {
    type Item = &'a (SimTime, f64);
    type IntoIter = std::slice::Iter<'a, (SimTime, f64)>;

    fn into_iter(self) -> Self::IntoIter {
        self.points.iter()
    }
}

/// A monotone event counter that records its own trajectory.
///
/// # Examples
///
/// ```
/// use sim_kernel::{CumulativeCounter, SimTime};
///
/// let mut c = CumulativeCounter::new("interruptions");
/// c.increment(SimTime::from_secs(60));
/// c.increment(SimTime::from_secs(120));
/// assert_eq!(c.count(), 2);
/// assert_eq!(c.series().last().map(|(_, v)| v), Some(2.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CumulativeCounter {
    count: u64,
    series: TimeSeries,
}

impl CumulativeCounter {
    /// Creates a zeroed counter.
    pub fn new(name: impl Into<String>) -> Self {
        CumulativeCounter {
            count: 0,
            series: TimeSeries::new(name),
        }
    }

    /// Increments by one at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` precedes the previous increment.
    pub fn increment(&mut self, time: SimTime) {
        self.add(time, 1);
    }

    /// Increments by `n` at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` precedes the previous increment.
    pub fn add(&mut self, time: SimTime, n: u64) {
        self.count += n;
        self.series.push(time, self.count as f64);
    }

    /// Current count.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The recorded trajectory.
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn value_at_is_a_step_function() {
        let mut s = TimeSeries::new("x");
        s.push(SimTime::from_secs(10), 1.0);
        s.push(SimTime::from_secs(20), 2.0);
        assert_eq!(s.value_at(SimTime::from_secs(5)), None);
        assert_eq!(s.value_at(SimTime::from_secs(10)), Some(1.0));
        assert_eq!(s.value_at(SimTime::from_secs(15)), Some(1.0));
        assert_eq!(s.value_at(SimTime::from_secs(20)), Some(2.0));
        assert_eq!(s.value_at(SimTime::from_secs(999)), Some(2.0));
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn non_monotone_push_panics() {
        let mut s = TimeSeries::new("x");
        s.push(SimTime::from_secs(10), 1.0);
        s.push(SimTime::from_secs(5), 2.0);
    }

    #[test]
    fn resample_covers_requested_window() {
        let mut s = TimeSeries::new("x");
        s.push(SimTime::from_secs(10), 1.0);
        s.push(SimTime::from_secs(30), 3.0);
        let samples = s.resample(
            SimTime::ZERO,
            SimTime::from_secs(40),
            SimDuration::from_secs(10),
        );
        let values: Vec<f64> = samples.iter().map(|&(_, v)| v).collect();
        assert_eq!(values, vec![1.0, 1.0, 1.0, 3.0, 3.0]);
    }

    #[test]
    fn time_weighted_mean_weights_by_span() {
        let mut s = TimeSeries::new("x");
        s.push(SimTime::from_secs(0), 0.0);
        s.push(SimTime::from_secs(90), 10.0); // 0.0 held for 90 s
        s.push(SimTime::from_secs(100), 0.0); // 10.0 held for 10 s
        let mean = s.time_weighted_mean();
        assert!((mean - 1.0).abs() < 1e-12, "mean {mean}");
    }

    #[test]
    fn counter_trajectory_is_monotone() {
        let mut c = CumulativeCounter::new("n");
        c.increment(SimTime::from_secs(1));
        c.add(SimTime::from_secs(2), 3);
        assert_eq!(c.count(), 4);
        let values: Vec<f64> = c.series().iter().map(|&(_, v)| v).collect();
        assert_eq!(values, vec![1.0, 4.0]);
    }

    #[test]
    fn series_iteration() {
        let mut s = TimeSeries::new("x");
        s.push(SimTime::from_secs(1), 1.0);
        assert_eq!((&s).into_iter().count(), 1);
        assert_eq!(s.iter().count(), 1);
        assert_eq!(s.name(), "x");
        assert!(!s.is_empty());
        assert_eq!(s.len(), 1);
    }
}
