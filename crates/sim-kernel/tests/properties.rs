//! Property-based tests for the simulation kernel's core invariants.

use proptest::prelude::*;
use sim_kernel::{percentile, EventQueue, RunningStats, SimDuration, SimRng, SimTime, TimeSeries};

proptest! {
    /// The queue always delivers events in non-decreasing time order, and
    /// equal-time events in scheduling (FIFO) order.
    #[test]
    fn queue_delivers_in_time_then_fifo_order(times in prop::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_secs(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        let mut delivered = 0;
        while let Some((t, idx)) = q.pop() {
            delivered += 1;
            if let Some((lt, lidx)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(idx > lidx, "FIFO violated at equal time");
                }
            }
            last = Some((t, idx));
        }
        prop_assert_eq!(delivered, times.len());
    }

    /// Cancelling an arbitrary subset delivers exactly the complement.
    #[test]
    fn cancellation_delivers_exact_complement(
        times in prop::collection::vec(0u64..100, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let tokens: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (i, q.schedule(SimTime::from_secs(t), i)))
            .collect();
        let mut expected: Vec<usize> = Vec::new();
        for (i, token) in &tokens {
            if cancel_mask.get(*i).copied().unwrap_or(false) {
                q.cancel(*token);
            } else {
                expected.push(*i);
            }
        }
        let mut seen: Vec<usize> = Vec::new();
        while let Some((_, idx)) = q.pop() {
            seen.push(idx);
        }
        seen.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(seen, expected);
    }

    /// Welford merge equals sequential accumulation.
    #[test]
    fn stats_merge_is_associative_with_sequential(
        left in prop::collection::vec(-1e6f64..1e6, 0..100),
        right in prop::collection::vec(-1e6f64..1e6, 0..100),
    ) {
        let sequential: RunningStats = left.iter().chain(right.iter()).copied().collect();
        let mut merged: RunningStats = left.iter().copied().collect();
        merged.merge(&right.iter().copied().collect());
        prop_assert_eq!(merged.count(), sequential.count());
        if sequential.count() > 0 {
            prop_assert!((merged.mean() - sequential.mean()).abs() < 1e-6 * (1.0 + sequential.mean().abs()));
            prop_assert!((merged.variance() - sequential.variance()).abs() < 1e-4 * (1.0 + sequential.variance().abs()));
        }
    }

    /// Percentiles are monotone in `p` and bracketed by min/max.
    #[test]
    fn percentile_is_monotone_and_bounded(values in prop::collection::vec(-1e9f64..1e9, 1..200)) {
        let p25 = percentile(&values, 25.0).unwrap();
        let p50 = percentile(&values, 50.0).unwrap();
        let p75 = percentile(&values, 75.0).unwrap();
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(p25 <= p50 && p50 <= p75);
        prop_assert!(lo <= p25 && p75 <= hi);
    }

    /// Step-function lookups return the most recent value.
    #[test]
    fn time_series_value_at_matches_linear_scan(
        deltas in prop::collection::vec(1u64..100, 1..50),
        query in 0u64..6000,
    ) {
        let mut series = TimeSeries::new("p");
        let mut t = 0u64;
        let mut points = Vec::new();
        for (i, d) in deltas.iter().enumerate() {
            t += d;
            series.push(SimTime::from_secs(t), i as f64);
            points.push((t, i as f64));
        }
        let expected = points
            .iter()
            .rev()
            .find(|&&(pt, _)| pt <= query)
            .map(|&(_, v)| v);
        prop_assert_eq!(series.value_at(SimTime::from_secs(query)), expected);
    }

    /// Forked RNG streams with distinct indices are distinct; equal indices
    /// are equal regardless of parent consumption.
    #[test]
    fn rng_forks_are_stable(seed in any::<u64>(), i in 0u64..1000, j in 0u64..1000) {
        let parent = SimRng::seed_from_u64(seed);
        let mut consumed = parent.clone();
        let _ = consumed.uniform();
        let a = parent.fork_indexed("stream", i);
        let b = consumed.fork_indexed("stream", i);
        prop_assert_eq!(a.seed(), b.seed());
        if i != j {
            prop_assert_ne!(a.seed(), parent.fork_indexed("stream", j).seed());
        }
    }

    /// Exponential samples are non-negative and finite for positive rates.
    #[test]
    fn exponential_samples_are_valid(seed in any::<u64>(), rate in 0.001f64..10.0) {
        let mut rng = SimRng::seed_from_u64(seed);
        for _ in 0..100 {
            let x = rng.exponential(rate);
            prop_assert!(x.is_finite() && x >= 0.0);
        }
    }

    /// Duration arithmetic: (t + d) - t == d for all t, d.
    #[test]
    fn time_arithmetic_roundtrips(t in 0u64..u32::MAX as u64, d in 0u64..u32::MAX as u64) {
        let t0 = SimTime::from_secs(t);
        let dur = SimDuration::from_secs(d);
        prop_assert_eq!((t0 + dur) - t0, dur);
        prop_assert_eq!((t0 + dur) - dur, t0);
    }
}
