//! A Planemo-like runner: headless workflow execution against a Galaxy
//! instance.
//!
//! The paper's user-data script uses Planemo and the Galaxy API to launch
//! workloads at instance boot (§4). This runner reproduces that path:
//! authenticate with the API key, verify every referenced tool is
//! installed, create a history, and execute the workflow's steps in order,
//! appending each step's output dataset to the history.

use std::fmt;

use sim_kernel::{SimDuration, SimTime};

use crate::galaxy::{GalaxyError, GalaxyInstance};
use crate::workflow::Workflow;

/// One executed step in the run report.
#[derive(Debug, Clone, PartialEq)]
pub struct StepTiming {
    /// The step label.
    pub label: String,
    /// When the step started.
    pub started_at: SimTime,
    /// When the step finished.
    pub finished_at: SimTime,
}

/// The result of a completed Planemo run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// History index the outputs were written to.
    pub history: usize,
    /// Per-step timings in execution order.
    pub steps: Vec<StepTiming>,
    /// When the whole run finished.
    pub finished_at: SimTime,
}

impl RunReport {
    /// Total wall-clock duration of the run.
    pub fn duration(&self) -> SimDuration {
        match self.steps.first() {
            Some(first) => self.finished_at - first.started_at,
            None => SimDuration::ZERO,
        }
    }
}

/// Planemo errors.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanemoError {
    /// Galaxy rejected the run.
    Galaxy(GalaxyError),
    /// The workflow references a tool that is not installed.
    MissingTool {
        /// The step needing the tool.
        step: String,
        /// The missing tool id.
        tool: String,
    },
}

impl fmt::Display for PlanemoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanemoError::Galaxy(e) => write!(f, "galaxy: {e}"),
            PlanemoError::MissingTool { step, tool } => {
                write!(f, "step `{step}` needs tool `{tool}` which is not installed")
            }
        }
    }
}

impl std::error::Error for PlanemoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlanemoError::Galaxy(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GalaxyError> for PlanemoError {
    fn from(e: GalaxyError) -> Self {
        PlanemoError::Galaxy(e)
    }
}

/// The headless workflow runner.
///
/// # Examples
///
/// ```
/// use galaxy_flow::{
///     GalaxyConfig, GalaxyInstance, PlanemoRunner, RecoveryMode, Tool, Workflow,
/// };
/// use sim_kernel::{SimDuration, SimTime};
///
/// let mut galaxy = GalaxyInstance::new(GalaxyConfig::automated("a@x", "key"));
/// galaxy.install_tool("a@x", Tool::from("fastqc"))?;
///
/// let mut b = Workflow::builder("qc", RecoveryMode::RestartFromScratch);
/// b.add_step("qc", "fastqc", SimDuration::from_mins(30), &[]);
/// let wf = b.build().expect("valid workflow");
///
/// let runner = PlanemoRunner::new("key");
/// let report = runner.run(&mut galaxy, &wf, SimTime::ZERO)?;
/// assert_eq!(report.duration(), SimDuration::from_mins(30));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PlanemoRunner {
    api_key: String,
}

impl PlanemoRunner {
    /// Creates a runner holding the Galaxy API key.
    pub fn new(api_key: impl Into<String>) -> Self {
        PlanemoRunner {
            api_key: api_key.into(),
        }
    }

    /// Runs a workflow to completion (no interruptions), returning the run
    /// report. Outputs are appended to a fresh history.
    ///
    /// # Errors
    ///
    /// Returns [`PlanemoError::Galaxy`] for authentication failures and
    /// [`PlanemoError::MissingTool`] when a referenced tool is absent.
    pub fn run(
        &self,
        galaxy: &mut GalaxyInstance,
        workflow: &Workflow,
        at: SimTime,
    ) -> Result<RunReport, PlanemoError> {
        galaxy.authenticate(&self.api_key)?;
        for step in workflow.steps() {
            if !galaxy.tool_shed().is_installed(step.tool()) {
                return Err(PlanemoError::MissingTool {
                    step: step.label().to_owned(),
                    tool: step.tool().as_str().to_owned(),
                });
            }
        }
        let history = galaxy.create_history(workflow.name());
        let mut clock = at;
        let mut steps = Vec::with_capacity(workflow.len());
        for step in workflow.steps() {
            let started_at = clock;
            clock += step.duration();
            galaxy
                .history_mut(history)
                .expect("history just created")
                .add_dataset(
                    format!("{}.{}", step.label(), step.output_format().extension()),
                    step.output_format(),
                    step.output_size_gib(),
                    clock,
                    Some(step.label().to_owned()),
                );
            steps.push(StepTiming {
                label: step.label().to_owned(),
                started_at,
                finished_at: clock,
            });
        }
        Ok(RunReport {
            history,
            steps,
            finished_at: clock,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::galaxy::GalaxyConfig;
    use crate::tool::Tool;
    use crate::workflow::RecoveryMode;

    fn galaxy_with(tools: &[&'static str]) -> GalaxyInstance {
        let mut g = GalaxyInstance::new(GalaxyConfig::automated("a@x", "key"));
        for t in tools {
            g.install_tool("a@x", Tool::from(*t)).unwrap();
        }
        g
    }

    fn two_step_workflow() -> Workflow {
        let mut b = Workflow::builder("wf", RecoveryMode::RestartFromScratch);
        let a = b.add_step("fetch", "sra-toolkit", SimDuration::from_mins(10), &[]);
        b.add_step("qc", "fastqc", SimDuration::from_mins(20), &[a]);
        b.build().unwrap()
    }

    #[test]
    fn run_produces_history_and_timings() {
        let mut g = galaxy_with(&["sra-toolkit", "fastqc"]);
        let report = PlanemoRunner::new("key")
            .run(&mut g, &two_step_workflow(), SimTime::from_hours(1))
            .unwrap();
        assert_eq!(report.steps.len(), 2);
        assert_eq!(report.steps[0].label, "fetch");
        assert_eq!(report.steps[1].started_at, SimTime::from_hours(1) + SimDuration::from_mins(10));
        assert_eq!(report.duration(), SimDuration::from_mins(30));
        let history = g.history(report.history).unwrap();
        assert_eq!(history.len(), 2);
        assert_eq!(history.iter().next().unwrap().produced_by.as_deref(), Some("fetch"));
    }

    #[test]
    fn missing_tool_fails_before_any_execution() {
        let mut g = galaxy_with(&["sra-toolkit"]);
        let err = PlanemoRunner::new("key")
            .run(&mut g, &two_step_workflow(), SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, PlanemoError::MissingTool { .. }));
        assert_eq!(g.history_count(), 0, "no history created on failure");
    }

    #[test]
    fn bad_api_key_rejected() {
        let mut g = galaxy_with(&["sra-toolkit", "fastqc"]);
        let err = PlanemoRunner::new("nope")
            .run(&mut g, &two_step_workflow(), SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, PlanemoError::Galaxy(GalaxyError::InvalidApiKey)));
    }
}
