//! Workflow DAGs.
//!
//! A workflow is an ordered DAG of tool steps. The builder only lets a step
//! depend on previously added steps, so workflows are acyclic by
//! construction and insertion order is a valid topological order — matching
//! how Galaxy serializes execution on a single instance.

use std::borrow::Cow;
use std::fmt;

use serde::{Deserialize, Serialize};
use sim_kernel::SimDuration;

use crate::dataset::DataFormat;
use crate::tool::ToolId;

/// Index of a step within its workflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct StepId(u32);

impl StepId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StepId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "step-{}", self.0)
    }
}

/// How a workload recovers from a spot interruption (paper §2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RecoveryMode {
    /// "Standard workload": complete re-execution from the start.
    RestartFromScratch,
    /// "Checkpoint workload": resume from the most recent checkpoint.
    ResumeFromCheckpoint,
}

/// One step of a workflow.
///
/// Labels are `Cow`s: the built-in workflows name their steps with
/// string literals, and workflow construction runs once per workload in
/// the fleet runtime, so borrowed labels keep that path off the heap.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkflowStep {
    label: Cow<'static, str>,
    tool: ToolId,
    duration: SimDuration,
    shards: u32,
    inputs: Vec<StepId>,
    output_format: DataFormat,
    output_size_gib: f64,
}

impl WorkflowStep {
    /// Step label (unique within the workflow).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The tool the step runs.
    pub fn tool(&self) -> &ToolId {
        &self.tool
    }

    /// Nominal execution duration of the whole step.
    pub fn duration(&self) -> SimDuration {
        self.duration
    }

    /// Number of independently checkpointable shards (1 = monolithic).
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Upstream dependencies.
    pub fn inputs(&self) -> &[StepId] {
        &self.inputs
    }

    /// Output format.
    pub fn output_format(&self) -> DataFormat {
        self.output_format
    }

    /// Output size in GiB.
    pub fn output_size_gib(&self) -> f64 {
        self.output_size_gib
    }
}

/// Workflow construction/validation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkflowError {
    /// The workflow has no steps.
    Empty,
    /// A step label is duplicated.
    DuplicateLabel(String),
    /// A dependency references a step at or after the referencing step.
    ForwardDependency {
        /// The step with the bad dependency.
        step: String,
        /// The offending dependency.
        dependency: StepId,
    },
    /// A step declared zero shards.
    ZeroShards(String),
    /// A step declared zero duration.
    ZeroDuration(String),
}

impl fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkflowError::Empty => write!(f, "workflow has no steps"),
            WorkflowError::DuplicateLabel(l) => write!(f, "duplicate step label `{l}`"),
            WorkflowError::ForwardDependency { step, dependency } => {
                write!(f, "step `{step}` depends on later step {dependency}")
            }
            WorkflowError::ZeroShards(l) => write!(f, "step `{l}` declares zero shards"),
            WorkflowError::ZeroDuration(l) => write!(f, "step `{l}` declares zero duration"),
        }
    }
}

impl std::error::Error for WorkflowError {}

/// A validated workflow.
///
/// # Examples
///
/// ```
/// use galaxy_flow::{RecoveryMode, Workflow};
/// use sim_kernel::SimDuration;
///
/// let mut b = Workflow::builder("demo", RecoveryMode::RestartFromScratch);
/// let fetch = b.add_step("fetch", "sra-toolkit", SimDuration::from_mins(10), &[]);
/// b.add_step("qc", "fastqc", SimDuration::from_mins(30), &[fetch]);
/// let wf = b.build()?;
/// assert_eq!(wf.len(), 2);
/// assert_eq!(wf.total_duration(), SimDuration::from_mins(40));
/// # Ok::<(), galaxy_flow::WorkflowError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workflow {
    name: Cow<'static, str>,
    recovery: RecoveryMode,
    steps: Vec<WorkflowStep>,
}

impl Workflow {
    /// Starts building a workflow.
    pub fn builder(name: impl Into<Cow<'static, str>>, recovery: RecoveryMode) -> WorkflowBuilder {
        WorkflowBuilder {
            name: name.into(),
            recovery,
            steps: Vec::new(),
        }
    }

    /// The workflow name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The workflow name as a shareable `Cow` — cloning a borrowed name
    /// is free, which invocations rely on.
    pub fn name_shared(&self) -> Cow<'static, str> {
        self.name.clone()
    }

    /// The recovery mode.
    pub fn recovery(&self) -> RecoveryMode {
        self.recovery
    }

    /// Whether interruptions lose all progress.
    pub fn is_checkpointable(&self) -> bool {
        self.recovery == RecoveryMode::ResumeFromCheckpoint
    }

    /// The steps, in topological (insertion) order.
    pub fn steps(&self) -> &[WorkflowStep] {
        &self.steps
    }

    /// A step by id.
    pub fn step(&self, id: StepId) -> Option<&WorkflowStep> {
        self.steps.get(id.index())
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True for a (never constructible) empty workflow.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Sum of step durations — the uninterrupted sequential makespan.
    pub fn total_duration(&self) -> SimDuration {
        self.steps
            .iter()
            .fold(SimDuration::ZERO, |acc, s| acc + s.duration())
    }

    /// Step ids in a valid execution order (insertion order, by
    /// construction).
    pub fn topological_order(&self) -> Vec<StepId> {
        (0..self.steps.len() as u32).map(StepId).collect()
    }

    /// Re-checks all invariants (useful after deserialization).
    ///
    /// # Errors
    ///
    /// Returns the first violated [`WorkflowError`].
    pub fn validate(&self) -> Result<(), WorkflowError> {
        if self.steps.is_empty() {
            return Err(WorkflowError::Empty);
        }
        let mut labels = std::collections::BTreeSet::new();
        for (i, step) in self.steps.iter().enumerate() {
            if !labels.insert(step.label.as_ref()) {
                return Err(WorkflowError::DuplicateLabel(step.label.to_string()));
            }
            if step.shards == 0 {
                return Err(WorkflowError::ZeroShards(step.label.to_string()));
            }
            if step.duration.is_zero() {
                return Err(WorkflowError::ZeroDuration(step.label.to_string()));
            }
            for dep in &step.inputs {
                if dep.index() >= i {
                    return Err(WorkflowError::ForwardDependency {
                        step: step.label.to_string(),
                        dependency: *dep,
                    });
                }
            }
        }
        Ok(())
    }
}

/// Builder for [`Workflow`].
#[derive(Debug)]
pub struct WorkflowBuilder {
    name: Cow<'static, str>,
    recovery: RecoveryMode,
    steps: Vec<WorkflowStep>,
}

impl WorkflowBuilder {
    /// Adds a monolithic step depending on `inputs`, returning its id.
    pub fn add_step(
        &mut self,
        label: impl Into<Cow<'static, str>>,
        tool: impl Into<ToolId>,
        duration: SimDuration,
        inputs: &[StepId],
    ) -> StepId {
        self.add_step_full(label, tool, duration, inputs, 1, DataFormat::Tabular, 0.01)
    }

    /// Adds a sharded step: `shards` equal, independently checkpointable
    /// sub-units (the paper's segmented FastQC dataset).
    pub fn add_sharded_step(
        &mut self,
        label: impl Into<Cow<'static, str>>,
        tool: impl Into<ToolId>,
        duration: SimDuration,
        inputs: &[StepId],
        shards: u32,
    ) -> StepId {
        self.add_step_full(label, tool, duration, inputs, shards, DataFormat::Tabular, 0.01)
    }

    /// Adds a step with full control over shape and outputs.
    #[allow(clippy::too_many_arguments)]
    pub fn add_step_full(
        &mut self,
        label: impl Into<Cow<'static, str>>,
        tool: impl Into<ToolId>,
        duration: SimDuration,
        inputs: &[StepId],
        shards: u32,
        output_format: DataFormat,
        output_size_gib: f64,
    ) -> StepId {
        let id = StepId(self.steps.len() as u32);
        self.steps.push(WorkflowStep {
            label: label.into(),
            tool: tool.into(),
            duration,
            shards,
            inputs: inputs.to_vec(),
            output_format,
            output_size_gib,
        });
        id
    }

    /// Finalizes the workflow.
    ///
    /// # Errors
    ///
    /// Returns a [`WorkflowError`] if any invariant is violated.
    pub fn build(self) -> Result<Workflow, WorkflowError> {
        let wf = Workflow {
            name: self.name,
            recovery: self.recovery,
            steps: self.steps,
        };
        wf.validate()?;
        Ok(wf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mins(m: u64) -> SimDuration {
        SimDuration::from_mins(m)
    }

    #[test]
    fn build_validates_and_orders() {
        let mut b = Workflow::builder("w", RecoveryMode::RestartFromScratch);
        let a = b.add_step("a", "t1", mins(5), &[]);
        let c = b.add_step("b", "t2", mins(10), &[a]);
        b.add_step("c", "t3", mins(15), &[a, c]);
        let wf = b.build().unwrap();
        assert_eq!(wf.len(), 3);
        assert_eq!(wf.total_duration(), mins(30));
        assert_eq!(wf.topological_order().len(), 3);
        assert_eq!(wf.step(a).unwrap().label(), "a");
        assert!(!wf.is_checkpointable());
        assert!(wf.validate().is_ok());
    }

    #[test]
    fn empty_workflow_rejected() {
        let b = Workflow::builder("w", RecoveryMode::RestartFromScratch);
        assert_eq!(b.build().unwrap_err(), WorkflowError::Empty);
    }

    #[test]
    fn duplicate_labels_rejected() {
        let mut b = Workflow::builder("w", RecoveryMode::RestartFromScratch);
        b.add_step("x", "t", mins(1), &[]);
        b.add_step("x", "t", mins(1), &[]);
        assert!(matches!(b.build(), Err(WorkflowError::DuplicateLabel(_))));
    }

    #[test]
    fn zero_duration_and_shards_rejected() {
        let mut b = Workflow::builder("w", RecoveryMode::RestartFromScratch);
        b.add_step("x", "t", SimDuration::ZERO, &[]);
        assert!(matches!(b.build(), Err(WorkflowError::ZeroDuration(_))));

        let mut b = Workflow::builder("w", RecoveryMode::ResumeFromCheckpoint);
        b.add_sharded_step("x", "t", mins(1), &[], 0);
        assert!(matches!(b.build(), Err(WorkflowError::ZeroShards(_))));
    }

    #[test]
    fn sharded_steps_carry_counts() {
        let mut b = Workflow::builder("w", RecoveryMode::ResumeFromCheckpoint);
        b.add_sharded_step("qc", "fastqc", mins(160), &[], 16);
        let wf = b.build().unwrap();
        assert_eq!(wf.steps()[0].shards(), 16);
        assert!(wf.is_checkpointable());
        assert_eq!(wf.recovery(), RecoveryMode::ResumeFromCheckpoint);
    }

    #[test]
    fn forward_dependency_detected_by_validate() {
        // Build a valid workflow, then corrupt it through serde to simulate
        // an untrusted source.
        let mut b = Workflow::builder("w", RecoveryMode::RestartFromScratch);
        let a = b.add_step("a", "t", mins(1), &[]);
        b.add_step("b", "t", mins(1), &[a]);
        let wf = b.build().unwrap();
        // Self-dependency via index juggling is impossible through the
        // builder; validate() still guards the invariant.
        assert!(wf.validate().is_ok());
    }

    #[test]
    fn step_accessors() {
        let mut b = Workflow::builder("w", RecoveryMode::RestartFromScratch);
        let id = b.add_step_full("x", "t", mins(2), &[], 1, DataFormat::Fasta, 0.5);
        let wf = b.build().unwrap();
        let s = wf.step(id).unwrap();
        assert_eq!(s.tool().as_str(), "t");
        assert_eq!(s.output_format(), DataFormat::Fasta);
        assert_eq!(s.output_size_gib(), 0.5);
        assert!(s.inputs().is_empty());
        assert_eq!(wf.step(StepId(9)), None);
        assert_eq!(StepId(3).to_string(), "step-3");
    }
}
