//! The Galaxy server facade: admin configuration, tool installation,
//! histories.
//!
//! Mirrors the administrative surface the paper automates on its AMI (§4):
//! an `admin_users` list gating tool installation, and an API key used by
//! Planemo and the startup script to drive workflows headlessly.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::dataset::History;
use crate::tool::{Tool, ToolShed, ToolShedError};

/// Galaxy server configuration (the relevant subset of `galaxy.yml`).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GalaxyConfig {
    /// Emails with administrative privileges (`admin_users`).
    pub admin_users: Vec<String>,
    /// The API key automation uses, if configured.
    pub api_key: Option<String>,
}

impl GalaxyConfig {
    /// A config with one admin and an API key — the paper's AMI setup.
    pub fn automated(admin_email: impl Into<String>, api_key: impl Into<String>) -> Self {
        GalaxyConfig {
            admin_users: vec![admin_email.into()],
            api_key: Some(api_key.into()),
        }
    }

    /// Whether an email has admin rights.
    pub fn is_admin(&self, email: &str) -> bool {
        self.admin_users.iter().any(|a| a == email)
    }
}

/// Galaxy API errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GalaxyError {
    /// The caller lacks admin rights.
    NotAdmin(String),
    /// The presented API key is wrong or missing.
    InvalidApiKey,
    /// Tool Shed failure.
    ToolShed(ToolShedError),
    /// No history with that index.
    NoSuchHistory(usize),
}

impl fmt::Display for GalaxyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GalaxyError::NotAdmin(email) => write!(f, "`{email}` is not an admin user"),
            GalaxyError::InvalidApiKey => write!(f, "invalid or missing API key"),
            GalaxyError::ToolShed(e) => write!(f, "tool shed: {e}"),
            GalaxyError::NoSuchHistory(i) => write!(f, "no history with index {i}"),
        }
    }
}

impl std::error::Error for GalaxyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GalaxyError::ToolShed(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ToolShedError> for GalaxyError {
    fn from(e: ToolShedError) -> Self {
        GalaxyError::ToolShed(e)
    }
}

/// A Galaxy server instance.
///
/// # Examples
///
/// ```
/// use galaxy_flow::{GalaxyConfig, GalaxyInstance, Tool};
///
/// let mut galaxy = GalaxyInstance::new(GalaxyConfig::automated("admin@lab.org", "key-123"));
/// galaxy.install_tool("admin@lab.org", Tool::from("sra-toolkit"))?;
/// let history = galaxy.create_history("SARS-CoV-2 run");
/// assert_eq!(galaxy.history(history)?.name(), "SARS-CoV-2 run");
/// # Ok::<(), galaxy_flow::GalaxyError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GalaxyInstance {
    config: GalaxyConfig,
    shed: ToolShed,
    histories: Vec<History>,
}

impl GalaxyInstance {
    /// Boots a Galaxy instance with the given configuration.
    pub fn new(config: GalaxyConfig) -> Self {
        GalaxyInstance {
            config,
            shed: ToolShed::new(),
            histories: Vec::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &GalaxyConfig {
        &self.config
    }

    /// The Tool Shed.
    pub fn tool_shed(&self) -> &ToolShed {
        &self.shed
    }

    /// Installs a tool, requiring admin rights (the paper's `admin_users`
    /// gate).
    ///
    /// # Errors
    ///
    /// Returns [`GalaxyError::NotAdmin`] for non-admin callers and
    /// [`GalaxyError::ToolShed`] for duplicate installs.
    pub fn install_tool(&mut self, caller: &str, tool: Tool) -> Result<(), GalaxyError> {
        if !self.config.is_admin(caller) {
            return Err(GalaxyError::NotAdmin(caller.to_owned()));
        }
        self.shed.install(tool)?;
        Ok(())
    }

    /// Authenticates an API key.
    ///
    /// # Errors
    ///
    /// Returns [`GalaxyError::InvalidApiKey`] on mismatch or when no key is
    /// configured.
    pub fn authenticate(&self, api_key: &str) -> Result<(), GalaxyError> {
        match &self.config.api_key {
            Some(expected) if expected == api_key => Ok(()),
            _ => Err(GalaxyError::InvalidApiKey),
        }
    }

    /// Creates a history, returning its index.
    pub fn create_history(&mut self, name: impl Into<String>) -> usize {
        self.histories.push(History::new(name));
        self.histories.len() - 1
    }

    /// Borrows a history.
    ///
    /// # Errors
    ///
    /// Returns [`GalaxyError::NoSuchHistory`] for bad indices.
    pub fn history(&self, index: usize) -> Result<&History, GalaxyError> {
        self.histories
            .get(index)
            .ok_or(GalaxyError::NoSuchHistory(index))
    }

    /// Mutably borrows a history.
    ///
    /// # Errors
    ///
    /// Returns [`GalaxyError::NoSuchHistory`] for bad indices.
    pub fn history_mut(&mut self, index: usize) -> Result<&mut History, GalaxyError> {
        self.histories
            .get_mut(index)
            .ok_or(GalaxyError::NoSuchHistory(index))
    }

    /// Number of histories.
    pub fn history_count(&self) -> usize {
        self.histories.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admin_gate_enforced() {
        let mut g = GalaxyInstance::new(GalaxyConfig::automated("admin@x", "k"));
        assert!(g.install_tool("admin@x", Tool::from("fastqc")).is_ok());
        let err = g.install_tool("user@x", Tool::from("dada2")).unwrap_err();
        assert!(matches!(err, GalaxyError::NotAdmin(_)));
        assert!(g.tool_shed().is_installed(&"fastqc".into()));
        assert!(!g.tool_shed().is_installed(&"dada2".into()));
    }

    #[test]
    fn api_key_authentication() {
        let g = GalaxyInstance::new(GalaxyConfig::automated("a@x", "secret"));
        assert!(g.authenticate("secret").is_ok());
        assert!(matches!(g.authenticate("wrong"), Err(GalaxyError::InvalidApiKey)));
        let no_key = GalaxyInstance::new(GalaxyConfig::default());
        assert!(matches!(no_key.authenticate("any"), Err(GalaxyError::InvalidApiKey)));
    }

    #[test]
    fn histories_are_indexed() {
        let mut g = GalaxyInstance::new(GalaxyConfig::default());
        let h0 = g.create_history("one");
        let h1 = g.create_history("two");
        assert_eq!(g.history(h0).unwrap().name(), "one");
        assert_eq!(g.history(h1).unwrap().name(), "two");
        assert_eq!(g.history_count(), 2);
        assert!(matches!(g.history(9), Err(GalaxyError::NoSuchHistory(9))));
        assert!(g.history_mut(0).is_ok());
    }

    #[test]
    fn duplicate_tool_surfaces_shed_error() {
        let mut g = GalaxyInstance::new(GalaxyConfig::automated("a@x", "k"));
        g.install_tool("a@x", Tool::from("t")).unwrap();
        let err = g.install_tool("a@x", Tool::from("t")).unwrap_err();
        assert!(matches!(err, GalaxyError::ToolShed(_)));
        assert!(std::error::Error::source(&err).is_some());
    }
}
