//! Workflow invocations: execution plans, unit-level progress, and
//! interruption/resume semantics.
//!
//! Execution is modelled at the granularity of *units*: a monolithic step is
//! one unit, a sharded step contributes one unit per shard. Progress is a
//! count of completed units. On interruption, a restart-from-scratch
//! workload resets to zero; a checkpoint workload keeps every completed unit
//! (the paper's NGS preprocessing tracks each file's processing status).

use std::borrow::Cow;
use std::fmt;

use serde::{Deserialize, Serialize};
use sim_kernel::SimDuration;

use crate::workflow::{RecoveryMode, StepId, Workflow};

/// A unit of work: `(step, shard_index, duration)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkUnit {
    /// The owning step.
    pub step: StepId,
    /// Zero-based shard index within the step.
    pub shard: u32,
    /// The unit's duration.
    pub duration: SimDuration,
}

/// The flattened execution plan of a workflow.
///
/// # Examples
///
/// ```
/// use galaxy_flow::{ExecutionPlan, RecoveryMode, Workflow};
/// use sim_kernel::SimDuration;
///
/// let mut b = Workflow::builder("w", RecoveryMode::ResumeFromCheckpoint);
/// b.add_sharded_step("qc", "fastqc", SimDuration::from_mins(40), &[], 4);
/// let wf = b.build()?;
/// let plan = ExecutionPlan::new(&wf);
/// assert_eq!(plan.unit_count(), 4);
/// assert_eq!(plan.remaining_after(1), SimDuration::from_mins(30));
/// # Ok::<(), galaxy_flow::WorkflowError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionPlan {
    units: Vec<WorkUnit>,
    total: SimDuration,
}

impl ExecutionPlan {
    /// Flattens a workflow into its unit sequence.
    pub fn new(workflow: &Workflow) -> Self {
        let mut units = Vec::new();
        for (i, step) in workflow.steps().iter().enumerate() {
            let shards = step.shards();
            let per_shard = SimDuration::from_secs(
                (step.duration().as_secs() as f64 / f64::from(shards)).round() as u64,
            )
            .max(SimDuration::from_secs(1));
            for shard in 0..shards {
                units.push(WorkUnit {
                    step: workflow.topological_order()[i],
                    shard,
                    duration: per_shard,
                });
            }
        }
        let total = units
            .iter()
            .fold(SimDuration::ZERO, |acc, u| acc + u.duration);
        ExecutionPlan { units, total }
    }

    /// Number of units.
    pub fn unit_count(&self) -> usize {
        self.units.len()
    }

    /// The units in execution order.
    pub fn units(&self) -> &[WorkUnit] {
        &self.units
    }

    /// Total uninterrupted duration.
    pub fn total_duration(&self) -> SimDuration {
        self.total
    }

    /// Duration remaining after `units_done` completed units.
    ///
    /// # Panics
    ///
    /// Panics if `units_done` exceeds the unit count.
    pub fn remaining_after(&self, units_done: usize) -> SimDuration {
        assert!(
            units_done <= self.units.len(),
            "remaining_after: units_done {units_done} > unit count {}",
            self.units.len()
        );
        self.units[units_done..]
            .iter()
            .fold(SimDuration::ZERO, |acc, u| acc + u.duration)
    }

    /// How many additional full units complete within `elapsed`, starting
    /// after `units_done` completed units.
    pub fn units_completed_within(&self, units_done: usize, elapsed: SimDuration) -> usize {
        let mut remaining = elapsed;
        let mut completed = 0;
        for unit in &self.units[units_done.min(self.units.len())..] {
            if remaining >= unit.duration {
                remaining -= unit.duration;
                completed += 1;
            } else {
                break;
            }
        }
        completed
    }
}

/// Invocation status.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InvocationStatus {
    /// Created, no work recorded yet.
    New,
    /// Some units completed, more remain.
    InProgress,
    /// All units completed.
    Completed,
}

/// Invocation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvocationError {
    /// Attempted to resume past the plan's unit count.
    ResumeOutOfRange {
        /// Units requested.
        requested: usize,
        /// Units available.
        available: usize,
    },
    /// Work was recorded on a completed invocation.
    AlreadyCompleted,
}

impl fmt::Display for InvocationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvocationError::ResumeOutOfRange {
                requested,
                available,
            } => write!(f, "resume to {requested} units but plan has {available}"),
            InvocationError::AlreadyCompleted => write!(f, "invocation already completed"),
        }
    }
}

impl std::error::Error for InvocationError {}

/// Outcome of recording a stretch of execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunProgress {
    /// Units newly completed in this stretch.
    pub units_completed: usize,
    /// Whether the invocation finished.
    pub finished: bool,
}

/// A workflow invocation tracking unit-level progress across interruptions.
///
/// # Examples
///
/// ```
/// use galaxy_flow::{RecoveryMode, Workflow, WorkflowInvocation};
/// use sim_kernel::SimDuration;
///
/// let mut b = Workflow::builder("ngs", RecoveryMode::ResumeFromCheckpoint);
/// b.add_sharded_step("qc", "fastqc", SimDuration::from_hours(10), &[], 10);
/// let wf = b.build()?;
/// let mut inv = WorkflowInvocation::new(&wf);
///
/// // Run 3.5 hours, then get interrupted: 3 shards persist.
/// let progress = inv.record_execution(SimDuration::from_hours_f64(3.5))?;
/// assert_eq!(progress.units_completed, 3);
/// inv.handle_interruption();
/// assert_eq!(inv.units_done(), 3); // checkpointed
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkflowInvocation {
    workflow_name: Cow<'static, str>,
    recovery: RecoveryMode,
    plan: ExecutionPlan,
    units_done: usize,
    interruptions: u32,
}

impl WorkflowInvocation {
    /// Creates a fresh invocation of a workflow.
    pub fn new(workflow: &Workflow) -> Self {
        WorkflowInvocation {
            workflow_name: workflow.name_shared(),
            recovery: workflow.recovery(),
            plan: ExecutionPlan::new(workflow),
            units_done: 0,
            interruptions: 0,
        }
    }

    /// The workflow name.
    pub fn workflow_name(&self) -> &str {
        &self.workflow_name
    }

    /// The execution plan.
    pub fn plan(&self) -> &ExecutionPlan {
        &self.plan
    }

    /// Completed units.
    pub fn units_done(&self) -> usize {
        self.units_done
    }

    /// Interruptions experienced.
    pub fn interruptions(&self) -> u32 {
        self.interruptions
    }

    /// Completed fraction in `[0, 1]`.
    pub fn fraction_done(&self) -> f64 {
        self.units_done as f64 / self.plan.unit_count() as f64
    }

    /// Current status.
    pub fn status(&self) -> InvocationStatus {
        if self.units_done == 0 {
            InvocationStatus::New
        } else if self.units_done < self.plan.unit_count() {
            InvocationStatus::InProgress
        } else {
            InvocationStatus::Completed
        }
    }

    /// Whether all units are done.
    pub fn is_completed(&self) -> bool {
        self.units_done == self.plan.unit_count()
    }

    /// Time needed to finish if uninterrupted from here.
    pub fn remaining_duration(&self) -> SimDuration {
        self.plan.remaining_after(self.units_done)
    }

    /// Records `elapsed` of uninterrupted execution, completing as many
    /// units as fit.
    ///
    /// # Errors
    ///
    /// Returns [`InvocationError::AlreadyCompleted`] when called on a
    /// finished invocation.
    pub fn record_execution(&mut self, elapsed: SimDuration) -> Result<RunProgress, InvocationError> {
        if self.is_completed() {
            return Err(InvocationError::AlreadyCompleted);
        }
        let completed = self.plan.units_completed_within(self.units_done, elapsed);
        self.units_done += completed;
        Ok(RunProgress {
            units_completed: completed,
            finished: self.is_completed(),
        })
    }

    /// Applies interruption semantics: restart-from-scratch loses all
    /// progress; checkpoint workloads keep completed units.
    pub fn handle_interruption(&mut self) {
        self.interruptions += 1;
        if self.recovery == RecoveryMode::RestartFromScratch {
            self.units_done = 0;
        }
    }

    /// Restores progress from an external checkpoint record (e.g. loaded
    /// from the KV store by a replacement instance).
    ///
    /// # Errors
    ///
    /// Returns [`InvocationError::ResumeOutOfRange`] when `units` exceeds
    /// the plan.
    pub fn resume_from(&mut self, units: usize) -> Result<(), InvocationError> {
        if units > self.plan.unit_count() {
            return Err(InvocationError::ResumeOutOfRange {
                requested: units,
                available: self.plan.unit_count(),
            });
        }
        self.units_done = units;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workflow::RecoveryMode;

    fn sharded_workflow(shards: u32, hours: u64, recovery: RecoveryMode) -> Workflow {
        let mut b = Workflow::builder("w", recovery);
        b.add_sharded_step("s", "t", SimDuration::from_hours(hours), &[], shards);
        b.build().unwrap()
    }

    #[test]
    fn plan_flattens_shards() {
        let wf = sharded_workflow(4, 4, RecoveryMode::ResumeFromCheckpoint);
        let plan = ExecutionPlan::new(&wf);
        assert_eq!(plan.unit_count(), 4);
        assert_eq!(plan.total_duration(), SimDuration::from_hours(4));
        assert_eq!(plan.units()[2].shard, 2);
        assert_eq!(plan.remaining_after(4), SimDuration::ZERO);
    }

    #[test]
    fn multi_step_plan_orders_units_by_step() {
        let mut b = Workflow::builder("w", RecoveryMode::RestartFromScratch);
        let a = b.add_step("a", "t", SimDuration::from_hours(1), &[]);
        b.add_sharded_step("b", "t", SimDuration::from_hours(2), &[a], 2);
        let wf = b.build().unwrap();
        let plan = ExecutionPlan::new(&wf);
        assert_eq!(plan.unit_count(), 3);
        assert_eq!(plan.units()[0].step.index(), 0);
        assert_eq!(plan.units()[1].step.index(), 1);
        assert_eq!(plan.units()[1].duration, SimDuration::from_hours(1));
    }

    #[test]
    fn units_completed_within_partial_unit() {
        let wf = sharded_workflow(10, 10, RecoveryMode::ResumeFromCheckpoint);
        let plan = ExecutionPlan::new(&wf);
        // 2.9 hours completes 2 full one-hour units.
        assert_eq!(
            plan.units_completed_within(0, SimDuration::from_hours_f64(2.9)),
            2
        );
        assert_eq!(plan.units_completed_within(9, SimDuration::from_hours(5)), 1);
        assert_eq!(plan.units_completed_within(10, SimDuration::from_hours(5)), 0);
    }

    #[test]
    fn checkpoint_workload_keeps_progress_on_interruption() {
        let wf = sharded_workflow(10, 10, RecoveryMode::ResumeFromCheckpoint);
        let mut inv = WorkflowInvocation::new(&wf);
        inv.record_execution(SimDuration::from_hours(4)).unwrap();
        inv.handle_interruption();
        assert_eq!(inv.units_done(), 4);
        assert_eq!(inv.interruptions(), 1);
        assert_eq!(inv.remaining_duration(), SimDuration::from_hours(6));
        assert_eq!(inv.status(), InvocationStatus::InProgress);
    }

    #[test]
    fn standard_workload_loses_progress_on_interruption() {
        let wf = sharded_workflow(1, 10, RecoveryMode::RestartFromScratch);
        let mut inv = WorkflowInvocation::new(&wf);
        // 9 hours of a 10-hour monolithic unit: nothing completed yet.
        let p = inv.record_execution(SimDuration::from_hours(9)).unwrap();
        assert_eq!(p.units_completed, 0);
        inv.handle_interruption();
        assert_eq!(inv.units_done(), 0);
        assert_eq!(inv.remaining_duration(), SimDuration::from_hours(10));
    }

    #[test]
    fn completion_flow() {
        let wf = sharded_workflow(2, 2, RecoveryMode::ResumeFromCheckpoint);
        let mut inv = WorkflowInvocation::new(&wf);
        assert_eq!(inv.status(), InvocationStatus::New);
        let p = inv.record_execution(SimDuration::from_hours(2)).unwrap();
        assert!(p.finished);
        assert!(inv.is_completed());
        assert_eq!(inv.fraction_done(), 1.0);
        assert!(matches!(
            inv.record_execution(SimDuration::from_hours(1)),
            Err(InvocationError::AlreadyCompleted)
        ));
    }

    #[test]
    fn resume_from_validates_range() {
        let wf = sharded_workflow(5, 5, RecoveryMode::ResumeFromCheckpoint);
        let mut inv = WorkflowInvocation::new(&wf);
        inv.resume_from(3).unwrap();
        assert_eq!(inv.units_done(), 3);
        let err = inv.resume_from(6).unwrap_err();
        assert!(err.to_string().contains("plan has 5"));
    }

    #[test]
    fn workflow_name_is_carried() {
        let wf = sharded_workflow(1, 1, RecoveryMode::RestartFromScratch);
        let inv = WorkflowInvocation::new(&wf);
        assert_eq!(inv.workflow_name(), "w");
        assert_eq!(inv.plan().unit_count(), 1);
    }
}
