//! # galaxy-flow
//!
//! A Galaxy-like workflow-management substrate: the open-source, web-based
//! platform the paper's bioinformatics workloads run on, reduced to the
//! surfaces SpotVerse interacts with —
//!
//! * a [`ToolShed`] of versioned tools gated behind `admin_users`
//!   ([`GalaxyInstance::install_tool`]),
//! * [`History`] / [`Dataset`] provenance,
//! * validated DAG [`Workflow`]s with monolithic and *sharded*
//!   (checkpointable) steps,
//! * [`WorkflowInvocation`]s with the paper's two interruption semantics —
//!   restart-from-scratch and resume-from-checkpoint
//!   ([`RecoveryMode`]),
//! * a [`CheckpointStore`] abstraction for durable shard progress, and
//! * a [`PlanemoRunner`] that executes workflows headlessly through the
//!   API-key path the paper's user-data script uses.
//!
//! # Examples
//!
//! ```
//! use galaxy_flow::{RecoveryMode, Workflow, WorkflowInvocation};
//! use sim_kernel::SimDuration;
//!
//! // A 10-hour checkpoint workload segmented into 20 shards.
//! let mut b = Workflow::builder("ngs-preprocessing", RecoveryMode::ResumeFromCheckpoint);
//! b.add_sharded_step("fastqc", "fastqc", SimDuration::from_hours(10), &[], 20);
//! let wf = b.build()?;
//!
//! let mut inv = WorkflowInvocation::new(&wf);
//! inv.record_execution(SimDuration::from_hours(4))?; // 8 shards done
//! inv.handle_interruption();                          // checkpoint keeps them
//! assert_eq!(inv.units_done(), 8);
//! assert_eq!(inv.remaining_duration(), SimDuration::from_hours(6));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod checkpoint;
mod dataset;
pub mod ga_format;
mod galaxy;
pub mod json;
mod invocation;
mod planemo;
mod tool;
mod workflow;

pub use checkpoint::{CheckpointError, CheckpointRecord, CheckpointStore, InMemoryCheckpointStore};
pub use dataset::{DataFormat, Dataset, DatasetId, History, HistoryItem};
pub use ga_format::{from_ga_json, to_ga_json, GaFormatError};
pub use galaxy::{GalaxyConfig, GalaxyError, GalaxyInstance};
pub use invocation::{
    ExecutionPlan, InvocationError, InvocationStatus, RunProgress, WorkUnit, WorkflowInvocation,
};
pub use planemo::{PlanemoError, PlanemoRunner, RunReport, StepTiming};
pub use tool::{Tool, ToolCategory, ToolId, ToolRequirements, ToolShed, ToolShedError};
pub use workflow::{RecoveryMode, StepId, Workflow, WorkflowBuilder, WorkflowError, WorkflowStep};
