//! A minimal JSON value model, parser, and writer.
//!
//! Galaxy interchanges workflows as `.ga` JSON documents; this module gives
//! the [`crate::ga_format`] codec a dependency-free JSON subset: objects,
//! arrays, strings (with standard escapes), integer/float numbers, booleans
//! and null.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (held as f64).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with sorted keys.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The object payload, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object().and_then(|m| m.get(key))
    }
}

/// JSON parse errors, with a byte offset for debugging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, JsonError> {
        Err(JsonError {
            message: message.into(),
            offset: self.pos,
        })
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected `{}`", b as char))
        }
    }

    fn parse_value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Json::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Json::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => self.err(format!("unexpected byte `{}`", b as char)),
            None => self.err("unexpected end of input"),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.err(format!("expected `{word}`"))
        }
    }

    fn parse_number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are valid UTF-8");
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Number(n)),
            _ => self.err(format!("invalid number `{text}`")),
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            // \uXXXX (basic multilingual plane only).
                            if self.pos + 4 >= self.bytes.len() {
                                return self.err("truncated \\u escape");
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| JsonError {
                                    message: "non-ASCII in \\u escape".into(),
                                    offset: self.pos,
                                })?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| JsonError {
                                    message: format!("bad \\u escape `{hex}`"),
                                    offset: self.pos,
                                })?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).map_err(|_| {
                        JsonError {
                            message: "invalid UTF-8".into(),
                            offset: self.pos,
                        }
                    })?;
                    let ch = rest.chars().next().expect("non-empty checked above");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return self.err("expected `,` or `]`"),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return self.err("expected `,` or `}`"),
            }
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a [`JsonError`] with the byte offset of the first problem.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != input.len() {
        return parser.err("trailing garbage after document");
    }
    Ok(value)
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_into(value: &Json, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Number(n) => {
            if n.fract() == 0.0 && n.abs() < 9e15 {
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&format!("{n}"));
            }
        }
        Json::String(s) => escape_into(s, out),
        Json::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad);
                out.push_str("  ");
                write_into(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Json::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (key, item)) in map.iter().enumerate() {
                out.push_str(&pad);
                out.push_str("  ");
                escape_into(key, out);
                out.push_str(": ");
                write_into(item, indent + 1, out);
                if i + 1 < map.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Pretty-prints a JSON document.
pub fn write(value: &Json) -> String {
    let mut out = String::new();
    write_into(value, 0, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for (text, value) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("42", Json::Number(42.0)),
            ("-3.5", Json::Number(-3.5)),
            ("\"hi\"", Json::String("hi".into())),
        ] {
            assert_eq!(parse(text).unwrap(), value, "{text}");
        }
    }

    #[test]
    fn roundtrip_nested_document() {
        let doc = r#"{"a": [1, 2, {"b": "x\"y", "c": null}], "d": true}"#;
        let parsed = parse(doc).unwrap();
        let rendered = write(&parsed);
        assert_eq!(parse(&rendered).unwrap(), parsed, "write ∘ parse is identity");
    }

    #[test]
    fn string_escapes() {
        let parsed = parse(r#""line\nbreak\ttab A""#).unwrap();
        assert_eq!(parsed.as_str(), Some("line\nbreak\ttab A"));
        let rendered = write(&Json::String("a\"b\\c\n".into()));
        assert_eq!(parse(&rendered).unwrap().as_str(), Some("a\"b\\c\n"));
    }

    #[test]
    fn unicode_passthrough() {
        let parsed = parse("\"héllo 🌍\"").unwrap();
        assert_eq!(parsed.as_str(), Some("héllo 🌍"));
    }

    #[test]
    fn errors_carry_offsets() {
        let err = parse("{\"a\": }").unwrap_err();
        assert!(err.offset >= 6, "offset {}", err.offset);
        assert!(parse("[1, 2").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"open").is_err());
        assert!(parse("1e999").is_err(), "non-finite numbers rejected");
    }

    #[test]
    fn accessors() {
        let doc = parse(r#"{"n": 1, "s": "x", "a": [true]}"#).unwrap();
        assert_eq!(doc.get("n").and_then(Json::as_f64), Some(1.0));
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(doc.get("a").and_then(Json::as_array).map(<[Json]>::len), Some(1));
        assert_eq!(doc.get("missing"), None);
        assert!(doc.as_object().is_some());
    }

    #[test]
    fn integer_rendering_is_clean() {
        assert_eq!(write(&Json::Number(36000.0)), "36000");
        assert_eq!(write(&Json::Number(0.5)), "0.5");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(write(&parse("[]").unwrap()), "[]");
        assert_eq!(write(&parse("{}").unwrap()), "{}");
    }
}
