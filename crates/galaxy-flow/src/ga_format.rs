//! The Galaxy `.ga` workflow interchange format.
//!
//! Galaxy shares workflows as `.ga` JSON documents (the paper's Genome
//! Reconstruction workflow comes from the Galaxy training materials as one).
//! This codec exports a [`Workflow`] to a `.ga`-shaped document and imports
//! it back, carrying the simulator's step timing/sharding metadata in the
//! step `annotation` field — so exported files remain structurally valid
//! Galaxy workflows while round-tripping losslessly here.

use std::collections::BTreeMap;
use std::fmt;

use sim_kernel::SimDuration;

use crate::dataset::DataFormat;
use crate::json::{self, Json, JsonError};
use crate::workflow::{RecoveryMode, StepId, Workflow, WorkflowError};

/// `.ga` codec errors.
#[derive(Debug, Clone, PartialEq)]
pub enum GaFormatError {
    /// The document is not valid JSON.
    Json(JsonError),
    /// The document is JSON but not a Galaxy workflow.
    NotAGalaxyWorkflow(String),
    /// A step entry is malformed.
    MalformedStep {
        /// Step key in the document.
        step: String,
        /// What was wrong.
        problem: String,
    },
    /// The reconstructed workflow failed validation.
    Workflow(WorkflowError),
}

impl fmt::Display for GaFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GaFormatError::Json(e) => write!(f, "{e}"),
            GaFormatError::NotAGalaxyWorkflow(msg) => {
                write!(f, "not a galaxy workflow: {msg}")
            }
            GaFormatError::MalformedStep { step, problem } => {
                write!(f, "malformed step `{step}`: {problem}")
            }
            GaFormatError::Workflow(e) => write!(f, "invalid workflow: {e}"),
        }
    }
}

impl std::error::Error for GaFormatError {}

impl From<JsonError> for GaFormatError {
    fn from(e: JsonError) -> Self {
        GaFormatError::Json(e)
    }
}

impl From<WorkflowError> for GaFormatError {
    fn from(e: WorkflowError) -> Self {
        GaFormatError::Workflow(e)
    }
}

fn format_name(format: DataFormat) -> &'static str {
    format.extension()
}

fn format_from_name(name: &str) -> DataFormat {
    match name {
        "fastq" => DataFormat::Fastq,
        "fastq.gz" => DataFormat::FastqGz,
        "vcf" => DataFormat::Vcf,
        "fasta" => DataFormat::Fasta,
        "qza" => DataFormat::Qza,
        "html" => DataFormat::Html,
        "json" => DataFormat::Json,
        "sra" => DataFormat::Sra,
        _ => DataFormat::Tabular,
    }
}

/// Exports a workflow as a `.ga`-shaped JSON document.
pub fn to_ga_json(workflow: &Workflow) -> String {
    let mut steps = BTreeMap::new();
    for (i, step) in workflow.steps().iter().enumerate() {
        let mut obj = BTreeMap::new();
        obj.insert("id".to_owned(), Json::Number(i as f64));
        obj.insert("name".to_owned(), Json::String(step.label().to_owned()));
        obj.insert(
            "tool_id".to_owned(),
            Json::String(step.tool().as_str().to_owned()),
        );
        obj.insert("type".to_owned(), Json::String("tool".to_owned()));
        obj.insert(
            "annotation".to_owned(),
            Json::String(format!(
                "duration_secs={};shards={};output_gib={}",
                step.duration().as_secs(),
                step.shards(),
                step.output_size_gib(),
            )),
        );
        obj.insert(
            "output_format".to_owned(),
            Json::String(format_name(step.output_format()).to_owned()),
        );
        let mut connections = BTreeMap::new();
        for (j, dep) in step.inputs().iter().enumerate() {
            let mut conn = BTreeMap::new();
            conn.insert("id".to_owned(), Json::Number(dep.index() as f64));
            conn.insert(
                "output_name".to_owned(),
                Json::String("output".to_owned()),
            );
            connections.insert(format!("input{j}"), Json::Object(conn));
        }
        obj.insert("input_connections".to_owned(), Json::Object(connections));
        steps.insert(i.to_string(), Json::Object(obj));
    }

    let mut doc = BTreeMap::new();
    doc.insert(
        "a_galaxy_workflow".to_owned(),
        Json::String("true".to_owned()),
    );
    doc.insert(
        "format-version".to_owned(),
        Json::String("0.1".to_owned()),
    );
    doc.insert("name".to_owned(), Json::String(workflow.name().to_owned()));
    doc.insert(
        "annotation".to_owned(),
        Json::String(
            match workflow.recovery() {
                RecoveryMode::RestartFromScratch => "recovery=restart-from-scratch",
                RecoveryMode::ResumeFromCheckpoint => "recovery=resume-from-checkpoint",
            }
            .to_owned(),
        ),
    );
    doc.insert("steps".to_owned(), Json::Object(steps));
    json::write(&Json::Object(doc))
}

fn annotation_field(annotation: &str, key: &str) -> Option<String> {
    annotation
        .split(';')
        .find_map(|pair| pair.strip_prefix(&format!("{key}=")))
        .map(str::to_owned)
}

/// Imports a workflow from a `.ga`-shaped JSON document.
///
/// # Errors
///
/// Returns a [`GaFormatError`] for non-JSON input, non-workflow documents,
/// malformed steps, or structurally invalid workflows.
pub fn from_ga_json(input: &str) -> Result<Workflow, GaFormatError> {
    let doc = json::parse(input)?;
    if doc.get("a_galaxy_workflow").and_then(Json::as_str) != Some("true") {
        return Err(GaFormatError::NotAGalaxyWorkflow(
            "missing `a_galaxy_workflow: \"true\"`".into(),
        ));
    }
    let name = doc
        .get("name")
        .and_then(Json::as_str)
        .unwrap_or("imported-workflow")
        .to_owned();
    let recovery = match doc.get("annotation").and_then(Json::as_str) {
        Some(a) if a.contains("resume-from-checkpoint") => RecoveryMode::ResumeFromCheckpoint,
        _ => RecoveryMode::RestartFromScratch,
    };
    let steps_obj = doc
        .get("steps")
        .and_then(Json::as_object)
        .ok_or_else(|| GaFormatError::NotAGalaxyWorkflow("missing `steps` object".into()))?;

    // Order steps by numeric key.
    let mut ordered: Vec<(usize, &Json)> = Vec::with_capacity(steps_obj.len());
    for (key, value) in steps_obj {
        let index: usize = key.parse().map_err(|_| GaFormatError::MalformedStep {
            step: key.clone(),
            problem: "non-numeric step key".into(),
        })?;
        ordered.push((index, value));
    }
    ordered.sort_by_key(|&(i, _)| i);

    let mut builder = Workflow::builder(name, recovery);
    let mut ids: Vec<StepId> = Vec::with_capacity(ordered.len());
    for (expected, (index, step)) in ordered.iter().enumerate() {
        let key = index.to_string();
        if *index != expected {
            return Err(GaFormatError::MalformedStep {
                step: key,
                problem: format!("non-contiguous step ids (expected {expected})"),
            });
        }
        let field = |name: &str| -> Result<&Json, GaFormatError> {
            step.get(name).ok_or_else(|| GaFormatError::MalformedStep {
                step: key.clone(),
                problem: format!("missing `{name}`"),
            })
        };
        let label = field("name")?
            .as_str()
            .ok_or_else(|| GaFormatError::MalformedStep {
                step: key.clone(),
                problem: "`name` is not a string".into(),
            })?
            .to_owned();
        let tool = field("tool_id")?
            .as_str()
            .ok_or_else(|| GaFormatError::MalformedStep {
                step: key.clone(),
                problem: "`tool_id` is not a string".into(),
            })?
            .to_owned();
        let annotation = step
            .get("annotation")
            .and_then(Json::as_str)
            .unwrap_or_default();
        let duration_secs: u64 = annotation_field(annotation, "duration_secs")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| GaFormatError::MalformedStep {
                step: key.clone(),
                problem: "annotation lacks `duration_secs`".into(),
            })?;
        let shards: u32 = annotation_field(annotation, "shards")
            .and_then(|v| v.parse().ok())
            .unwrap_or(1);
        let output_gib: f64 = annotation_field(annotation, "output_gib")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.01);
        let output_format = format_from_name(
            step.get("output_format").and_then(Json::as_str).unwrap_or("tabular"),
        );
        let mut inputs = Vec::new();
        if let Some(connections) = step.get("input_connections").and_then(Json::as_object) {
            for conn in connections.values() {
                let dep = conn
                    .get("id")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| GaFormatError::MalformedStep {
                        step: key.clone(),
                        problem: "connection lacks numeric `id`".into(),
                    })?;
                let dep = dep as usize;
                if dep >= ids.len() {
                    return Err(GaFormatError::MalformedStep {
                        step: key.clone(),
                        problem: format!("connection references later step {dep}"),
                    });
                }
                inputs.push(ids[dep]);
            }
        }
        let id = builder.add_step_full(
            label,
            tool,
            SimDuration::from_secs(duration_secs),
            &inputs,
            shards,
            output_format,
            output_gib,
        );
        ids.push(id);
    }
    Ok(builder.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workflow::Workflow;

    fn sample_workflow() -> Workflow {
        let mut b = Workflow::builder("ngs-sample", RecoveryMode::ResumeFromCheckpoint);
        let fetch = b.add_step_full(
            "fetch",
            "sra-toolkit",
            SimDuration::from_mins(18),
            &[],
            1,
            DataFormat::Sra,
            1.0,
        );
        let qc = b.add_sharded_step("fastqc", "fastqc", SimDuration::from_hours(5), &[fetch], 20);
        b.add_step_full(
            "report",
            "multiqc",
            SimDuration::from_mins(12),
            &[qc],
            1,
            DataFormat::Html,
            0.01,
        );
        b.build().unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let original = sample_workflow();
        let ga = to_ga_json(&original);
        let imported = from_ga_json(&ga).unwrap();
        assert_eq!(imported, original);
    }

    #[test]
    fn roundtrips_the_paper_workflows() {
        // Exercise the codec on realistically-sized workflows via the
        // builder patterns used by bio-workloads (23 steps, shards, etc.).
        let mut b = Workflow::builder("big", RecoveryMode::RestartFromScratch);
        let mut prev = None;
        for i in 0..23 {
            let inputs: Vec<_> = prev.into_iter().collect();
            prev = Some(b.add_step(
                format!("step-{i}"),
                "tool",
                SimDuration::from_mins(20 + i),
                &inputs,
            ));
        }
        let original = b.build().unwrap();
        let imported = from_ga_json(&to_ga_json(&original)).unwrap();
        assert_eq!(imported.len(), 23);
        assert_eq!(imported, original);
    }

    #[test]
    fn document_is_galaxy_shaped() {
        let ga = to_ga_json(&sample_workflow());
        let doc = crate::json::parse(&ga).unwrap();
        assert_eq!(doc.get("a_galaxy_workflow").and_then(Json::as_str), Some("true"));
        assert_eq!(doc.get("format-version").and_then(Json::as_str), Some("0.1"));
        let steps = doc.get("steps").and_then(Json::as_object).unwrap();
        assert_eq!(steps.len(), 3);
        let qc = steps.get("1").unwrap();
        assert_eq!(qc.get("tool_id").and_then(Json::as_str), Some("fastqc"));
        assert!(qc
            .get("annotation")
            .and_then(Json::as_str)
            .unwrap()
            .contains("shards=20"));
    }

    #[test]
    fn rejects_non_workflows() {
        assert!(matches!(
            from_ga_json("{}"),
            Err(GaFormatError::NotAGalaxyWorkflow(_))
        ));
        assert!(matches!(from_ga_json("not json"), Err(GaFormatError::Json(_))));
        assert!(matches!(
            from_ga_json(r#"{"a_galaxy_workflow": "true", "name": "x"}"#),
            Err(GaFormatError::NotAGalaxyWorkflow(_))
        ));
    }

    #[test]
    fn rejects_malformed_steps() {
        // Forward-referencing connection.
        let doc = r#"{
            "a_galaxy_workflow": "true",
            "name": "bad",
            "annotation": "recovery=restart-from-scratch",
            "steps": {
                "0": {
                    "id": 0, "name": "a", "tool_id": "t", "type": "tool",
                    "annotation": "duration_secs=60;shards=1",
                    "input_connections": {"input0": {"id": 5, "output_name": "output"}}
                }
            }
        }"#;
        let err = from_ga_json(doc).unwrap_err();
        assert!(matches!(err, GaFormatError::MalformedStep { .. }), "{err}");
        assert!(err.to_string().contains("later step"));
    }

    #[test]
    fn missing_duration_is_rejected() {
        let doc = r#"{
            "a_galaxy_workflow": "true",
            "name": "bad",
            "steps": {
                "0": {"id": 0, "name": "a", "tool_id": "t", "annotation": "shards=1"}
            }
        }"#;
        let err = from_ga_json(doc).unwrap_err();
        assert!(err.to_string().contains("duration_secs"));
    }

    #[test]
    fn recovery_mode_survives_the_trip() {
        let standard = {
            let mut b = Workflow::builder("std", RecoveryMode::RestartFromScratch);
            b.add_step("s", "t", SimDuration::from_mins(5), &[]);
            b.build().unwrap()
        };
        let imported = from_ga_json(&to_ga_json(&standard)).unwrap();
        assert_eq!(imported.recovery(), RecoveryMode::RestartFromScratch);
        let imported_ckpt = from_ga_json(&to_ga_json(&sample_workflow())).unwrap();
        assert_eq!(imported_ckpt.recovery(), RecoveryMode::ResumeFromCheckpoint);
    }
}
