//! Checkpoint persistence.
//!
//! Galaxy has no native checkpointing (the paper works around this, §4);
//! SpotVerse persists per-workload shard progress to a durable store so any
//! replacement instance — in any region — resumes from the last completed
//! unit. [`CheckpointStore`] is the abstraction; an in-memory implementation
//! lives here, and the SpotVerse crate provides a KV-store-backed one.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};
use sim_kernel::SimTime;

/// A persisted progress record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckpointRecord {
    /// Completed units.
    pub units_done: usize,
    /// When the record was written.
    pub updated_at: SimTime,
}

/// Checkpoint-store errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The backing store rejected the operation.
    Backend(String),
    /// A record would move progress backwards (stale writer).
    StaleWrite {
        /// Workload key.
        workload: String,
        /// Units in the incoming record.
        incoming: usize,
        /// Units already persisted.
        persisted: usize,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Backend(msg) => write!(f, "checkpoint backend error: {msg}"),
            CheckpointError::StaleWrite {
                workload,
                incoming,
                persisted,
            } => write!(
                f,
                "stale checkpoint for `{workload}`: incoming {incoming} < persisted {persisted}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Durable storage for workload progress.
///
/// Implementations must be monotone: a save that would lower `units_done`
/// for a workload is rejected with [`CheckpointError::StaleWrite`] — a
/// replacement instance must never resume behind the true frontier.
pub trait CheckpointStore {
    /// Persists (or advances) a workload's progress.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::StaleWrite`] for non-monotone saves and
    /// [`CheckpointError::Backend`] for store failures.
    fn save(&mut self, workload: &str, record: CheckpointRecord) -> Result<(), CheckpointError>;

    /// Loads a workload's latest progress, if any.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Backend`] for store failures.
    fn load(&self, workload: &str) -> Result<Option<CheckpointRecord>, CheckpointError>;

    /// Removes a workload's record (e.g. after completion).
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Backend`] for store failures.
    fn clear(&mut self, workload: &str) -> Result<(), CheckpointError>;
}

/// A process-local checkpoint store (testing, single-instance runs).
///
/// # Examples
///
/// ```
/// use galaxy_flow::{CheckpointRecord, CheckpointStore, InMemoryCheckpointStore};
/// use sim_kernel::SimTime;
///
/// let mut store = InMemoryCheckpointStore::new();
/// store.save("w-1", CheckpointRecord { units_done: 3, updated_at: SimTime::ZERO })?;
/// assert_eq!(store.load("w-1")?.unwrap().units_done, 3);
/// # Ok::<(), galaxy_flow::CheckpointError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct InMemoryCheckpointStore {
    records: BTreeMap<String, CheckpointRecord>,
}

impl InMemoryCheckpointStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        InMemoryCheckpointStore::default()
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records exist.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

impl CheckpointStore for InMemoryCheckpointStore {
    fn save(&mut self, workload: &str, record: CheckpointRecord) -> Result<(), CheckpointError> {
        if let Some(existing) = self.records.get(workload) {
            if record.units_done < existing.units_done {
                return Err(CheckpointError::StaleWrite {
                    workload: workload.to_owned(),
                    incoming: record.units_done,
                    persisted: existing.units_done,
                });
            }
        }
        self.records.insert(workload.to_owned(), record);
        Ok(())
    }

    fn load(&self, workload: &str) -> Result<Option<CheckpointRecord>, CheckpointError> {
        Ok(self.records.get(workload).copied())
    }

    fn clear(&mut self, workload: &str) -> Result<(), CheckpointError> {
        self.records.remove(workload);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(units: usize, at: u64) -> CheckpointRecord {
        CheckpointRecord {
            units_done: units,
            updated_at: SimTime::from_secs(at),
        }
    }

    #[test]
    fn save_load_roundtrip() {
        let mut s = InMemoryCheckpointStore::new();
        assert_eq!(s.load("w").unwrap(), None);
        s.save("w", rec(2, 10)).unwrap();
        assert_eq!(s.load("w").unwrap().unwrap().units_done, 2);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn monotonicity_enforced() {
        let mut s = InMemoryCheckpointStore::new();
        s.save("w", rec(5, 10)).unwrap();
        let err = s.save("w", rec(3, 20)).unwrap_err();
        assert!(matches!(err, CheckpointError::StaleWrite { persisted: 5, .. }));
        // Equal progress is fine (fresh timestamp).
        s.save("w", rec(5, 30)).unwrap();
        assert_eq!(s.load("w").unwrap().unwrap().updated_at, SimTime::from_secs(30));
    }

    #[test]
    fn clear_removes_record() {
        let mut s = InMemoryCheckpointStore::new();
        s.save("w", rec(1, 0)).unwrap();
        s.clear("w").unwrap();
        assert_eq!(s.load("w").unwrap(), None);
        assert!(s.is_empty());
        // Clearing a missing record is a no-op.
        s.clear("ghost").unwrap();
    }

    #[test]
    fn records_are_per_workload() {
        let mut s = InMemoryCheckpointStore::new();
        s.save("a", rec(1, 0)).unwrap();
        s.save("b", rec(9, 0)).unwrap();
        assert_eq!(s.load("a").unwrap().unwrap().units_done, 1);
        assert_eq!(s.load("b").unwrap().unwrap().units_done, 9);
    }
}
