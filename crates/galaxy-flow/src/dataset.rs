//! Datasets and histories — Galaxy's data model.
//!
//! A *history* is Galaxy's per-analysis workspace: every workflow step
//! appends its output datasets to the invoking history.

use std::fmt;

use serde::{Deserialize, Serialize};
use sim_kernel::SimTime;

/// Identifier of a dataset within a Galaxy instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DatasetId(u64);

impl DatasetId {
    pub(crate) fn new(raw: u64) -> Self {
        DatasetId(raw)
    }

    /// The raw id.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for DatasetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dataset/{}", self.0)
    }
}

/// Data formats appearing in the paper's workflows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum DataFormat {
    Fastq,
    FastqGz,
    Vcf,
    Fasta,
    Qza,
    Tabular,
    Html,
    Json,
    Sra,
}

impl DataFormat {
    /// The conventional file extension.
    pub fn extension(self) -> &'static str {
        match self {
            DataFormat::Fastq => "fastq",
            DataFormat::FastqGz => "fastq.gz",
            DataFormat::Vcf => "vcf",
            DataFormat::Fasta => "fasta",
            DataFormat::Qza => "qza",
            DataFormat::Tabular => "tabular",
            DataFormat::Html => "html",
            DataFormat::Json => "json",
            DataFormat::Sra => "sra",
        }
    }
}

/// A dataset: named, formatted, sized.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    id: DatasetId,
    name: String,
    format: DataFormat,
    size_gib: f64,
}

impl Dataset {
    pub(crate) fn new(id: DatasetId, name: String, format: DataFormat, size_gib: f64) -> Self {
        assert!(size_gib >= 0.0, "Dataset: negative size");
        Dataset {
            id,
            name,
            format,
            size_gib,
        }
    }

    /// The dataset id.
    pub fn id(&self) -> DatasetId {
        self.id
    }

    /// Display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Format.
    pub fn format(&self) -> DataFormat {
        self.format
    }

    /// Size in GiB.
    pub fn size_gib(&self) -> f64 {
        self.size_gib
    }
}

/// One entry in a history: a dataset plus provenance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistoryItem {
    /// The dataset.
    pub dataset: Dataset,
    /// When it was created.
    pub created_at: SimTime,
    /// The workflow step (label) that produced it, if any.
    pub produced_by: Option<String>,
}

/// A Galaxy history: an ordered log of datasets.
///
/// # Examples
///
/// ```
/// use galaxy_flow::{DataFormat, History};
/// use sim_kernel::SimTime;
///
/// let mut history = History::new("NGS run 1");
/// let id = history.add_dataset("reads", DataFormat::FastqGz, 1.0, SimTime::ZERO, None);
/// assert_eq!(history.get(id).unwrap().name(), "reads");
/// assert_eq!(history.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct History {
    name: String,
    items: Vec<HistoryItem>,
    next_dataset: u64,
}

impl History {
    /// Creates an empty history.
    pub fn new(name: impl Into<String>) -> Self {
        History {
            name: name.into(),
            items: Vec::new(),
            next_dataset: 1,
        }
    }

    /// The history name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a dataset, returning its id.
    pub fn add_dataset(
        &mut self,
        name: impl Into<String>,
        format: DataFormat,
        size_gib: f64,
        at: SimTime,
        produced_by: Option<String>,
    ) -> DatasetId {
        let id = DatasetId::new(self.next_dataset);
        self.next_dataset += 1;
        self.items.push(HistoryItem {
            dataset: Dataset::new(id, name.into(), format, size_gib),
            created_at: at,
            produced_by,
        });
        id
    }

    /// Looks up a dataset by id.
    pub fn get(&self, id: DatasetId) -> Option<&Dataset> {
        self.items
            .iter()
            .find(|item| item.dataset.id() == id)
            .map(|item| &item.dataset)
    }

    /// Iterates over items in creation order.
    pub fn iter(&self) -> std::slice::Iter<'_, HistoryItem> {
        self.items.iter()
    }

    /// Number of datasets.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the history holds no datasets.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total stored size in GiB.
    pub fn total_size_gib(&self) -> f64 {
        self.items.iter().map(|i| i.dataset.size_gib()).sum()
    }
}

impl<'a> IntoIterator for &'a History {
    type Item = &'a HistoryItem;
    type IntoIter = std::slice::Iter<'a, HistoryItem>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get_dataset() {
        let mut h = History::new("h");
        let id = h.add_dataset("x", DataFormat::Vcf, 0.25, SimTime::from_secs(10), Some("step-1".into()));
        let d = h.get(id).unwrap();
        assert_eq!(d.format(), DataFormat::Vcf);
        assert_eq!(d.size_gib(), 0.25);
        assert_eq!(h.iter().next().unwrap().produced_by.as_deref(), Some("step-1"));
        assert_eq!(h.name(), "h");
    }

    #[test]
    fn ids_are_unique_and_ordered() {
        let mut h = History::new("h");
        let a = h.add_dataset("a", DataFormat::Fasta, 0.1, SimTime::ZERO, None);
        let b = h.add_dataset("b", DataFormat::Fasta, 0.1, SimTime::ZERO, None);
        assert_ne!(a, b);
        assert!(a < b);
        assert_eq!(h.get(DatasetId::new(99)), None);
    }

    #[test]
    fn total_size_accumulates() {
        let mut h = History::new("h");
        h.add_dataset("a", DataFormat::FastqGz, 1.0, SimTime::ZERO, None);
        h.add_dataset("b", DataFormat::Html, 0.5, SimTime::ZERO, None);
        assert!((h.total_size_gib() - 1.5).abs() < 1e-12);
        assert_eq!((&h).into_iter().count(), 2);
        assert!(!h.is_empty());
    }

    #[test]
    fn format_extensions() {
        assert_eq!(DataFormat::FastqGz.extension(), "fastq.gz");
        assert_eq!(DataFormat::Qza.extension(), "qza");
    }

    #[test]
    fn display_formats() {
        assert_eq!(DatasetId::new(3).to_string(), "dataset/3");
    }
}
