//! Tools and the Tool Shed.
//!
//! Galaxy's Tool Shed is its package registry: administrators install
//! versioned tools (FastQC, DADA2, Pangolin…) which workflows then reference
//! by id. This module reproduces the registry surface the paper's AMI setup
//! uses (§4: "installing and configuring Galaxy … along with necessary
//! tools").

use std::borrow::Cow;
use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a tool within the shed, e.g. `"fastqc"`.
///
/// Stored as a `Cow` so the static tool names used by every built-in
/// workflow never hit the heap — workflow construction sits on the
/// fleet runtime's per-workload path, where each saved allocation is
/// multiplied by the fleet size.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ToolId(Cow<'static, str>);

impl ToolId {
    /// Creates a tool id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is empty.
    pub fn new(id: impl Into<Cow<'static, str>>) -> Self {
        let id = id.into();
        assert!(!id.is_empty(), "ToolId: empty id");
        ToolId(id)
    }

    /// The raw id string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ToolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&'static str> for ToolId {
    fn from(s: &'static str) -> Self {
        ToolId::new(s)
    }
}

impl From<String> for ToolId {
    fn from(s: String) -> Self {
        ToolId::new(s)
    }
}

/// The broad category a tool belongs to (mirrors Galaxy tool panels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum ToolCategory {
    QualityControl,
    SequenceTrimming,
    Alignment,
    VariantAnalysis,
    Phylogenetics,
    Classification,
    Reporting,
    DataRetrieval,
    General,
}

/// Resource requirements a tool declares.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ToolRequirements {
    /// Minimum vCPUs.
    pub min_vcpus: u32,
    /// Minimum memory in GiB.
    pub min_memory_gib: u32,
}

impl Default for ToolRequirements {
    fn default() -> Self {
        ToolRequirements {
            min_vcpus: 1,
            min_memory_gib: 1,
        }
    }
}

/// A versioned tool.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tool {
    id: ToolId,
    name: String,
    version: String,
    category: ToolCategory,
    requirements: ToolRequirements,
}

impl Tool {
    /// Creates a tool description.
    pub fn new(
        id: impl Into<ToolId>,
        name: impl Into<String>,
        version: impl Into<String>,
        category: ToolCategory,
    ) -> Self {
        Tool {
            id: id.into(),
            name: name.into(),
            version: version.into(),
            category,
            requirements: ToolRequirements::default(),
        }
    }

    /// Sets explicit resource requirements (builder-style).
    pub fn with_requirements(mut self, requirements: ToolRequirements) -> Self {
        self.requirements = requirements;
        self
    }

    /// The tool id.
    pub fn id(&self) -> &ToolId {
        &self.id
    }

    /// Display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Version string.
    pub fn version(&self) -> &str {
        &self.version
    }

    /// Panel category.
    pub fn category(&self) -> ToolCategory {
        self.category
    }

    /// Declared requirements.
    pub fn requirements(&self) -> ToolRequirements {
        self.requirements
    }
}

impl From<&'static str> for Tool {
    /// A minimal tool from a bare id (General category, version "1.0").
    fn from(id: &'static str) -> Self {
        Tool::new(id, id, "1.0", ToolCategory::General)
    }
}

/// Tool Shed errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ToolShedError {
    /// A tool with that id is already installed.
    AlreadyInstalled(ToolId),
    /// The tool is not installed.
    NotInstalled(ToolId),
}

impl fmt::Display for ToolShedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ToolShedError::AlreadyInstalled(id) => write!(f, "tool `{id}` already installed"),
            ToolShedError::NotInstalled(id) => write!(f, "tool `{id}` is not installed"),
        }
    }
}

impl std::error::Error for ToolShedError {}

/// The Tool Shed: the registry of installed tools.
///
/// # Examples
///
/// ```
/// use galaxy_flow::{Tool, ToolCategory, ToolShed};
///
/// let mut shed = ToolShed::new();
/// shed.install(Tool::new("fastqc", "FastQC", "0.12.1", ToolCategory::QualityControl))?;
/// assert!(shed.is_installed(&"fastqc".into()));
/// # Ok::<(), galaxy_flow::ToolShedError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ToolShed {
    tools: BTreeMap<ToolId, Tool>,
}

impl ToolShed {
    /// Creates an empty shed.
    pub fn new() -> Self {
        ToolShed::default()
    }

    /// Installs a tool.
    ///
    /// # Errors
    ///
    /// Returns [`ToolShedError::AlreadyInstalled`] on duplicates.
    pub fn install(&mut self, tool: Tool) -> Result<(), ToolShedError> {
        if self.tools.contains_key(tool.id()) {
            return Err(ToolShedError::AlreadyInstalled(tool.id().clone()));
        }
        self.tools.insert(tool.id().clone(), tool);
        Ok(())
    }

    /// Installs a tool, replacing any existing version.
    pub fn install_or_upgrade(&mut self, tool: Tool) {
        self.tools.insert(tool.id().clone(), tool);
    }

    /// Looks up a tool.
    ///
    /// # Errors
    ///
    /// Returns [`ToolShedError::NotInstalled`] when missing.
    pub fn get(&self, id: &ToolId) -> Result<&Tool, ToolShedError> {
        self.tools
            .get(id)
            .ok_or_else(|| ToolShedError::NotInstalled(id.clone()))
    }

    /// Whether a tool is installed.
    pub fn is_installed(&self, id: &ToolId) -> bool {
        self.tools.contains_key(id)
    }

    /// Iterates over installed tools in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Tool> {
        self.tools.values()
    }

    /// Number of installed tools.
    pub fn len(&self) -> usize {
        self.tools.len()
    }

    /// True if no tools are installed.
    pub fn is_empty(&self) -> bool {
        self.tools.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_and_lookup() {
        let mut shed = ToolShed::new();
        shed.install(Tool::new("dada2", "DADA2", "1.26", ToolCategory::QualityControl))
            .unwrap();
        let t = shed.get(&"dada2".into()).unwrap();
        assert_eq!(t.name(), "DADA2");
        assert_eq!(t.version(), "1.26");
        assert_eq!(t.category(), ToolCategory::QualityControl);
        assert_eq!(shed.len(), 1);
        assert!(!shed.is_empty());
    }

    #[test]
    fn duplicate_install_errors_but_upgrade_replaces() {
        let mut shed = ToolShed::new();
        shed.install(Tool::from("fastqc")).unwrap();
        assert!(matches!(
            shed.install(Tool::from("fastqc")),
            Err(ToolShedError::AlreadyInstalled(_))
        ));
        shed.install_or_upgrade(Tool::new(
            "fastqc",
            "FastQC",
            "0.12.1",
            ToolCategory::QualityControl,
        ));
        assert_eq!(shed.get(&"fastqc".into()).unwrap().version(), "0.12.1");
    }

    #[test]
    fn missing_tool_errors() {
        let shed = ToolShed::new();
        let err = shed.get(&"ghost".into()).unwrap_err();
        assert!(err.to_string().contains("ghost"));
        assert!(!shed.is_installed(&"ghost".into()));
    }

    #[test]
    fn requirements_builder() {
        let t = Tool::from("big").with_requirements(ToolRequirements {
            min_vcpus: 8,
            min_memory_gib: 32,
        });
        assert_eq!(t.requirements().min_vcpus, 8);
        assert_eq!(t.requirements().min_memory_gib, 32);
    }

    #[test]
    #[should_panic(expected = "empty id")]
    fn empty_tool_id_panics() {
        ToolId::new("");
    }

    #[test]
    fn iteration_is_ordered() {
        let mut shed = ToolShed::new();
        shed.install(Tool::from("b")).unwrap();
        shed.install(Tool::from("a")).unwrap();
        let ids: Vec<&str> = shed.iter().map(|t| t.id().as_str()).collect();
        assert_eq!(ids, vec!["a", "b"]);
    }
}
