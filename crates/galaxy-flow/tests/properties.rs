//! Property-based tests on workflow execution-plan arithmetic: the
//! invariants the experiment engine's progress accounting relies on.

use proptest::prelude::*;

use galaxy_flow::{
    CheckpointRecord, CheckpointStore, ExecutionPlan, InMemoryCheckpointStore, RecoveryMode,
    Workflow, WorkflowInvocation,
};
use sim_kernel::{SimDuration, SimTime};

/// An arbitrary small workflow: 1–6 steps, each with 1–8 shards and a
/// duration of minutes to hours.
fn arb_workflow(recovery: RecoveryMode) -> impl Strategy<Value = Workflow> {
    prop::collection::vec((1u32..8, 60u64..20_000), 1..6).prop_map(move |steps| {
        let mut b = Workflow::builder("prop", recovery);
        let mut prev = None;
        for (i, (shards, secs)) in steps.into_iter().enumerate() {
            let inputs: Vec<_> = prev.into_iter().collect();
            let id = b.add_sharded_step(
                format!("s{i}"),
                "tool",
                SimDuration::from_secs(secs),
                &inputs,
                shards,
            );
            prev = Some(id);
        }
        b.build().expect("generated workflow is valid")
    })
}

proptest! {
    /// remaining_after(k) + time-of-first-k-units == total, for every k.
    #[test]
    fn plan_work_is_conserved(wf in arb_workflow(RecoveryMode::ResumeFromCheckpoint)) {
        let plan = ExecutionPlan::new(&wf);
        let total = plan.total_duration();
        for k in 0..=plan.unit_count() {
            let done: SimDuration = plan.units()[..k]
                .iter()
                .fold(SimDuration::ZERO, |acc, u| acc + u.duration);
            prop_assert_eq!(done + plan.remaining_after(k), total);
        }
    }

    /// units_completed_within never overshoots the elapsed budget and is
    /// monotone in elapsed time.
    #[test]
    fn units_completed_within_is_sound(
        wf in arb_workflow(RecoveryMode::ResumeFromCheckpoint),
        elapsed_secs in 0u64..200_000,
    ) {
        let plan = ExecutionPlan::new(&wf);
        let elapsed = SimDuration::from_secs(elapsed_secs);
        let n = plan.units_completed_within(0, elapsed);
        let consumed: SimDuration = plan.units()[..n]
            .iter()
            .fold(SimDuration::ZERO, |acc, u| acc + u.duration);
        prop_assert!(consumed <= elapsed, "completed units exceed the elapsed budget");
        // One more unit would not have fit (unless all are done).
        if n < plan.unit_count() {
            let next = plan.units()[n].duration;
            prop_assert!(consumed + next > elapsed);
        }
        // Monotonicity.
        let more = plan.units_completed_within(0, elapsed + SimDuration::from_secs(1));
        prop_assert!(more >= n);
    }

    /// Interruption semantics: checkpoint invocations never lose completed
    /// units; restart invocations always reset to zero.
    #[test]
    fn interruption_semantics_hold(
        wf_ckpt in arb_workflow(RecoveryMode::ResumeFromCheckpoint),
        wf_std in arb_workflow(RecoveryMode::RestartFromScratch),
        run_secs in 0u64..100_000,
    ) {
        let mut ckpt = WorkflowInvocation::new(&wf_ckpt);
        let _ = ckpt.record_execution(SimDuration::from_secs(run_secs));
        let before = ckpt.units_done();
        ckpt.handle_interruption();
        prop_assert_eq!(ckpt.units_done(), before);

        let mut std = WorkflowInvocation::new(&wf_std);
        let _ = std.record_execution(SimDuration::from_secs(run_secs));
        std.handle_interruption();
        prop_assert_eq!(std.units_done(), 0);
    }

    /// Running an invocation in arbitrary chunks completes in exactly the
    /// chunks that sum past the total duration (no lost or duplicated
    /// progress across chunk boundaries for unit-aligned chunks).
    #[test]
    fn chunked_execution_reaches_completion(
        wf in arb_workflow(RecoveryMode::ResumeFromCheckpoint),
    ) {
        let plan = ExecutionPlan::new(&wf);
        let mut inv = WorkflowInvocation::new(&wf);
        // Execute unit by unit using each unit's exact duration.
        for unit in plan.units() {
            prop_assert!(!inv.is_completed());
            let p = inv.record_execution(unit.duration).unwrap();
            prop_assert_eq!(p.units_completed, 1);
        }
        prop_assert!(inv.is_completed());
        prop_assert_eq!(inv.remaining_duration(), SimDuration::ZERO);
        prop_assert!((inv.fraction_done() - 1.0).abs() < 1e-12);
    }

    /// The checkpoint store is monotone under arbitrary interleavings of
    /// saves: the persisted frontier never decreases.
    #[test]
    fn checkpoint_store_frontier_is_monotone(saves in prop::collection::vec(0usize..50, 1..30)) {
        let mut store = InMemoryCheckpointStore::new();
        let mut frontier = 0usize;
        for (i, units) in saves.iter().enumerate() {
            let result = store.save(
                "w",
                CheckpointRecord {
                    units_done: *units,
                    updated_at: SimTime::from_secs(i as u64),
                },
            );
            if *units >= frontier {
                prop_assert!(result.is_ok());
                frontier = *units;
            } else {
                prop_assert!(result.is_err(), "stale save {units} < frontier {frontier} accepted");
            }
            let persisted = store.load("w").unwrap().unwrap().units_done;
            prop_assert_eq!(persisted, frontier);
        }
    }

    /// resume_from round-trips with units_done for every valid offset.
    #[test]
    fn resume_roundtrip(wf in arb_workflow(RecoveryMode::ResumeFromCheckpoint)) {
        let plan_units = ExecutionPlan::new(&wf).unit_count();
        let mut inv = WorkflowInvocation::new(&wf);
        for k in 0..=plan_units {
            inv.resume_from(k).unwrap();
            prop_assert_eq!(inv.units_done(), k);
        }
        prop_assert!(inv.resume_from(plan_units + 1).is_err());
    }
}

mod ga_roundtrip {
    use super::*;
    use galaxy_flow::{from_ga_json, json, to_ga_json};

    proptest! {
        /// Every constructible workflow round-trips through the `.ga`
        /// codec losslessly.
        #[test]
        fn ga_codec_roundtrips(wf in arb_workflow(RecoveryMode::ResumeFromCheckpoint)) {
            let ga = to_ga_json(&wf);
            let imported = from_ga_json(&ga).unwrap();
            prop_assert_eq!(imported, wf);
        }

        /// The JSON writer always produces parseable documents for
        /// arbitrary string content (escaping is total).
        #[test]
        fn json_string_escaping_is_total(s in ".*") {
            let doc = json::Json::String(s.clone());
            let rendered = json::write(&doc);
            let parsed = json::parse(&rendered).unwrap();
            prop_assert_eq!(parsed.as_str(), Some(s.as_str()));
        }

        /// Arbitrary nested JSON documents round-trip through
        /// write ∘ parse.
        #[test]
        fn json_document_roundtrip(
            keys in prop::collection::vec("[a-z]{1,8}", 1..6),
            numbers in prop::collection::vec(-1e9f64..1e9, 1..6),
        ) {
            let mut map = std::collections::BTreeMap::new();
            for (k, n) in keys.iter().zip(numbers.iter()) {
                map.insert(k.clone(), json::Json::Number((*n * 100.0).round() / 100.0));
            }
            let doc = json::Json::Object(map);
            let rendered = json::write(&doc);
            let parsed = json::parse(&rendered).unwrap();
            prop_assert_eq!(parsed, doc);
        }
    }
}
