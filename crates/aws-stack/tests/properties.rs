//! Property-based tests for the serverless substrate.

use proptest::prelude::*;

use aws_stack::{
    AttrValue, BusEvent, EventBus, Item, KvStore, MetricKey, MetricsService, ObjectBody,
    ObjectStore, Rule, Schedule, Statistic,
};
use cloud_compute::BillingLedger;
use cloud_market::Region;
use sim_kernel::{SimDuration, SimTime};

proptest! {
    /// KV put/get round-trips arbitrary numeric and string attributes.
    #[test]
    fn kv_roundtrips_items(
        keys in prop::collection::vec("[a-z0-9/]{1,16}", 1..20),
        numbers in prop::collection::vec(-1e12f64..1e12, 1..20),
    ) {
        let mut db = KvStore::new();
        let mut ledger = BillingLedger::new();
        db.create_table("t", Region::UsEast1).unwrap();
        for (k, n) in keys.iter().zip(numbers.iter()) {
            let mut item = Item::new();
            item.insert("n".into(), AttrValue::N(*n));
            item.insert("k".into(), AttrValue::S(k.clone()));
            db.put_item("t", k.clone(), item, SimTime::ZERO, &mut ledger).unwrap();
        }
        for (k, n) in keys.iter().zip(numbers.iter()) {
            // Later writes to the same key overwrite; find the last value
            // written for this key.
            let expected = keys
                .iter()
                .zip(numbers.iter())
                .rfind(|(kk, _)| *kk == k)
                .map(|(_, v)| *v)
                .unwrap_or(*n);
            let got = db.get_item("t", k, SimTime::ZERO, &mut ledger).unwrap().unwrap();
            prop_assert_eq!(got["n"].as_number(), Some(expected));
        }
        prop_assert!(ledger.total().amount() > 0.0);
    }

    /// scan_prefix returns exactly the keys with that prefix, sorted.
    #[test]
    fn kv_scan_prefix_is_exact(
        keys in prop::collection::btree_set("[a-c]{1,6}", 1..30),
        prefix in "[a-c]{0,3}",
    ) {
        let mut db = KvStore::new();
        let mut ledger = BillingLedger::new();
        db.create_table("t", Region::UsEast1).unwrap();
        for k in &keys {
            db.put_item("t", k.clone(), Item::new(), SimTime::ZERO, &mut ledger).unwrap();
        }
        let scanned: Vec<String> = db
            .scan_prefix("t", &prefix)
            .unwrap()
            .iter()
            .map(|&(k, _)| k.to_owned())
            .collect();
        let expected: Vec<String> = keys
            .iter()
            .filter(|k| k.starts_with(&prefix))
            .cloned()
            .collect();
        prop_assert_eq!(scanned, expected);
    }

    /// Object-store same-region put/get round-trips text payloads with zero
    /// transfer cost; cross-region gets always cost something.
    #[test]
    fn object_store_costs_track_geography(
        text in ".{0,200}",
        to_region_idx in 0usize..12,
    ) {
        let mut s3 = ObjectStore::new();
        let mut ledger = BillingLedger::new();
        s3.create_bucket("b", Region::UsEast1).unwrap();
        s3.put_object("b", "k", ObjectBody::from_text(text.clone()), Region::UsEast1, SimTime::ZERO, &mut ledger).unwrap();
        let to = Region::ALL[to_region_idx];
        let (obj, outcome) = s3.get_object("b", "k", to, SimTime::ZERO, &mut ledger).unwrap();
        prop_assert_eq!(obj.body().as_text(), Some(text.as_str()));
        if to == Region::UsEast1 || text.is_empty() {
            prop_assert_eq!(outcome.cost.amount(), 0.0);
        }
        prop_assert!(outcome.completes_at >= SimTime::ZERO);
    }

    /// Schedules fire exactly floor((to-from)/period) ± 1 times in a
    /// window, all on period boundaries.
    #[test]
    fn schedule_occurrences_are_on_grid(
        period_mins in 1u64..120,
        start in 0u64..10_000,
        window in 1u64..500_000,
    ) {
        let s = Schedule::new("s", SimDuration::from_mins(period_mins), SimTime::from_secs(start));
        let from = SimTime::from_secs(start);
        let to = SimTime::from_secs(start + window);
        let occ = s.occurrences(from, to);
        let period = period_mins * 60;
        for t in &occ {
            prop_assert_eq!((t.as_secs() - start) % period, 0);
            prop_assert!(*t >= from && *t < to);
        }
        let expected = window.div_ceil(period);
        prop_assert_eq!(occ.len() as u64, expected);
    }

    /// Metric statistics agree with a direct computation over the window.
    #[test]
    fn metric_statistics_match_reference(
        values in prop::collection::vec(-1e6f64..1e6, 1..40),
    ) {
        let mut cw = MetricsService::new(Region::UsEast1);
        let mut ledger = BillingLedger::new();
        let key = MetricKey::new("ns", "m", "d");
        for (i, v) in values.iter().enumerate() {
            cw.put_metric(key.clone(), SimTime::from_secs(i as u64), *v, &mut ledger);
        }
        let to = SimTime::from_secs(values.len() as u64);
        let sum = cw.statistic(&key, Statistic::Sum, SimTime::ZERO, to).unwrap();
        let avg = cw.statistic(&key, Statistic::Average, SimTime::ZERO, to).unwrap();
        let count = cw.statistic(&key, Statistic::SampleCount, SimTime::ZERO, to).unwrap();
        let expected_sum: f64 = values.iter().sum();
        prop_assert!((sum - expected_sum).abs() < 1e-6 * (1.0 + expected_sum.abs()));
        prop_assert_eq!(count as usize, values.len());
        prop_assert!((avg - expected_sum / values.len() as f64).abs() < 1e-6 * (1.0 + avg.abs()));
    }

    /// Concurrent lease claims: for any interleaving of claimants over a
    /// small key space, the conditional write admits exactly one winner
    /// per lease key — the first claimant in arrival order — and the
    /// stored lease records that winner.
    #[test]
    fn conditional_claim_admits_exactly_one_winner_per_key(
        claims in prop::collection::vec((0usize..4, 0usize..6), 1..40),
    ) {
        let mut kv = KvStore::new();
        let mut ledger = BillingLedger::new();
        kv.create_table("leases", Region::UsEast1).unwrap();
        let mut winners: Vec<Option<usize>> = vec![None; 4];
        let mut successes = [0u32; 4];
        for (key_idx, owner) in &claims {
            let key = format!("shard-{key_idx}");
            let mut item = Item::new();
            item.insert("owner".into(), AttrValue::S(format!("claimant-{owner}")));
            let won = kv
                .conditional_put("leases", &key, item, SimTime::ZERO, &mut ledger, |cur| {
                    cur.is_none()
                })
                .is_ok();
            if won {
                successes[*key_idx] += 1;
                winners[*key_idx].get_or_insert(*owner);
            }
        }
        for key_idx in 0..4 {
            let contested = claims.iter().any(|(k, _)| *k == key_idx);
            prop_assert_eq!(successes[key_idx], u32::from(contested),
                "exactly one winner iff the key was contested");
            let first = claims.iter().find(|(k, _)| *k == key_idx).map(|(_, o)| *o);
            prop_assert_eq!(winners[key_idx], first, "the first claimant wins");
            if contested {
                let key = format!("shard-{key_idx}");
                let item = kv.get_item("leases", &key, SimTime::ZERO, &mut ledger).unwrap().unwrap();
                let expected = format!("claimant-{}", first.unwrap());
                prop_assert_eq!(item["owner"].as_str(), Some(expected.as_str()));
            }
        }
    }

    /// Expiring leases admit exactly one winner per expiry epoch: replaying
    /// timed claims against a reference model, a claim wins iff no
    /// unexpired lease is held at its instant.
    #[test]
    fn conditional_claim_respects_lease_expiry_epochs(
        gaps in prop::collection::vec(0u64..400, 1..30),
    ) {
        const LEASE_SECS: u64 = 600;
        let mut kv = KvStore::new();
        let mut ledger = BillingLedger::new();
        kv.create_table("leases", Region::UsEast1).unwrap();
        let mut now = 0u64;
        let mut model_expiry: Option<u64> = None;
        for (i, gap) in gaps.iter().enumerate() {
            now += gap;
            let at = SimTime::from_secs(now);
            let mut item = Item::new();
            item.insert("owner".into(), AttrValue::S(format!("claimant-{i}")));
            item.insert("expires".into(), AttrValue::N((now + LEASE_SECS) as f64));
            let won = kv
                .conditional_put("leases", "shard-0", item, at, &mut ledger, |cur| {
                    match cur {
                        None => true,
                        Some(held) => {
                            let expires = held["expires"].as_number().unwrap_or(0.0) as u64;
                            expires <= now
                        }
                    }
                })
                .is_ok();
            let model_won = model_expiry.is_none_or(|e| e <= now);
            prop_assert_eq!(won, model_won, "claim {} at t={}", i, now);
            if model_won {
                model_expiry = Some(now + LEASE_SECS);
            }
        }
    }

    /// The orchestrator's consumer path (result-exists pre-check, then a
    /// conditional lease claim, then a keyed result write) is idempotent:
    /// any duplicated delivery stream leaves stores byte-identical to the
    /// deduplicated stream.
    #[test]
    fn duplicated_deliveries_leave_consumer_state_identical(
        stream in prop::collection::vec(0usize..6, 1..30),
    ) {
        fn consume(stream: &[usize]) -> Vec<Option<String>> {
            let mut kv = KvStore::new();
            let mut s3 = ObjectStore::new();
            let mut ledger = BillingLedger::new();
            kv.create_table("leases", Region::UsEast1).unwrap();
            s3.create_bucket("results", Region::UsEast1).unwrap();
            for (i, shard) in stream.iter().enumerate() {
                let key = format!("shard-{shard}");
                if s3.get_metadata("results", &key).is_ok() {
                    continue; // idempotent duplicate: result already durable
                }
                let mut item = Item::new();
                item.insert("owner".into(), AttrValue::S(format!("exec-{i}")));
                if kv
                    .conditional_put("leases", &key, item, SimTime::ZERO, &mut ledger, |cur| {
                        cur.is_none()
                    })
                    .is_err()
                {
                    continue;
                }
                s3.put_object(
                    "results",
                    key,
                    ObjectBody::from_text(format!("result-{shard}")),
                    Region::UsEast1,
                    SimTime::ZERO,
                    &mut ledger,
                )
                .unwrap();
            }
            (0..6)
                .map(|shard| {
                    let key = format!("shard-{shard}");
                    s3.get_metadata("results", &key).ok().and_then(|o| {
                        o.body().as_text().map(str::to_owned)
                    })
                })
                .collect()
        }
        let mut deduped: Vec<usize> = Vec::new();
        for shard in &stream {
            if !deduped.contains(shard) {
                deduped.push(*shard);
            }
        }
        let raw = consume(&stream);
        let clean = consume(&deduped);
        prop_assert_eq!(&raw, &clean, "duplicates must be byte-level no-ops");
        for (shard, stored) in raw.iter().enumerate() {
            let expected = stream.contains(&shard).then(|| format!("result-{shard}"));
            prop_assert_eq!(stored, &expected);
        }
    }

    /// Event-bus delivery count equals the number of matching rules, for
    /// arbitrary rule sets.
    #[test]
    fn event_bus_delivers_per_matching_rule(
        sources in prop::collection::vec("[a-b]{1,3}", 1..10),
        event_source in "[a-b]{1,3}",
    ) {
        let mut bus = EventBus::new();
        for (i, source) in sources.iter().enumerate() {
            bus.put_rule(Rule::new(format!("r{i}"), source.clone(), None, "t")).unwrap();
        }
        let matching = sources
            .iter()
            .filter(|s| event_source.starts_with(s.as_str()))
            .count();
        let targets = bus.publish(BusEvent::new(event_source.clone(), "dt", "", SimTime::ZERO));
        prop_assert_eq!(targets.len(), matching);
        prop_assert_eq!(bus.delivered_count() as usize, matching);
    }
}
