//! The fallible service facade — `aws-stack`'s fault-injection seam.
//!
//! Every managed service ([`crate::KvStore`], [`crate::ObjectStore`],
//! [`crate::FunctionRuntime`]) can carry a [`ServiceFaultInjector`]: a
//! chaos layer consults it before each call and may turn the call into a
//! throttling error or add latency to its outcome. Without an injector the
//! services behave exactly as before — the seam costs nothing on the
//! fault-free path.

use sim_kernel::{SimDuration, SimTime};

/// The control-plane operation being attempted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServiceOp {
    /// A KV-store read (`get_item`, `scan_prefix`).
    KvRead,
    /// A KV-store write (`put_item`, `update_item`, `conditional_put`).
    KvWrite,
    /// An object-store download.
    ObjectGet,
    /// An object-store upload.
    ObjectPut,
    /// A function invocation.
    FunctionInvoke,
    /// Delivery of one event-bus event to one matched target.
    EventDeliver,
}

impl std::fmt::Display for ServiceOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ServiceOp::KvRead => "kv-read",
            ServiceOp::KvWrite => "kv-write",
            ServiceOp::ObjectGet => "object-get",
            ServiceOp::ObjectPut => "object-put",
            ServiceOp::FunctionInvoke => "function-invoke",
            ServiceOp::EventDeliver => "event-deliver",
        };
        f.write_str(name)
    }
}

/// What the injector did to one call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceFault {
    /// The call fails with a throttling error.
    Throttled,
    /// The call succeeds but its outcome is delayed by this much.
    Delayed(SimDuration),
    /// The call vanishes in transit. Request/response services surface
    /// this as a retryable (throttling-class) error; for event delivery
    /// the event is silently dropped and the target never fires.
    Lost,
    /// The call is delivered twice. Only meaningful for event delivery
    /// (at-least-once semantics); idempotent request/response services
    /// treat a duplicate as a clean success.
    Duplicate,
}

/// Decides the fate of each control-plane call. Implementations must be
/// deterministic functions of their own seeded state and the call sequence.
pub trait ServiceFaultInjector: std::fmt::Debug + Send {
    /// Called once per service call; `None` means the call proceeds
    /// normally.
    fn intercept(&mut self, op: ServiceOp, at: SimTime) -> Option<ServiceFault>;
}
