//! The S3-like object store.
//!
//! SpotVerse uses it for: monitoring code artifacts, instance-activity logs
//! (workload durations and interruption details are reconstructed from
//! these, §5.1.2), and checkpoint datasets. Cross-region puts/gets pay the
//! shared transfer tariff and take real transfer time — the constraint that
//! checkpoint uploads must fit the two-minute interruption notice.

use std::collections::BTreeMap;
use std::fmt;

use bytes::Bytes;
use serde::{Deserialize, Serialize};
use sim_kernel::SimTime;

use cloud_compute::{transfer, BillingLedger, ServiceKind};
use cloud_market::{Region, Usd};

use crate::fault::{ServiceFault, ServiceFaultInjector, ServiceOp};

/// The body of a stored object: real bytes for small control-plane records,
/// or a synthetic size for bulk scientific data whose contents are
/// irrelevant to the simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum ObjectBody {
    /// Literal bytes (logs, JSON-ish records).
    Inline(Bytes),
    /// A virtual payload of the given size in GiB.
    Synthetic {
        /// Payload size in GiB.
        size_gib: f64,
    },
}

impl ObjectBody {
    /// Creates an inline body from a string.
    pub fn from_text(text: impl Into<String>) -> Self {
        ObjectBody::Inline(Bytes::from(text.into()))
    }

    /// The body size in GiB.
    pub fn size_gib(&self) -> f64 {
        match self {
            ObjectBody::Inline(bytes) => bytes.len() as f64 / (1024.0 * 1024.0 * 1024.0),
            ObjectBody::Synthetic { size_gib } => *size_gib,
        }
    }

    /// The inline text, if this is an inline body of valid UTF-8.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            ObjectBody::Inline(bytes) => std::str::from_utf8(bytes).ok(),
            ObjectBody::Synthetic { .. } => None,
        }
    }
}

/// A stored object plus metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredObject {
    body: ObjectBody,
    put_at: SimTime,
    origin_region: Region,
}

impl StoredObject {
    /// The object body.
    pub fn body(&self) -> &ObjectBody {
        &self.body
    }

    /// When the object was written.
    pub fn put_at(&self) -> SimTime {
        self.put_at
    }

    /// The region the writer uploaded from.
    pub fn origin_region(&self) -> Region {
        self.origin_region
    }
}

/// Object-store errors.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ObjectStoreError {
    /// The bucket does not exist.
    NoSuchBucket(String),
    /// The bucket already exists.
    BucketExists(String),
    /// The key does not exist in the bucket.
    NoSuchKey {
        /// Bucket name.
        bucket: String,
        /// Object key.
        key: String,
    },
    /// The call was throttled (injected control-plane degradation);
    /// retry with backoff.
    Throttled {
        /// Bucket name.
        bucket: String,
    },
}

impl fmt::Display for ObjectStoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectStoreError::NoSuchBucket(b) => write!(f, "no such bucket `{b}`"),
            ObjectStoreError::BucketExists(b) => write!(f, "bucket `{b}` already exists"),
            ObjectStoreError::NoSuchKey { bucket, key } => {
                write!(f, "no such key `{key}` in bucket `{bucket}`")
            }
            ObjectStoreError::Throttled { bucket } => {
                write!(f, "request against bucket `{bucket}` throttled")
            }
        }
    }
}

impl std::error::Error for ObjectStoreError {}

/// Outcome of a transfer-bearing operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferOutcome {
    /// When the transfer completes.
    pub completes_at: SimTime,
    /// What the transfer cost (zero within a region).
    pub cost: Usd,
}

#[derive(Debug)]
struct Bucket {
    region: Region,
    objects: BTreeMap<String, StoredObject>,
}

/// The S3-like multi-bucket object store.
///
/// # Examples
///
/// ```
/// use aws_stack::{ObjectBody, ObjectStore};
/// use cloud_compute::BillingLedger;
/// use cloud_market::Region;
/// use sim_kernel::SimTime;
///
/// let mut s3 = ObjectStore::new();
/// let mut ledger = BillingLedger::new();
/// s3.create_bucket("spotverse-logs", Region::UsEast1)?;
/// s3.put_object(
///     "spotverse-logs",
///     "run-1/interruptions.log",
///     ObjectBody::from_text("i-0001 interrupted"),
///     Region::UsEast1,
///     SimTime::ZERO,
///     &mut ledger,
/// )?;
/// assert!(s3.get_metadata("spotverse-logs", "run-1/interruptions.log").is_ok());
/// # Ok::<(), aws_stack::ObjectStoreError>(())
/// ```
#[derive(Debug, Default)]
pub struct ObjectStore {
    buckets: BTreeMap<String, Bucket>,
    put_count: u64,
    get_count: u64,
    injector: Option<Box<dyn ServiceFaultInjector>>,
}

impl ObjectStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ObjectStore::default()
    }

    /// Installs a fault injector consulted before every transfer-bearing
    /// call. Chaos-only.
    pub fn set_fault_injector(&mut self, injector: Box<dyn ServiceFaultInjector>) {
        self.injector = Some(injector);
    }

    /// Consults the injector; `Err` means throttled, `Ok(delay)` is extra
    /// latency added to the transfer outcome.
    fn check_fault(
        &mut self,
        op: ServiceOp,
        bucket: &str,
        at: SimTime,
    ) -> Result<sim_kernel::SimDuration, ObjectStoreError> {
        match self.injector.as_mut().and_then(|i| i.intercept(op, at)) {
            // Lost uploads/downloads fail like throttles: retryable, no
            // partial state.
            Some(ServiceFault::Throttled | ServiceFault::Lost) => Err(ObjectStoreError::Throttled {
                bucket: bucket.to_owned(),
            }),
            Some(ServiceFault::Delayed(d)) => Ok(d),
            // Puts and gets are idempotent; duplicates change nothing.
            Some(ServiceFault::Duplicate) | None => Ok(sim_kernel::SimDuration::ZERO),
        }
    }

    /// Creates a bucket homed in `region`.
    ///
    /// # Errors
    ///
    /// Returns [`ObjectStoreError::BucketExists`] on duplicates.
    pub fn create_bucket(
        &mut self,
        name: impl Into<String>,
        region: Region,
    ) -> Result<(), ObjectStoreError> {
        let name = name.into();
        if self.buckets.contains_key(&name) {
            return Err(ObjectStoreError::BucketExists(name));
        }
        self.buckets.insert(
            name,
            Bucket {
                region,
                objects: BTreeMap::new(),
            },
        );
        Ok(())
    }

    /// The region a bucket is homed in.
    ///
    /// # Errors
    ///
    /// Returns [`ObjectStoreError::NoSuchBucket`] for unknown buckets.
    pub fn bucket_region(&self, bucket: &str) -> Result<Region, ObjectStoreError> {
        self.buckets
            .get(bucket)
            .map(|b| b.region)
            .ok_or_else(|| ObjectStoreError::NoSuchBucket(bucket.to_owned()))
    }

    /// Writes an object from `from_region`, charging cross-region transfer
    /// and a small storage fee, and returning when the upload completes.
    ///
    /// # Errors
    ///
    /// Returns [`ObjectStoreError::NoSuchBucket`] for unknown buckets.
    pub fn put_object(
        &mut self,
        bucket: &str,
        key: impl Into<String>,
        body: ObjectBody,
        from_region: Region,
        at: SimTime,
        ledger: &mut BillingLedger,
    ) -> Result<TransferOutcome, ObjectStoreError> {
        let delay = self.check_fault(ServiceOp::ObjectPut, bucket, at)?;
        let b = self
            .buckets
            .get_mut(bucket)
            .ok_or_else(|| ObjectStoreError::NoSuchBucket(bucket.to_owned()))?;
        let size = body.size_gib();
        let transfer_cost = transfer::transfer_cost(from_region, b.region, size);
        let completes_at = at + transfer::transfer_time(from_region, b.region, size) + delay;
        let storage_fee = Usd::new(0.0005 * size);
        ledger.charge(at, ServiceKind::DataTransfer, b.region, transfer_cost);
        ledger.charge(at, ServiceKind::ObjectStorage, b.region, storage_fee);
        b.objects.insert(
            key.into(),
            StoredObject {
                body,
                put_at: at,
                origin_region: from_region,
            },
        );
        self.put_count += 1;
        Ok(TransferOutcome {
            completes_at,
            cost: transfer_cost + storage_fee,
        })
    }

    /// Reads an object into `to_region`, charging cross-region transfer.
    ///
    /// # Errors
    ///
    /// Returns [`ObjectStoreError::NoSuchBucket`] or
    /// [`ObjectStoreError::NoSuchKey`].
    pub fn get_object(
        &mut self,
        bucket: &str,
        key: &str,
        to_region: Region,
        at: SimTime,
        ledger: &mut BillingLedger,
    ) -> Result<(StoredObject, TransferOutcome), ObjectStoreError> {
        let delay = self.check_fault(ServiceOp::ObjectGet, bucket, at)?;
        let b = self
            .buckets
            .get(bucket)
            .ok_or_else(|| ObjectStoreError::NoSuchBucket(bucket.to_owned()))?;
        let obj = b
            .objects
            .get(key)
            .ok_or_else(|| ObjectStoreError::NoSuchKey {
                bucket: bucket.to_owned(),
                key: key.to_owned(),
            })?
            .clone();
        let size = obj.body().size_gib();
        let cost = transfer::transfer_cost(b.region, to_region, size);
        let completes_at = at + transfer::transfer_time(b.region, to_region, size) + delay;
        ledger.charge(at, ServiceKind::DataTransfer, to_region, cost);
        self.get_count += 1;
        Ok((obj, TransferOutcome { completes_at, cost }))
    }

    /// Reads object metadata without transfer accounting.
    ///
    /// # Errors
    ///
    /// Returns [`ObjectStoreError::NoSuchBucket`] or
    /// [`ObjectStoreError::NoSuchKey`].
    pub fn get_metadata(&self, bucket: &str, key: &str) -> Result<&StoredObject, ObjectStoreError> {
        let b = self
            .buckets
            .get(bucket)
            .ok_or_else(|| ObjectStoreError::NoSuchBucket(bucket.to_owned()))?;
        b.objects.get(key).ok_or_else(|| ObjectStoreError::NoSuchKey {
            bucket: bucket.to_owned(),
            key: key.to_owned(),
        })
    }

    /// Lists keys in a bucket with a prefix, in lexicographic order.
    ///
    /// # Errors
    ///
    /// Returns [`ObjectStoreError::NoSuchBucket`] for unknown buckets.
    pub fn list_keys(&self, bucket: &str, prefix: &str) -> Result<Vec<&str>, ObjectStoreError> {
        let b = self
            .buckets
            .get(bucket)
            .ok_or_else(|| ObjectStoreError::NoSuchBucket(bucket.to_owned()))?;
        Ok(b.objects
            .range(prefix.to_owned()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.as_str())
            .collect())
    }

    /// Total put operations served.
    pub fn put_count(&self) -> u64 {
        self.put_count
    }

    /// Total get operations served.
    pub fn get_count(&self) -> u64 {
        self.get_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> (ObjectStore, BillingLedger) {
        let mut s3 = ObjectStore::new();
        s3.create_bucket("logs", Region::UsEast1).unwrap();
        (s3, BillingLedger::new())
    }

    #[test]
    fn put_get_roundtrip_same_region() {
        let (mut s3, mut ledger) = store();
        s3.put_object(
            "logs",
            "a/b",
            ObjectBody::from_text("hello"),
            Region::UsEast1,
            SimTime::ZERO,
            &mut ledger,
        )
        .unwrap();
        let (obj, outcome) = s3
            .get_object("logs", "a/b", Region::UsEast1, SimTime::from_secs(5), &mut ledger)
            .unwrap();
        assert_eq!(obj.body().as_text(), Some("hello"));
        assert_eq!(outcome.cost, Usd::ZERO);
        assert_eq!(s3.put_count(), 1);
        assert_eq!(s3.get_count(), 1);
    }

    #[test]
    fn cross_region_put_costs_and_takes_time() {
        let (mut s3, mut ledger) = store();
        let outcome = s3
            .put_object(
                "logs",
                "ckpt",
                ObjectBody::Synthetic { size_gib: 1.0 },
                Region::ApNortheast3,
                SimTime::ZERO,
                &mut ledger,
            )
            .unwrap();
        assert!(outcome.cost > Usd::ZERO);
        assert!(outcome.completes_at > SimTime::ZERO);
        assert!(ledger.total_for_service(ServiceKind::DataTransfer) > Usd::ZERO);
    }

    #[test]
    fn synthetic_checkpoint_fits_notice() {
        let (mut s3, mut ledger) = store();
        let outcome = s3
            .put_object(
                "logs",
                "ckpt",
                ObjectBody::Synthetic { size_gib: 1.0 },
                Region::EuNorth1,
                SimTime::ZERO,
                &mut ledger,
            )
            .unwrap();
        assert!(
            outcome.completes_at <= SimTime::from_secs(120),
            "1 GiB checkpoint must fit the 2-minute notice"
        );
    }

    #[test]
    fn missing_bucket_and_key_error() {
        let (mut s3, mut ledger) = store();
        assert!(matches!(
            s3.get_object("nope", "k", Region::UsEast1, SimTime::ZERO, &mut ledger),
            Err(ObjectStoreError::NoSuchBucket(_))
        ));
        assert!(matches!(
            s3.get_object("logs", "k", Region::UsEast1, SimTime::ZERO, &mut ledger),
            Err(ObjectStoreError::NoSuchKey { .. })
        ));
        assert!(matches!(
            s3.create_bucket("logs", Region::UsEast1),
            Err(ObjectStoreError::BucketExists(_))
        ));
    }

    #[test]
    fn list_keys_filters_by_prefix() {
        let (mut s3, mut ledger) = store();
        for key in ["run-1/a", "run-1/b", "run-2/a"] {
            s3.put_object(
                "logs",
                key,
                ObjectBody::from_text("x"),
                Region::UsEast1,
                SimTime::ZERO,
                &mut ledger,
            )
            .unwrap();
        }
        assert_eq!(s3.list_keys("logs", "run-1/").unwrap(), vec!["run-1/a", "run-1/b"]);
        assert_eq!(s3.list_keys("logs", "run-9/").unwrap(), Vec::<&str>::new());
    }

    #[test]
    fn metadata_records_origin() {
        let (mut s3, mut ledger) = store();
        s3.put_object(
            "logs",
            "k",
            ObjectBody::from_text("x"),
            Region::EuWest2,
            SimTime::from_secs(42),
            &mut ledger,
        )
        .unwrap();
        let meta = s3.get_metadata("logs", "k").unwrap();
        assert_eq!(meta.origin_region(), Region::EuWest2);
        assert_eq!(meta.put_at(), SimTime::from_secs(42));
    }
}
