//! # aws-stack
//!
//! The serverless substrate of the SpotVerse reproduction — in-simulation
//! equivalents of the managed services the paper's implementation (§4) is
//! built from:
//!
//! | Paper service | This crate |
//! |---|---|
//! | Amazon S3 | [`ObjectStore`] (cross-region transfer pricing & latency) |
//! | Amazon DynamoDB | [`KvStore`] (items, conditional writes) |
//! | AWS Lambda | [`FunctionRuntime`] (memory/duration billing) |
//! | AWS Step Functions | [`RetryPolicy`] (retry with backoff) |
//! | Amazon EventBridge | [`EventBus`] (rules routing interruption notices) |
//! | Amazon CloudWatch | [`MetricsService`] + [`Schedule`] (metrics, periodic rules) |
//!
//! All services bill into the shared
//! [`BillingLedger`](cloud_compute::BillingLedger) so experiment reports can
//! reproduce the paper's cost model, which explicitly includes these shared
//! services (§5.1.2).
//!
//! # Examples
//!
//! ```
//! use aws_stack::{MetricKey, MetricsService, Schedule};
//! use cloud_compute::BillingLedger;
//! use cloud_market::Region;
//! use sim_kernel::{SimDuration, SimTime};
//!
//! // The Monitor's collection schedule: every 5 minutes.
//! let mut cw = MetricsService::new(Region::UsEast1);
//! cw.put_schedule(Schedule::new(
//!     "collect-spot-metrics",
//!     SimDuration::from_mins(5),
//!     SimTime::ZERO,
//! ));
//! assert_eq!(cw.schedules()[0].occurrences(SimTime::ZERO, SimTime::from_hours(1)).len(), 12);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod event_bus;
pub mod fault;
mod file_system;
mod functions;
mod kv_store;
mod metrics;
mod object_store;
mod state_machine;

pub use event_bus::{BusEvent, EventBus, EventBusError, Rule};
pub use fault::{ServiceFault, ServiceFaultInjector, ServiceOp};
pub use file_system::{
    FileEntry, FileSystemError, FileSystemId, IoOutcome, SharedFileSystem,
};
pub use functions::{
    FunctionConfig, FunctionError, FunctionRuntime, InvocationOutcome, InvocationRecord,
    RetryPolicy,
};
pub use kv_store::{AttrValue, Item, KvError, KvStore};
pub use metrics::{MetricKey, MetricsError, MetricsService, Schedule, Statistic};
pub use object_store::{
    ObjectBody, ObjectStore, ObjectStoreError, StoredObject, TransferOutcome,
};
pub use state_machine::{
    execute, interruption_handler_machine, Execution, ExecutionOutcome, State, StateMachine,
    StateMachineError, StateName, TraceEntry,
};
