//! The CloudWatch-like metrics service: custom metrics with statistics
//! queries, and periodic schedules ("custom rules", paper §3.2) that drive
//! the Monitor's collectors and the Controller's 15-minute open-request
//! sweep.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};
use sim_kernel::{SimDuration, SimTime, TimeSeries};

use cloud_compute::{BillingLedger, ServiceKind};
use cloud_market::{Region, Usd};

/// A metric identity: namespace, name, and a free-form dimension string
/// (e.g. `"region=ca-central-1,type=m5.xlarge"`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MetricKey {
    /// Namespace, e.g. `"SpotVerse"`.
    pub namespace: String,
    /// Metric name, e.g. `"spot_price"`.
    pub name: String,
    /// Dimensions, canonicalized by the caller.
    pub dimensions: String,
}

impl MetricKey {
    /// Convenience constructor.
    pub fn new(
        namespace: impl Into<String>,
        name: impl Into<String>,
        dimensions: impl Into<String>,
    ) -> Self {
        MetricKey {
            namespace: namespace.into(),
            name: name.into(),
            dimensions: dimensions.into(),
        }
    }
}

impl fmt::Display for MetricKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}[{}]", self.namespace, self.name, self.dimensions)
    }
}

/// A statistic over a metric window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Statistic {
    Average,
    Minimum,
    Maximum,
    Sum,
    SampleCount,
}

/// Metric-service errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricsError {
    /// The metric has no datapoints in the requested window.
    NoData(MetricKey),
}

impl fmt::Display for MetricsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricsError::NoData(k) => write!(f, "no datapoints for {k}"),
        }
    }
}

impl std::error::Error for MetricsError {}

/// A fixed-period schedule (a CloudWatch scheduled rule).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    name: String,
    period: SimDuration,
    start: SimTime,
}

impl Schedule {
    /// Creates a schedule firing every `period` starting at `start`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(name: impl Into<String>, period: SimDuration, start: SimTime) -> Self {
        assert!(!period.is_zero(), "Schedule: zero period");
        Schedule {
            name: name.into(),
            period,
            start,
        }
    }

    /// The schedule name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The firing period.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// The first firing at or after `at`.
    pub fn next_fire(&self, at: SimTime) -> SimTime {
        if at <= self.start {
            return self.start;
        }
        let elapsed = (at - self.start).as_secs();
        let period = self.period.as_secs();
        let ticks = elapsed.div_ceil(period);
        self.start + SimDuration::from_secs(ticks * period)
    }

    /// All firings in `[from, to)`.
    pub fn occurrences(&self, from: SimTime, to: SimTime) -> Vec<SimTime> {
        let mut out = Vec::new();
        let mut t = self.next_fire(from);
        while t < to {
            out.push(t);
            t += self.period;
        }
        out
    }
}

/// Cost per 1 000 metric datapoints.
const PUT_PRICE_PER_1000: f64 = 0.01;

/// The metrics service.
///
/// # Examples
///
/// ```
/// use aws_stack::{MetricKey, MetricsService, Statistic};
/// use cloud_compute::BillingLedger;
/// use cloud_market::Region;
/// use sim_kernel::SimTime;
///
/// let mut cw = MetricsService::new(Region::UsEast1);
/// let mut ledger = BillingLedger::new();
/// let key = MetricKey::new("SpotVerse", "spot_price", "region=us-east-1");
/// cw.put_metric(key.clone(), SimTime::ZERO, 0.045, &mut ledger);
/// cw.put_metric(key.clone(), SimTime::from_secs(60), 0.047, &mut ledger);
/// let avg = cw
///     .statistic(&key, Statistic::Average, SimTime::ZERO, SimTime::from_secs(61))
///     .unwrap();
/// assert!((avg - 0.046).abs() < 1e-9);
/// # Ok::<(), aws_stack::MetricsError>(())
/// ```
#[derive(Debug)]
pub struct MetricsService {
    home_region: Region,
    metrics: BTreeMap<MetricKey, TimeSeries>,
    schedules: Vec<Schedule>,
    puts: u64,
}

impl MetricsService {
    /// Creates a metrics service homed in `region` (billing attribution).
    pub fn new(region: Region) -> Self {
        MetricsService {
            home_region: region,
            metrics: BTreeMap::new(),
            schedules: Vec::new(),
            puts: 0,
        }
    }

    /// Records a datapoint.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the metric's latest datapoint (each metric is
    /// an append-only series).
    pub fn put_metric(
        &mut self,
        key: MetricKey,
        at: SimTime,
        value: f64,
        ledger: &mut BillingLedger,
    ) {
        ledger.charge(
            at,
            ServiceKind::Metrics,
            self.home_region,
            Usd::new(PUT_PRICE_PER_1000 / 1000.0),
        );
        self.puts += 1;
        self.metrics
            .entry(key)
            .or_insert_with_key(|k| TimeSeries::new(k.to_string()))
            .push(at, value);
    }

    /// The raw series for a metric, if any datapoints exist.
    pub fn series(&self, key: &MetricKey) -> Option<&TimeSeries> {
        self.metrics.get(key)
    }

    /// The latest datapoint at or before `at`.
    pub fn latest(&self, key: &MetricKey, at: SimTime) -> Option<f64> {
        self.metrics.get(key).and_then(|s| s.value_at(at))
    }

    /// A statistic over datapoints in `[from, to)`.
    ///
    /// # Errors
    ///
    /// Returns [`MetricsError::NoData`] when the window is empty.
    pub fn statistic(
        &self,
        key: &MetricKey,
        stat: Statistic,
        from: SimTime,
        to: SimTime,
    ) -> Result<f64, MetricsError> {
        let series = self
            .metrics
            .get(key)
            .ok_or_else(|| MetricsError::NoData(key.clone()))?;
        let values: Vec<f64> = series
            .iter()
            .filter(|&&(t, _)| t >= from && t < to)
            .map(|&(_, v)| v)
            .collect();
        if values.is_empty() {
            return Err(MetricsError::NoData(key.clone()));
        }
        Ok(match stat {
            Statistic::Average => values.iter().sum::<f64>() / values.len() as f64,
            Statistic::Minimum => values.iter().copied().fold(f64::INFINITY, f64::min),
            Statistic::Maximum => values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            Statistic::Sum => values.iter().sum(),
            Statistic::SampleCount => values.len() as f64,
        })
    }

    /// Installs a periodic schedule.
    pub fn put_schedule(&mut self, schedule: Schedule) {
        self.schedules.push(schedule);
    }

    /// Installed schedules.
    pub fn schedules(&self) -> &[Schedule] {
        &self.schedules
    }

    /// Total datapoints recorded.
    pub fn put_count(&self) -> u64 {
        self.puts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> MetricKey {
        MetricKey::new("SpotVerse", "m", "d=1")
    }

    #[test]
    fn statistics_over_window() {
        let mut cw = MetricsService::new(Region::UsEast1);
        let mut ledger = BillingLedger::new();
        for (i, v) in [1.0, 2.0, 3.0, 4.0].into_iter().enumerate() {
            cw.put_metric(key(), SimTime::from_secs(i as u64 * 10), v, &mut ledger);
        }
        let from = SimTime::ZERO;
        let to = SimTime::from_secs(25); // covers first three points
        assert_eq!(cw.statistic(&key(), Statistic::Average, from, to).unwrap(), 2.0);
        assert_eq!(cw.statistic(&key(), Statistic::Minimum, from, to).unwrap(), 1.0);
        assert_eq!(cw.statistic(&key(), Statistic::Maximum, from, to).unwrap(), 3.0);
        assert_eq!(cw.statistic(&key(), Statistic::Sum, from, to).unwrap(), 6.0);
        assert_eq!(cw.statistic(&key(), Statistic::SampleCount, from, to).unwrap(), 3.0);
        assert_eq!(cw.put_count(), 4);
        assert_eq!(ledger.len(), 4);
    }

    #[test]
    fn empty_window_is_no_data() {
        let cw = MetricsService::new(Region::UsEast1);
        let err = cw
            .statistic(&key(), Statistic::Average, SimTime::ZERO, SimTime::from_secs(1))
            .unwrap_err();
        assert!(err.to_string().contains("no datapoints"));
    }

    #[test]
    fn latest_is_step_lookup() {
        let mut cw = MetricsService::new(Region::UsEast1);
        let mut ledger = BillingLedger::new();
        cw.put_metric(key(), SimTime::from_secs(10), 5.0, &mut ledger);
        assert_eq!(cw.latest(&key(), SimTime::from_secs(9)), None);
        assert_eq!(cw.latest(&key(), SimTime::from_secs(100)), Some(5.0));
        assert!(cw.series(&key()).is_some());
    }

    #[test]
    fn schedule_fires_on_period_boundaries() {
        let s = Schedule::new("sweep", SimDuration::from_mins(15), SimTime::ZERO);
        assert_eq!(s.next_fire(SimTime::ZERO), SimTime::ZERO);
        assert_eq!(s.next_fire(SimTime::from_secs(1)), SimTime::from_secs(900));
        assert_eq!(s.next_fire(SimTime::from_secs(900)), SimTime::from_secs(900));
        let occ = s.occurrences(SimTime::ZERO, SimTime::from_hours(1));
        assert_eq!(occ.len(), 4);
        assert_eq!(occ[3], SimTime::from_secs(2700));
        assert_eq!(s.period(), SimDuration::from_mins(15));
        assert_eq!(s.name(), "sweep");
    }

    #[test]
    fn schedule_with_offset_start() {
        let s = Schedule::new("s", SimDuration::from_mins(10), SimTime::from_secs(100));
        assert_eq!(s.next_fire(SimTime::ZERO), SimTime::from_secs(100));
        assert_eq!(s.next_fire(SimTime::from_secs(101)), SimTime::from_secs(700));
        let occ = s.occurrences(SimTime::from_secs(650), SimTime::from_secs(1400));
        assert_eq!(occ, vec![SimTime::from_secs(700), SimTime::from_secs(1300)]);
    }

    #[test]
    fn schedules_are_stored() {
        let mut cw = MetricsService::new(Region::UsEast1);
        cw.put_schedule(Schedule::new("a", SimDuration::from_mins(5), SimTime::ZERO));
        cw.put_schedule(Schedule::new("b", SimDuration::from_mins(15), SimTime::ZERO));
        assert_eq!(cw.schedules().len(), 2);
    }
}
