//! A Step-Functions-like state machine.
//!
//! The paper wires its interruption handler through Step Functions so that
//! failed or delayed spot requests are retried with backoff (§4). This
//! module provides a small, deterministic state-machine executor over
//! caller-supplied task handlers: Task (with per-state retry policy),
//! Choice, Wait, Succeed and Fail states.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};
use sim_kernel::{SimDuration, SimTime};

use crate::functions::RetryPolicy;

/// A state name.
pub type StateName = String;

/// One state of a machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum State {
    /// Invoke a task handler; on success go to `next`, retrying failures
    /// per `retry`.
    Task {
        /// Handler key passed to the executor's dispatch function.
        handler: String,
        /// Retry policy for handler failures.
        retry: RetryPolicy,
        /// Next state on success (`None` = machine succeeds).
        next: Option<StateName>,
        /// State to transition to when retries are exhausted
        /// (`None` = machine fails).
        catch: Option<StateName>,
    },
    /// Branch on the handler-visible context: the dispatch function returns
    /// a branch key, mapped here to the next state.
    Choice {
        /// Handler key whose `Ok(value)` selects the branch.
        handler: String,
        /// Branch table.
        branches: BTreeMap<String, StateName>,
        /// Taken when no branch matches.
        default: StateName,
    },
    /// Pause for a fixed duration, then continue.
    Wait {
        /// How long to wait.
        duration: SimDuration,
        /// Next state.
        next: StateName,
    },
    /// Terminal success.
    Succeed,
    /// Terminal failure with a reason.
    Fail {
        /// Why the machine failed.
        error: String,
    },
}

/// A validated state machine definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateMachine {
    name: String,
    start_at: StateName,
    states: BTreeMap<StateName, State>,
}

/// State-machine definition/execution errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateMachineError {
    /// A referenced state does not exist.
    UnknownState(StateName),
    /// The definition has no states.
    Empty,
    /// Execution exceeded the transition budget (probable cycle).
    TransitionBudgetExceeded {
        /// The machine name.
        machine: String,
        /// The budget that was exceeded.
        budget: u32,
    },
    /// A handler key was not registered with the executor.
    UnknownHandler(String),
}

impl fmt::Display for StateMachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateMachineError::UnknownState(s) => write!(f, "unknown state `{s}`"),
            StateMachineError::Empty => write!(f, "state machine has no states"),
            StateMachineError::TransitionBudgetExceeded { machine, budget } => {
                write!(f, "machine `{machine}` exceeded {budget} transitions")
            }
            StateMachineError::UnknownHandler(h) => write!(f, "unknown handler `{h}`"),
        }
    }
}

impl std::error::Error for StateMachineError {}

impl StateMachine {
    /// Builds and validates a machine.
    ///
    /// # Errors
    ///
    /// Returns [`StateMachineError::Empty`] for an empty definition and
    /// [`StateMachineError::UnknownState`] for dangling transitions.
    pub fn new(
        name: impl Into<String>,
        start_at: impl Into<StateName>,
        states: BTreeMap<StateName, State>,
    ) -> Result<Self, StateMachineError> {
        if states.is_empty() {
            return Err(StateMachineError::Empty);
        }
        let machine = StateMachine {
            name: name.into(),
            start_at: start_at.into(),
            states,
        };
        machine.validate()?;
        Ok(machine)
    }

    /// The machine name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The entry state.
    pub fn start_at(&self) -> &str {
        &self.start_at
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True if the machine has no states (never constructible).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    fn validate(&self) -> Result<(), StateMachineError> {
        let check = |name: &StateName| -> Result<(), StateMachineError> {
            if self.states.contains_key(name) {
                Ok(())
            } else {
                Err(StateMachineError::UnknownState(name.clone()))
            }
        };
        check(&self.start_at)?;
        for state in self.states.values() {
            match state {
                State::Task { next, catch, .. } => {
                    if let Some(n) = next {
                        check(n)?;
                    }
                    if let Some(c) = catch {
                        check(c)?;
                    }
                }
                State::Choice {
                    branches, default, ..
                } => {
                    for target in branches.values() {
                        check(target)?;
                    }
                    check(default)?;
                }
                State::Wait { next, .. } => check(next)?,
                State::Succeed | State::Fail { .. } => {}
            }
        }
        Ok(())
    }
}

/// The result of an execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecutionOutcome {
    /// The machine reached `Succeed` (or a Task with no `next`).
    Succeeded,
    /// The machine reached `Fail` or exhausted a Task's retries without a
    /// catch.
    Failed {
        /// The error reason.
        error: String,
    },
}

/// A step in the execution trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// The state that ran.
    pub state: StateName,
    /// When it started.
    pub at: SimTime,
    /// Task attempts used (0 for non-task states).
    pub attempts: u32,
}

/// A finished execution: outcome, end time, and per-state trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Execution {
    /// How it ended.
    pub outcome: ExecutionOutcome,
    /// When it ended.
    pub finished_at: SimTime,
    /// States visited, in order.
    pub trace: Vec<TraceEntry>,
}

/// Maximum transitions per execution (cycle guard).
const TRANSITION_BUDGET: u32 = 256;

/// Executes `machine` starting at `at`. `dispatch` is called for every
/// Task/Choice handler with `(handler_key, attempt)` and returns
/// `Ok(branch_or_output)` or `Err(message)`.
///
/// Task execution time is `task_duration` per attempt; retry backoff
/// follows each task's policy.
///
/// # Errors
///
/// Returns [`StateMachineError::TransitionBudgetExceeded`] on probable
/// cycles.
pub fn execute<F>(
    machine: &StateMachine,
    at: SimTime,
    task_duration: SimDuration,
    mut dispatch: F,
) -> Result<Execution, StateMachineError>
where
    F: FnMut(&str, u32) -> Result<String, String>,
{
    let mut current = machine.start_at.clone();
    let mut clock = at;
    let mut trace = Vec::new();
    for _ in 0..TRANSITION_BUDGET {
        let state = machine
            .states
            .get(&current)
            .expect("validated machine has no dangling states");
        match state {
            State::Succeed => {
                trace.push(TraceEntry {
                    state: current,
                    at: clock,
                    attempts: 0,
                });
                return Ok(Execution {
                    outcome: ExecutionOutcome::Succeeded,
                    finished_at: clock,
                    trace,
                });
            }
            State::Fail { error } => {
                trace.push(TraceEntry {
                    state: current,
                    at: clock,
                    attempts: 0,
                });
                return Ok(Execution {
                    outcome: ExecutionOutcome::Failed {
                        error: error.clone(),
                    },
                    finished_at: clock,
                    trace,
                });
            }
            State::Wait { duration, next } => {
                trace.push(TraceEntry {
                    state: current.clone(),
                    at: clock,
                    attempts: 0,
                });
                clock += *duration;
                current = next.clone();
            }
            State::Choice {
                handler,
                branches,
                default,
            } => {
                trace.push(TraceEntry {
                    state: current.clone(),
                    at: clock,
                    attempts: 1,
                });
                let branch = dispatch(handler, 1).unwrap_or_default();
                current = branches.get(&branch).unwrap_or(default).clone();
            }
            State::Task {
                handler,
                retry,
                next,
                catch,
            } => {
                let started = clock;
                let max_attempts = retry.max_attempts.max(1);
                let mut succeeded = false;
                let mut attempts = 0;
                let mut last_error = String::new();
                for attempt in 1..=max_attempts {
                    attempts = attempt;
                    if attempt > 1 {
                        clock += retry.backoff_before(attempt - 1);
                    }
                    clock += task_duration;
                    match dispatch(handler, attempt) {
                        Ok(_) => {
                            succeeded = true;
                            break;
                        }
                        Err(e) => last_error = e,
                    }
                }
                trace.push(TraceEntry {
                    state: current.clone(),
                    at: started,
                    attempts,
                });
                if succeeded {
                    match next {
                        Some(n) => current = n.clone(),
                        None => {
                            return Ok(Execution {
                                outcome: ExecutionOutcome::Succeeded,
                                finished_at: clock,
                                trace,
                            })
                        }
                    }
                } else {
                    match catch {
                        Some(c) => current = c.clone(),
                        None => {
                            return Ok(Execution {
                                outcome: ExecutionOutcome::Failed { error: last_error },
                                finished_at: clock,
                                trace,
                            })
                        }
                    }
                }
            }
        }
    }
    Err(StateMachineError::TransitionBudgetExceeded {
        machine: machine.name.clone(),
        budget: TRANSITION_BUDGET,
    })
}

/// The paper's interruption-handling machine: try a spot request; while it
/// stays open, wait out the sweep interval and retry; fall back to
/// on-demand when the budgeted rounds are exhausted.
pub fn interruption_handler_machine(sweep_interval: SimDuration) -> StateMachine {
    let mut states = BTreeMap::new();
    states.insert(
        "RequestSpot".to_owned(),
        State::Task {
            handler: "request-spot".to_owned(),
            retry: RetryPolicy::default(),
            next: Some("Done".to_owned()),
            catch: Some("WaitForCapacity".to_owned()),
        },
    );
    states.insert(
        "WaitForCapacity".to_owned(),
        State::Wait {
            duration: sweep_interval,
            next: "RetrySpot".to_owned(),
        },
    );
    states.insert(
        "RetrySpot".to_owned(),
        State::Task {
            handler: "request-spot".to_owned(),
            retry: RetryPolicy::default(),
            next: Some("Done".to_owned()),
            catch: Some("FallbackOnDemand".to_owned()),
        },
    );
    states.insert(
        "FallbackOnDemand".to_owned(),
        State::Task {
            handler: "launch-on-demand".to_owned(),
            retry: RetryPolicy::default(),
            next: Some("Done".to_owned()),
            catch: None,
        },
    );
    states.insert("Done".to_owned(), State::Succeed);
    StateMachine::new("spotverse-interruption-handler", "RequestSpot", states)
        .expect("static machine is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mins(m: u64) -> SimDuration {
        SimDuration::from_mins(m)
    }

    #[test]
    fn linear_machine_succeeds() {
        let mut states = BTreeMap::new();
        states.insert(
            "A".to_owned(),
            State::Task {
                handler: "a".to_owned(),
                retry: RetryPolicy::default(),
                next: Some("B".to_owned()),
                catch: None,
            },
        );
        states.insert("B".to_owned(), State::Succeed);
        let machine = StateMachine::new("m", "A", states).unwrap();
        let exec = execute(&machine, SimTime::ZERO, SimDuration::from_secs(2), |_, _| {
            Ok("ok".into())
        })
        .unwrap();
        assert_eq!(exec.outcome, ExecutionOutcome::Succeeded);
        assert_eq!(exec.finished_at, SimTime::from_secs(2));
        assert_eq!(exec.trace.len(), 2);
    }

    #[test]
    fn task_retries_then_catches() {
        let mut states = BTreeMap::new();
        states.insert(
            "A".to_owned(),
            State::Task {
                handler: "flaky".to_owned(),
                retry: RetryPolicy {
                    max_attempts: 2,
                    initial_backoff: SimDuration::from_secs(10),
                    backoff_rate: 2.0,
                    ..RetryPolicy::default()
                },
                next: Some("Ok".to_owned()),
                catch: Some("Recover".to_owned()),
            },
        );
        states.insert(
            "Recover".to_owned(),
            State::Task {
                handler: "fallback".to_owned(),
                retry: RetryPolicy::default(),
                next: None,
                catch: None,
            },
        );
        states.insert("Ok".to_owned(), State::Succeed);
        let machine = StateMachine::new("m", "A", states).unwrap();
        let mut fallback_ran = false;
        let exec = execute(&machine, SimTime::ZERO, SimDuration::from_secs(1), |h, _| {
            if h == "flaky" {
                Err("down".into())
            } else {
                fallback_ran = true;
                Ok("ok".into())
            }
        })
        .unwrap();
        assert_eq!(exec.outcome, ExecutionOutcome::Succeeded);
        assert!(fallback_ran);
        // flaky: attempt(1s) + backoff(10s) + attempt(1s); fallback: 1s.
        assert_eq!(exec.finished_at, SimTime::from_secs(13));
        assert_eq!(exec.trace[0].attempts, 2);
    }

    #[test]
    fn fail_state_reports_error() {
        let mut states = BTreeMap::new();
        states.insert(
            "A".to_owned(),
            State::Fail {
                error: "boom".into(),
            },
        );
        let machine = StateMachine::new("m", "A", states).unwrap();
        let exec = execute(&machine, SimTime::ZERO, mins(1), |_, _| Ok(String::new())).unwrap();
        assert_eq!(
            exec.outcome,
            ExecutionOutcome::Failed {
                error: "boom".into()
            }
        );
    }

    #[test]
    fn choice_branches_on_handler_output() {
        let mut branches = BTreeMap::new();
        branches.insert("spot".to_owned(), "Spot".to_owned());
        branches.insert("od".to_owned(), "OnDemand".to_owned());
        let mut states = BTreeMap::new();
        states.insert(
            "Decide".to_owned(),
            State::Choice {
                handler: "decide".to_owned(),
                branches,
                default: "Spot".to_owned(),
            },
        );
        states.insert("Spot".to_owned(), State::Succeed);
        states.insert(
            "OnDemand".to_owned(),
            State::Fail {
                error: "od".into(),
            },
        );
        let machine = StateMachine::new("m", "Decide", states).unwrap();
        let spot = execute(&machine, SimTime::ZERO, mins(1), |_, _| Ok("spot".into())).unwrap();
        assert_eq!(spot.outcome, ExecutionOutcome::Succeeded);
        let od = execute(&machine, SimTime::ZERO, mins(1), |_, _| Ok("od".into())).unwrap();
        assert!(matches!(od.outcome, ExecutionOutcome::Failed { .. }));
    }

    #[test]
    fn wait_advances_the_clock() {
        let mut states = BTreeMap::new();
        states.insert(
            "W".to_owned(),
            State::Wait {
                duration: mins(15),
                next: "S".to_owned(),
            },
        );
        states.insert("S".to_owned(), State::Succeed);
        let machine = StateMachine::new("m", "W", states).unwrap();
        let exec = execute(&machine, SimTime::from_hours(1), mins(1), |_, _| {
            Ok(String::new())
        })
        .unwrap();
        assert_eq!(exec.finished_at, SimTime::from_hours(1) + mins(15));
    }

    #[test]
    fn dangling_transition_rejected() {
        let mut states = BTreeMap::new();
        states.insert(
            "A".to_owned(),
            State::Wait {
                duration: mins(1),
                next: "Ghost".to_owned(),
            },
        );
        let err = StateMachine::new("m", "A", states).unwrap_err();
        assert!(matches!(err, StateMachineError::UnknownState(_)));
        assert!(err.to_string().contains("Ghost"));
    }

    #[test]
    fn empty_machine_rejected() {
        let err = StateMachine::new("m", "A", BTreeMap::new()).unwrap_err();
        assert_eq!(err, StateMachineError::Empty);
    }

    #[test]
    fn cycle_hits_transition_budget() {
        let mut states = BTreeMap::new();
        states.insert(
            "A".to_owned(),
            State::Wait {
                duration: mins(1),
                next: "B".to_owned(),
            },
        );
        states.insert(
            "B".to_owned(),
            State::Wait {
                duration: mins(1),
                next: "A".to_owned(),
            },
        );
        let machine = StateMachine::new("m", "A", states).unwrap();
        let err = execute(&machine, SimTime::ZERO, mins(1), |_, _| Ok(String::new())).unwrap_err();
        assert!(matches!(err, StateMachineError::TransitionBudgetExceeded { .. }));
    }

    #[test]
    fn interruption_handler_machine_paths() {
        let machine = interruption_handler_machine(mins(15));
        assert_eq!(machine.len(), 5);
        // Path 1: spot granted immediately.
        let fast = execute(&machine, SimTime::ZERO, SimDuration::from_secs(2), |h, _| {
            assert_eq!(h, "request-spot");
            Ok("granted".into())
        })
        .unwrap();
        assert_eq!(fast.outcome, ExecutionOutcome::Succeeded);
        // Path 2: spot never granted → waits a sweep, retries, falls back
        // to on-demand.
        let mut od_used = false;
        let slow = execute(&machine, SimTime::ZERO, SimDuration::from_secs(2), |h, _| {
            if h == "request-spot" {
                Err("open".into())
            } else {
                od_used = true;
                Ok("od".into())
            }
        })
        .unwrap();
        assert_eq!(slow.outcome, ExecutionOutcome::Succeeded);
        assert!(od_used);
        assert!(slow.finished_at > SimTime::from_secs(15 * 60));
    }
}
