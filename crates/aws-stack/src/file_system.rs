//! An EFS-like regional shared filesystem.
//!
//! Paper §7: "we plan to explore alternative storage solutions such as
//! Elastic File System (EFS)" to ease the two-minute-notice pressure on
//! checkpoint uploads. This module models the trade-off: a filesystem is
//! mounted *within one region* with fast, transfer-free writes from that
//! region, but a replacement instance in *another* region must either pay
//! a cross-region read (slow NFS-over-WAN) or a replica sync. Storage is
//! billed per GiB-month, which is much pricier than object storage.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};
use sim_kernel::{SimDuration, SimTime};

use cloud_compute::{transfer, BillingLedger, ServiceKind};
use cloud_market::{Region, Usd};

/// Identifier of a filesystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FileSystemId(u64);

impl fmt::Display for FileSystemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fs-{:08x}", self.0)
    }
}

/// A stored file's metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FileEntry {
    size_gib: f64,
    written_at: SimTime,
    writer_region: Region,
}

impl FileEntry {
    /// File size in GiB.
    pub fn size_gib(&self) -> f64 {
        self.size_gib
    }

    /// When it was last written.
    pub fn written_at(&self) -> SimTime {
        self.written_at
    }

    /// Which region wrote it.
    pub fn writer_region(&self) -> Region {
        self.writer_region
    }
}

/// Filesystem errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileSystemError {
    /// No filesystem with that id.
    UnknownFileSystem(FileSystemId),
    /// No file at that path.
    NoSuchFile {
        /// The filesystem.
        fs: FileSystemId,
        /// The missing path.
        path: String,
    },
    /// The caller's region has no mount target.
    NotMounted {
        /// The filesystem.
        fs: FileSystemId,
        /// The unmounted region.
        region: Region,
    },
}

impl fmt::Display for FileSystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FileSystemError::UnknownFileSystem(id) => write!(f, "unknown filesystem {id}"),
            FileSystemError::NoSuchFile { fs, path } => {
                write!(f, "no file `{path}` on {fs}")
            }
            FileSystemError::NotMounted { fs, region } => {
                write!(f, "{fs} has no mount target in {region}")
            }
        }
    }
}

impl std::error::Error for FileSystemError {}

/// The outcome of a filesystem IO operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoOutcome {
    /// When the operation completes.
    pub completes_at: SimTime,
    /// What it cost (transfer for cross-region access; storage accrual for
    /// writes).
    pub cost: Usd,
}

#[derive(Debug)]
struct FileSystem {
    home_region: Region,
    mount_regions: Vec<Region>,
    files: BTreeMap<String, FileEntry>,
}

/// Per GiB-month storage price (EFS-like; ~10× object storage).
const STORAGE_PRICE_PER_GIB_MONTH: f64 = 0.30;
/// In-region write/read throughput, GiB per second.
const LOCAL_THROUGHPUT: f64 = 0.25;
/// Cross-region NFS-over-WAN throughput penalty factor.
const WAN_PENALTY: f64 = 3.0;

/// The EFS-like service.
///
/// # Examples
///
/// ```
/// use aws_stack::SharedFileSystem;
/// use cloud_compute::BillingLedger;
/// use cloud_market::Region;
/// use sim_kernel::SimTime;
///
/// let mut efs = SharedFileSystem::new();
/// let mut ledger = BillingLedger::new();
/// let fs = efs.create(Region::CaCentral1);
/// efs.mount(fs, Region::EuNorth1)?;
/// let write = efs.write(fs, "ckpt/w-00", 1.0, Region::CaCentral1, SimTime::ZERO, &mut ledger)?;
/// assert!(write.completes_at > SimTime::ZERO);
/// # Ok::<(), aws_stack::FileSystemError>(())
/// ```
#[derive(Debug, Default)]
pub struct SharedFileSystem {
    systems: BTreeMap<FileSystemId, FileSystem>,
    next_id: u64,
}

impl SharedFileSystem {
    /// Creates the service.
    pub fn new() -> Self {
        SharedFileSystem::default()
    }

    /// Creates a filesystem homed (and mounted) in `region`.
    pub fn create(&mut self, region: Region) -> FileSystemId {
        self.next_id += 1;
        let id = FileSystemId(self.next_id);
        self.systems.insert(
            id,
            FileSystem {
                home_region: region,
                mount_regions: vec![region],
                files: BTreeMap::new(),
            },
        );
        id
    }

    /// Adds a mount target in `region` (idempotent).
    ///
    /// # Errors
    ///
    /// Returns [`FileSystemError::UnknownFileSystem`] for bad ids.
    pub fn mount(&mut self, id: FileSystemId, region: Region) -> Result<(), FileSystemError> {
        let fs = self
            .systems
            .get_mut(&id)
            .ok_or(FileSystemError::UnknownFileSystem(id))?;
        if !fs.mount_regions.contains(&region) {
            fs.mount_regions.push(region);
        }
        Ok(())
    }

    /// Whether `region` has a mount target.
    pub fn is_mounted(&self, id: FileSystemId, region: Region) -> bool {
        self.systems
            .get(&id)
            .is_some_and(|fs| fs.mount_regions.contains(&region))
    }

    fn io_time(fs_home: Region, from: Region, gib: f64) -> SimDuration {
        let secs = if fs_home == from {
            gib / LOCAL_THROUGHPUT
        } else {
            // NFS over WAN: base transfer time with a protocol penalty.
            let base = transfer::transfer_time(from, fs_home, gib).as_secs() as f64;
            base * WAN_PENALTY
        };
        SimDuration::from_secs(secs.ceil().max(1.0) as u64)
    }

    /// Writes (or overwrites) a file from `from_region`.
    ///
    /// In-region writes are transfer-free; cross-region writes pay the WAN
    /// tariff. Storage accrues a one-month charge per write of the delta
    /// size (a simplification of metered GiB-months).
    ///
    /// # Errors
    ///
    /// Returns [`FileSystemError::UnknownFileSystem`] or
    /// [`FileSystemError::NotMounted`].
    pub fn write(
        &mut self,
        id: FileSystemId,
        path: impl Into<String>,
        size_gib: f64,
        from_region: Region,
        at: SimTime,
        ledger: &mut BillingLedger,
    ) -> Result<IoOutcome, FileSystemError> {
        assert!(size_gib >= 0.0 && size_gib.is_finite(), "bad size {size_gib}");
        let fs = self
            .systems
            .get_mut(&id)
            .ok_or(FileSystemError::UnknownFileSystem(id))?;
        if !fs.mount_regions.contains(&from_region) {
            return Err(FileSystemError::NotMounted {
                fs: id,
                region: from_region,
            });
        }
        let home = fs.home_region;
        let transfer_cost = if home == from_region {
            Usd::ZERO
        } else {
            transfer::transfer_cost(from_region, home, size_gib)
        };
        let storage_cost = Usd::new(STORAGE_PRICE_PER_GIB_MONTH * size_gib / 30.0);
        ledger.charge(at, ServiceKind::DataTransfer, home, transfer_cost);
        ledger.charge(at, ServiceKind::ObjectStorage, home, storage_cost);
        let completes_at = at + Self::io_time(home, from_region, size_gib);
        fs.files.insert(
            path.into(),
            FileEntry {
                size_gib,
                written_at: at,
                writer_region: from_region,
            },
        );
        Ok(IoOutcome {
            completes_at,
            cost: transfer_cost + storage_cost,
        })
    }

    /// Reads a file into `to_region`.
    ///
    /// # Errors
    ///
    /// Returns [`FileSystemError::UnknownFileSystem`],
    /// [`FileSystemError::NotMounted`] or [`FileSystemError::NoSuchFile`].
    pub fn read(
        &self,
        id: FileSystemId,
        path: &str,
        to_region: Region,
        at: SimTime,
        ledger: &mut BillingLedger,
    ) -> Result<(FileEntry, IoOutcome), FileSystemError> {
        let fs = self
            .systems
            .get(&id)
            .ok_or(FileSystemError::UnknownFileSystem(id))?;
        if !fs.mount_regions.contains(&to_region) {
            return Err(FileSystemError::NotMounted {
                fs: id,
                region: to_region,
            });
        }
        let entry = fs
            .files
            .get(path)
            .ok_or_else(|| FileSystemError::NoSuchFile {
                fs: id,
                path: path.to_owned(),
            })?
            .clone();
        let home = fs.home_region;
        let cost = if home == to_region {
            Usd::ZERO
        } else {
            transfer::transfer_cost(home, to_region, entry.size_gib)
        };
        ledger.charge(at, ServiceKind::DataTransfer, to_region, cost);
        let completes_at = at + Self::io_time(home, to_region, entry.size_gib);
        Ok((entry, IoOutcome { completes_at, cost }))
    }

    /// Looks up a file's metadata without IO accounting.
    pub fn stat(&self, id: FileSystemId, path: &str) -> Option<&FileEntry> {
        self.systems.get(&id).and_then(|fs| fs.files.get(path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service() -> (SharedFileSystem, FileSystemId, BillingLedger) {
        let mut efs = SharedFileSystem::new();
        let fs = efs.create(Region::CaCentral1);
        (efs, fs, BillingLedger::new())
    }

    #[test]
    fn in_region_write_is_transfer_free_and_fast() {
        let (mut efs, fs, mut ledger) = service();
        let out = efs
            .write(fs, "ckpt", 1.0, Region::CaCentral1, SimTime::ZERO, &mut ledger)
            .unwrap();
        assert_eq!(ledger.total_for_service(ServiceKind::DataTransfer), Usd::ZERO);
        assert!(out.completes_at <= SimTime::from_secs(5), "local write is fast");
        // Storage accrual is charged.
        assert!(ledger.total_for_service(ServiceKind::ObjectStorage) > Usd::ZERO);
    }

    #[test]
    fn in_region_write_beats_s3_notice_budget_easily() {
        // The §7 motivation: a 10 GiB working set cannot cross regions in
        // the 2-minute notice, but a local EFS write lands in seconds.
        let (mut efs, fs, mut ledger) = service();
        let out = efs
            .write(fs, "big", 10.0, Region::CaCentral1, SimTime::ZERO, &mut ledger)
            .unwrap();
        assert!(out.completes_at <= SimTime::from_secs(120));
        assert!(!transfer::fits_in_interruption_notice(
            Region::CaCentral1,
            Region::ApNortheast3,
            10.0
        ));
    }

    #[test]
    fn cross_region_read_pays_wan_penalty() {
        let (mut efs, fs, mut ledger) = service();
        efs.mount(fs, Region::EuNorth1).unwrap();
        efs.write(fs, "ckpt", 1.0, Region::CaCentral1, SimTime::ZERO, &mut ledger)
            .unwrap();
        let (entry, out) = efs
            .read(fs, "ckpt", Region::EuNorth1, SimTime::from_secs(10), &mut ledger)
            .unwrap();
        assert_eq!(entry.writer_region(), Region::CaCentral1);
        assert!(out.cost > Usd::ZERO, "cross-region read pays transfer");
        let plain = transfer::transfer_time(Region::CaCentral1, Region::EuNorth1, 1.0);
        assert!(
            out.completes_at - SimTime::from_secs(10) > plain,
            "WAN NFS is slower than raw transfer"
        );
    }

    #[test]
    fn unmounted_region_rejected() {
        let (mut efs, fs, mut ledger) = service();
        let err = efs
            .write(fs, "x", 1.0, Region::UsEast1, SimTime::ZERO, &mut ledger)
            .unwrap_err();
        assert!(matches!(err, FileSystemError::NotMounted { .. }));
        assert!(!efs.is_mounted(fs, Region::UsEast1));
        efs.mount(fs, Region::UsEast1).unwrap();
        assert!(efs.is_mounted(fs, Region::UsEast1));
        efs.write(fs, "x", 1.0, Region::UsEast1, SimTime::ZERO, &mut ledger)
            .unwrap();
    }

    #[test]
    fn missing_file_and_fs_errors() {
        let (efs, fs, mut ledger) = service();
        assert!(matches!(
            efs.read(fs, "ghost", Region::CaCentral1, SimTime::ZERO, &mut ledger),
            Err(FileSystemError::NoSuchFile { .. })
        ));
        let mut efs2 = SharedFileSystem::new();
        assert!(matches!(
            efs2.mount(FileSystemId(99), Region::UsEast1),
            Err(FileSystemError::UnknownFileSystem(_))
        ));
    }

    #[test]
    fn overwrite_updates_metadata() {
        let (mut efs, fs, mut ledger) = service();
        efs.write(fs, "f", 1.0, Region::CaCentral1, SimTime::ZERO, &mut ledger)
            .unwrap();
        efs.write(fs, "f", 2.0, Region::CaCentral1, SimTime::from_secs(60), &mut ledger)
            .unwrap();
        let entry = efs.stat(fs, "f").unwrap();
        assert_eq!(entry.size_gib(), 2.0);
        assert_eq!(entry.written_at(), SimTime::from_secs(60));
    }

    #[test]
    fn storage_is_pricier_than_object_storage_per_write() {
        // The trade-off the ablation bench quantifies: EFS storage accrual
        // per GiB is ~20× the object store's per-put fee.
        let (mut efs, fs, mut ledger) = service();
        efs.write(fs, "f", 1.0, Region::CaCentral1, SimTime::ZERO, &mut ledger)
            .unwrap();
        let efs_storage = ledger.total_for_service(ServiceKind::ObjectStorage).amount();
        assert!(efs_storage > 0.0005, "EFS accrual {efs_storage} should exceed S3 put fee");
    }
}
