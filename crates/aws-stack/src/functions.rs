//! The Lambda-like function runtime with Step-Functions-like retry
//! policies.
//!
//! SpotVerse's control logic runs as serverless functions (paper §4): a
//! metrics-collector on a schedule, an interruption handler on
//! EventBridge events — wrapped in Step Functions so failed or delayed spot
//! requests are retried with backoff. The runtime here accounts invocation
//! duration and memory for billing, executes the caller's closure, and
//! applies the retry policy deterministically in sim time.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};
use sim_kernel::{SimDuration, SimTime};

use cloud_compute::{BillingLedger, ServiceKind};
use cloud_market::{Region, Usd};

use crate::fault::{ServiceFault, ServiceFaultInjector, ServiceOp};

/// Configuration of a registered function.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FunctionConfig {
    /// Allocated memory in MiB (the paper allocates 128 MB).
    pub memory_mib: u32,
    /// Execution timeout (the paper uses 15 minutes).
    pub timeout: SimDuration,
    /// Modelled execution duration per invocation.
    pub exec_duration: SimDuration,
}

impl Default for FunctionConfig {
    fn default() -> Self {
        FunctionConfig {
            memory_mib: 128,
            timeout: SimDuration::from_mins(15),
            exec_duration: SimDuration::from_secs(2),
        }
    }
}

/// A Step-Functions-like retry policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum attempts (≥ 1).
    pub max_attempts: u32,
    /// Delay before the first retry.
    pub initial_backoff: SimDuration,
    /// Backoff multiplier between retries.
    pub backoff_rate: f64,
    /// Hard cap on any single backoff delay. Geometric growth overflows
    /// `f64` to `inf` for large retry counts; the cap keeps the delay
    /// finite (and bounded) no matter how many retries have elapsed.
    pub max_delay: SimDuration,
    /// Maximum deterministic jitter added by [`RetryPolicy::backoff_jittered`].
    /// Zero (the default) disables jitter entirely, so plain
    /// [`RetryPolicy::backoff_before`] users are byte-identical to before
    /// the field existed.
    pub jitter: SimDuration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            initial_backoff: SimDuration::from_secs(30),
            backoff_rate: 2.0,
            max_delay: SimDuration::from_hours(1),
            jitter: SimDuration::ZERO,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry number `retry` (1-based), capped at
    /// [`RetryPolicy::max_delay`].
    pub fn backoff_before(&self, retry: u32) -> SimDuration {
        let cap = self.max_delay.as_secs().max(self.initial_backoff.as_secs());
        // powi on an i32 exponent: clamp huge retry counts before the cast
        // can wrap; anything past the clamp is already far beyond the cap.
        let exponent = retry.saturating_sub(1).min(1024) as i32;
        let raw = self.initial_backoff.as_secs() as f64 * self.backoff_rate.powi(exponent);
        let secs = if raw.is_finite() && raw < cap as f64 {
            raw.round() as u64
        } else {
            cap
        };
        SimDuration::from_secs(secs.min(cap))
    }

    /// [`RetryPolicy::backoff_before`] plus a deterministic jitter draw in
    /// `[0, jitter]` seconds, hashed from `(seed, retry, key)` — the same
    /// construction as the health-breaker quarantine jitter. Distinct keys
    /// (e.g. shard ids) spread re-dispatches so they don't thundering-herd
    /// the event bus; identical inputs always produce the identical delay.
    pub fn backoff_jittered(&self, retry: u32, seed: u64, key: &str) -> SimDuration {
        let base = self.backoff_before(retry);
        let max_jitter = self.jitter.as_secs();
        if max_jitter == 0 {
            return base;
        }
        // FNV-1a over the inputs, then a SplitMix64 finalizer.
        let mut h: u64 = 0xcbf29ce484222325;
        for byte in seed
            .to_le_bytes()
            .iter()
            .chain(u64::from(retry).to_le_bytes().iter())
            .chain(key.as_bytes())
        {
            h ^= u64::from(*byte);
            h = h.wrapping_mul(0x100000001b3);
        }
        let mut z = h.wrapping_add(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^= z >> 31;
        base + SimDuration::from_secs(z % (max_jitter + 1))
    }
}

/// Function-runtime errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FunctionError {
    /// The function name is not registered.
    UnknownFunction(String),
    /// Every attempt failed; carries the last failure message.
    RetriesExhausted {
        /// Function name.
        name: String,
        /// Attempts made.
        attempts: u32,
        /// The last error message.
        last_error: String,
    },
}

impl fmt::Display for FunctionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FunctionError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            FunctionError::RetriesExhausted {
                name,
                attempts,
                last_error,
            } => write!(
                f,
                "function `{name}` failed after {attempts} attempts: {last_error}"
            ),
        }
    }
}

impl std::error::Error for FunctionError {}

/// A completed invocation's accounting record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InvocationRecord {
    /// Function name.
    pub name: String,
    /// Region it executed in.
    pub region: Region,
    /// Start time.
    pub started_at: SimTime,
    /// Attempts used (1 when the first attempt succeeded).
    pub attempts: u32,
    /// Whether it ultimately succeeded.
    pub succeeded: bool,
}

/// The outcome of a successful (possibly retried) invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct InvocationOutcome<T> {
    /// The closure's value.
    pub value: T,
    /// When the final attempt finished (includes backoff delays).
    pub finished_at: SimTime,
    /// Attempts used.
    pub attempts: u32,
}

/// Per GiB-second compute price.
const GB_SECOND_PRICE: f64 = 1.66667e-5;
/// Per-request price.
const REQUEST_PRICE: f64 = 2.0e-7;

/// The function runtime.
///
/// # Examples
///
/// ```
/// use aws_stack::{FunctionConfig, FunctionRuntime, RetryPolicy};
/// use cloud_compute::BillingLedger;
/// use cloud_market::Region;
/// use sim_kernel::SimTime;
///
/// let mut runtime = FunctionRuntime::new();
/// let mut ledger = BillingLedger::new();
/// runtime.register("metrics-collector", Region::UsEast1, FunctionConfig::default());
/// let outcome = runtime.invoke(
///     "metrics-collector",
///     SimTime::ZERO,
///     RetryPolicy::default(),
///     &mut ledger,
///     |attempt| if attempt == 1 { Ok(42) } else { Err("flaky".into()) },
/// )?;
/// assert_eq!(outcome.value, 42);
/// # Ok::<(), aws_stack::FunctionError>(())
/// ```
#[derive(Debug, Default)]
pub struct FunctionRuntime {
    functions: BTreeMap<String, (Region, FunctionConfig)>,
    invocations: Vec<InvocationRecord>,
    injector: Option<Box<dyn ServiceFaultInjector>>,
}

impl FunctionRuntime {
    /// Creates an empty runtime.
    pub fn new() -> Self {
        FunctionRuntime::default()
    }

    /// Installs a fault injector consulted before every invocation
    /// attempt: throttled attempts fail into the retry policy, delayed
    /// attempts push the completion time out. Chaos-only.
    pub fn set_fault_injector(&mut self, injector: Box<dyn ServiceFaultInjector>) {
        self.injector = Some(injector);
    }

    /// Registers (or replaces) a function.
    pub fn register(&mut self, name: impl Into<String>, region: Region, config: FunctionConfig) {
        self.functions.insert(name.into(), (region, config));
    }

    /// Whether a function is registered.
    pub fn is_registered(&self, name: &str) -> bool {
        self.functions.contains_key(name)
    }

    /// Invokes a function with retries. The closure receives the 1-based
    /// attempt number and returns `Ok(value)` or an error message; each
    /// attempt is billed, and retries are separated by the policy's
    /// backoff in sim time.
    ///
    /// # Errors
    ///
    /// Returns [`FunctionError::UnknownFunction`] for unregistered names and
    /// [`FunctionError::RetriesExhausted`] when every attempt fails.
    pub fn invoke<T, F>(
        &mut self,
        name: &str,
        at: SimTime,
        policy: RetryPolicy,
        ledger: &mut BillingLedger,
        mut body: F,
    ) -> Result<InvocationOutcome<T>, FunctionError>
    where
        F: FnMut(u32) -> Result<T, String>,
    {
        let (region, config) = self
            .functions
            .get(name)
            .copied()
            .ok_or_else(|| FunctionError::UnknownFunction(name.to_owned()))?;
        let max_attempts = policy.max_attempts.max(1);
        let mut clock = at;
        let mut last_error = String::new();
        for attempt in 1..=max_attempts {
            if attempt > 1 {
                clock += policy.backoff_before(attempt - 1);
            }
            self.bill_attempt(region, config, clock, ledger);
            match self
                .injector
                .as_mut()
                .and_then(|i| i.intercept(ServiceOp::FunctionInvoke, clock))
            {
                Some(ServiceFault::Throttled) => {
                    // The attempt is consumed by the control plane itself.
                    last_error = format!("invocation of `{name}` throttled");
                    clock += config.exec_duration.min(config.timeout);
                    continue;
                }
                Some(ServiceFault::Lost) => {
                    // The request never reached the runtime; the attempt is
                    // consumed waiting for a response that never comes.
                    last_error = format!("invocation of `{name}` lost in transit");
                    clock += config.exec_duration.min(config.timeout);
                    continue;
                }
                Some(ServiceFault::Delayed(d)) => clock += d,
                // Invocations are deduplicated by the runtime itself.
                Some(ServiceFault::Duplicate) | None => {}
            }
            clock += config.exec_duration.min(config.timeout);
            match body(attempt) {
                Ok(value) => {
                    self.invocations.push(InvocationRecord {
                        name: name.to_owned(),
                        region,
                        started_at: at,
                        attempts: attempt,
                        succeeded: true,
                    });
                    return Ok(InvocationOutcome {
                        value,
                        finished_at: clock,
                        attempts: attempt,
                    });
                }
                Err(e) => last_error = e,
            }
        }
        self.invocations.push(InvocationRecord {
            name: name.to_owned(),
            region,
            started_at: at,
            attempts: max_attempts,
            succeeded: false,
        });
        Err(FunctionError::RetriesExhausted {
            name: name.to_owned(),
            attempts: max_attempts,
            last_error,
        })
    }

    fn bill_attempt(
        &self,
        region: Region,
        config: FunctionConfig,
        at: SimTime,
        ledger: &mut BillingLedger,
    ) {
        let gb_seconds =
            f64::from(config.memory_mib) / 1024.0 * config.exec_duration.as_secs() as f64;
        let cost = Usd::new(GB_SECOND_PRICE * gb_seconds + REQUEST_PRICE);
        ledger.charge(at, ServiceKind::FunctionRuntime, region, cost);
    }

    /// Completed invocation records, in execution order.
    pub fn invocations(&self) -> &[InvocationRecord] {
        &self.invocations
    }

    /// Number of invocations (including failed ones).
    pub fn invocation_count(&self) -> usize {
        self.invocations.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runtime() -> (FunctionRuntime, BillingLedger) {
        let mut rt = FunctionRuntime::new();
        rt.register("f", Region::UsEast1, FunctionConfig::default());
        (rt, BillingLedger::new())
    }

    #[test]
    fn first_attempt_success() {
        let (mut rt, mut ledger) = runtime();
        let out = rt
            .invoke("f", SimTime::ZERO, RetryPolicy::default(), &mut ledger, |_| Ok(7))
            .unwrap();
        assert_eq!(out.value, 7);
        assert_eq!(out.attempts, 1);
        assert_eq!(out.finished_at, SimTime::from_secs(2));
        assert!(ledger.total_for_service(ServiceKind::FunctionRuntime) > Usd::ZERO);
        assert_eq!(rt.invocation_count(), 1);
        assert!(rt.invocations()[0].succeeded);
    }

    #[test]
    fn retries_with_backoff_then_succeeds() {
        let (mut rt, mut ledger) = runtime();
        let out = rt
            .invoke("f", SimTime::ZERO, RetryPolicy::default(), &mut ledger, |attempt| {
                if attempt < 3 {
                    Err("spot request open".into())
                } else {
                    Ok("fulfilled")
                }
            })
            .unwrap();
        assert_eq!(out.attempts, 3);
        // exec(2) + backoff(30) + exec(2) + backoff(60) + exec(2) = 96 s.
        assert_eq!(out.finished_at, SimTime::from_secs(96));
    }

    #[test]
    fn retries_exhausted_is_an_error() {
        let (mut rt, mut ledger) = runtime();
        let err = rt
            .invoke("f", SimTime::ZERO, RetryPolicy::default(), &mut ledger, |_| {
                Err::<(), _>("down".into())
            })
            .unwrap_err();
        match err {
            FunctionError::RetriesExhausted { attempts, last_error, .. } => {
                assert_eq!(attempts, 3);
                assert_eq!(last_error, "down");
            }
            other => panic!("unexpected error {other}"),
        }
        assert!(!rt.invocations()[0].succeeded);
    }

    #[test]
    fn unknown_function_errors() {
        let (mut rt, mut ledger) = runtime();
        let err = rt
            .invoke("ghost", SimTime::ZERO, RetryPolicy::default(), &mut ledger, |_| Ok(()))
            .unwrap_err();
        assert!(matches!(err, FunctionError::UnknownFunction(_)));
        assert!(!rt.is_registered("ghost"));
        assert!(rt.is_registered("f"));
    }

    #[test]
    fn backoff_grows_geometrically() {
        let p = RetryPolicy {
            max_attempts: 5,
            initial_backoff: SimDuration::from_secs(10),
            backoff_rate: 2.0,
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff_before(1), SimDuration::from_secs(10));
        assert_eq!(p.backoff_before(2), SimDuration::from_secs(20));
        assert_eq!(p.backoff_before(3), SimDuration::from_secs(40));
    }

    #[test]
    fn backoff_saturates_at_max_delay() {
        let p = RetryPolicy {
            max_attempts: 100,
            initial_backoff: SimDuration::from_secs(30),
            backoff_rate: 2.0,
            max_delay: SimDuration::from_mins(15),
            jitter: SimDuration::ZERO,
        };
        // 30 * 2^63 would be ~2.8e20 — far past u64 seconds as a SimTime
        // increment; the cap keeps it finite and bounded.
        assert_eq!(p.backoff_before(64), SimDuration::from_mins(15));
        // Still capped where the f64 itself is infinite.
        assert_eq!(p.backoff_before(4096), SimDuration::from_mins(15));
        // And untouched below the cap.
        assert_eq!(p.backoff_before(2), SimDuration::from_secs(60));
    }

    #[test]
    fn jittered_backoff_is_deterministic_and_bounded() {
        let p = RetryPolicy {
            jitter: SimDuration::from_secs(40),
            ..RetryPolicy::default()
        };
        let a = p.backoff_jittered(2, 7, "shard-3");
        let b = p.backoff_jittered(2, 7, "shard-3");
        assert_eq!(a, b, "same inputs, same delay");
        let base = p.backoff_before(2);
        assert!(a >= base && a <= base + SimDuration::from_secs(40));
        // Distinct keys spread out (for this seed they genuinely differ).
        assert_ne!(a, p.backoff_jittered(2, 7, "shard-4"));
        // Zero jitter is exactly the plain backoff.
        let plain = RetryPolicy::default();
        assert_eq!(plain.backoff_jittered(2, 7, "shard-3"), plain.backoff_before(2));
    }

    #[test]
    fn each_attempt_is_billed() {
        let (mut rt, mut ledger) = runtime();
        let _ = rt.invoke("f", SimTime::ZERO, RetryPolicy::default(), &mut ledger, |_| {
            Err::<(), _>("x".into())
        });
        assert_eq!(ledger.len(), 3, "three attempts, three line items");
    }
}
