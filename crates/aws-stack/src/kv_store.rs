//! The DynamoDB-like key-value store.
//!
//! SpotVerse's centralized data plane (paper §4): the Monitor writes spot
//! prices, Interruption Frequencies and Placement Scores here; checkpoint
//! workloads persist shard progress here so a replacement instance in any
//! region can resume.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};
use sim_kernel::SimTime;

use cloud_compute::{BillingLedger, ServiceKind};
use cloud_market::{Region, Usd};

use crate::fault::{ServiceFault, ServiceFaultInjector, ServiceOp};

/// An attribute value (a small, serde-friendly subset of DynamoDB's types).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttrValue {
    /// A string.
    S(String),
    /// A number.
    N(f64),
    /// A boolean.
    Bool(bool),
    /// A list.
    L(Vec<AttrValue>),
}

impl AttrValue {
    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttrValue::S(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            AttrValue::N(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            AttrValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The list items, if this is a list.
    pub fn as_list(&self) -> Option<&[AttrValue]> {
        match self {
            AttrValue::L(items) => Some(items),
            _ => None,
        }
    }
}

impl From<&str> for AttrValue {
    fn from(s: &str) -> Self {
        AttrValue::S(s.to_owned())
    }
}

impl From<String> for AttrValue {
    fn from(s: String) -> Self {
        AttrValue::S(s)
    }
}

impl From<f64> for AttrValue {
    fn from(n: f64) -> Self {
        AttrValue::N(n)
    }
}

impl From<bool> for AttrValue {
    fn from(b: bool) -> Self {
        AttrValue::Bool(b)
    }
}

/// An item: attribute name → value.
pub type Item = BTreeMap<String, AttrValue>;

/// Key-value store errors.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum KvError {
    /// The table does not exist.
    NoSuchTable(String),
    /// The table already exists.
    TableExists(String),
    /// A conditional write's precondition failed.
    ConditionFailed {
        /// Table name.
        table: String,
        /// Item key.
        key: String,
    },
    /// The call was throttled (injected control-plane degradation);
    /// retry with backoff.
    Throttled {
        /// Table name.
        table: String,
    },
}

impl fmt::Display for KvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvError::NoSuchTable(t) => write!(f, "no such table `{t}`"),
            KvError::TableExists(t) => write!(f, "table `{t}` already exists"),
            KvError::ConditionFailed { table, key } => {
                write!(f, "conditional write failed for `{key}` in `{table}`")
            }
            KvError::Throttled { table } => {
                write!(f, "request against `{table}` throttled")
            }
        }
    }
}

impl std::error::Error for KvError {}

#[derive(Debug)]
struct Table {
    region: Region,
    items: BTreeMap<String, Item>,
}

/// The DynamoDB-like store.
///
/// # Examples
///
/// ```
/// use aws_stack::{AttrValue, KvStore};
/// use cloud_compute::BillingLedger;
/// use cloud_market::Region;
/// use sim_kernel::SimTime;
///
/// let mut db = KvStore::new();
/// let mut ledger = BillingLedger::new();
/// db.create_table("checkpoints", Region::UsEast1)?;
/// let mut item = aws_stack::Item::new();
/// item.insert("shards_done".into(), AttrValue::N(3.0));
/// db.put_item("checkpoints", "workload-7", item, SimTime::ZERO, &mut ledger)?;
/// let got = db.get_item("checkpoints", "workload-7", SimTime::ZERO, &mut ledger)?;
/// assert_eq!(got.unwrap()["shards_done"].as_number(), Some(3.0));
/// # Ok::<(), aws_stack::KvError>(())
/// ```
#[derive(Debug, Default)]
pub struct KvStore {
    tables: BTreeMap<String, Table>,
    reads: u64,
    writes: u64,
    injector: Option<Box<dyn ServiceFaultInjector>>,
}

/// Per-write price (on-demand capacity pricing, approximately).
const WRITE_PRICE: f64 = 1.25e-6;
/// Per-read price.
const READ_PRICE: f64 = 0.25e-6;

impl KvStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        KvStore::default()
    }

    /// Installs a fault injector consulted before every timed call
    /// (untimed `scan_prefix` reads stay local). Chaos-only.
    pub fn set_fault_injector(&mut self, injector: Box<dyn ServiceFaultInjector>) {
        self.injector = Some(injector);
    }

    /// Consults the injector; `Err` means the call is throttled. Delays
    /// are meaningless for the KV store's synchronous reads/writes and are
    /// ignored.
    fn check_fault(&mut self, op: ServiceOp, table: &str, at: SimTime) -> Result<(), KvError> {
        let fault = self.injector.as_mut().and_then(|i| i.intercept(op, at));
        match fault {
            // A lost request surfaces exactly like a throttle: the caller
            // sees a retryable failure and the write never lands.
            Some(ServiceFault::Throttled | ServiceFault::Lost) => Err(KvError::Throttled {
                table: table.to_owned(),
            }),
            // KV calls are idempotent at this layer; a duplicate is harmless.
            Some(ServiceFault::Delayed(_) | ServiceFault::Duplicate) | None => Ok(()),
        }
    }

    /// Creates a table homed in `region`.
    ///
    /// # Errors
    ///
    /// Returns [`KvError::TableExists`] on duplicates.
    pub fn create_table(&mut self, name: impl Into<String>, region: Region) -> Result<(), KvError> {
        let name = name.into();
        if self.tables.contains_key(&name) {
            return Err(KvError::TableExists(name));
        }
        self.tables.insert(
            name,
            Table {
                region,
                items: BTreeMap::new(),
            },
        );
        Ok(())
    }

    /// Writes an item (full replace).
    ///
    /// # Errors
    ///
    /// Returns [`KvError::NoSuchTable`] for unknown tables.
    pub fn put_item(
        &mut self,
        table: &str,
        key: impl Into<String>,
        item: Item,
        at: SimTime,
        ledger: &mut BillingLedger,
    ) -> Result<(), KvError> {
        self.check_fault(ServiceOp::KvWrite, table, at)?;
        let t = self
            .tables
            .get_mut(table)
            .ok_or_else(|| KvError::NoSuchTable(table.to_owned()))?;
        ledger.charge(at, ServiceKind::KvStore, t.region, Usd::new(WRITE_PRICE));
        t.items.insert(key.into(), item);
        self.writes += 1;
        Ok(())
    }

    /// Reads an item, if present.
    ///
    /// # Errors
    ///
    /// Returns [`KvError::NoSuchTable`] for unknown tables.
    pub fn get_item(
        &mut self,
        table: &str,
        key: &str,
        at: SimTime,
        ledger: &mut BillingLedger,
    ) -> Result<Option<Item>, KvError> {
        self.check_fault(ServiceOp::KvRead, table, at)?;
        let t = self
            .tables
            .get(table)
            .ok_or_else(|| KvError::NoSuchTable(table.to_owned()))?;
        ledger.charge(at, ServiceKind::KvStore, t.region, Usd::new(READ_PRICE));
        self.reads += 1;
        Ok(t.items.get(key).cloned())
    }

    /// Updates an item in place via a closure; the closure receives the
    /// current item (default-empty when absent) and mutates it.
    ///
    /// # Errors
    ///
    /// Returns [`KvError::NoSuchTable`] for unknown tables.
    pub fn update_item<F>(
        &mut self,
        table: &str,
        key: &str,
        at: SimTime,
        ledger: &mut BillingLedger,
        update: F,
    ) -> Result<(), KvError>
    where
        F: FnOnce(&mut Item),
    {
        self.check_fault(ServiceOp::KvWrite, table, at)?;
        let t = self
            .tables
            .get_mut(table)
            .ok_or_else(|| KvError::NoSuchTable(table.to_owned()))?;
        ledger.charge(at, ServiceKind::KvStore, t.region, Usd::new(WRITE_PRICE));
        let item = t.items.entry(key.to_owned()).or_default();
        update(item);
        self.writes += 1;
        Ok(())
    }

    /// Writes an item only if `condition` holds over the current item (absent
    /// items are presented as `None`) — the optimistic-concurrency primitive
    /// checkpoint writers use.
    ///
    /// # Errors
    ///
    /// Returns [`KvError::NoSuchTable`] or [`KvError::ConditionFailed`].
    pub fn conditional_put<F>(
        &mut self,
        table: &str,
        key: &str,
        item: Item,
        at: SimTime,
        ledger: &mut BillingLedger,
        condition: F,
    ) -> Result<(), KvError>
    where
        F: FnOnce(Option<&Item>) -> bool,
    {
        self.check_fault(ServiceOp::KvWrite, table, at)?;
        let t = self
            .tables
            .get_mut(table)
            .ok_or_else(|| KvError::NoSuchTable(table.to_owned()))?;
        ledger.charge(at, ServiceKind::KvStore, t.region, Usd::new(WRITE_PRICE));
        self.writes += 1;
        if !condition(t.items.get(key)) {
            return Err(KvError::ConditionFailed {
                table: table.to_owned(),
                key: key.to_owned(),
            });
        }
        t.items.insert(key.to_owned(), item);
        Ok(())
    }

    /// Scans all items in key order with a key prefix.
    ///
    /// # Errors
    ///
    /// Returns [`KvError::NoSuchTable`] for unknown tables.
    pub fn scan_prefix(&self, table: &str, prefix: &str) -> Result<Vec<(&str, &Item)>, KvError> {
        let t = self
            .tables
            .get(table)
            .ok_or_else(|| KvError::NoSuchTable(table.to_owned()))?;
        Ok(t.items
            .range(prefix.to_owned()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.as_str(), v))
            .collect())
    }

    /// Total reads served.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Total writes served.
    pub fn writes(&self) -> u64 {
        self.writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> (KvStore, BillingLedger) {
        let mut db = KvStore::new();
        db.create_table("t", Region::UsEast1).unwrap();
        (db, BillingLedger::new())
    }

    fn item(n: f64) -> Item {
        let mut i = Item::new();
        i.insert("v".into(), AttrValue::N(n));
        i
    }

    #[test]
    fn put_get_roundtrip() {
        let (mut db, mut ledger) = db();
        db.put_item("t", "k", item(1.0), SimTime::ZERO, &mut ledger).unwrap();
        let got = db.get_item("t", "k", SimTime::ZERO, &mut ledger).unwrap().unwrap();
        assert_eq!(got["v"].as_number(), Some(1.0));
        assert_eq!(db.reads(), 1);
        assert_eq!(db.writes(), 1);
        assert!(ledger.total_for_service(ServiceKind::KvStore) > Usd::ZERO);
    }

    #[test]
    fn get_missing_is_none() {
        let (mut db, mut ledger) = db();
        assert_eq!(db.get_item("t", "missing", SimTime::ZERO, &mut ledger).unwrap(), None);
    }

    #[test]
    fn update_creates_or_mutates() {
        let (mut db, mut ledger) = db();
        db.update_item("t", "k", SimTime::ZERO, &mut ledger, |i| {
            i.insert("count".into(), AttrValue::N(1.0));
        })
        .unwrap();
        db.update_item("t", "k", SimTime::ZERO, &mut ledger, |i| {
            let cur = i.get("count").and_then(AttrValue::as_number).unwrap_or(0.0);
            i.insert("count".into(), AttrValue::N(cur + 1.0));
        })
        .unwrap();
        let got = db.get_item("t", "k", SimTime::ZERO, &mut ledger).unwrap().unwrap();
        assert_eq!(got["count"].as_number(), Some(2.0));
    }

    #[test]
    fn conditional_put_enforces_precondition() {
        let (mut db, mut ledger) = db();
        // First write requires absence.
        db.conditional_put("t", "k", item(1.0), SimTime::ZERO, &mut ledger, |cur| cur.is_none())
            .unwrap();
        // Second write with the same precondition fails.
        let err = db
            .conditional_put("t", "k", item(2.0), SimTime::ZERO, &mut ledger, |cur| cur.is_none())
            .unwrap_err();
        assert!(matches!(err, KvError::ConditionFailed { .. }));
        // Version-guarded write succeeds.
        db.conditional_put("t", "k", item(2.0), SimTime::ZERO, &mut ledger, |cur| {
            cur.and_then(|i| i["v"].as_number()) == Some(1.0)
        })
        .unwrap();
    }

    #[test]
    fn scan_prefix_orders_keys() {
        let (mut db, mut ledger) = db();
        for k in ["w/2", "w/1", "x/1"] {
            db.put_item("t", k, item(0.0), SimTime::ZERO, &mut ledger).unwrap();
        }
        let keys: Vec<&str> = db.scan_prefix("t", "w/").unwrap().iter().map(|&(k, _)| k).collect();
        assert_eq!(keys, vec!["w/1", "w/2"]);
    }

    #[test]
    fn unknown_table_errors() {
        let (mut db, mut ledger) = db();
        assert!(matches!(
            db.put_item("nope", "k", Item::new(), SimTime::ZERO, &mut ledger),
            Err(KvError::NoSuchTable(_))
        ));
        assert!(matches!(db.create_table("t", Region::UsEast1), Err(KvError::TableExists(_))));
    }

    #[test]
    fn attr_value_accessors() {
        assert_eq!(AttrValue::from("x").as_str(), Some("x"));
        assert_eq!(AttrValue::from(2.0).as_number(), Some(2.0));
        assert_eq!(AttrValue::from(true).as_bool(), Some(true));
        let l = AttrValue::L(vec![AttrValue::N(1.0)]);
        assert_eq!(l.as_list().unwrap().len(), 1);
        assert_eq!(AttrValue::from("x").as_number(), None);
        assert_eq!(AttrValue::from(String::from("y")).as_str(), Some("y"));
    }
}
