//! The EventBridge-like event bus.
//!
//! Spot interruption notices arrive as bus events (paper §4: "signaled by
//! Amazon EventBridge"); rules route them to handler functions.

use std::fmt;

use serde::{Deserialize, Serialize};
use sim_kernel::SimTime;

use crate::fault::{ServiceFault, ServiceFaultInjector, ServiceOp};

/// A bus event, in EventBridge's source/detail-type/detail shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BusEvent {
    /// Origin service, e.g. `"aws.ec2"`.
    pub source: String,
    /// Event class, e.g. `"EC2 Spot Instance Interruption Warning"`.
    pub detail_type: String,
    /// Free-form payload.
    pub detail: String,
    /// When the event was published.
    pub at: SimTime,
}

impl BusEvent {
    /// Convenience constructor.
    pub fn new(
        source: impl Into<String>,
        detail_type: impl Into<String>,
        detail: impl Into<String>,
        at: SimTime,
    ) -> Self {
        BusEvent {
            source: source.into(),
            detail_type: detail_type.into(),
            detail: detail.into(),
            at,
        }
    }
}

/// A routing rule: match by source prefix and (optionally) exact detail
/// type, deliver to a named target.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    name: String,
    source_prefix: String,
    detail_type: Option<String>,
    target: String,
    enabled: bool,
}

impl Rule {
    /// Creates an enabled rule.
    pub fn new(
        name: impl Into<String>,
        source_prefix: impl Into<String>,
        detail_type: Option<String>,
        target: impl Into<String>,
    ) -> Self {
        Rule {
            name: name.into(),
            source_prefix: source_prefix.into(),
            detail_type,
            target: target.into(),
            enabled: true,
        }
    }

    /// The rule name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The delivery target.
    pub fn target(&self) -> &str {
        &self.target
    }

    /// Whether the rule matches an event.
    pub fn matches(&self, event: &BusEvent) -> bool {
        self.enabled
            && event.source.starts_with(&self.source_prefix)
            && self
                .detail_type
                .as_ref()
                .is_none_or(|dt| dt == &event.detail_type)
    }
}

/// Event-bus errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventBusError {
    /// A rule with that name already exists.
    RuleExists(String),
    /// No rule with that name.
    NoSuchRule(String),
}

impl fmt::Display for EventBusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventBusError::RuleExists(n) => write!(f, "rule `{n}` already exists"),
            EventBusError::NoSuchRule(n) => write!(f, "no such rule `{n}`"),
        }
    }
}

impl std::error::Error for EventBusError {}

/// The bus: rules plus a delivery log.
///
/// # Examples
///
/// ```
/// use aws_stack::{BusEvent, EventBus, Rule};
/// use sim_kernel::SimTime;
///
/// let mut bus = EventBus::new();
/// bus.put_rule(Rule::new(
///     "on-interruption",
///     "aws.ec2",
///     Some("EC2 Spot Instance Interruption Warning".into()),
///     "interruption-handler",
/// ))?;
/// let targets = bus.publish(BusEvent::new(
///     "aws.ec2",
///     "EC2 Spot Instance Interruption Warning",
///     "i-00000001",
///     SimTime::ZERO,
/// ));
/// assert_eq!(targets, vec!["interruption-handler".to_string()]);
/// # Ok::<(), aws_stack::EventBusError>(())
/// ```
#[derive(Debug, Default)]
pub struct EventBus {
    rules: Vec<Rule>,
    published: u64,
    delivered: u64,
    lost: u64,
    duplicated: u64,
    injector: Option<Box<dyn ServiceFaultInjector>>,
}

impl EventBus {
    /// Creates an empty bus.
    pub fn new() -> Self {
        EventBus::default()
    }

    /// Installs a fault injector consulted once per matched target on
    /// every publish: [`ServiceFault::Lost`] (or `Throttled`) drops that
    /// delivery, [`ServiceFault::Duplicate`] delivers it twice
    /// (at-least-once semantics), and delays pass through untouched.
    /// Chaos-only; without an injector delivery is exact.
    pub fn set_fault_injector(&mut self, injector: Box<dyn ServiceFaultInjector>) {
        self.injector = Some(injector);
    }

    /// Installs a rule.
    ///
    /// # Errors
    ///
    /// Returns [`EventBusError::RuleExists`] on duplicate names.
    pub fn put_rule(&mut self, rule: Rule) -> Result<(), EventBusError> {
        if self.rules.iter().any(|r| r.name == rule.name) {
            return Err(EventBusError::RuleExists(rule.name));
        }
        self.rules.push(rule);
        Ok(())
    }

    /// Disables a rule (it stops matching but remains installed).
    ///
    /// # Errors
    ///
    /// Returns [`EventBusError::NoSuchRule`] for unknown names.
    pub fn disable_rule(&mut self, name: &str) -> Result<(), EventBusError> {
        let rule = self
            .rules
            .iter_mut()
            .find(|r| r.name == name)
            .ok_or_else(|| EventBusError::NoSuchRule(name.to_owned()))?;
        rule.enabled = false;
        Ok(())
    }

    /// Publishes an event, returning the targets it was routed to, in rule
    /// installation order. With a fault injector installed, each matched
    /// target may be dropped ([`ServiceFault::Lost`]/`Throttled`) or
    /// appear twice ([`ServiceFault::Duplicate`]).
    pub fn publish(&mut self, event: BusEvent) -> Vec<String> {
        self.published += 1;
        let matched: Vec<String> = self
            .rules
            .iter()
            .filter(|r| r.matches(&event))
            .map(|r| r.target.clone())
            .collect();
        let mut targets = Vec::with_capacity(matched.len());
        for target in matched {
            match self
                .injector
                .as_mut()
                .and_then(|i| i.intercept(ServiceOp::EventDeliver, event.at))
            {
                Some(ServiceFault::Lost | ServiceFault::Throttled) => self.lost += 1,
                Some(ServiceFault::Duplicate) => {
                    self.duplicated += 1;
                    targets.push(target.clone());
                    targets.push(target);
                }
                Some(ServiceFault::Delayed(_)) | None => targets.push(target),
            }
        }
        self.delivered += targets.len() as u64;
        targets
    }

    /// Installed rules.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Total events published.
    pub fn published_count(&self) -> u64 {
        self.published
    }

    /// Total deliveries (event × matching rule).
    pub fn delivered_count(&self) -> u64 {
        self.delivered
    }

    /// Deliveries dropped by the fault injector.
    pub fn lost_count(&self) -> u64 {
        self.lost
    }

    /// Deliveries duplicated by the fault injector.
    pub fn duplicated_count(&self) -> u64 {
        self.duplicated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interruption_event() -> BusEvent {
        BusEvent::new(
            "aws.ec2",
            "EC2 Spot Instance Interruption Warning",
            "i-1",
            SimTime::ZERO,
        )
    }

    #[test]
    fn routes_by_source_and_detail_type() {
        let mut bus = EventBus::new();
        bus.put_rule(Rule::new(
            "r1",
            "aws.ec2",
            Some("EC2 Spot Instance Interruption Warning".into()),
            "handler",
        ))
        .unwrap();
        bus.put_rule(Rule::new("r2", "aws.s3", None, "other")).unwrap();
        assert_eq!(bus.publish(interruption_event()), vec!["handler".to_string()]);
        assert_eq!(bus.published_count(), 1);
        assert_eq!(bus.delivered_count(), 1);
    }

    #[test]
    fn source_prefix_matching() {
        let mut bus = EventBus::new();
        bus.put_rule(Rule::new("r", "aws.", None, "t")).unwrap();
        assert_eq!(bus.publish(interruption_event()).len(), 1);
        assert!(bus
            .publish(BusEvent::new("galaxy", "job-done", "", SimTime::ZERO))
            .is_empty());
    }

    #[test]
    fn multiple_rules_all_deliver() {
        let mut bus = EventBus::new();
        bus.put_rule(Rule::new("a", "aws.ec2", None, "t1")).unwrap();
        bus.put_rule(Rule::new("b", "aws.ec2", None, "t2")).unwrap();
        assert_eq!(bus.publish(interruption_event()), vec!["t1".to_string(), "t2".to_string()]);
    }

    #[test]
    fn disabled_rules_stop_matching() {
        let mut bus = EventBus::new();
        bus.put_rule(Rule::new("a", "aws.ec2", None, "t")).unwrap();
        bus.disable_rule("a").unwrap();
        assert!(bus.publish(interruption_event()).is_empty());
        assert_eq!(bus.rules().len(), 1);
    }

    /// Scripted injector: plays back a fixed fate per delivery, in order.
    #[derive(Debug)]
    struct Script(std::vec::IntoIter<Option<ServiceFault>>);

    impl ServiceFaultInjector for Script {
        fn intercept(&mut self, op: ServiceOp, _at: SimTime) -> Option<ServiceFault> {
            assert_eq!(op, ServiceOp::EventDeliver);
            self.0.next().flatten()
        }
    }

    #[test]
    fn lost_delivery_drops_the_target() {
        let mut bus = EventBus::new();
        bus.put_rule(Rule::new("a", "aws.ec2", None, "t1")).unwrap();
        bus.put_rule(Rule::new("b", "aws.ec2", None, "t2")).unwrap();
        bus.set_fault_injector(Box::new(Script(
            vec![Some(ServiceFault::Lost), None].into_iter(),
        )));
        assert_eq!(bus.publish(interruption_event()), vec!["t2".to_string()]);
        assert_eq!(bus.lost_count(), 1);
        assert_eq!(bus.delivered_count(), 1);
    }

    #[test]
    fn duplicate_delivery_yields_the_target_twice() {
        let mut bus = EventBus::new();
        bus.put_rule(Rule::new("a", "aws.ec2", None, "t")).unwrap();
        bus.set_fault_injector(Box::new(Script(
            vec![Some(ServiceFault::Duplicate)].into_iter(),
        )));
        assert_eq!(
            bus.publish(interruption_event()),
            vec!["t".to_string(), "t".to_string()]
        );
        assert_eq!(bus.duplicated_count(), 1);
        assert_eq!(bus.delivered_count(), 2);
    }

    #[test]
    fn delayed_and_clean_deliveries_are_exact() {
        let mut bus = EventBus::new();
        bus.put_rule(Rule::new("a", "aws.ec2", None, "t")).unwrap();
        bus.set_fault_injector(Box::new(Script(
            vec![Some(ServiceFault::Delayed(sim_kernel::SimDuration::from_secs(5)))].into_iter(),
        )));
        assert_eq!(bus.publish(interruption_event()), vec!["t".to_string()]);
        assert_eq!(bus.lost_count(), 0);
        assert_eq!(bus.duplicated_count(), 0);
    }

    #[test]
    fn duplicate_and_unknown_rule_errors() {
        let mut bus = EventBus::new();
        bus.put_rule(Rule::new("a", "x", None, "t")).unwrap();
        assert!(matches!(
            bus.put_rule(Rule::new("a", "y", None, "t2")),
            Err(EventBusError::RuleExists(_))
        ));
        assert!(matches!(
            bus.disable_rule("ghost"),
            Err(EventBusError::NoSuchRule(_))
        ));
    }
}
