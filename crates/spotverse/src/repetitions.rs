//! Repeated experiment runs.
//!
//! The paper repeats every experiment three times "to account for potential
//! cloud performance and pricing variations" (§5.1.2). Here each repetition
//! re-seeds both the market and the decision streams; repetitions execute
//! as a one-column sweep through [`run_matrix`](crate::sweep::run_matrix),
//! so they ride the bounded worker pool and share markets through a
//! [`MarketCache`] whenever their configs coincide.

use cloud_market::MarketConfig;
use sim_kernel::RunningStats;

use crate::experiment::{ExperimentConfig, ExperimentReport};
use crate::strategy::Strategy;
use crate::sweep::{resolve_jobs, run_matrix, MarketCache, SweepCell};

/// Aggregate statistics over repetitions.
#[derive(Debug, Clone)]
pub struct AggregateReport {
    /// Strategy display name.
    pub strategy: String,
    /// Per-repetition reports, in repetition order.
    pub runs: Vec<ExperimentReport>,
    /// Interruption-count statistics.
    pub interruptions: RunningStats,
    /// Total-cost statistics (dollars).
    pub cost: RunningStats,
    /// Makespan statistics (hours).
    pub makespan_hours: RunningStats,
    /// Mean-completion statistics (hours).
    pub mean_completion_hours: RunningStats,
}

impl AggregateReport {
    fn from_runs(runs: Vec<ExperimentReport>) -> Self {
        let mut interruptions = RunningStats::new();
        let mut cost = RunningStats::new();
        let mut makespan_hours = RunningStats::new();
        let mut mean_completion_hours = RunningStats::new();
        for run in &runs {
            interruptions.record(run.interruptions as f64);
            cost.record(run.cost.total.amount());
            makespan_hours.record(run.makespan.as_hours_f64());
            mean_completion_hours.record(run.mean_completion.as_hours_f64());
        }
        AggregateReport {
            strategy: runs.first().map(|r| r.strategy.clone()).unwrap_or_default(),
            runs,
            interruptions,
            cost,
            makespan_hours,
            mean_completion_hours,
        }
    }

    /// Number of repetitions.
    pub fn repetitions(&self) -> usize {
        self.runs.len()
    }
}

/// The configuration for repetition `rep` of a base experiment: market and
/// decision seeds are offset deterministically.
pub fn repetition_config(base: &ExperimentConfig, rep: u32) -> ExperimentConfig {
    let seed = base.seed.wrapping_add(u64::from(rep).wrapping_mul(0x9E37_79B9));
    ExperimentConfig {
        seed,
        market: MarketConfig {
            seed,
            ..base.market
        },
        workloads: base.workloads.clone(),
        ..base.clone()
    }
}

/// The configuration for repetition `rep` with the *market held fixed*:
/// only the decision streams (strategy, backoff, compute RNGs) re-seed.
/// Sweeps built this way sample strategy variance on one price history —
/// and perform exactly one market construction through a [`MarketCache`].
pub fn repetition_config_shared_market(base: &ExperimentConfig, rep: u32) -> ExperimentConfig {
    let seed = base.seed.wrapping_add(u64::from(rep).wrapping_mul(0x9E37_79B9));
    ExperimentConfig {
        seed,
        market: base.market,
        workloads: base.workloads.clone(),
        ..base.clone()
    }
}

/// How repetitions derive their market from the base config.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RepetitionMarket {
    /// Re-seed the market *and* the decision streams per repetition — the
    /// paper's protocol ([`repetition_config`]).
    #[default]
    Reseeded,
    /// Hold the market fixed and re-seed only the decision streams
    /// ([`repetition_config_shared_market`]): all cells share one cached
    /// market construction and only decision randomness varies.
    Shared,
}

/// Runs `reps` repetitions of an experiment on the sweep engine's worker
/// pool. `market` picks the repetition protocol: re-seed everything (the
/// paper's), or hold the market fixed to sample decision variance on one
/// price history.
///
/// The factory builds a fresh strategy per repetition (strategies may hold
/// state).
///
/// # Panics
///
/// Panics if `reps` is zero or any repetition cell fails.
pub fn run_repetitions<F>(
    base: &ExperimentConfig,
    strategy_factory: F,
    reps: u32,
    market: RepetitionMarket,
) -> AggregateReport
where
    F: Fn() -> Box<dyn Strategy> + Sync,
{
    assert!(reps > 0, "run_repetitions: need at least one repetition");
    let per_rep = match market {
        RepetitionMarket::Reseeded => repetition_config,
        RepetitionMarket::Shared => repetition_config_shared_market,
    };
    let cells: Vec<SweepCell> = (0..reps)
        .map(|r| SweepCell::new(format!("rep-{r}"), String::new(), per_rep(base, r)))
        .collect();
    let cache = MarketCache::new();
    let jobs = resolve_jobs(None, cells.len());
    // Aggregating over a partial repetition set would silently skew the
    // statistics, so a failed repetition is fatal here (into_report).
    let runs = run_matrix(&cells, jobs, &cache, |_| strategy_factory())
        .into_iter()
        .map(crate::sweep::CellOutcome::into_report)
        .collect();
    AggregateReport::from_runs(runs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bio_workloads::{paper_fleet, WorkloadKind};
    use cloud_market::{InstanceType, Region};
    use sim_kernel::SimRng;

    use crate::strategy::SingleRegionStrategy;

    fn base(n: usize, seed: u64) -> ExperimentConfig {
        let rng = SimRng::seed_from_u64(seed);
        ExperimentConfig::new(
            seed,
            InstanceType::M5Xlarge,
            paper_fleet(WorkloadKind::GenomeReconstruction, n, &rng),
        )
    }

    #[test]
    fn repetitions_vary_seeds_but_stay_deterministic() {
        let base = base(4, 21);
        let a = run_repetitions(&base, || Box::new(SingleRegionStrategy::new(Region::CaCentral1)), 3, RepetitionMarket::Reseeded);
        let b = run_repetitions(&base, || Box::new(SingleRegionStrategy::new(Region::CaCentral1)), 3, RepetitionMarket::Reseeded);
        assert_eq!(a.repetitions(), 3);
        assert_eq!(a.interruptions.mean(), b.interruptions.mean());
        assert_eq!(a.cost.mean(), b.cost.mean());
        // Repetitions should differ among themselves (different seeds).
        let costs: Vec<f64> = a.runs.iter().map(|r| r.cost.total.amount()).collect();
        assert!(costs.windows(2).any(|w| w[0] != w[1]), "{costs:?}");
        assert_eq!(a.strategy, "single-region");
    }

    #[test]
    fn repetition_config_offsets_market_seed() {
        let base = base(2, 5);
        let r0 = repetition_config(&base, 0);
        let r1 = repetition_config(&base, 1);
        assert_eq!(r0.seed, base.seed);
        assert_ne!(r1.seed, r0.seed);
        assert_eq!(r1.market.seed, r1.seed);
        assert_eq!(r1.workloads, base.workloads);
    }

    #[test]
    fn shared_market_repetitions_vary_decisions_only() {
        let base = base(4, 33);
        let r1 = repetition_config_shared_market(&base, 1);
        assert_eq!(r1.market, base.market, "market config must stay fixed");
        assert_ne!(r1.seed, base.seed, "decision seed must move");
        let agg = run_repetitions(
            &base,
            || Box::new(SingleRegionStrategy::new(Region::CaCentral1)),
            3,
            RepetitionMarket::Shared,
        );
        assert_eq!(agg.repetitions(), 3);
        // Decision streams differ, so repetitions still vary.
        let costs: Vec<f64> = agg.runs.iter().map(|r| r.cost.total.amount()).collect();
        assert!(costs.windows(2).any(|w| w[0] != w[1]), "{costs:?}");
    }

    #[test]
    fn aggregate_stats_match_runs() {
        let base = base(3, 6);
        let agg = run_repetitions(&base, || Box::new(SingleRegionStrategy::new(Region::CaCentral1)), 2, RepetitionMarket::default());
        let manual_mean = agg.runs.iter().map(|r| r.interruptions as f64).sum::<f64>() / 2.0;
        assert!((agg.interruptions.mean() - manual_mean).abs() < 1e-12);
        assert_eq!(agg.makespan_hours.count(), 2);
        assert_eq!(agg.mean_completion_hours.count(), 2);
    }
}
