//! Deterministic decision-trace observability.
//!
//! Aggregate reports hide *why* a run chose what it chose; this module
//! records every consequential controller event — optimizer decisions with
//! per-candidate verdicts, interruptions, migrations, checkpoint
//! save/restore, circuit-breaker transitions, chaos fault activations — as
//! typed, sim-time-stamped [`TraceRecord`]s.
//!
//! Determinism contract:
//!
//! * Tracing is **purely observational**: the tracer consumes no RNG and
//!   touches no counters, so enabling it leaves every other report field
//!   bit-identical to an untraced run.
//! * Records are collected per experiment (one sweep cell = one run) in a
//!   single-threaded [`RingBuffer`] that keeps the *first* N events, so
//!   the retained prefix never depends on run length. Sweeps merge
//!   per-cell traces in cell order, which keeps the merged JSONL
//!   byte-identical for any `--jobs` value.
//! * The JSONL export is canonical — fixed key order, lowercase labels,
//!   shortest-round-trip float formatting — so golden traces can be
//!   compared byte-for-byte.

use std::fmt::Write as _;

use cloud_compute::InstanceId;
use cloud_market::Region;
use sim_kernel::{Histogram, RingBuffer, SimDuration, SimTime};

use crate::health::BreakerState;
use crate::optimizer::{CandidateVerdict, Placement};

/// Default cap on retained records per run; overflow is counted, not kept.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// Span (in hours from run start) covered by [`TraceStats::event_hours`].
const EVENT_HISTOGRAM_HOURS: f64 = 720.0;
/// Bin count of [`TraceStats::event_hours`] (one bin per simulated day).
const EVENT_HISTOGRAM_BINS: usize = 30;

/// Per-run tracing configuration, carried on `ExperimentConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Whether to record a trace (off by default: benches and ordinary
    /// sweeps pay nothing).
    pub enabled: bool,
    /// Maximum records retained; later events only bump the dropped count.
    pub capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig { enabled: false, capacity: DEFAULT_TRACE_CAPACITY }
    }
}

impl TraceConfig {
    /// An enabled configuration with the default capacity.
    #[must_use]
    pub fn enabled() -> Self {
        TraceConfig { enabled: true, ..TraceConfig::default() }
    }
}

/// Whether a decision places fresh workloads or migrates an interrupted one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionKind {
    /// The start-of-run placement of the whole fleet.
    Initial,
    /// A relaunch decision after an interruption or failed request.
    Migration,
}

/// One consequential controller event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// The run began: identifies the strategy, seed, and chaos scenario.
    RunStarted {
        /// Strategy name (e.g. `"spotverse"`).
        strategy: String,
        /// The experiment seed.
        seed: u64,
        /// Fleet size.
        workloads: usize,
        /// Active chaos scenario name, if any.
        chaos: Option<String>,
        /// Market regime name, `None` under the default baseline regime —
        /// omitted from the JSONL so pre-regime goldens stay byte-identical.
        regime: Option<String>,
    },
    /// A telemetry collection attempt failed.
    CollectionFailed {
        /// Whether the monitor classified the failure as retryable.
        retryable: bool,
    },
    /// A decision was served from a stale-but-within-TTL snapshot.
    StaleServe {
        /// Snapshot age at serve time.
        age: SimDuration,
    },
    /// Telemetry aged past the TTL; the decision degraded to on-demand.
    DegradedDecision {
        /// Snapshot age at decision time.
        age: SimDuration,
    },
    /// A degraded interval closed (telemetry recovered or the run ended).
    DegradedInterval {
        /// Length of the interval.
        duration: SimDuration,
    },
    /// A placement decision, with the optimizer's candidate audit.
    Decision {
        /// Initial fleet placement or per-workload migration.
        kind: DecisionKind,
        /// The migrating workload (`None` for the initial fleet decision).
        workload: Option<usize>,
        /// Region the workload ran in before this decision, if migrating.
        previous: Option<Region>,
        /// Whether stale telemetry forced the on-demand degraded path.
        degraded: bool,
        /// Regions quarantined by the health control plane at decision time.
        quarantined: Vec<Region>,
        /// Per-candidate verdicts (`None` for strategies with no optimizer).
        candidates: Option<Vec<CandidateVerdict>>,
        /// The chosen placements (fleet-sized for initial, one for migration).
        placements: Vec<Placement>,
    },
    /// An instance was launched and began executing.
    Launched {
        /// The workload index.
        workload: usize,
        /// Launch region.
        region: Region,
        /// `true` for spot, `false` for on-demand.
        spot: bool,
        /// The launched instance.
        instance: InstanceId,
    },
    /// A spot request was declined for lack of capacity.
    RequestOpen {
        /// The workload index.
        workload: usize,
        /// The declining region.
        region: Region,
        /// Whether a chaos blackout window caused the decline.
        blackout: bool,
    },
    /// A spot request failed outright (market error).
    RequestFailed {
        /// The workload index.
        workload: usize,
        /// The failing region.
        region: Region,
    },
    /// A running spot instance was reclaimed.
    Interrupted {
        /// The workload index.
        workload: usize,
        /// Region of the reclaimed instance.
        region: Region,
        /// The reclaimed instance.
        instance: InstanceId,
        /// Usage billed for the instance at termination ($).
        billed: f64,
    },
    /// A checkpoint write was attempted during the interruption notice.
    CheckpointSave {
        /// The workload index.
        workload: usize,
        /// Checkpoint generation number.
        generation: u64,
        /// Work units covered by the checkpoint.
        units: usize,
        /// Whether the generation record survived KV throttling.
        recorded: bool,
    },
    /// A checkpoint write was judged torn (never durable).
    CheckpointTorn {
        /// The workload index.
        workload: usize,
        /// The torn generation.
        generation: u64,
    },
    /// Progress was restored after an interruption.
    CheckpointRestore {
        /// The workload index.
        workload: usize,
        /// Work units resumed from.
        units: usize,
        /// Durable-looking generations dropped as corrupt.
        corrupt_dropped: u64,
        /// Whether recovery fell all the way back to a scratch restart.
        scratch: bool,
    },
    /// A workload completed and its instance terminated.
    Completed {
        /// The workload index.
        workload: usize,
        /// Region it completed in.
        region: Region,
        /// The terminated instance.
        instance: InstanceId,
        /// Usage billed for the instance at termination ($).
        billed: f64,
    },
    /// A region's circuit breaker changed state.
    Breaker {
        /// The affected region.
        region: Region,
        /// State before.
        from: BreakerState,
        /// State after.
        to: BreakerState,
    },
    /// A chaos fault actively perturbed the run.
    ChaosFault {
        /// Canonical fault label (e.g. `"spot_blackout"`).
        kind: &'static str,
        /// Affected region, when the fault is region-scoped.
        region: Option<Region>,
    },
    /// A batch of fleet workloads arrived after the run start.
    ///
    /// Never emitted for the batch present at the start, so classic
    /// single-batch experiments produce no such record.
    WorkloadsArrived {
        /// Workload indices arriving together.
        batch: Vec<usize>,
        /// Tenant label per batch entry. Empty for single-tenant fleets
        /// (the default), in which case no `tenant` field is emitted —
        /// committed golden traces stay byte-identical.
        tenants: Vec<String>,
        /// Priority label per batch entry. Empty when every entry is the
        /// default tier, in which case no `priority` field is emitted.
        priorities: Vec<&'static str>,
    },
    /// A launch was deferred because the target region was at its
    /// concurrent-instance capacity cap.
    CapacityDeferred {
        /// The workload index.
        workload: usize,
        /// The full region.
        region: Region,
    },
    /// A fleet workload hit its per-workload deadline unfinished.
    WorkloadExpired {
        /// The workload index.
        workload: usize,
        /// Region of the terminated instance, if one was running.
        region: Option<Region>,
        /// Usage billed at forced termination ($), if an instance ran.
        billed: Option<f64>,
    },
    /// An orchestrated sweep shard was dispatched over the event bus.
    ShardDispatched {
        /// The shard index.
        shard: usize,
        /// 1-based dispatch attempt.
        attempt: u32,
        /// Cells carried by the shard.
        cells: usize,
    },
    /// A shard worker's lease passed its expiry without renewal.
    LeaseExpired {
        /// The shard index.
        shard: usize,
        /// The attempt whose lease lapsed.
        attempt: u32,
    },
    /// A failed shard attempt was re-dispatched with backoff.
    ShardRedriven {
        /// The shard index.
        shard: usize,
        /// The new (1-based) attempt about to be dispatched.
        attempt: u32,
        /// Backoff before the re-dispatch (seconds, jitter included).
        backoff_s: u64,
    },
    /// A shard exhausted its attempts and moved to the dead-letter record.
    ShardDeadLettered {
        /// The shard index.
        shard: usize,
        /// Attempts consumed before giving up.
        attempts: u32,
    },
    /// A shard worker persisted (or idempotently re-confirmed) its result.
    ShardCompleted {
        /// The shard index.
        shard: usize,
        /// The attempt that finished.
        attempt: u32,
        /// Whether the result object already existed (duplicate execution).
        duplicate: bool,
    },
    /// The run ended.
    RunEnded {
        /// Workloads that completed.
        completed: usize,
        /// Whether the run hit the max-runtime deadline.
        aborted: bool,
    },
}

impl TraceEvent {
    /// Canonical snake_case label used as the JSONL `event` field.
    pub fn label(&self) -> &'static str {
        match self {
            TraceEvent::RunStarted { .. } => "run_started",
            TraceEvent::CollectionFailed { .. } => "collection_failed",
            TraceEvent::StaleServe { .. } => "stale_serve",
            TraceEvent::DegradedDecision { .. } => "degraded_decision",
            TraceEvent::DegradedInterval { .. } => "degraded_interval",
            TraceEvent::Decision { .. } => "decision",
            TraceEvent::Launched { .. } => "launched",
            TraceEvent::RequestOpen { .. } => "request_open",
            TraceEvent::RequestFailed { .. } => "request_failed",
            TraceEvent::Interrupted { .. } => "interrupted",
            TraceEvent::CheckpointSave { .. } => "checkpoint_save",
            TraceEvent::CheckpointTorn { .. } => "checkpoint_torn",
            TraceEvent::CheckpointRestore { .. } => "checkpoint_restore",
            TraceEvent::Completed { .. } => "completed",
            TraceEvent::Breaker { .. } => "breaker",
            TraceEvent::ChaosFault { .. } => "chaos_fault",
            TraceEvent::WorkloadsArrived { .. } => "workloads_arrived",
            TraceEvent::CapacityDeferred { .. } => "capacity_deferred",
            TraceEvent::WorkloadExpired { .. } => "workload_expired",
            TraceEvent::ShardDispatched { .. } => "shard_dispatched",
            TraceEvent::LeaseExpired { .. } => "lease_expired",
            TraceEvent::ShardRedriven { .. } => "shard_redriven",
            TraceEvent::ShardDeadLettered { .. } => "shard_dead_lettered",
            TraceEvent::ShardCompleted { .. } => "shard_completed",
            TraceEvent::RunEnded { .. } => "run_ended",
        }
    }
}

/// One recorded event: a sequence number, a sim-time stamp, and the event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// 0-based emission order within the run.
    pub seq: u64,
    /// Simulation time of the event.
    pub at: SimTime,
    /// The event itself.
    pub event: TraceEvent,
}

/// The per-run event collector, owned by the experiment model.
///
/// Disabled tracers are a near-free no-op: `record` checks one `Option`
/// and discards the event.
#[derive(Debug)]
pub struct Tracer {
    inner: Option<TracerInner>,
}

#[derive(Debug)]
struct TracerInner {
    ring: RingBuffer<TraceRecord>,
    seq: u64,
}

impl Tracer {
    /// A tracer honoring `config` (disabled configs record nothing).
    #[must_use]
    pub fn new(config: &TraceConfig) -> Self {
        let inner = config.enabled.then(|| TracerInner {
            ring: RingBuffer::new(config.capacity.max(1)),
            seq: 0,
        });
        Tracer { inner }
    }

    /// A tracer that records nothing.
    #[must_use]
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// Whether events are being recorded. Callers that must *build* an
    /// expensive event (candidate explanations, vectors) should gate on
    /// this; cheap events can just call [`record`](Tracer::record).
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records `event` at sim-time `at`. No-op when disabled.
    pub fn record(&mut self, at: SimTime, event: TraceEvent) {
        if let Some(inner) = &mut self.inner {
            let seq = inner.seq;
            inner.seq += 1;
            inner.ring.push(TraceRecord { seq, at, event });
        }
    }

    /// Consumes the tracer into a [`RunTrace`] (or `None` when disabled).
    /// `start` anchors the event-time histogram.
    #[must_use]
    pub fn finish(self, start: SimTime) -> Option<RunTrace> {
        let inner = self.inner?;
        let (events, dropped) = inner.ring.into_parts();
        let stats = TraceStats::from_events(&events, start);
        Some(RunTrace { events, dropped, stats })
    }
}

/// A completed run's trace: the retained records plus derived aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct RunTrace {
    /// Retained records, in emission order.
    pub events: Vec<TraceRecord>,
    /// Records dropped once the capacity was reached.
    pub dropped: u64,
    /// Counters and histograms derived from the retained records.
    pub stats: TraceStats,
}

impl RunTrace {
    /// Records matching a predicate — convenience for tests and tooling.
    pub fn count_matching(&self, mut pred: impl FnMut(&TraceEvent) -> bool) -> u64 {
        self.events.iter().filter(|r| pred(&r.event)).count() as u64
    }
}

/// Aggregates derived from a run's retained trace records.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Placement decisions (initial + migrations).
    pub decisions: u64,
    /// Migration decisions only.
    pub migrations: u64,
    /// Instance launches.
    pub launches: u64,
    /// Spot interruptions.
    pub interruptions: u64,
    /// Checkpoint write attempts.
    pub checkpoint_saves: u64,
    /// Checkpoint restores.
    pub checkpoint_restores: u64,
    /// Circuit-breaker transitions.
    pub breaker_transitions: u64,
    /// Chaos fault activations.
    pub chaos_faults: u64,
    /// Total billed at instance terminations ($), interrupted + completed.
    pub billed_total: f64,
    /// Event density over the run: hours-from-start, one bin per day.
    pub event_hours: Histogram,
}

impl TraceStats {
    /// Rebuilds the aggregates from a *parsed* single-run record stream,
    /// choosing the anchor the write side used: the `run_started` record's
    /// timestamp when one is present (experiment and fleet traces), else
    /// [`SimTime::ZERO`] (the orchestrator's shard trace). Feeding records
    /// from more than one cell of a merged JSONL document sums counters
    /// across cells and is almost never what reconciliation wants — split
    /// by `cell` first.
    #[must_use]
    pub fn rebuild(events: &[TraceRecord]) -> Self {
        let start = events
            .iter()
            .find(|r| matches!(r.event, TraceEvent::RunStarted { .. }))
            .map_or(SimTime::ZERO, |r| r.at);
        TraceStats::from_events(events, start)
    }

    /// Computes the aggregates for `events`, anchored at run `start`.
    #[must_use]
    pub fn from_events(events: &[TraceRecord], start: SimTime) -> Self {
        let mut stats = TraceStats {
            decisions: 0,
            migrations: 0,
            launches: 0,
            interruptions: 0,
            checkpoint_saves: 0,
            checkpoint_restores: 0,
            breaker_transitions: 0,
            chaos_faults: 0,
            billed_total: 0.0,
            event_hours: Histogram::new(0.0, EVENT_HISTOGRAM_HOURS, EVENT_HISTOGRAM_BINS),
        };
        for record in events {
            let offset = record.at.saturating_duration_since(start).as_hours_f64();
            stats.event_hours.record(offset);
            match &record.event {
                TraceEvent::Decision { kind, .. } => {
                    stats.decisions += 1;
                    if *kind == DecisionKind::Migration {
                        stats.migrations += 1;
                    }
                }
                TraceEvent::Launched { .. } => stats.launches += 1,
                TraceEvent::Interrupted { billed, .. } => {
                    stats.interruptions += 1;
                    stats.billed_total += billed;
                }
                TraceEvent::Completed { billed, .. } => stats.billed_total += billed,
                TraceEvent::WorkloadExpired { billed: Some(billed), .. } => {
                    stats.billed_total += billed;
                }
                TraceEvent::CheckpointSave { .. } => stats.checkpoint_saves += 1,
                TraceEvent::CheckpointRestore { .. } => stats.checkpoint_restores += 1,
                TraceEvent::Breaker { .. } => stats.breaker_transitions += 1,
                TraceEvent::ChaosFault { .. } => stats.chaos_faults += 1,
                _ => {}
            }
        }
        stats
    }
}

// --- canonical JSONL ------------------------------------------------------
//
// The vendored serde is an API shim, so the canonical form is hand-rolled:
// fixed key order (seq, t, event, then variant fields in declaration
// order), `None` fields omitted, floats via Rust's shortest-round-trip
// `Display`, and lowercase labels throughout. Golden tests compare this
// byte-for-byte.

pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn breaker_label(state: BreakerState) -> &'static str {
    match state {
        BreakerState::Closed => "closed",
        BreakerState::Open => "open",
        BreakerState::HalfOpen => "half-open",
    }
}

fn push_placement(out: &mut String, p: Placement) {
    let label = match p {
        Placement::Spot(r) => format!("spot:{}", r.name()),
        Placement::OnDemand(r) => format!("od:{}", r.name()),
    };
    push_json_str(out, &label);
}

fn push_region_list(out: &mut String, regions: &[Region]) {
    out.push('[');
    for (i, r) in regions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(out, r.name());
    }
    out.push(']');
}

fn push_candidates(out: &mut String, candidates: &[CandidateVerdict]) {
    out.push('[');
    for (i, c) in candidates.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"region\":");
        push_json_str(out, c.region.name());
        let _ = write!(out, ",\"combined\":{},\"price\":{}", c.combined, c.spot_price);
        out.push_str(",\"outcome\":");
        push_json_str(out, &c.outcome.label());
        out.push('}');
    }
    out.push(']');
}

/// Appends one record as a canonical JSON line (no trailing newline).
/// `cell` prefixes the object with a `"cell"` key for merged sweep traces.
pub fn append_record_json(out: &mut String, cell: Option<&str>, record: &TraceRecord) {
    out.push('{');
    if let Some(cell) = cell {
        out.push_str("\"cell\":");
        push_json_str(out, cell);
        out.push(',');
    }
    let _ = write!(out, "\"seq\":{},\"t\":{},\"event\":", record.seq, record.at.as_secs());
    push_json_str(out, record.event.label());
    match &record.event {
        TraceEvent::RunStarted { strategy, seed, workloads, chaos, regime } => {
            out.push_str(",\"strategy\":");
            push_json_str(out, strategy);
            let _ = write!(out, ",\"seed\":{seed},\"workloads\":{workloads}");
            if let Some(chaos) = chaos {
                out.push_str(",\"chaos\":");
                push_json_str(out, chaos);
            }
            if let Some(regime) = regime {
                out.push_str(",\"regime\":");
                push_json_str(out, regime);
            }
        }
        TraceEvent::CollectionFailed { retryable } => {
            let _ = write!(out, ",\"retryable\":{retryable}");
        }
        TraceEvent::StaleServe { age } | TraceEvent::DegradedDecision { age } => {
            let _ = write!(out, ",\"age_s\":{}", age.as_secs());
        }
        TraceEvent::DegradedInterval { duration } => {
            let _ = write!(out, ",\"duration_s\":{}", duration.as_secs());
        }
        TraceEvent::Decision {
            kind,
            workload,
            previous,
            degraded,
            quarantined,
            candidates,
            placements,
        } => {
            let kind = match kind {
                DecisionKind::Initial => "initial",
                DecisionKind::Migration => "migration",
            };
            let _ = write!(out, ",\"kind\":\"{kind}\"");
            if let Some(w) = workload {
                let _ = write!(out, ",\"workload\":{w}");
            }
            if let Some(prev) = previous {
                out.push_str(",\"previous\":");
                push_json_str(out, prev.name());
            }
            let _ = write!(out, ",\"degraded\":{degraded},\"quarantined\":");
            push_region_list(out, quarantined);
            if let Some(candidates) = candidates {
                out.push_str(",\"candidates\":");
                push_candidates(out, candidates);
            }
            out.push_str(",\"placements\":[");
            for (i, p) in placements.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_placement(out, *p);
            }
            out.push(']');
        }
        TraceEvent::Launched { workload, region, spot, instance } => {
            let _ = write!(out, ",\"workload\":{workload},\"region\":");
            push_json_str(out, region.name());
            let _ = write!(out, ",\"spot\":{spot},\"instance\":\"{instance}\"");
        }
        TraceEvent::RequestOpen { workload, region, blackout } => {
            let _ = write!(out, ",\"workload\":{workload},\"region\":");
            push_json_str(out, region.name());
            let _ = write!(out, ",\"blackout\":{blackout}");
        }
        TraceEvent::RequestFailed { workload, region } => {
            let _ = write!(out, ",\"workload\":{workload},\"region\":");
            push_json_str(out, region.name());
        }
        TraceEvent::Interrupted { workload, region, instance, billed }
        | TraceEvent::Completed { workload, region, instance, billed } => {
            let _ = write!(out, ",\"workload\":{workload},\"region\":");
            push_json_str(out, region.name());
            let _ = write!(out, ",\"instance\":\"{instance}\",\"billed\":{billed}");
        }
        TraceEvent::CheckpointSave { workload, generation, units, recorded } => {
            let _ = write!(
                out,
                ",\"workload\":{workload},\"generation\":{generation},\"units\":{units},\"recorded\":{recorded}"
            );
        }
        TraceEvent::CheckpointTorn { workload, generation } => {
            let _ = write!(out, ",\"workload\":{workload},\"generation\":{generation}");
        }
        TraceEvent::CheckpointRestore { workload, units, corrupt_dropped, scratch } => {
            let _ = write!(
                out,
                ",\"workload\":{workload},\"units\":{units},\"corrupt_dropped\":{corrupt_dropped},\"scratch\":{scratch}"
            );
        }
        TraceEvent::Breaker { region, from, to } => {
            out.push_str(",\"region\":");
            push_json_str(out, region.name());
            let _ = write!(
                out,
                ",\"from\":\"{}\",\"to\":\"{}\"",
                breaker_label(*from),
                breaker_label(*to)
            );
        }
        TraceEvent::ChaosFault { kind, region } => {
            out.push_str(",\"kind\":");
            push_json_str(out, kind);
            if let Some(region) = region {
                out.push_str(",\"region\":");
                push_json_str(out, region.name());
            }
        }
        TraceEvent::WorkloadsArrived { batch, tenants, priorities } => {
            out.push_str(",\"batch\":[");
            for (i, w) in batch.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{w}");
            }
            out.push(']');
            if !tenants.is_empty() {
                out.push_str(",\"tenant\":[");
                for (i, t) in tenants.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_json_str(out, t);
                }
                out.push(']');
            }
            if !priorities.is_empty() {
                out.push_str(",\"priority\":[");
                for (i, p) in priorities.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_json_str(out, p);
                }
                out.push(']');
            }
        }
        TraceEvent::CapacityDeferred { workload, region } => {
            let _ = write!(out, ",\"workload\":{workload},\"region\":");
            push_json_str(out, region.name());
        }
        TraceEvent::WorkloadExpired { workload, region, billed } => {
            let _ = write!(out, ",\"workload\":{workload}");
            if let Some(region) = region {
                out.push_str(",\"region\":");
                push_json_str(out, region.name());
            }
            if let Some(billed) = billed {
                let _ = write!(out, ",\"billed\":{billed}");
            }
        }
        TraceEvent::ShardDispatched { shard, attempt, cells } => {
            let _ = write!(out, ",\"shard\":{shard},\"attempt\":{attempt},\"cells\":{cells}");
        }
        TraceEvent::LeaseExpired { shard, attempt } => {
            let _ = write!(out, ",\"shard\":{shard},\"attempt\":{attempt}");
        }
        TraceEvent::ShardRedriven { shard, attempt, backoff_s } => {
            let _ = write!(
                out,
                ",\"shard\":{shard},\"attempt\":{attempt},\"backoff_s\":{backoff_s}"
            );
        }
        TraceEvent::ShardDeadLettered { shard, attempts } => {
            let _ = write!(out, ",\"shard\":{shard},\"attempts\":{attempts}");
        }
        TraceEvent::ShardCompleted { shard, attempt, duplicate } => {
            let _ = write!(
                out,
                ",\"shard\":{shard},\"attempt\":{attempt},\"duplicate\":{duplicate}"
            );
        }
        TraceEvent::RunEnded { completed, aborted } => {
            let _ = write!(out, ",\"completed\":{completed},\"aborted\":{aborted}");
        }
    }
    out.push('}');
}

/// Appends a whole trace as canonical JSONL (one record per line, each
/// newline-terminated). A truncated trace ends with an explicit marker
/// line so drops are never silent.
pub fn append_trace_jsonl(out: &mut String, cell: Option<&str>, trace: &RunTrace) {
    for record in &trace.events {
        append_record_json(out, cell, record);
        out.push('\n');
    }
    if trace.dropped > 0 {
        append_truncation_json(out, cell, trace.dropped);
        out.push('\n');
    }
}

/// Appends the canonical truncation marker line (no trailing newline) a
/// capacity-capped trace ends with. The read side
/// ([`crate::replay`]) parses this back into
/// [`TraceLine::Truncated`](crate::replay::TraceLine).
pub fn append_truncation_json(out: &mut String, cell: Option<&str>, dropped: u64) {
    out.push('{');
    if let Some(cell) = cell {
        out.push_str("\"cell\":");
        push_json_str(out, cell);
        out.push(',');
    }
    let _ = write!(out, "\"truncated\":true,\"dropped\":{dropped}}}");
}

/// The canonical JSONL form of a single run's trace.
#[must_use]
pub fn trace_to_jsonl(trace: &RunTrace) -> String {
    let mut out = String::new();
    append_trace_jsonl(&mut out, None, trace);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::optimizer::CandidateOutcome;

    fn sample_records() -> Vec<TraceRecord> {
        vec![
            TraceRecord {
                seq: 0,
                at: SimTime::from_secs(0),
                event: TraceEvent::RunStarted {
                    strategy: "spotverse".to_owned(),
                    seed: 7,
                    workloads: 2,
                    chaos: None,
                    regime: None,
                },
            },
            TraceRecord {
                seq: 1,
                at: SimTime::from_hours(1),
                event: TraceEvent::Decision {
                    kind: DecisionKind::Initial,
                    workload: None,
                    previous: None,
                    degraded: false,
                    quarantined: vec![Region::EuWest1],
                    candidates: Some(vec![CandidateVerdict {
                        region: Region::UsEast1,
                        combined: 9,
                        spot_price: 0.0455,
                        outcome: CandidateOutcome::Selected { rank: 0 },
                    }]),
                    placements: vec![
                        Placement::Spot(Region::UsEast1),
                        Placement::OnDemand(Region::UsEast2),
                    ],
                },
            },
            TraceRecord {
                seq: 2,
                at: SimTime::from_hours(2),
                event: TraceEvent::Breaker {
                    region: Region::EuWest1,
                    from: BreakerState::Closed,
                    to: BreakerState::Open,
                },
            },
        ]
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut tracer = Tracer::new(&TraceConfig::default());
        assert!(!tracer.enabled());
        tracer.record(SimTime::ZERO, TraceEvent::RunEnded { completed: 0, aborted: false });
        assert!(tracer.finish(SimTime::ZERO).is_none());
    }

    #[test]
    fn enabled_tracer_sequences_and_caps() {
        let mut tracer = Tracer::new(&TraceConfig { enabled: true, capacity: 2 });
        assert!(tracer.enabled());
        for i in 0..4u64 {
            tracer.record(
                SimTime::from_secs(i),
                TraceEvent::CollectionFailed { retryable: true },
            );
        }
        let trace = tracer.finish(SimTime::ZERO).unwrap();
        assert_eq!(trace.events.len(), 2);
        assert_eq!(trace.dropped, 2);
        assert_eq!(trace.events[0].seq, 0);
        assert_eq!(trace.events[1].seq, 1);
    }

    #[test]
    fn stats_count_by_event_class() {
        let mut records = sample_records();
        records.push(TraceRecord {
            seq: 3,
            at: SimTime::from_hours(3),
            event: TraceEvent::Interrupted {
                workload: 0,
                region: Region::UsEast1,
                instance: InstanceId::from_raw(1),
                billed: 1.25,
            },
        });
        records.push(TraceRecord {
            seq: 4,
            at: SimTime::from_hours(4),
            event: TraceEvent::Completed {
                workload: 0,
                region: Region::UsEast2,
                instance: InstanceId::from_raw(1),
                billed: 2.0,
            },
        });
        let stats = TraceStats::from_events(&records, SimTime::ZERO);
        assert_eq!(stats.decisions, 1);
        assert_eq!(stats.migrations, 0);
        assert_eq!(stats.interruptions, 1);
        assert_eq!(stats.breaker_transitions, 1);
        assert!((stats.billed_total - 3.25).abs() < 1e-12);
        assert_eq!(stats.event_hours.total(), records.len() as u64);
    }

    #[test]
    fn jsonl_is_canonical_and_stable() {
        let trace = RunTrace {
            events: sample_records(),
            dropped: 0,
            stats: TraceStats::from_events(&sample_records(), SimTime::ZERO),
        };
        let a = trace_to_jsonl(&trace);
        let b = trace_to_jsonl(&trace);
        assert_eq!(a, b);
        let lines: Vec<&str> = a.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "{\"seq\":0,\"t\":0,\"event\":\"run_started\",\"strategy\":\"spotverse\",\"seed\":7,\"workloads\":2}"
        );
        assert!(lines[1].contains("\"quarantined\":[\"eu-west-1\"]"));
        assert!(lines[1].contains("\"outcome\":\"selected:0\""));
        assert!(lines[1].contains("\"placements\":[\"spot:us-east-1\",\"od:us-east-2\"]"));
        assert_eq!(
            lines[2],
            "{\"seq\":2,\"t\":7200,\"event\":\"breaker\",\"region\":\"eu-west-1\",\"from\":\"closed\",\"to\":\"open\"}"
        );
    }

    #[test]
    fn truncation_is_marked_and_cell_prefix_applies() {
        let trace = RunTrace {
            events: sample_records(),
            dropped: 5,
            stats: TraceStats::from_events(&sample_records(), SimTime::ZERO),
        };
        let mut out = String::new();
        append_trace_jsonl(&mut out, Some("spotverse/flap"), &trace);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("{\"cell\":\"spotverse/flap\",\"seq\":0,"));
        assert_eq!(lines[3], "{\"cell\":\"spotverse/flap\",\"truncated\":true,\"dropped\":5}");
    }

    #[test]
    fn json_strings_are_escaped() {
        let mut out = String::new();
        push_json_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}
