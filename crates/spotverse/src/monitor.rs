//! The Monitor component (paper §3.2, §4).
//!
//! A metrics-collector function, triggered on a CloudWatch-like schedule,
//! gathers on-demand/spot prices, Interruption Frequency (as the Stability
//! Score) and Spot Placement Scores for every region offering the managed
//! instance type, and persists them to the KV store — SpotVerse's
//! centralized data plane. The Optimizer consumes the latest persisted
//! snapshot, so decisions are made on *observed* (possibly minutes-stale)
//! metrics, exactly as in the real system.

use aws_stack::{AttrValue, FunctionConfig, FunctionRuntime, Item, KvError, KvStore, MetricKey, MetricsService, RetryPolicy};
use cloud_compute::BillingLedger;
use cloud_market::{
    InstanceType, MarketError, MarketOverlay, PlacementScore, Region, SpotMarket, StabilityScore,
    UsdPerHour,
};
use sim_kernel::{SimDuration, SimTime};

use crate::optimizer::RegionAssessment;

/// The KV table the Monitor writes to.
pub const METRICS_TABLE: &str = "spotverse-metrics";
/// The function name of the collector.
pub const COLLECTOR_FUNCTION: &str = "spotverse-metrics-collector";

/// Monitor errors.
#[derive(Debug, Clone, PartialEq)]
pub enum MonitorError {
    /// The market rejected a query.
    Market(MarketError),
    /// The KV store rejected an operation.
    Kv(KvError),
    /// No snapshot has been collected yet.
    NoSnapshot,
    /// The latest snapshot is older than the caller's freshness bound.
    Stale {
        /// Snapshot age in whole hours.
        age_hours: u64,
    },
}

impl MonitorError {
    /// Whether retrying the same operation later can plausibly succeed
    /// without any other intervention. Only transient throttling
    /// qualifies: market rejections, missing snapshots, and staleness
    /// need a different response (degrade, wait for a collection), not a
    /// blind retry.
    pub fn is_retryable(&self) -> bool {
        matches!(self, MonitorError::Kv(KvError::Throttled { .. }))
    }
}

impl std::fmt::Display for MonitorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MonitorError::Market(e) => write!(f, "market: {e}"),
            MonitorError::Kv(e) => write!(f, "kv store: {e}"),
            MonitorError::NoSnapshot => write!(f, "no metrics snapshot collected yet"),
            MonitorError::Stale { age_hours } => {
                write!(f, "metrics snapshot is stale ({age_hours} h old)")
            }
        }
    }
}

impl std::error::Error for MonitorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MonitorError::Market(e) => Some(e),
            MonitorError::Kv(e) => Some(e),
            MonitorError::NoSnapshot | MonitorError::Stale { .. } => None,
        }
    }
}

impl From<MarketError> for MonitorError {
    fn from(e: MarketError) -> Self {
        MonitorError::Market(e)
    }
}

impl From<KvError> for MonitorError {
    fn from(e: KvError) -> Self {
        MonitorError::Kv(e)
    }
}

/// Epoch memo for the Monitor's collection cycle.
///
/// Market metrics cannot change within an hour (prices step hourly; bands
/// and placement scores daily), so a 15-minute `MonitorTick` that lands in
/// the same *epoch* as the last successful collection would persist an
/// identical snapshot. The memo records the epoch key of the latest
/// durable snapshot — (market hour, active-overlay fingerprint) — and
/// [`Monitor::collect_memoized`] skips the market reads, function
/// invocation, and KV writes entirely when the key matches. The key
/// changes on every hour boundary and whenever the chaos overlay's active
/// window set mutates, so faulted snapshots are never reused across a
/// fault edge.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SnapshotMemo {
    key: Option<(u64, u64)>,
    hits: u64,
    refreshes: u64,
}

impl SnapshotMemo {
    /// An empty memo (first collection always runs).
    pub fn new() -> Self {
        SnapshotMemo::default()
    }

    /// Collections skipped because the persisted snapshot was still
    /// epoch-fresh.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Collections that actually re-read the market.
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }

    /// Drops the memoized epoch so the next collection runs in full.
    pub fn invalidate(&mut self) {
        self.key = None;
    }
}

/// What a memoized collection cycle did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectOutcome {
    /// The market was re-read and `n` regions persisted.
    Fresh(usize),
    /// The persisted snapshot was still epoch-fresh; nothing was touched.
    Reused,
}

/// Fingerprints the overlay's *active* override set as observed by
/// `regions` at `at`. Two instants with identical active windows per
/// region produce identical monitor rows, so they may share an epoch. An
/// absent or empty overlay fingerprints to zero.
fn overlay_fingerprint(overlay: Option<&MarketOverlay>, at: SimTime, regions: &[Region]) -> u64 {
    let Some(overlay) = overlay else { return 0 };
    if overlay.windows().is_empty() {
        return 0;
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for (wi, window) in overlay.windows().iter().enumerate() {
        for (ri, &region) in regions.iter().enumerate() {
            if window.applies(region, at) {
                h ^= ((wi as u64) << 8) | ri as u64 | 1 << 63;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        }
    }
    h
}

/// The Monitor component.
#[derive(Debug, Clone, PartialEq)]
pub struct Monitor {
    instance_type: InstanceType,
    home_region: Region,
}

impl Monitor {
    /// Creates a monitor for an instance type, homed in `home_region` (where
    /// its collector function and table live).
    pub fn new(instance_type: InstanceType, home_region: Region) -> Self {
        Monitor {
            instance_type,
            home_region,
        }
    }

    /// The managed instance type.
    pub fn instance_type(&self) -> InstanceType {
        self.instance_type
    }

    /// Provisions the collector function and metrics table. Idempotent.
    pub fn provision(&self, functions: &mut FunctionRuntime, kv: &mut KvStore) {
        if !functions.is_registered(COLLECTOR_FUNCTION) {
            functions.register(COLLECTOR_FUNCTION, self.home_region, FunctionConfig::default());
        }
        // Ignore "already exists": provisioning is idempotent.
        let _ = kv.create_table(METRICS_TABLE, self.home_region);
    }

    /// Runs one collection cycle: the collector function reads every
    /// region's metrics from the market and persists them.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::Market`] or [`MonitorError::Kv`] on substrate
    /// failures.
    pub fn collect(
        &self,
        market: &SpotMarket,
        at: SimTime,
        functions: &mut FunctionRuntime,
        kv: &mut KvStore,
        metrics: &mut MetricsService,
        ledger: &mut BillingLedger,
    ) -> Result<usize, MonitorError> {
        self.collect_with_overlay(market, None, at, functions, kv, metrics, ledger)
    }

    /// Like [`collect`](Monitor::collect), but observing the market through
    /// a fault overlay: blacked-out or degraded regions report their pinned
    /// (capped) scores, so the persisted snapshot — and every decision made
    /// from it — sees the fault.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::Market`] or [`MonitorError::Kv`] on substrate
    /// failures.
    #[allow(clippy::too_many_arguments)]
    pub fn collect_with_overlay(
        &self,
        market: &SpotMarket,
        overlay: Option<&MarketOverlay>,
        at: SimTime,
        functions: &mut FunctionRuntime,
        kv: &mut KvStore,
        metrics: &mut MetricsService,
        ledger: &mut BillingLedger,
    ) -> Result<usize, MonitorError> {
        let regions = market.regions_offering(self.instance_type);
        // Gather outside the function body so market errors surface typed.
        let mut rows = Vec::with_capacity(regions.len());
        for &region in regions {
            let spot = market.spot_price(region, self.instance_type, at)?;
            let od = market.on_demand_price(region, self.instance_type);
            let mut placement = market.placement_score(region, self.instance_type, at)?;
            let mut stability = market.stability_score(region, self.instance_type, at)?;
            if let Some(overlay) = overlay {
                placement = overlay.placement_score(region, at, placement);
                stability = overlay.stability_score(region, at, stability);
            }
            rows.push((region, spot, od, placement, stability));
        }
        // The Lambda invocation (billed; retried by the runtime on demand).
        functions
            .invoke(COLLECTOR_FUNCTION, at, RetryPolicy::default(), ledger, |_| Ok(()))
            .map_err(|e| MonitorError::Kv(KvError::NoSuchTable(e.to_string())))
            .ok();
        let count = rows.len();
        for (region, spot, od, placement, stability) in rows {
            let mut item = Item::new();
            item.insert("spot_price".into(), AttrValue::N(spot.rate()));
            item.insert("on_demand_price".into(), AttrValue::N(od.rate()));
            item.insert("placement_score".into(), AttrValue::N(f64::from(placement.value())));
            item.insert("stability_score".into(), AttrValue::N(f64::from(stability.value())));
            item.insert("collected_at".into(), AttrValue::N(at.as_secs() as f64));
            kv.put_item(
                METRICS_TABLE,
                format!("{}/{}", self.instance_type, region),
                item,
                at,
                ledger,
            )?;
            metrics.put_metric(
                MetricKey::new(
                    "SpotVerse",
                    "spot_price",
                    format!("region={region},type={}", self.instance_type),
                ),
                at,
                spot.rate(),
                ledger,
            );
        }
        Ok(count)
    }

    /// Like [`collect_with_overlay`](Monitor::collect_with_overlay), but
    /// memoized per market epoch: when the persisted snapshot is still
    /// epoch-fresh (same market hour, same active overlay windows), the
    /// cycle is skipped entirely — no market reads, no collector
    /// invocation, no KV writes — because it would persist byte-identical
    /// rows. The memo is only advanced on a *successful* collection, so a
    /// throttled cycle retries in full.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::Market`] or [`MonitorError::Kv`] on substrate
    /// failures.
    #[allow(clippy::too_many_arguments)]
    pub fn collect_memoized(
        &self,
        market: &SpotMarket,
        overlay: Option<&MarketOverlay>,
        at: SimTime,
        memo: &mut SnapshotMemo,
        functions: &mut FunctionRuntime,
        kv: &mut KvStore,
        metrics: &mut MetricsService,
        ledger: &mut BillingLedger,
    ) -> Result<CollectOutcome, MonitorError> {
        let regions = market.regions_offering(self.instance_type);
        let key = (at.as_secs() / 3600, overlay_fingerprint(overlay, at, regions));
        if memo.key == Some(key) {
            memo.hits += 1;
            return Ok(CollectOutcome::Reused);
        }
        let n = self.collect_with_overlay(market, overlay, at, functions, kv, metrics, ledger)?;
        memo.key = Some(key);
        memo.refreshes += 1;
        Ok(CollectOutcome::Fresh(n))
    }

    /// Reads the latest persisted snapshot as optimizer inputs.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::NoSnapshot`] before the first collection and
    /// [`MonitorError::Kv`] on store failures.
    pub fn latest_assessments(
        &self,
        kv: &KvStore,
    ) -> Result<Vec<RegionAssessment>, MonitorError> {
        self.read_snapshot(kv).map(|(out, _)| out)
    }

    /// Reads the latest persisted snapshot along with its age at `now` —
    /// how long ago its oldest row was collected. The Optimizer uses the
    /// age to decide whether stale metrics are still trustworthy.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::NoSnapshot`] before the first collection and
    /// [`MonitorError::Kv`] on store failures.
    pub fn latest_assessments_with_age(
        &self,
        kv: &KvStore,
        now: SimTime,
    ) -> Result<(Vec<RegionAssessment>, SimDuration), MonitorError> {
        let (out, collected_at) = self.read_snapshot(kv)?;
        Ok((out, now.saturating_duration_since(collected_at)))
    }

    /// Like [`latest_assessments_with_age`](Monitor::latest_assessments_with_age),
    /// but enforcing a freshness bound: a snapshot older than `ttl` is
    /// refused with [`MonitorError::Stale`] so the caller degrades
    /// deliberately instead of trusting expired metrics.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::Stale`] past the TTL, plus everything
    /// [`latest_assessments_with_age`](Monitor::latest_assessments_with_age)
    /// returns.
    pub fn assessments_no_older_than(
        &self,
        kv: &KvStore,
        now: SimTime,
        ttl: SimDuration,
    ) -> Result<(Vec<RegionAssessment>, SimDuration), MonitorError> {
        let (out, age) = self.latest_assessments_with_age(kv, now)?;
        if age > ttl {
            return Err(MonitorError::Stale { age_hours: age.as_secs() / 3600 });
        }
        Ok((out, age))
    }

    /// The shared snapshot read: parsed assessments in catalog order plus
    /// the oldest `collected_at` stamp across the rows. Crate-visible so
    /// the control plane can fill its per-epoch snapshot cache.
    pub(crate) fn read_snapshot(
        &self,
        kv: &KvStore,
    ) -> Result<(Vec<RegionAssessment>, SimTime), MonitorError> {
        let prefix = format!("{}/", self.instance_type);
        let rows = kv.scan_prefix(METRICS_TABLE, &prefix)?;
        if rows.is_empty() {
            return Err(MonitorError::NoSnapshot);
        }
        let mut collected_at = SimTime::ZERO;
        let mut first = true;
        let mut out = Vec::with_capacity(rows.len());
        for (key, item) in rows {
            let region: Region = key[prefix.len()..]
                .parse()
                .expect("monitor wrote a valid region name");
            let get = |name: &str| {
                item.get(name)
                    .and_then(AttrValue::as_number)
                    .expect("monitor wrote numeric attributes")
            };
            let row_at = SimTime::from_secs(get("collected_at") as u64);
            if first || row_at < collected_at {
                collected_at = row_at;
                first = false;
            }
            out.push(RegionAssessment {
                region,
                placement: PlacementScore::new(get("placement_score") as u8)
                    .expect("persisted placement score is in range"),
                stability: StabilityScore::new(get("stability_score") as u8)
                    .expect("persisted stability score is in range"),
                spot_price: UsdPerHour::new(get("spot_price")),
                on_demand_price: UsdPerHour::new(get("on_demand_price")),
            });
        }
        // Present in catalog order, matching fresh_assessments.
        out.sort_by_key(|a| Region::ALL.iter().position(|r| *r == a.region));
        Ok((out, collected_at))
    }

    /// Builds fresh assessments straight from the market (bypassing the
    /// persistence pipeline) — used by baseline strategies and tests.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::Market`] for market failures.
    pub fn fresh_assessments(
        &self,
        market: &SpotMarket,
        at: SimTime,
    ) -> Result<Vec<RegionAssessment>, MonitorError> {
        self.fresh_assessments_with_overlay(market, None, at)
    }

    /// Like [`fresh_assessments`](Monitor::fresh_assessments), observed
    /// through a fault overlay.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::Market`] for market failures.
    pub fn fresh_assessments_with_overlay(
        &self,
        market: &SpotMarket,
        overlay: Option<&MarketOverlay>,
        at: SimTime,
    ) -> Result<Vec<RegionAssessment>, MonitorError> {
        let mut out = Vec::new();
        for &region in market.regions_offering(self.instance_type) {
            let mut placement = market.placement_score(region, self.instance_type, at)?;
            let mut stability = market.stability_score(region, self.instance_type, at)?;
            if let Some(overlay) = overlay {
                placement = overlay.placement_score(region, at, placement);
                stability = overlay.stability_score(region, at, stability);
            }
            out.push(RegionAssessment {
                region,
                placement,
                stability,
                spot_price: market.spot_price(region, self.instance_type, at)?,
                on_demand_price: market.on_demand_price(region, self.instance_type),
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloud_market::MarketConfig;

    struct Fixture {
        market: SpotMarket,
        monitor: Monitor,
        functions: FunctionRuntime,
        kv: KvStore,
        metrics: MetricsService,
        ledger: BillingLedger,
    }

    fn fixture() -> Fixture {
        let market = SpotMarket::new(MarketConfig::with_seed(3));
        let monitor = Monitor::new(InstanceType::M5Xlarge, Region::UsEast1);
        let mut functions = FunctionRuntime::new();
        let mut kv = KvStore::new();
        monitor.provision(&mut functions, &mut kv);
        Fixture {
            market,
            monitor,
            functions,
            kv,
            metrics: MetricsService::new(Region::UsEast1),
            ledger: BillingLedger::new(),
        }
    }

    #[test]
    fn collect_persists_all_regions() {
        let mut f = fixture();
        let n = f
            .monitor
            .collect(
                &f.market,
                SimTime::from_hours(1),
                &mut f.functions,
                &mut f.kv,
                &mut f.metrics,
                &mut f.ledger,
            )
            .unwrap();
        assert_eq!(n, 12);
        assert_eq!(f.functions.invocation_count(), 1);
        assert!(f.ledger.total().amount() > 0.0);
        let assessments = f.monitor.latest_assessments(&f.kv).unwrap();
        assert_eq!(assessments.len(), 12);
    }

    #[test]
    fn snapshot_matches_market_at_collection_instant() {
        let mut f = fixture();
        let at = SimTime::from_days(2);
        f.monitor
            .collect(&f.market, at, &mut f.functions, &mut f.kv, &mut f.metrics, &mut f.ledger)
            .unwrap();
        let persisted = f.monitor.latest_assessments(&f.kv).unwrap();
        let fresh = f.monitor.fresh_assessments(&f.market, at).unwrap();
        for (p, fr) in persisted.iter().zip(fresh.iter()) {
            assert_eq!(p.region, fr.region);
            assert_eq!(p.placement, fr.placement);
            assert_eq!(p.stability, fr.stability);
            assert!((p.spot_price.rate() - fr.spot_price.rate()).abs() < 1e-12);
        }
    }

    #[test]
    fn snapshot_is_stale_until_next_collection() {
        let mut f = fixture();
        let early = SimTime::from_days(1);
        f.monitor
            .collect(&f.market, early, &mut f.functions, &mut f.kv, &mut f.metrics, &mut f.ledger)
            .unwrap();
        let snapshot = f.monitor.latest_assessments(&f.kv).unwrap();
        let later_fresh = f
            .monitor
            .fresh_assessments(&f.market, SimTime::from_days(40))
            .unwrap();
        // Prices move over 39 days; the persisted snapshot must not.
        let moved = snapshot
            .iter()
            .zip(later_fresh.iter())
            .any(|(a, b)| (a.spot_price.rate() - b.spot_price.rate()).abs() > 1e-9);
        assert!(moved, "prices should drift over 39 days");
    }

    #[test]
    fn snapshot_age_is_tracked_and_ttl_enforced() {
        let mut f = fixture();
        let collected = SimTime::from_hours(10);
        f.monitor
            .collect(&f.market, collected, &mut f.functions, &mut f.kv, &mut f.metrics, &mut f.ledger)
            .unwrap();
        let now = SimTime::from_hours(13);
        let (set, age) = f.monitor.latest_assessments_with_age(&f.kv, now).unwrap();
        assert_eq!(set.len(), 12);
        assert_eq!(age, SimDuration::from_hours(3));
        // Within the bound: served with its age.
        let (_, age) = f
            .monitor
            .assessments_no_older_than(&f.kv, now, SimDuration::from_hours(4))
            .unwrap();
        assert_eq!(age, SimDuration::from_hours(3));
        // Past the bound: refused as stale, and staleness is not retryable.
        let err = f
            .monitor
            .assessments_no_older_than(&f.kv, now, SimDuration::from_hours(2))
            .unwrap_err();
        assert_eq!(err, MonitorError::Stale { age_hours: 3 });
        assert!(!err.is_retryable());
        assert!(MonitorError::Kv(KvError::Throttled { table: "t".into() }).is_retryable());
    }

    #[test]
    fn no_snapshot_error_before_first_collection() {
        let f = fixture();
        assert!(matches!(
            f.monitor.latest_assessments(&f.kv),
            Err(MonitorError::NoSnapshot)
        ));
    }

    #[test]
    fn provision_is_idempotent() {
        let mut f = fixture();
        f.monitor.provision(&mut f.functions, &mut f.kv);
        f.monitor.provision(&mut f.functions, &mut f.kv);
        assert!(f.functions.is_registered(COLLECTOR_FUNCTION));
    }

    #[test]
    fn memoized_collection_skips_within_an_epoch() {
        let mut f = fixture();
        let mut memo = SnapshotMemo::new();
        let collect_at = |f: &mut Fixture, memo: &mut SnapshotMemo, at| {
            f.monitor
                .collect_memoized(
                    &f.market,
                    None,
                    at,
                    memo,
                    &mut f.functions,
                    &mut f.kv,
                    &mut f.metrics,
                    &mut f.ledger,
                )
                .unwrap()
        };
        // Four 15-minute ticks inside hour 24: one fresh read, three hits.
        let base = SimTime::from_days(1);
        assert_eq!(collect_at(&mut f, &mut memo, base), CollectOutcome::Fresh(12));
        for tick in 1..4 {
            let at = base + sim_kernel::SimDuration::from_mins(15 * tick);
            assert_eq!(collect_at(&mut f, &mut memo, at), CollectOutcome::Reused);
        }
        assert_eq!(f.functions.invocation_count(), 1, "reused ticks must not invoke");
        assert_eq!((memo.refreshes(), memo.hits()), (1, 3));
        // Crossing the hour boundary refreshes.
        let next_hour = base + sim_kernel::SimDuration::from_hours(1);
        assert_eq!(collect_at(&mut f, &mut memo, next_hour), CollectOutcome::Fresh(12));
        assert_eq!(f.functions.invocation_count(), 2);
        // Reused ticks leave the persisted snapshot untouched and valid.
        let snapshot = f.monitor.latest_assessments(&f.kv).unwrap();
        let fresh = f.monitor.fresh_assessments(&f.market, next_hour).unwrap();
        for (p, fr) in snapshot.iter().zip(fresh.iter()) {
            assert_eq!(p.placement, fr.placement);
            assert!((p.spot_price.rate() - fr.spot_price.rate()).abs() < 1e-12);
        }
        // Explicit invalidation forces a full cycle even in-epoch.
        memo.invalidate();
        assert_eq!(collect_at(&mut f, &mut memo, next_hour), CollectOutcome::Fresh(12));
    }

    #[test]
    fn overlay_edges_invalidate_the_memo_epoch() {
        use cloud_market::OverlayWindow;
        let mut f = fixture();
        let mut overlay = MarketOverlay::new();
        // A window opening mid-hour: same market hour, different active set.
        let open = SimTime::from_hours(24) + sim_kernel::SimDuration::from_mins(30);
        let mut w = OverlayWindow::new(Some(vec![Region::UsEast1]), open, SimTime::from_days(2));
        w.placement_cap = Some(cloud_market::PlacementScore::MIN);
        overlay.push(w);
        let mut memo = SnapshotMemo::new();
        let collect_at = |f: &mut Fixture, memo: &mut SnapshotMemo, at| {
            f.monitor
                .collect_memoized(
                    &f.market,
                    Some(&overlay),
                    at,
                    memo,
                    &mut f.functions,
                    &mut f.kv,
                    &mut f.metrics,
                    &mut f.ledger,
                )
                .unwrap()
        };
        let before = SimTime::from_hours(24);
        assert_eq!(collect_at(&mut f, &mut memo, before), CollectOutcome::Fresh(12));
        // 15 minutes later, still pre-window: reused.
        let still_before = before + sim_kernel::SimDuration::from_mins(15);
        assert_eq!(collect_at(&mut f, &mut memo, still_before), CollectOutcome::Reused);
        // The window opens inside the same hour: must re-collect so the
        // snapshot observes the fault.
        assert_eq!(collect_at(&mut f, &mut memo, open), CollectOutcome::Fresh(12));
        let pinned = f
            .monitor
            .latest_assessments(&f.kv)
            .unwrap()
            .into_iter()
            .find(|a| a.region == Region::UsEast1)
            .unwrap();
        assert_eq!(pinned.placement, cloud_market::PlacementScore::MIN);
    }

    #[test]
    fn p3_snapshot_covers_only_offering_regions() {
        let market = SpotMarket::new(MarketConfig::with_seed(3));
        let monitor = Monitor::new(InstanceType::P32xlarge, Region::UsEast1);
        let mut functions = FunctionRuntime::new();
        let mut kv = KvStore::new();
        monitor.provision(&mut functions, &mut kv);
        let mut metrics = MetricsService::new(Region::UsEast1);
        let mut ledger = BillingLedger::new();
        let n = monitor
            .collect(&market, SimTime::ZERO, &mut functions, &mut kv, &mut metrics, &mut ledger)
            .unwrap();
        assert_eq!(n, 9, "p3 is offered in 9 of 12 regions");
    }
}
