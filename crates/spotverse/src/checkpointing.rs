//! A KV-store-backed [`CheckpointStore`]: the paper's DynamoDB checkpoint
//! path as a reusable component.
//!
//! The experiment engine writes checkpoints inline for performance; this
//! type packages the same layout behind the
//! [`galaxy_flow::CheckpointStore`] trait for standalone use (see the
//! `ngs_checkpoint_resume` example).

use aws_stack::{AttrValue, Item, KvStore};
use cloud_compute::BillingLedger;
use cloud_market::Region;
use galaxy_flow::{CheckpointError, CheckpointRecord, CheckpointStore};
use sim_kernel::SimTime;

/// The table name used for checkpoints.
pub const CHECKPOINT_TABLE: &str = "spotverse-checkpoints";

/// A checkpoint store persisting to a [`KvStore`] table, billing each
/// operation.
#[derive(Debug, Default)]
pub struct KvCheckpointStore {
    kv: KvStore,
    ledger: BillingLedger,
    clock: SimTime,
}

impl KvCheckpointStore {
    /// Creates the store with its table homed in `region`.
    pub fn new(region: Region) -> Self {
        let mut kv = KvStore::new();
        kv.create_table(CHECKPOINT_TABLE, region)
            .expect("fresh store has no tables");
        KvCheckpointStore {
            kv,
            ledger: BillingLedger::new(),
            clock: SimTime::ZERO,
        }
    }

    /// Advances the store's billing clock (operations are stamped with it).
    pub fn set_clock(&mut self, at: SimTime) {
        self.clock = at;
    }

    /// The accumulated KV charges.
    pub fn ledger(&self) -> &BillingLedger {
        &self.ledger
    }

    fn record_to_item(record: CheckpointRecord) -> Item {
        let mut item = Item::new();
        item.insert("units_done".into(), AttrValue::N(record.units_done as f64));
        item.insert(
            "updated_at".into(),
            AttrValue::N(record.updated_at.as_secs() as f64),
        );
        item
    }

    fn item_to_record(item: &Item) -> CheckpointRecord {
        let units = item
            .get("units_done")
            .and_then(AttrValue::as_number)
            .unwrap_or(0.0) as usize;
        let at = item
            .get("updated_at")
            .and_then(AttrValue::as_number)
            .unwrap_or(0.0) as u64;
        CheckpointRecord {
            units_done: units,
            updated_at: SimTime::from_secs(at),
        }
    }
}

impl CheckpointStore for KvCheckpointStore {
    fn save(&mut self, workload: &str, record: CheckpointRecord) -> Result<(), CheckpointError> {
        // Monotonicity via a conditional write — a stale replacement
        // instance must not rewind the frontier.
        let item = Self::record_to_item(record);
        let result = self.kv.conditional_put(
            CHECKPOINT_TABLE,
            workload,
            item,
            self.clock,
            &mut self.ledger,
            |current| match current {
                Some(existing) => Self::item_to_record(existing).units_done <= record.units_done,
                None => true,
            },
        );
        match result {
            Ok(()) => Ok(()),
            Err(aws_stack::KvError::ConditionFailed { .. }) => {
                let persisted = self
                    .load(workload)?
                    .map(|r| r.units_done)
                    .unwrap_or_default();
                Err(CheckpointError::StaleWrite {
                    workload: workload.to_owned(),
                    incoming: record.units_done,
                    persisted,
                })
            }
            Err(e) => Err(CheckpointError::Backend(e.to_string())),
        }
    }

    fn load(&self, workload: &str) -> Result<Option<CheckpointRecord>, CheckpointError> {
        let rows = self
            .kv
            .scan_prefix(CHECKPOINT_TABLE, workload)
            .map_err(|e| CheckpointError::Backend(e.to_string()))?;
        Ok(rows
            .into_iter()
            .find(|(k, _)| *k == workload)
            .map(|(_, item)| Self::item_to_record(item)))
    }

    fn clear(&mut self, workload: &str) -> Result<(), CheckpointError> {
        self.kv
            .put_item(CHECKPOINT_TABLE, workload, Item::new(), self.clock, &mut self.ledger)
            .map_err(|e| CheckpointError::Backend(e.to_string()))?;
        // An empty item decodes as zero progress — equivalent to cleared.
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(units: usize, secs: u64) -> CheckpointRecord {
        CheckpointRecord {
            units_done: units,
            updated_at: SimTime::from_secs(secs),
        }
    }

    #[test]
    fn save_load_roundtrip() {
        let mut store = KvCheckpointStore::new(Region::UsEast1);
        store.set_clock(SimTime::from_secs(100));
        store.save("w", rec(4, 100)).unwrap();
        let loaded = store.load("w").unwrap().unwrap();
        assert_eq!(loaded.units_done, 4);
        assert_eq!(loaded.updated_at, SimTime::from_secs(100));
        assert!(store.ledger().total().amount() > 0.0, "writes are billed");
    }

    #[test]
    fn stale_write_rejected() {
        let mut store = KvCheckpointStore::new(Region::UsEast1);
        store.save("w", rec(5, 10)).unwrap();
        let err = store.save("w", rec(3, 20)).unwrap_err();
        assert!(matches!(err, CheckpointError::StaleWrite { persisted: 5, .. }));
        // Progress is unchanged.
        assert_eq!(store.load("w").unwrap().unwrap().units_done, 5);
    }

    #[test]
    fn missing_workload_is_none() {
        let store = KvCheckpointStore::new(Region::UsEast1);
        assert_eq!(store.load("ghost").unwrap(), None);
    }

    #[test]
    fn clear_resets_progress() {
        let mut store = KvCheckpointStore::new(Region::UsEast1);
        store.save("w", rec(7, 0)).unwrap();
        store.clear("w").unwrap();
        let after = store.load("w").unwrap().unwrap();
        assert_eq!(after.units_done, 0);
        // And new progress can be written again from scratch.
        store.save("w", rec(2, 50)).unwrap();
        assert_eq!(store.load("w").unwrap().unwrap().units_done, 2);
    }
}
